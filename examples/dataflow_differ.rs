//! The arms race, one move further — the paper's §5 closes with a
//! prediction: *"we predict the potential of data flow representation can
//! be further tapped."* This example plays that move.
//!
//! A defender obfuscates a T-III program with Khaos FuFi.all. Five
//! attacker tools then try to re-identify functions in the shipped
//! binary: the paper's four function-level tools and `DataFlowDiff`, the
//! data-flow-representation tool built from the §5 outlook. The same
//! matchup is repeated on a *stripped* binary — the realistic firmware
//! case where BinDiff loses its symbol-name anchor.
//!
//! ```sh
//! cargo run --release --example dataflow_differ
//! ```

use khaos::binary::lower_module;
use khaos::diff::{extended_differs, precision_at_1};
use khaos::pass::{PassCtx, Pipeline};
use khaos::workloads;

fn main() {
    // The attacker's reference: the open-source library at O2+LTO.
    let mut reference = workloads::tiii().swap_remove(3); // openssl stand-in
    println!("program: {} ({} functions)", reference.name, reference.functions.len());
    Pipeline::parse("O2+lto")
        .unwrap()
        .run(&mut reference, &mut PassCtx::new(0xC60))
        .expect("baseline build");
    let reference_bin = lower_module(&reference);

    // The defender's shipped binary: Khaos FuFi.all + rest of pipeline.
    let pipeline = Pipeline::parse("fufi_all | O2+lto").expect("spec parses");
    let mut shipped = reference.clone();
    let mut ctx = PassCtx::new(0xC60);
    pipeline.run(&mut shipped, &mut ctx).expect("obfuscation");
    let shipped_bin = lower_module(&shipped).with_build_provenance(pipeline.fingerprint());
    let mut stripped_bin = shipped_bin.clone();
    stripped_bin.strip();

    println!(
        "shipped build: {} functions ({} sepFuncs, {} fusFuncs)\n",
        shipped.functions.len(),
        ctx.fission_stats.sep_funcs,
        ctx.fusion_stats.fus_funcs,
    );

    println!(
        "{:<14} {:>16} {:>16}",
        "tool", "P@1 (unstripped)", "P@1 (stripped)"
    );
    for tool in extended_differs() {
        let p = precision_at_1(tool.as_ref(), &reference_bin, &shipped_bin);
        let ps = precision_at_1(tool.as_ref(), &reference_bin, &stripped_bin);
        println!("{:<14} {:>16.3} {:>16.3}", tool.name(), p, ps);
    }

    println!("\nreading the board:");
    println!(" * every tool drops hard against the un-obfuscated self-match of 1.0");
    println!(" * BinDiff leans on symbol names — the stripped column removes them");
    println!(" * DataFlowDiff carries no symbol or call-graph reliance, so its two");
    println!("   columns are identical: the def-use signal is all it ever had");
}
