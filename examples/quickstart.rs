//! Quickstart: build a small program, obfuscate it through a Khaos
//! build *pipeline*, and watch behaviour stay identical while the code
//! restructures.
//!
//! Pipelines are first-class data: a spec string parses into a
//! `Pipeline`, runs over one seeded `PassCtx`, reports per-pass timing
//! and IR deltas, and carries a stable fingerprint (the build
//! provenance the diffing cache keys on).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use khaos::pass::{PassCtx, Pipeline};
use khaos::vm::run_to_completion;
use khaos_ir::builder::FunctionBuilder;
use khaos_ir::printer::print_module;
use khaos_ir::{BinOp, CmpPred, ExtFunc, Module, Operand, Type};

fn build_demo() -> Module {
    let mut m = Module::new("quickstart");
    let print = m.declare_external(ExtFunc {
        name: "print_i64".into(),
        params: vec![Type::I64],
        ret_ty: Type::Void,
        variadic: false,
    });

    // cal_file-alike (paper Figure 1): entry checks, a cold error path,
    // a hot loop, several returns.
    let mut f = FunctionBuilder::new("cal_file", Type::I64);
    let len = f.add_param(Type::I64);
    let cold = f.new_block();
    let loop_h = f.new_block();
    let loop_b = f.new_block();
    let done = f.new_block();
    let i = f.new_local(Type::I64);
    let value = f.new_local(Type::I64);
    let bad = f.cmp(CmpPred::Slt, Type::I64, Operand::local(len), Operand::const_int(Type::I64, 0));
    f.copy_to(i, Operand::const_int(Type::I64, 0));
    f.copy_to(value, Operand::const_int(Type::I64, 0));
    f.branch(Operand::local(bad), cold, loop_h);
    f.switch_to(cold);
    f.ret(Some(Operand::const_int(Type::I64, -1)));
    f.switch_to(loop_h);
    let more = f.cmp(CmpPred::Slt, Type::I64, Operand::local(i), Operand::local(len));
    f.branch(Operand::local(more), loop_b, done);
    f.switch_to(loop_b);
    let nv = f.bin(BinOp::Add, Type::I64, Operand::local(value), Operand::local(i));
    f.copy_to(value, Operand::local(nv));
    let ni = f.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
    f.copy_to(i, Operand::local(ni));
    f.jump(loop_h);
    f.switch_to(done);
    f.ret(Some(Operand::local(value)));
    let cal_file = m.push_function(f.finish());

    // A logging helper with a compatible signature, fusion bait.
    let mut g = FunctionBuilder::new("log_value", Type::I64);
    let v = g.add_param(Type::I64);
    let doubled = g.bin(BinOp::Mul, Type::I64, Operand::local(v), Operand::const_int(Type::I64, 2));
    g.ret(Some(Operand::local(doubled)));
    let log_value = m.push_function(g.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let r1 = main.call(cal_file, Type::I64, vec![Operand::const_int(Type::I64, 10)]).unwrap();
    main.call_ext(print, Type::Void, vec![Operand::local(r1)]);
    let r2 = main.call(log_value, Type::I64, vec![Operand::local(r1)]).unwrap();
    main.call_ext(print, Type::Void, vec![Operand::local(r2)]);
    let r3 = main.call(cal_file, Type::I64, vec![Operand::const_int(Type::I64, -5)]).unwrap();
    main.call_ext(print, Type::Void, vec![Operand::local(r3)]);
    let s = main.bin(BinOp::Add, Type::I64, Operand::local(r2), Operand::local(r3));
    main.ret(Some(Operand::local(s)));
    m.push_function(main.finish());
    m
}

fn main() {
    let mut module = build_demo();

    // The vendor's compiler: the paper baseline, as a one-atom pipeline.
    Pipeline::parse("O2+lto")
        .unwrap()
        .run(&mut module, &mut PassCtx::new(0xC60))
        .expect("baseline build");

    println!("=== before obfuscation ===");
    println!("{}", print_module(&module));
    let before = run_to_completion(&module, &[]).expect("baseline runs");
    println!("output: {:?}, exit: {}, cycles: {}\n", before.output, before.exit_code, before.cycles);

    // The shipped build: Khaos FuFi.all in the middle-end, then the
    // rest of the compiler pipeline. One spec string describes it all.
    let pipeline = Pipeline::parse("fufi_all | O2+lto").expect("spec parses");
    let mut ctx = PassCtx::new(0xC60);
    let report = pipeline.run(&mut module, &mut ctx).expect("obfuscation");

    println!("=== after `{pipeline}` ===");
    println!("{}", print_module(&module));
    let after = run_to_completion(&module, &[]).expect("obfuscated runs");
    println!("output: {:?}, exit: {}, cycles: {}", after.output, after.exit_code, after.cycles);

    assert_eq!(before.output, after.output, "behaviour must be preserved");
    assert_eq!(before.exit_code, after.exit_code);
    println!("\nbehaviour preserved; functions: {} sepFuncs, {} fusFuncs",
        ctx.fission_stats.sep_funcs, ctx.fusion_stats.fus_funcs);
    println!(
        "runtime overhead: {:+.1}%",
        (after.cycles as f64 / before.cycles as f64 - 1.0) * 100.0
    );

    // The pipeline is data: it reports what each pass did, round-trips
    // through its spec, and fingerprints its configuration (the build
    // provenance `khaos-diff`'s embedding cache keys on).
    println!("\n{report}");
    assert_eq!(Pipeline::parse(&pipeline.to_string()).unwrap(), pipeline);
    println!("build provenance fingerprint: {:016x}", pipeline.fingerprint());
}
