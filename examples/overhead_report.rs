//! Per-program runtime overhead report — a narrow slice of Figure 6 you
//! can eyeball in seconds, including the negative-overhead cases the
//! paper highlights (thinned remFuncs getting inlined).
//!
//! Every build goes through a `khaos-pass` pipeline: the baseline is
//! the `O2+lto` macro-pass, and each Khaos column is the mode's atom
//! followed by the rest of the compiler pipeline.
//!
//! ```sh
//! cargo run --release --example overhead_report
//! ```

use khaos::pass::{PassCtx, Pipeline};
use khaos::vm::{run_with_config, RunConfig};
use khaos::workloads;

fn cycles(m: &khaos_ir::Module) -> u64 {
    let cfg = RunConfig { inputs: vec![3, 7, 11], ..RunConfig::default() };
    run_with_config(m, cfg).expect("program runs").cycles
}

const MODES: [&str; 5] = ["fission", "fusion", "fufi_sep", "fufi_ori", "fufi_all"];

fn main() {
    println!(
        "{:<20} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "program", "base cycles", "Fission", "Fusion", "FuFi.sep", "FuFi.ori", "FuFi.all"
    );
    let baseline = Pipeline::parse("O2+lto").unwrap();
    for mut program in workloads::spec2006().into_iter().take(8) {
        baseline
            .run(&mut program, &mut PassCtx::new(0xC60))
            .expect("baseline build");
        let base = cycles(&program);
        print!("{:<20} {:>12}", program.name, base);
        for atom in MODES {
            let mut m = program.clone();
            Pipeline::parse(&format!("{atom} | O2+lto"))
                .unwrap()
                .run(&mut m, &mut PassCtx::new(0xC60))
                .expect("khaos build");
            let oh = (cycles(&m) as f64 / base as f64 - 1.0) * 100.0;
            print!(" {oh:>8.1}%");
        }
        println!();
    }
    println!("\nNegative numbers are real: fission thins a function below the");
    println!("inlining threshold and the call disappears entirely (paper 4.1).");
}
