//! Per-program runtime overhead report — a narrow slice of Figure 6 you
//! can eyeball in seconds, including the negative-overhead cases the
//! paper highlights (thinned remFuncs getting inlined).
//!
//! ```sh
//! cargo run --release --example overhead_report
//! ```

use khaos::obfuscate::{KhaosContext, KhaosMode};
use khaos::opt::{optimize, OptOptions};
use khaos::vm::{run_with_config, RunConfig};
use khaos::workloads;

fn cycles(m: &khaos_ir::Module) -> u64 {
    let cfg = RunConfig { inputs: vec![3, 7, 11], ..RunConfig::default() };
    run_with_config(m, cfg).expect("program runs").cycles
}

fn main() {
    println!(
        "{:<20} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "program", "base cycles", "Fission", "Fusion", "FuFi.sep", "FuFi.ori", "FuFi.all"
    );
    for mut program in workloads::spec2006().into_iter().take(8) {
        optimize(&mut program, &OptOptions::baseline());
        let base = cycles(&program);
        print!("{:<20} {:>12}", program.name, base);
        for mode in KhaosMode::ALL {
            let mut m = program.clone();
            let mut ctx = KhaosContext::new(0xC60);
            mode.apply(&mut m, &mut ctx).expect("khaos");
            optimize(&mut m, &OptOptions::baseline());
            let oh = (cycles(&m) as f64 / base as f64 - 1.0) * 100.0;
            print!(" {oh:>8.1}%");
        }
        println!();
    }
    println!("\nNegative numbers are real: fission thins a function below the");
    println!("inlining threshold and the call disappears entirely (paper 4.1).");
}
