//! N-way fusion walkthrough — the "any number of functions" form the
//! paper reserves for future work (§3.3), bounded at four constituents by
//! the §A.1 tag-bit budget.
//!
//! Builds a module with four dispatch handlers reached through a
//! function-pointer table (the shape of BusyBox's applet table), fuses
//! all four into ONE function at arity 4, and shows:
//!
//! * the module shrinking to a single `fusFunc` (plus `main`),
//! * the switch dispatch on the `ctrl` parameter,
//! * tagged function pointers keeping the indirect dispatch working,
//! * identical observable behaviour before and after.
//!
//! ```sh
//! cargo run --release --example nway_fusion
//! ```

use khaos::pass::{PassCtx, Pipeline};
use khaos::vm::run_to_completion;
use khaos_ir::builder::FunctionBuilder;
use khaos_ir::printer::print_module;
use khaos_ir::{BinOp, CmpPred, GInit, Global, Module, Operand, Type};

/// Four handlers of identical signature plus a `main` that dispatches
/// through a global function-pointer table — the pattern that forces the
/// tagged-pointer machinery (the compiler cannot know which handler a
/// table slot holds).
fn build_demo() -> Module {
    let mut m = Module::new("nway_demo");

    let mut handlers = Vec::new();
    for (name, op, k) in [
        ("handle_add", BinOp::Add, 100i64),
        ("handle_mul", BinOp::Mul, 3),
        ("handle_xor", BinOp::Xor, 0x5a),
        ("handle_shl", BinOp::Shl, 2),
    ] {
        let mut f = FunctionBuilder::new(name, Type::I64);
        let x = f.add_param(Type::I64);
        let r = f.bin(op, Type::I64, Operand::local(x), Operand::const_int(Type::I64, k));
        f.ret(Some(Operand::local(r)));
        handlers.push(m.push_function(f.finish()));
    }

    // Applet table: four slots holding the handlers' addresses.
    let table = m.push_global(Global {
        name: "applet_table".into(),
        init: handlers.iter().map(|&h| GInit::FuncPtr { func: h, addend: 0 }).collect(),
        align: 8,
        exported: false,
    });

    // main: walk the table, call each slot indirectly, accumulate.
    let mut f = FunctionBuilder::new("main", Type::I64);
    let loop_h = f.new_block();
    let loop_b = f.new_block();
    let done = f.new_block();
    let i = f.new_local(Type::I64);
    let acc = f.new_local(Type::I64);
    f.copy_to(i, Operand::const_int(Type::I64, 0));
    f.copy_to(acc, Operand::const_int(Type::I64, 7));
    f.jump(loop_h);
    f.switch_to(loop_h);
    let more = f.cmp(CmpPred::Slt, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 4));
    f.branch(Operand::local(more), loop_b, done);
    f.switch_to(loop_b);
    let base = f.globaladdr(table);
    let off = f.bin(BinOp::Shl, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 3));
    let slot = f.ptradd(Operand::local(base), Operand::local(off));
    let fp = f.load(Type::Ptr, Operand::local(slot));
    let r = f
        .call_indirect(Operand::local(fp), Type::I64, vec![Operand::local(acc)])
        .expect("handler returns a value");
    f.copy_to(acc, Operand::local(r));
    let ni = f.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
    f.copy_to(i, Operand::local(ni));
    f.jump(loop_h);
    f.switch_to(done);
    f.ret(Some(Operand::local(acc)));
    m.push_function(f.finish());
    m
}

fn main() {
    let mut m = build_demo();
    khaos_ir::verify::assert_valid(&m);

    let before = run_to_completion(&m, &[]).expect("baseline runs");
    println!("== before: {} functions ==", m.functions.len());
    for f in &m.functions {
        println!("  {} ({} blocks)", f.name, f.blocks.len());
    }
    println!("exit code: {}\n", before.exit_code);

    let mut ctx = PassCtx::new(0xC60);
    Pipeline::parse("fusion_n(arity=4)")
        .unwrap()
        .run(&mut m, &mut ctx)
        .expect("arity-4 fusion");

    let after = run_to_completion(&m, &[]).expect("fused build runs");
    println!("== after arity-4 fusion: {} functions ==", m.functions.len());
    for f in &m.functions {
        println!("  {} ({} blocks)", f.name, f.blocks.len());
    }
    println!(
        "fusFuncs formed: {}, indirect sites rewritten: {}, trampolines: {}",
        ctx.fusion_stats.fus_funcs,
        ctx.fusion_stats.indirect_sites_rewritten,
        ctx.fusion_stats.trampolines,
    );
    println!("exit code: {} (must equal {})", after.exit_code, before.exit_code);
    assert_eq!(before.output, after.output);
    assert_eq!(before.exit_code, after.exit_code);

    // Show the fused function's dispatch: a switch over ctrl.
    let fus = m
        .functions
        .iter()
        .find(|f| f.provenance.kind == khaos_ir::ProvKind::Fused)
        .expect("a fused function exists");
    println!("\n== dispatch of {} ==", fus.name);
    let text = print_module(&m);
    let header = format!("func {}", fus.name);
    for line in text.lines().skip_while(|l| !l.contains(&header)).take(8) {
        println!("  {line}");
    }
    println!("\nall four handlers now live behind one symbol — a diffing tool");
    println!("sees one big function where the reference build had four small ones");
}
