//! Head-to-head of the five diffing techniques against every obfuscation
//! configuration on one SPEC-alike program — a single-program slice of
//! the paper's Figure 8.
//!
//! ```sh
//! cargo run --release --example diff_shootout
//! ```

use khaos::binary::lower_module;
use khaos::diff::{
    binary_similarity, deepbindiff_precision_at_1, precision_at_1, Asm2Vec, BinDiff, DeepBinDiff,
    Safe, VulSeeker,
};
use khaos::pass::{PassCtx, Pipeline};
use khaos::workloads;

/// The eight obfuscated configurations: paper legend name → the build
/// pipeline applied on top of the optimized baseline.
const CONFIGS: [(&str, &str); 8] = [
    ("Sub", "sub | O2+lto"),
    ("Bog", "bog | O2+lto"),
    ("Fla-10", "fla(ratio=0.1) | O2+lto"),
    ("Fission", "fission | O2+lto"),
    ("Fusion", "fusion | O2+lto"),
    ("FuFi.sep", "fufi_sep | O2+lto"),
    ("FuFi.ori", "fufi_ori | O2+lto"),
    ("FuFi.all", "fufi_all | O2+lto"),
];

fn main() {
    let mut base = workloads::spec2006().swap_remove(3); // 429.mcf stand-in
    Pipeline::parse("O2+lto")
        .unwrap()
        .run(&mut base, &mut PassCtx::new(0xC60))
        .expect("baseline build");
    let base_bin = lower_module(&base);
    println!("program: {} ({} functions)\n", base.name, base.functions.len());

    println!(
        "{:<10} {:>9} {:>11} {:>9} {:>7} {:>13}",
        "config", "BinDiff", "VulSeeker", "Asm2Vec", "SAFE", "DeepBinDiff"
    );

    for (name, spec) in CONFIGS {
        let pipeline = Pipeline::parse(spec).expect("spec parses");
        let mut module = base.clone();
        pipeline
            .run(&mut module, &mut PassCtx::new(0xC60))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let obf_bin = lower_module(&module).with_build_provenance(pipeline.fingerprint());
        println!(
            "{:<10} {:>9.3} {:>11.3} {:>9.3} {:>7.3} {:>13.3}",
            name,
            binary_similarity(&BinDiff::default(), &base_bin, &obf_bin),
            precision_at_1(&VulSeeker::default(), &base_bin, &obf_bin),
            precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin),
            precision_at_1(&Safe::default(), &base_bin, &obf_bin),
            deepbindiff_precision_at_1(&DeepBinDiff::default(), &base_bin, &obf_bin),
        );
    }
    println!("\nLower is better for the defender. Khaos rows sit below the");
    println!("O-LLVM rows for the learning-based tools; BinDiff stays high");
    println!("because un-stripped symbol names anchor its matches (paper 4.2).");
}
