//! Head-to-head of the five diffing techniques against every obfuscation
//! configuration on one SPEC-alike program — a single-program slice of
//! the paper's Figure 8.
//!
//! ```sh
//! cargo run --release --example diff_shootout
//! ```

use khaos::binary::lower_module;
use khaos::diff::{
    binary_similarity, deepbindiff_precision_at_1, precision_at_1, Asm2Vec, BinDiff, DeepBinDiff,
    Safe, VulSeeker,
};
use khaos::obfuscate::{KhaosContext, KhaosMode};
use khaos::ollvm::OllvmMode;
use khaos::opt::{optimize, OptOptions};
use khaos::workloads;

fn main() {
    let mut base = workloads::spec2006().swap_remove(3); // 429.mcf stand-in
    optimize(&mut base, &OptOptions::baseline());
    let base_bin = lower_module(&base);
    println!("program: {} ({} functions)\n", base.name, base.functions.len());

    println!(
        "{:<10} {:>9} {:>11} {:>9} {:>7} {:>13}",
        "config", "BinDiff", "VulSeeker", "Asm2Vec", "SAFE", "DeepBinDiff"
    );

    let mut rows: Vec<(String, khaos_ir::Module)> = Vec::new();
    for mode in [OllvmMode::Sub(1.0), OllvmMode::Bog(1.0), OllvmMode::Fla(0.1)] {
        let mut m = base.clone();
        mode.apply(&mut m, 0xC60);
        optimize(&mut m, &OptOptions::baseline());
        rows.push((mode.name(), m));
    }
    for mode in KhaosMode::ALL {
        let mut m = base.clone();
        let mut ctx = KhaosContext::new(0xC60);
        mode.apply(&mut m, &mut ctx).expect("khaos");
        optimize(&mut m, &OptOptions::baseline());
        rows.push((mode.name().to_string(), m));
    }

    for (name, module) in rows {
        let obf_bin = lower_module(&module);
        println!(
            "{:<10} {:>9.3} {:>11.3} {:>9.3} {:>7.3} {:>13.3}",
            name,
            binary_similarity(&BinDiff::default(), &base_bin, &obf_bin),
            precision_at_1(&VulSeeker::default(), &base_bin, &obf_bin),
            precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin),
            precision_at_1(&Safe::default(), &base_bin, &obf_bin),
            deepbindiff_precision_at_1(&DeepBinDiff::default(), &base_bin, &obf_bin),
        );
    }
    println!("\nLower is better for the defender. Khaos rows sit below the");
    println!("O-LLVM rows for the learning-based tools; BinDiff stays high");
    println!("because un-stripped symbol names anchor its matches (paper 4.2).");
}
