//! Build provenance end-to-end: distinct build configurations produce
//! distinct `Pipeline::fingerprint()` values, provenance-stamped
//! binaries produce distinct `EmbeddingCache` keys (even at identical
//! content), and the cache actually partitions on them — closing the
//! ROADMAP note that "tools with knobs must override
//! `config_fingerprint`" on the build side too.

use khaos::diff::{EmbeddingCache, Safe};
use khaos::pass::Pipeline;
use khaos::prelude::*;
use khaos_diff::Differ;

fn fp(spec: &str) -> u64 {
    Pipeline::parse(spec).unwrap().fingerprint()
}

#[test]
fn knob_changes_change_the_pipeline_fingerprint() {
    // The satellite's canonical pairs: same transform, different knobs.
    assert_ne!(fp("fla(ratio=0.1) | O2+lto"), fp("fla | O2+lto"));
    assert_ne!(fp("fusion | O2+lto"), fp("fusion(deep=false) | O2+lto"));
    // Different modes, different arities, different opt levels.
    assert_ne!(fp("fufi_sep | O2+lto"), fp("fufi_ori | O2+lto"));
    assert_ne!(fp("fusion(arity=3)"), fp("fusion(arity=4)"));
    assert_ne!(fp("O2"), fp("O2+lto"));
    // And the full figure-8 table is collision-free.
    let specs = [
        "",
        "sub | O2+lto",
        "bog | O2+lto",
        "fla(ratio=0.1) | O2+lto",
        "fla | O2+lto",
        "fission | O2+lto",
        "fusion | O2+lto",
        "fufi_sep | O2+lto",
        "fufi_ori | O2+lto",
        "fufi_all | O2+lto",
    ];
    let mut seen = std::collections::HashSet::new();
    for s in specs {
        assert!(seen.insert(fp(s)), "fingerprint collision at `{s}`");
    }
}

#[test]
fn provenance_partitions_cache_keys_even_at_identical_content() {
    // Two binaries with identical content but different build
    // provenance must not alias in the embedding cache.
    let m = khaos::workloads::coreutils_program("cat", 6);
    let plain = lower_module(&m);
    let a = plain.clone().with_build_provenance(fp("fusion | O2+lto"));
    let b = plain
        .clone()
        .with_build_provenance(fp("fusion(deep=false) | O2+lto"));
    assert_ne!(a.fingerprint(), b.fingerprint());

    let tool = Safe::default();
    let ka = EmbeddingCache::key(tool.name(), tool.config_fingerprint(), &a);
    let kb = EmbeddingCache::key(tool.name(), tool.config_fingerprint(), &b);
    assert_ne!(ka, kb, "distinct configs must get distinct cache keys");

    // And the cache treats them as distinct entries.
    let cache = EmbeddingCache::new(8);
    cache.get_or_embed(ka, || tool.embed(&a));
    cache.get_or_embed(kb, || tool.embed(&b));
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().entries, 2);
    cache.get_or_embed(ka, || panic!("same provenance must hit"));
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn unstamped_binaries_keep_their_legacy_fingerprint_behaviour() {
    // provenance 0 is the default: lowering alone never perturbs the
    // content fingerprint, so rebuilds of the same (program, pipeline)
    // pair share cache entries.
    let m = khaos::workloads::coreutils_program("ls", 1);
    assert_eq!(lower_module(&m).build_provenance, 0);
    assert_eq!(lower_module(&m).fingerprint(), lower_module(&m).fingerprint());
}
