//! End-to-end diffing-evaluation tests: the metrics must behave sanely on
//! real pipeline outputs, and the headline orderings of the paper must
//! hold on representative programs.

use khaos::binary::lower_module;
use khaos::diff::{
    binary_similarity, deepbindiff_precision_at_1, escape_at_k, precision_at_1, Asm2Vec, BinDiff,
    DeepBinDiff, Differ, Safe, VulSeeker,
};
use khaos::obfuscate::{KhaosContext, KhaosMode};
use khaos::ollvm::OllvmMode;
use khaos::opt::{optimize, OptOptions};
use khaos::workloads;
use khaos_ir::Module;

fn baseline(mut m: Module) -> Module {
    optimize(&mut m, &OptOptions::baseline());
    m
}

fn khaos_build(base: &Module, mode: KhaosMode) -> Module {
    let mut m = base.clone();
    let mut ctx = KhaosContext::new(7);
    mode.apply(&mut m, &mut ctx).expect("khaos");
    optimize(&mut m, &OptOptions::baseline());
    m
}

fn ollvm_build(base: &Module, mode: OllvmMode) -> Module {
    let mut m = base.clone();
    mode.apply(&mut m, 7);
    optimize(&mut m, &OptOptions::baseline());
    m
}

#[test]
fn all_tools_are_perfect_on_self_diff() {
    let base = baseline(workloads::coreutils_program("cp", 14));
    let bin = lower_module(&base);
    let tools: Vec<Box<dyn Differ>> = vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
    ];
    for t in &tools {
        let p = precision_at_1(t.as_ref(), &bin, &bin);
        assert!(p > 0.99, "{} self-diff P@1 = {p}", t.name());
    }
    assert!(binary_similarity(&BinDiff::default(), &bin, &bin) > 0.99);
    assert!(deepbindiff_precision_at_1(&DeepBinDiff::default(), &bin, &bin) > 0.99);
}

#[test]
fn khaos_beats_ollvm_against_learning_tools() {
    let base = baseline(workloads::spec2006().swap_remove(6)); // 445.gobmk
    let base_bin = lower_module(&base);

    let fufi_bin = lower_module(&khaos_build(&base, KhaosMode::FuFiAll));
    let sub_bin = lower_module(&ollvm_build(&base, OllvmMode::Sub(1.0)));
    let fla_bin = lower_module(&ollvm_build(&base, OllvmMode::Fla(0.1)));

    for tool in [
        Box::new(VulSeeker::default()) as Box<dyn Differ>,
        Box::new(Safe::default()),
    ] {
        let khaos_p = precision_at_1(tool.as_ref(), &base_bin, &fufi_bin);
        let sub_p = precision_at_1(tool.as_ref(), &base_bin, &sub_bin);
        let fla_p = precision_at_1(tool.as_ref(), &base_bin, &fla_bin);
        assert!(
            khaos_p < sub_p && khaos_p < fla_p,
            "{}: FuFi.all ({khaos_p:.3}) must beat Sub ({sub_p:.3}) and Fla-10 ({fla_p:.3})",
            tool.name()
        );
    }
}

#[test]
fn vulseeker_is_most_sensitive_to_call_graph_changes() {
    // The paper's Table 1: VulSeeker relies on the call graph, so the
    // inter-procedural modes hit it hardest among the function-level
    // tools.
    let base = baseline(workloads::spec2006().swap_remove(3));
    let base_bin = lower_module(&base);
    let obf_bin = lower_module(&khaos_build(&base, KhaosMode::FuFiAll));
    let vs = precision_at_1(&VulSeeker::default(), &base_bin, &obf_bin);
    let a2v = precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin);
    assert!(vs < a2v, "VulSeeker ({vs:.3}) should fall below Asm2Vec ({a2v:.3})");
}

#[test]
fn bindiff_profits_from_unstripped_names() {
    let base = baseline(workloads::spec2006().swap_remove(3));
    let base_bin = lower_module(&base);
    let obf_bin = lower_module(&khaos_build(&base, KhaosMode::Fission));

    let with_names = precision_at_1(&BinDiff::default(), &base_bin, &obf_bin);
    let mut stripped = obf_bin.clone();
    stripped.strip();
    let without = precision_at_1(&BinDiff::default(), &base_bin, &stripped);
    assert!(
        with_names >= without,
        "names must help BinDiff: {with_names:.3} vs stripped {without:.3}"
    );
}

#[test]
fn escape_ratio_increases_with_khaos_vs_sub() {
    let base = baseline(workloads::tiii().swap_remove(4)); // libcurl
    let base_bin = lower_module(&base);
    let fufi_bin = lower_module(&khaos_build(&base, KhaosMode::FuFiAll));
    let sub_bin = lower_module(&ollvm_build(&base, OllvmMode::Sub(1.0)));
    let tool = VulSeeker::default();
    let khaos_escape = escape_at_k(&tool, &base_bin, &fufi_bin, 10);
    let sub_escape = escape_at_k(&tool, &base_bin, &sub_bin, 10);
    assert!(
        khaos_escape >= sub_escape,
        "FuFi.all escape@10 ({khaos_escape:.2}) must be >= Sub ({sub_escape:.2})"
    );
    assert!(khaos_escape > 0.5, "most vulnerable functions escape the top-10");
}

#[test]
fn opcode_histograms_shift_most_under_fufi() {
    use khaos::binary::{histogram_distance, opcode_histogram};
    let base = baseline(workloads::spec2006().swap_remove(3));
    let h0 = opcode_histogram(&lower_module(&base));
    let d_fusion =
        histogram_distance(&h0, &opcode_histogram(&lower_module(&khaos_build(&base, KhaosMode::Fusion))));
    let d_fufi =
        histogram_distance(&h0, &opcode_histogram(&lower_module(&khaos_build(&base, KhaosMode::FuFiAll))));
    assert!(
        d_fufi > d_fusion,
        "FuFi.all distance ({d_fufi:.1}) must exceed plain Fusion ({d_fusion:.1})"
    );
}

#[test]
fn stripped_binaries_still_diffable_structurally() {
    let base = baseline(workloads::coreutils_program("sort", 2));
    let mut bin = lower_module(&base);
    bin.strip();
    assert!(bin.functions.iter().all(|f| f.name.is_none()));
    // Structural self-similarity survives stripping.
    let p = precision_at_1(&BinDiff { ignore_names: true }, &bin, &bin);
    assert!(p > 0.9, "structural matching should survive stripping: {p}");
}
