//! Equivalence suite for the batched similarity engine: on a real
//! obfuscated pair, the batched path (cached normalized embeddings +
//! flat dot-product matrix) must reproduce the legacy per-pair cosine
//! path to 1e-12 for every differ, and the metric wrappers must agree
//! with their from-scratch definitions.

use khaos::diff::{
    binary_similarity, escape_at_k, escape_profile, origins_match, precision_at_1,
    rank_of_true_match, Asm2Vec, BinDiff, DataFlowDiff, Differ, EmbeddingCache, Safe, VulSeeker,
};
use khaos::obfuscate::{KhaosContext, KhaosMode};
use khaos::opt::{optimize, OptOptions};
use khaos::prelude::*;
use khaos::workloads::{generate, ProgramProfile};
use khaos_binary::Binary;

fn obfuscated_pair(seed: u64, mode: KhaosMode) -> (Binary, Binary) {
    let profile = ProgramProfile {
        name: format!("engine_eq_{seed}"),
        functions: 14,
        constructs: 3,
        seed,
        ..ProgramProfile::default()
    };
    let mut base = generate(&profile);
    optimize(&mut base, &OptOptions::baseline());
    let mut obf = base.clone();
    let mut ctx = KhaosContext::new(seed ^ 0xC60);
    mode.apply(&mut obf, &mut ctx).expect("obfuscation");
    optimize(&mut obf, &OptOptions::baseline());
    (lower_module(&base), lower_module(&obf))
}

fn five_tools() -> Vec<Box<dyn Differ>> {
    vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
        Box::new(DataFlowDiff::default()),
    ]
}

#[test]
fn batched_matrix_matches_per_pair_path_for_all_tools() {
    for (seed, mode) in [(7, KhaosMode::FuFiAll), (21, KhaosMode::Fission), (33, KhaosMode::Fusion)]
    {
        let (base_bin, obf_bin) = obfuscated_pair(seed, mode);
        let cache = EmbeddingCache::new(16);
        for tool in five_tools() {
            let legacy = tool.similarity_matrix(&base_bin, &obf_bin);
            let batched = tool.batched_similarity(&base_bin, &obf_bin, &cache);
            assert_eq!(batched.rows(), legacy.len(), "{}", tool.name());
            for (i, row) in legacy.iter().enumerate() {
                assert_eq!(batched.row(i).len(), row.len(), "{}", tool.name());
                for (j, &want) in row.iter().enumerate() {
                    let got = batched.get(i, j);
                    assert!(
                        (got - want).abs() <= 1e-12,
                        "{} seed {seed} ({i},{j}): batched {got} vs legacy {want}",
                        tool.name()
                    );
                }
            }
        }
    }
}

#[test]
fn cached_and_uncached_batched_matrices_agree() {
    let (base_bin, obf_bin) = obfuscated_pair(11, KhaosMode::FuFiOri);
    let cache = EmbeddingCache::new(16);
    for tool in five_tools() {
        let cold = tool.batched_similarity(&base_bin, &obf_bin, &EmbeddingCache::new(2));
        let via_cache = cache.matrix_for(tool.as_ref(), &base_bin, &obf_bin);
        let again = cache.matrix_for(tool.as_ref(), &base_bin, &obf_bin);
        assert_eq!(*via_cache, *again, "{}: cache must be stable", tool.name());
        for i in 0..cold.rows() {
            for j in 0..cold.cols() {
                assert!(
                    (cold.get(i, j) - via_cache.get(i, j)).abs() <= 1e-12,
                    "{} ({i},{j})",
                    tool.name()
                );
            }
        }
    }
}

// The frozen seed semantics live in `khaos_diff::reference`, shared
// with `benches/bench_similarity.rs` so the equivalence suite and the
// speedup bench pin the same reference.
use khaos::diff::reference::reference_rank_of_true_match as seed_rank;

#[test]
fn metric_wrappers_match_seed_semantics() {
    let (mut base_bin, obf_bin) = obfuscated_pair(17, KhaosMode::FuFiAll);
    for f in base_bin.functions.iter_mut().step_by(3) {
        f.provenance.annotations.push("vulnerable".into());
    }
    for tool in five_tools() {
        // Ranks for every query function.
        for qi in 0..base_bin.functions.len() {
            assert_eq!(
                rank_of_true_match(tool.as_ref(), &base_bin, &obf_bin, qi),
                seed_rank(tool.as_ref(), &base_bin, &obf_bin, qi),
                "{} rank qi={qi}",
                tool.name()
            );
        }
        // escape@k from the single-matrix path vs the per-query seed
        // definition, across thresholds.
        let vulnerable: Vec<usize> = base_bin
            .functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
            .map(|(i, _)| i)
            .collect();
        assert!(!vulnerable.is_empty());
        let ks = [1usize, 5, 10, 50];
        let profile = escape_profile(tool.as_ref(), &base_bin, &obf_bin, &ks);
        for (k, got) in ks.iter().zip(&profile) {
            let escaped = vulnerable
                .iter()
                .filter(|&&qi| match seed_rank(tool.as_ref(), &base_bin, &obf_bin, qi) {
                    Some(r) => r > *k,
                    None => true,
                })
                .count();
            let want = escaped as f64 / vulnerable.len() as f64;
            assert!(
                (got - want).abs() <= 1e-12,
                "{} escape@{k}: {got} vs {want}",
                tool.name()
            );
            assert!(
                (escape_at_k(tool.as_ref(), &base_bin, &obf_bin, *k) - want).abs() <= 1e-12,
                "{} escape_at_k@{k}",
                tool.name()
            );
        }
        // Precision@1 against a hand argmax over the legacy matrix.
        let legacy = tool.similarity_matrix(&base_bin, &obf_bin);
        let mut hits = 0usize;
        for (i, row) in legacy.iter().enumerate() {
            let mut best = 0;
            let mut best_s = f64::MIN;
            for (j, s) in row.iter().enumerate() {
                if *s > best_s {
                    best_s = *s;
                    best = j;
                }
            }
            if origins_match(
                &base_bin.functions[i].provenance,
                &obf_bin.functions[best].provenance,
            ) {
                hits += 1;
            }
        }
        let want = hits as f64 / base_bin.functions.len() as f64;
        let got = precision_at_1(tool.as_ref(), &base_bin, &obf_bin);
        assert!((got - want).abs() <= 1e-12, "{} precision", tool.name());
    }
}

#[test]
fn binary_similarity_is_stable_across_repeat_calls() {
    let (base_bin, obf_bin) = obfuscated_pair(29, KhaosMode::Fission);
    for tool in five_tools() {
        let a = binary_similarity(tool.as_ref(), &base_bin, &obf_bin);
        let b = binary_similarity(tool.as_ref(), &base_bin, &obf_bin);
        assert_eq!(a, b, "{}", tool.name());
        assert!((0.0..=1.0 + 1e-9).contains(&a), "{}: {a}", tool.name());
    }
}

#[test]
fn embedding_cache_shares_across_metrics() {
    let (mut base_bin, obf_bin) = obfuscated_pair(41, KhaosMode::FuFiAll);
    base_bin.functions[0].provenance.annotations.push("vulnerable".into());
    let tool = Safe::default();
    let before = EmbeddingCache::global().stats();
    let _ = precision_at_1(&tool, &base_bin, &obf_bin);
    let _ = escape_at_k(&tool, &base_bin, &obf_bin, 10);
    let _ = binary_similarity(&tool, &base_bin, &obf_bin);
    let after = EmbeddingCache::global().stats();
    // Three metric calls over the same pair: at most one matrix build +
    // two embeddings can miss; the rest must be hits.
    assert!(after.misses - before.misses <= 3, "{before:?} -> {after:?}");
    assert!(after.hits > before.hits, "{before:?} -> {after:?}");
}
