//! Equivalence suite for the batched similarity engine: on a real
//! obfuscated pair, the batched path (cached normalized embeddings +
//! flat dot-product matrix) must reproduce the legacy per-pair cosine
//! path to 1e-12 for every differ, and the metric wrappers must agree
//! with their from-scratch definitions.

use khaos::diff::{
    binary_similarity, dot_blocked, escape_at_k, escape_profile, escape_profile_streaming,
    escape_profile_with, origins_match, precision_at_1, rank_of_true_match,
    rank_of_true_match_streaming, ranks_of_true_match_streaming, Asm2Vec, BinDiff, DataFlowDiff,
    Differ, EmbeddingCache, Safe, StreamingTopK, VulSeeker,
};
use khaos::obfuscate::{KhaosContext, KhaosMode};
use khaos::opt::{optimize, OptOptions};
use khaos::prelude::*;
use khaos::workloads::{generate, ProgramProfile};
use khaos_binary::Binary;

fn obfuscated_pair(seed: u64, mode: KhaosMode) -> (Binary, Binary) {
    let profile = ProgramProfile {
        name: format!("engine_eq_{seed}"),
        functions: 14,
        constructs: 3,
        seed,
        ..ProgramProfile::default()
    };
    let mut base = generate(&profile);
    optimize(&mut base, &OptOptions::baseline());
    let mut obf = base.clone();
    let mut ctx = KhaosContext::new(seed ^ 0xC60);
    mode.apply(&mut obf, &mut ctx).expect("obfuscation");
    optimize(&mut obf, &OptOptions::baseline());
    (lower_module(&base), lower_module(&obf))
}

fn five_tools() -> Vec<Box<dyn Differ>> {
    vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
        Box::new(DataFlowDiff::default()),
    ]
}

#[test]
fn batched_matrix_matches_per_pair_path_for_all_tools() {
    for (seed, mode) in [(7, KhaosMode::FuFiAll), (21, KhaosMode::Fission), (33, KhaosMode::Fusion)]
    {
        let (base_bin, obf_bin) = obfuscated_pair(seed, mode);
        let cache = EmbeddingCache::new(16);
        for tool in five_tools() {
            let legacy = tool.similarity_matrix(&base_bin, &obf_bin);
            let batched = tool.batched_similarity(&base_bin, &obf_bin, &cache);
            assert_eq!(batched.rows(), legacy.len(), "{}", tool.name());
            for (i, row) in legacy.iter().enumerate() {
                assert_eq!(batched.row(i).len(), row.len(), "{}", tool.name());
                for (j, &want) in row.iter().enumerate() {
                    let got = batched.get(i, j);
                    assert!(
                        (got - want).abs() <= 1e-12,
                        "{} seed {seed} ({i},{j}): batched {got} vs legacy {want}",
                        tool.name()
                    );
                }
            }
        }
    }
}

#[test]
fn cached_and_uncached_batched_matrices_agree() {
    let (base_bin, obf_bin) = obfuscated_pair(11, KhaosMode::FuFiOri);
    let cache = EmbeddingCache::new(16);
    for tool in five_tools() {
        let cold = tool.batched_similarity(&base_bin, &obf_bin, &EmbeddingCache::new(2));
        let via_cache = cache.matrix_for(tool.as_ref(), &base_bin, &obf_bin);
        let again = cache.matrix_for(tool.as_ref(), &base_bin, &obf_bin);
        assert_eq!(*via_cache, *again, "{}: cache must be stable", tool.name());
        for i in 0..cold.rows() {
            for j in 0..cold.cols() {
                assert!(
                    (cold.get(i, j) - via_cache.get(i, j)).abs() <= 1e-12,
                    "{} ({i},{j})",
                    tool.name()
                );
            }
        }
    }
}

// The frozen seed semantics live in `khaos_diff::reference`, shared
// with `benches/bench_similarity.rs` so the equivalence suite and the
// speedup bench pin the same reference.
use khaos::diff::reference::reference_rank_of_true_match as seed_rank;

#[test]
fn metric_wrappers_match_seed_semantics() {
    let (mut base_bin, obf_bin) = obfuscated_pair(17, KhaosMode::FuFiAll);
    for f in base_bin.functions.iter_mut().step_by(3) {
        f.provenance.annotations.push("vulnerable".into());
    }
    for tool in five_tools() {
        // Ranks for every query function.
        for qi in 0..base_bin.functions.len() {
            assert_eq!(
                rank_of_true_match(tool.as_ref(), &base_bin, &obf_bin, qi),
                seed_rank(tool.as_ref(), &base_bin, &obf_bin, qi),
                "{} rank qi={qi}",
                tool.name()
            );
        }
        // escape@k from the single-matrix path vs the per-query seed
        // definition, across thresholds.
        let vulnerable: Vec<usize> = base_bin
            .functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
            .map(|(i, _)| i)
            .collect();
        assert!(!vulnerable.is_empty());
        let ks = [1usize, 5, 10, 50];
        let profile = escape_profile(tool.as_ref(), &base_bin, &obf_bin, &ks);
        for (k, got) in ks.iter().zip(&profile) {
            let escaped = vulnerable
                .iter()
                .filter(|&&qi| match seed_rank(tool.as_ref(), &base_bin, &obf_bin, qi) {
                    Some(r) => r > *k,
                    None => true,
                })
                .count();
            let want = escaped as f64 / vulnerable.len() as f64;
            assert!(
                (got - want).abs() <= 1e-12,
                "{} escape@{k}: {got} vs {want}",
                tool.name()
            );
            assert!(
                (escape_at_k(tool.as_ref(), &base_bin, &obf_bin, *k) - want).abs() <= 1e-12,
                "{} escape_at_k@{k}",
                tool.name()
            );
        }
        // Precision@1 against a hand argmax over the legacy matrix.
        let legacy = tool.similarity_matrix(&base_bin, &obf_bin);
        let mut hits = 0usize;
        for (i, row) in legacy.iter().enumerate() {
            let mut best = 0;
            let mut best_s = f64::MIN;
            for (j, s) in row.iter().enumerate() {
                if *s > best_s {
                    best_s = *s;
                    best = j;
                }
            }
            if origins_match(
                &base_bin.functions[i].provenance,
                &obf_bin.functions[best].provenance,
            ) {
                hits += 1;
            }
        }
        let want = hits as f64 / base_bin.functions.len() as f64;
        let got = precision_at_1(tool.as_ref(), &base_bin, &obf_bin);
        assert!((got - want).abs() <= 1e-12, "{} precision", tool.name());
    }
}

#[test]
fn binary_similarity_is_stable_across_repeat_calls() {
    let (base_bin, obf_bin) = obfuscated_pair(29, KhaosMode::Fission);
    for tool in five_tools() {
        let a = binary_similarity(tool.as_ref(), &base_bin, &obf_bin);
        let b = binary_similarity(tool.as_ref(), &base_bin, &obf_bin);
        assert_eq!(a, b, "{}", tool.name());
        assert!((0.0..=1.0 + 1e-9).contains(&a), "{}: {a}", tool.name());
    }
}

// ---------------------------------------------------------------------
// Streaming path: blocked dot products, StreamingTopK and the rank-only
// metrics must agree with the frozen reference semantics.
// ---------------------------------------------------------------------

use khaos::diff::engine::{dot_scalar, stream_top_k};
use khaos::diff::reference::reference_escape_at_k as seed_escape;
use proptest::prelude::*;

/// Deterministic pseudo-random f64 in [-1, 1) from a seed-indexed
/// xorshift stream (the proptest shim samples integers; floats are
/// derived so cases stay reproducible).
fn rand_vec(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // 53 uniform bits over [0, 1), mapped to [-1, 1).
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The 8-wide blocked kernel agrees with the scalar reference dot
    /// product to 1e-12 on random vectors of every tail shape.
    #[test]
    fn blocked_dot_matches_scalar(seed in any::<u64>(), dim in 0usize..96) {
        let a = rand_vec(seed ^ 0xA, dim);
        let b = rand_vec(seed ^ 0xB, dim);
        prop_assert!((dot_blocked(&a, &b) - dot_scalar(&a, &b)).abs() <= 1e-12);
    }

    /// `StreamingTopK` over a random row agrees exactly with the frozen
    /// full-sort ranking (descending score, ties by lower index) for
    /// every k — including duplicate scores, which the quantization
    /// below makes frequent.
    #[test]
    fn streaming_top_k_matches_full_sort(seed in any::<u64>(), t in 0usize..80, k in 0usize..90) {
        // Quantize to force score ties; skip the degenerate k=0-and-
        // empty-row combination only when both are zero (nothing to
        // check either way).
        prop_assume!(t > 0 || k > 0);
        let row: Vec<f64> = rand_vec(seed, t)
            .into_iter()
            .map(|x| (x * 8.0).round() / 8.0)
            .collect();
        let mut sel = StreamingTopK::new(k);
        for (j, &s) in row.iter().enumerate() {
            sel.offer(j, s);
        }
        let got: Vec<usize> = sel.into_ranked().into_iter().map(|(j, _)| j).collect();
        let mut want: Vec<usize> = (0..t).collect();
        want.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap().then(a.cmp(&b)));
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    /// Streaming rank/top-k over random embedding sets agree with the
    /// materialized `SimilarityMatrix` built from the same rows.
    #[test]
    fn streaming_agrees_with_matrix_on_random_embeddings(
        seed in any::<u64>(),
        q in 1usize..12,
        t in 1usize..24,
        dim in 1usize..40,
    ) {
        use khaos::diff::engine::{EmbedScorer, FunctionEmbeddings, RowScore};
        use khaos::diff::SimilarityMatrix;
        use std::sync::Arc;
        let qe = Arc::new(FunctionEmbeddings::from_rows(
            (0..q).map(|i| rand_vec(seed ^ (i as u64) << 8, dim)).collect(),
        ));
        let te = Arc::new(FunctionEmbeddings::from_rows(
            (0..t).map(|j| rand_vec(seed ^ 0x5eed ^ (j as u64) << 20, dim)).collect(),
        ));
        let matrix = SimilarityMatrix::from_embeddings(&qe, &te);
        let scorer = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te), true);
        for qi in 0..q {
            for j in 0..t {
                prop_assert_eq!(scorer.score(qi, j), matrix.get(qi, j));
            }
            let k = 1 + (seed as usize % t);
            let got = stream_top_k(&scorer, qi, k);
            prop_assert_eq!(got, matrix.top_k(qi, k));
        }
    }
}

#[test]
fn streaming_metrics_match_seed_semantics_for_all_tools() {
    let (mut base_bin, obf_bin) = obfuscated_pair(53, KhaosMode::FuFiAll);
    for f in base_bin.functions.iter_mut().step_by(4) {
        f.provenance.annotations.push("vulnerable".into());
    }
    let ks = [1usize, 3, 10, 50, 10_000];
    for tool in five_tools() {
        let cache = EmbeddingCache::new(16);
        // Forced-streaming escape against the frozen per-query seed path.
        let profile = escape_profile_streaming(tool.as_ref(), &base_bin, &obf_bin, &ks, &cache);
        for (k, got) in ks.iter().zip(&profile) {
            let want = seed_escape(tool.as_ref(), &base_bin, &obf_bin, *k);
            assert!(
                (got - want).abs() <= 1e-12,
                "{} escape@{k}: {got} vs {want}",
                tool.name()
            );
        }
        // Streaming ranks against the seed full-sort ranks.
        for qi in 0..base_bin.functions.len() {
            assert_eq!(
                rank_of_true_match_streaming(tool.as_ref(), &base_bin, &obf_bin, qi, &cache),
                seed_rank(tool.as_ref(), &base_bin, &obf_bin, qi),
                "{} rank qi={qi}",
                tool.name()
            );
        }
        // Streaming top-k against the matrix's partial selection,
        // including the k > T overhang.
        let scorer = tool.row_scorer(&base_bin, &obf_bin, &cache);
        let matrix = tool.batched_similarity(&base_bin, &obf_bin, &cache);
        for qi in (0..base_bin.functions.len()).step_by(5) {
            for k in [1, 4, obf_bin.functions.len() + 7] {
                assert_eq!(
                    stream_top_k(scorer.as_ref(), qi, k),
                    matrix.top_k(qi, k),
                    "{} top_k qi={qi} k={k}",
                    tool.name()
                );
            }
        }
    }
}

#[test]
fn rank_only_queries_never_build_a_matrix() {
    let (mut base_bin, obf_bin) = obfuscated_pair(59, KhaosMode::Fission);
    base_bin.functions[0]
        .provenance
        .annotations
        .push("vulnerable".into());
    for tool in five_tools() {
        let cache = EmbeddingCache::new(16);
        let _ = escape_profile_with(tool.as_ref(), &base_bin, &obf_bin, &[1, 10, 50], &cache);
        let _ = escape_profile_streaming(tool.as_ref(), &base_bin, &obf_bin, &[1, 10], &cache);
        let _ = rank_of_true_match_streaming(tool.as_ref(), &base_bin, &obf_bin, 0, &cache);
        assert_eq!(
            cache.stats().matrix_entries,
            0,
            "{}: rank-only metrics must not materialize a Q×T matrix",
            tool.name()
        );
        // Once some other metric pays for the matrix, the escape
        // wrapper reuses it (and still agrees with itself).
        let via_stream = escape_profile_with(tool.as_ref(), &base_bin, &obf_bin, &[1, 10], &cache);
        let _ = khaos::diff::precision_at_1_with(tool.as_ref(), &base_bin, &obf_bin, &cache);
        assert_eq!(cache.stats().matrix_entries, 1, "{}", tool.name());
        let via_matrix = escape_profile_with(tool.as_ref(), &base_bin, &obf_bin, &[1, 10], &cache);
        assert_eq!(via_stream, via_matrix, "{}", tool.name());
    }
}

#[test]
fn escape_profile_edge_cases() {
    let tool = Asm2Vec::default();

    // k larger than the candidate pool: a query with any true match has
    // rank <= T <= k, so only match-less queries escape.
    let (mut base_bin, obf_bin) = obfuscated_pair(61, KhaosMode::Fusion);
    for f in base_bin.functions.iter_mut() {
        f.provenance.annotations.push("vulnerable".into());
    }
    let t = obf_bin.functions.len();
    let cache = EmbeddingCache::new(16);
    let matchless = base_bin
        .functions
        .iter()
        .filter(|f| {
            !obf_bin
                .functions
                .iter()
                .any(|c| origins_match(&f.provenance, &c.provenance))
        })
        .count();
    let want = matchless as f64 / base_bin.functions.len() as f64;
    for profile in [
        escape_profile_with(&tool, &base_bin, &obf_bin, &[t, t + 1, 10 * t], &cache),
        escape_profile_streaming(&tool, &base_bin, &obf_bin, &[t, t + 1, 10 * t], &cache),
    ] {
        for got in profile {
            assert!((got - want).abs() <= 1e-12, "k >= T escape: {got} vs {want}");
        }
    }

    // Single-function binaries: rank is 1 when provenances intersect
    // (escape 0 at every k >= 1), and None when they don't (escape 1).
    let mut solo = small_solo_binary("solo");
    solo.functions[0]
        .provenance
        .annotations
        .push("vulnerable".into());
    assert_eq!(
        escape_profile_streaming(&tool, &solo, &solo, &[1, 2], &EmbeddingCache::new(4)),
        vec![0.0, 0.0]
    );
    let mut foreign = solo.clone();
    foreign.functions[0].provenance.origins = vec!["elsewhere".into()];
    assert_eq!(
        escape_profile_streaming(&tool, &solo, &foreign, &[1, 2], &EmbeddingCache::new(4)),
        vec![1.0, 1.0]
    );

    // Tied similarity scores: the pinned tie-break is "lower candidate
    // index ranks first". With two identical candidates ahead of the
    // true match, a clone of the query at index 0 and the true match at
    // index 2 give deterministic rank 3 on both paths.
    let solo_clean = {
        let mut b = solo.clone();
        b.functions[0].provenance.annotations.clear();
        b
    };
    let mut tied = solo_clean.clone();
    let mut decoy = solo_clean.functions[0].clone();
    decoy.provenance.origins = vec!["decoy".into()];
    tied.functions = vec![
        decoy.clone(),
        decoy,
        {
            let mut t = solo_clean.functions[0].clone();
            t.provenance.origins = solo.functions[0].provenance.origins.clone();
            t
        },
    ];
    let cache = EmbeddingCache::new(4);
    assert_eq!(
        rank_of_true_match_streaming(&tool, &solo, &tied, 0, &cache),
        Some(3),
        "two identical decoys at lower indices rank ahead deterministically"
    );
    assert_eq!(
        escape_profile_streaming(&tool, &solo, &tied, &[1, 2, 3], &cache),
        vec![1.0, 1.0, 0.0]
    );
    assert_eq!(
        escape_profile_with(&tool, &solo, &tied, &[1, 2, 3], &cache),
        vec![1.0, 1.0, 0.0]
    );
}

/// A one-function binary for the degenerate-shape cases.
fn small_solo_binary(name: &str) -> Binary {
    let profile = ProgramProfile {
        name: name.into(),
        functions: 1,
        constructs: 1,
        seed: 5,
        ..ProgramProfile::default()
    };
    let mut bin = lower_module(&generate(&profile));
    bin.functions.truncate(1);
    bin
}

// ---------------------------------------------------------------------
// Parallel streaming rank path: at any KHAOS_THREADS the row-parallel
// drivers must produce bit-identical ranked output — indices AND score
// bits — to the sequential scan, for real tool scorers and for
// synthetic rows engineered with ties and NaNs.
// ---------------------------------------------------------------------

use khaos::diff::{par_stream_ranks, par_stream_top_k_rows, stream_top_k_blocks};

/// Runs `f` under each `KHAOS_THREADS` value and returns the results,
/// restoring the variable's prior value afterwards (so an outer
/// `KHAOS_THREADS=1 cargo test` run — CI's sequential leg — keeps its
/// setting for every other test). A process-wide lock serializes the
/// two tests that mutate the variable: without it their save/restore
/// pairs can interleave and "restore" a forced value as the prior one.
/// Inside the lock the env var only changes scheduling, never values —
/// every influenced path is pinned bit-deterministic.
fn at_thread_counts<T>(counts: &[&str], f: impl Fn() -> T) -> Vec<T> {
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prior = std::env::var("KHAOS_THREADS").ok();
    let out = counts
        .iter()
        .map(|t| {
            std::env::set_var("KHAOS_THREADS", t);
            f()
        })
        .collect();
    match prior {
        Some(v) => std::env::set_var("KHAOS_THREADS", v),
        None => std::env::remove_var("KHAOS_THREADS"),
    }
    out
}

fn assert_ranked_bits_equal(a: &[Vec<(usize, f64)>], b: &[Vec<(usize, f64)>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row count");
    for (row, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{what}: row {row} length");
        for ((ja, sa), (jb, sb)) in ra.iter().zip(rb) {
            assert_eq!(ja, jb, "{what}: row {row} index order");
            assert_eq!(
                sa.to_bits(),
                sb.to_bits(),
                "{what}: row {row} score bits"
            );
        }
    }
}

/// Satellite: parallel-vs-sequential streaming rank equivalence for all
/// five differs — ranked indices, score bits, per-query ranks and
/// escape profiles identical under KHAOS_THREADS ∈ {1, 2, 7}.
#[test]
fn parallel_streaming_matches_sequential_for_all_five_differs() {
    let (mut base_bin, obf_bin) = obfuscated_pair(67, KhaosMode::FuFiAll);
    for f in base_bin.functions.iter_mut().step_by(3) {
        f.provenance.annotations.push("vulnerable".into());
    }
    let queries: Vec<usize> = (0..base_bin.functions.len()).collect();
    let ks = [1usize, 10, 50];
    for tool in five_tools() {
        let cache = EmbeddingCache::new(16);
        let runs = at_thread_counts(&["1", "2", "7"], || {
            let scorer = tool.row_scorer(&base_bin, &obf_bin, &cache);
            (
                par_stream_top_k_rows(scorer.as_ref(), &queries, 7),
                ranks_of_true_match_streaming(tool.as_ref(), &base_bin, &obf_bin, &queries, &cache),
                escape_profile_streaming(tool.as_ref(), &base_bin, &obf_bin, &ks, &cache),
            )
        });
        let (ref_topk, ref_ranks, ref_escape) = &runs[0];
        // The KHAOS_THREADS=1 leg equals the per-query sequential calls.
        for (qi, want) in ref_ranks.iter().enumerate() {
            assert_eq!(
                rank_of_true_match_streaming(tool.as_ref(), &base_bin, &obf_bin, qi, &cache),
                *want,
                "{} qi={qi}: batch ranks must equal per-query calls",
                tool.name()
            );
        }
        for (threads, (topk, ranks, escape)) in ["1", "2", "7"].iter().zip(&runs).skip(1) {
            assert_ranked_bits_equal(
                ref_topk,
                topk,
                &format!("{} KHAOS_THREADS={threads} top-k", tool.name()),
            );
            assert_eq!(ranks, ref_ranks, "{} KHAOS_THREADS={threads}", tool.name());
            assert_eq!(
                escape.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ref_escape.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{} KHAOS_THREADS={threads} escape bits",
                tool.name()
            );
        }
    }
}

/// A [`khaos::diff::RowScore`] over an explicit flat matrix — the
/// synthetic-input harness for the determinism proptests.
struct FlatScorer {
    q: usize,
    t: usize,
    data: Vec<f64>,
}

impl khaos::diff::RowScore for FlatScorer {
    fn rows(&self) -> usize {
        self.q
    }
    fn cols(&self) -> usize {
        self.t
    }
    fn score(&self, qi: usize, j: usize) -> f64 {
        self.data[qi * self.t + j]
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Parallel row/block drivers are bit-identical to the sequential
    /// scan under KHAOS_THREADS ∈ {1, 2, 7} on synthetic score grids
    /// with engineered ties (quantization), signed zeros and NaNs.
    #[test]
    fn parallel_streaming_is_deterministic_on_ties_and_nans(
        seed in any::<u64>(),
        q in 1usize..6,
        t in 1usize..48,
        k in 0usize..12,
    ) {
        let mut data: Vec<f64> = rand_vec(seed, q * t)
            .into_iter()
            .map(|x| (x * 4.0).round() / 4.0)
            .collect();
        // Inject hostile scores deterministically: signed zeros and
        // both NaN signs, scattered by the seed.
        for (i, x) in data.iter_mut().enumerate() {
            match (seed as usize + i) % 11 {
                0 => *x = 0.0,
                1 => *x = -0.0,
                2 => *x = f64::NAN,
                3 => *x = -f64::NAN,
                _ => {}
            }
        }
        let scorer = FlatScorer { q, t, data };
        let queries: Vec<usize> = (0..q).collect();
        let is_match = |qi: usize, j: usize| (j + qi) % 3 == 0;
        let runs = at_thread_counts(&["1", "2", "7"], || {
            let topk = par_stream_top_k_rows(&scorer, &queries, k);
            let blocked: Vec<_> = (0..q)
                .map(|qi| stream_top_k_blocks(&scorer, qi, k, 5))
                .collect();
            let ranks = par_stream_ranks(&scorer, &queries, is_match);
            (topk, blocked, ranks)
        });
        let (ref_topk, ref_blocked, ref_ranks) = &runs[0];
        // The sequential reference: StreamingTopK offered row-by-row.
        // (Compared by bits — `==` would reject NaN ties that are in
        // fact identical.)
        let seq: Vec<Vec<(usize, f64)>> = (0..q)
            .map(|qi| {
                let mut sel = StreamingTopK::new(k);
                for j in 0..t {
                    sel.offer(j, scorer.data[qi * t + j]);
                }
                sel.into_ranked()
            })
            .collect();
        assert_ranked_bits_equal(ref_topk, &seq, "proptest vs sequential");
        for (topk, blocked, ranks) in &runs[1..] {
            assert_ranked_bits_equal(ref_topk, topk, "proptest top-k");
            assert_ranked_bits_equal(ref_blocked, blocked, "proptest blocked top-k");
            prop_assert_eq!(ranks, ref_ranks);
        }
    }
}

// ---------------------------------------------------------------------
// Runtime-dispatched kernels: forcing each available kernel (scalar,
// AVX2, AVX-512 where the host has them) must leave every artifact —
// similarity matrices and ranked streaming output — bit-identical.
// The dispatch decision is a pure speed knob, never an accuracy knob.
// ---------------------------------------------------------------------

use khaos::diff::engine::{EmbedScorer, FunctionEmbeddings};
use khaos::diff::kernels::{self, KernelKind};
use khaos::diff::{stream_top_k_quantized, QuantizedEmbeddings, QUANT_SHORTLIST_FACTOR};
use std::sync::Arc;

/// Runs `f` once under each available kernel and returns the results,
/// restoring auto dispatch afterwards. A process-wide lock serializes
/// kernel-forcing tests (the forced kernel is process-global state —
/// harmless to concurrent tests only *because* every kernel is pinned
/// bit-identical, which is exactly what these tests prove).
fn at_each_kernel<T>(f: impl Fn(KernelKind) -> T) -> Vec<(KernelKind, T)> {
    static KERNEL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let out = kernels::available()
        .into_iter()
        .map(|k| {
            kernels::force_kernel(Some(k));
            (k, f(k))
        })
        .collect();
    kernels::force_kernel(None);
    out
}

/// Satellite: every forced kernel reproduces the scalar kernel's
/// matrices and ranked top-k bit-for-bit for all five differs on a
/// real obfuscated pair. Fresh caches per kernel, so nothing is served
/// from a matrix computed under a different dispatch choice.
#[test]
fn forced_kernels_are_bit_identical_for_all_five_differs() {
    let (base_bin, obf_bin) = obfuscated_pair(71, KhaosMode::FuFiAll);
    for tool in five_tools() {
        let queries: Vec<usize> = (0..base_bin.functions.len()).collect();
        let runs = at_each_kernel(|_| {
            let cache = EmbeddingCache::new(16);
            let matrix = tool.batched_similarity(&base_bin, &obf_bin, &cache);
            let bits: Vec<u64> = matrix.as_flat().iter().map(|x| x.to_bits()).collect();
            let scorer = tool.row_scorer(&base_bin, &obf_bin, &cache);
            let ranked = par_stream_top_k_rows(scorer.as_ref(), &queries, 10);
            (bits, ranked)
        });
        let (ref_kind, (ref_bits, ref_ranked)) = &runs[0];
        assert_eq!(*ref_kind, KernelKind::Scalar, "scalar is always available");
        for (kind, (bits, ranked)) in &runs[1..] {
            assert_eq!(
                bits,
                ref_bits,
                "{} under {}: matrix must be bit-identical to scalar",
                tool.name(),
                kind.name()
            );
            assert_ranked_bits_equal(
                ref_ranked,
                ranked,
                &format!("{} kernel {}", tool.name(), kind.name()),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Quantized shortlist: int8 candidate scan + exact re-rank must hand
// back the exact path's ranked output bit-for-bit, with recall 1.0 at
// every fig10 threshold, for all five differs.
// ---------------------------------------------------------------------

/// Satellite: on the fig10-style workload, `stream_top_k_quantized`
/// with the default shortlist factor reproduces the exact
/// `stream_top_k` output — indices AND score bits — at k ∈ {1, 10, 50}
/// for every query of every differ, which pins recall@{1,10,50} = 1.0
/// after re-ranking.
#[test]
fn quantized_shortlist_reranks_to_exact_top_k_for_all_five_differs() {
    let (base_bin, obf_bin) = obfuscated_pair(79, KhaosMode::FuFiAll);
    for tool in five_tools() {
        let qe = Arc::new(FunctionEmbeddings::from_rows(tool.embed(&base_bin)));
        let te = Arc::new(FunctionEmbeddings::from_rows(tool.embed(&obf_bin)));
        let qq = QuantizedEmbeddings::from_embeddings(&qe);
        let tq = QuantizedEmbeddings::from_embeddings(&te);
        // The quantized rows cost dim + 16 bytes against 8·dim exact —
        // a real saving for any row wider than two f64s.
        assert_eq!(qq.bytes_per_function(), qe.dim() + 16, "{}", tool.name());
        if qe.dim() > 2 {
            assert!(
                qq.bytes_per_function() < qe.dim() * 8,
                "{}: quantized rows must be smaller than f64 rows",
                tool.name()
            );
        }
        let scorer = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te), true);
        for qi in 0..qe.len() {
            for k in [1usize, 10, 50] {
                let exact = stream_top_k(&scorer, qi, k);
                let approx = stream_top_k_quantized(
                    &qq,
                    &tq,
                    &scorer,
                    qi,
                    k,
                    QUANT_SHORTLIST_FACTOR,
                    true,
                );
                // recall@k over the exact top-k index set…
                let exact_set: std::collections::HashSet<usize> =
                    exact.iter().map(|&(j, _)| j).collect();
                let hit = approx.iter().filter(|(j, _)| exact_set.contains(j)).count();
                assert_eq!(
                    hit,
                    exact_set.len(),
                    "{} qi={qi} k={k}: recall after re-rank must be 1.0",
                    tool.name()
                );
                // …and the stronger pin: bit-identical ranked output.
                assert_eq!(approx.len(), exact.len(), "{} qi={qi} k={k}", tool.name());
                for ((ja, sa), (jb, sb)) in approx.iter().zip(&exact) {
                    assert_eq!(ja, jb, "{} qi={qi} k={k}: index order", tool.name());
                    assert_eq!(
                        sa.to_bits(),
                        sb.to_bits(),
                        "{} qi={qi} k={k}: score bits",
                        tool.name()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Satellite: int8 quantization reconstructs every coordinate to
    /// within half a quantization step of its row scale.
    #[test]
    fn quantization_round_trip_error_is_within_half_scale(
        seed in any::<u64>(),
        n in 1usize..10,
        dim in 0usize..80,
    ) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| rand_vec(seed ^ (i as u64).wrapping_mul(0x9E37), dim))
            .collect();
        let e = FunctionEmbeddings::from_rows(rows);
        let q = QuantizedEmbeddings::from_embeddings(&e);
        for i in 0..e.len() {
            let back = q.decode_row(i);
            let bound = q.scales()[i] * 0.5 * (1.0 + 1e-9) + 1e-15;
            for (x, y) in e.row(i).iter().zip(&back) {
                prop_assert!(
                    (x - y).abs() <= bound,
                    "row {}: |{} - {}| > scale/2 = {}", i, x, y, bound
                );
            }
        }
    }

    /// Exact re-rank over a full-coverage shortlist is bit-identical to
    /// `stream_top_k` on random embeddings — ties, k > T and
    /// single-candidate shapes included.
    #[test]
    fn quantized_full_shortlist_is_bit_identical_to_exact(
        seed in any::<u64>(),
        q in 1usize..6,
        t in 1usize..24,
        dim in 1usize..32,
        k in 0usize..30,
    ) {
        let qe = Arc::new(FunctionEmbeddings::from_rows(
            (0..q).map(|i| rand_vec(seed ^ (i as u64) << 9, dim)).collect(),
        ));
        let te = Arc::new(FunctionEmbeddings::from_rows(
            (0..t).map(|j| rand_vec(seed ^ 0xF00 ^ (j as u64) << 21, dim)).collect(),
        ));
        let qq = QuantizedEmbeddings::from_embeddings(&qe);
        let tq = QuantizedEmbeddings::from_embeddings(&te);
        let scorer = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te), true);
        // factor ≥ cols/k ⇒ the shortlist is the whole candidate set,
        // so the re-rank must equal the exact path exactly.
        for qi in 0..q {
            let exact = stream_top_k(&scorer, qi, k);
            let approx = stream_top_k_quantized(&qq, &tq, &scorer, qi, k, t.max(1), true);
            prop_assert_eq!(approx.len(), exact.len());
            for ((ja, sa), (jb, sb)) in approx.iter().zip(&exact) {
                prop_assert_eq!(ja, jb);
                prop_assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }
}

#[test]
fn embedding_cache_shares_across_metrics() {
    let (mut base_bin, obf_bin) = obfuscated_pair(41, KhaosMode::FuFiAll);
    base_bin.functions[0].provenance.annotations.push("vulnerable".into());
    let tool = Safe::default();
    let before = EmbeddingCache::global().stats();
    let _ = precision_at_1(&tool, &base_bin, &obf_bin);
    let _ = escape_at_k(&tool, &base_bin, &obf_bin, 10);
    let _ = binary_similarity(&tool, &base_bin, &obf_bin);
    let after = EmbeddingCache::global().stats();
    // Three metric calls over the same pair: at most one matrix build +
    // two embeddings can miss; the rest must be hits.
    assert!(after.misses - before.misses <= 3, "{before:?} -> {after:?}");
    assert!(after.hits > before.hits, "{before:?} -> {after:?}");
}
