//! End-to-end pin for the persistent artifact store: an escape-profile
//! workload run cold (computing and writing through to a store), then
//! again from a *fresh cache over the same store* — standing in for a
//! fresh process, whose only shared state is the store directory —
//! must produce identical metrics with `CacheStats` showing disk hits
//! and **zero recomputed embeddings**.

use khaos::diff::{
    escape_profile_with, extended_differs, precision_at_1_with, EmbeddingCache,
};
use khaos::prelude::*;
use khaos_binary::Binary;
use khaos_store::Store;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "khaos-e2e-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The paper's §4.3 scenario: the T-III libcurl stand-in (which carries
/// `vulnerable` annotations) at `O2+lto`, against its Khaos-obfuscated
/// build with provenance stamped.
fn escape_workload() -> (Binary, Binary) {
    let mut reference = khaos::workloads::tiii()
        .into_iter()
        .last()
        .expect("libcurl stand-in");
    Pipeline::parse("O2+lto")
        .unwrap()
        .run(&mut reference, &mut PassCtx::new(0xC60))
        .expect("baseline build");
    let pipeline = Pipeline::parse("fufi_all | O2+lto").expect("spec");
    let mut shipped = reference.clone();
    pipeline
        .run(&mut shipped, &mut PassCtx::new(0xC60))
        .expect("obfuscation");
    (
        lower_module(&reference),
        lower_module(&shipped).with_build_provenance(pipeline.fingerprint()),
    )
}

#[test]
fn escape_profile_warm_starts_across_processes_bit_identically() {
    let dir = scratch("escape");
    let store = Arc::new(Store::open(&dir).expect("store opens"));
    let (base_bin, obf_bin) = escape_workload();
    let ks = [1usize, 10, 50];
    let tools = extended_differs();

    // Reference leg: no store anywhere — the pure computation.
    let plain = EmbeddingCache::new(64);
    let reference: Vec<Vec<f64>> = tools
        .iter()
        .map(|t| escape_profile_with(t.as_ref(), &base_bin, &obf_bin, &ks, &plain))
        .collect();

    // Cold leg: fresh store attached; everything computes and writes
    // through.
    let cold_cache = EmbeddingCache::new(64);
    cold_cache.attach_store(Arc::clone(&store));
    let cold: Vec<Vec<f64>> = tools
        .iter()
        .map(|t| escape_profile_with(t.as_ref(), &base_bin, &obf_bin, &ks, &cold_cache))
        .collect();
    let s = cold_cache.stats();
    assert!(s.embeds_computed > 0, "cold run embeds: {s:?}");
    assert_eq!(
        s.disk_writes, s.disk_misses,
        "every disk miss wrote through: {s:?}"
    );
    assert_eq!(s.disk_hits, 0, "nothing to hit in a fresh store: {s:?}");

    // Warm leg: a fresh cache over the same store — the fresh-process
    // stand-in. Identical metrics, disk hits, zero recomputation.
    let warm_cache = EmbeddingCache::new(64);
    warm_cache.attach_store(Arc::clone(&store));
    let warm: Vec<Vec<f64>> = tools
        .iter()
        .map(|t| escape_profile_with(t.as_ref(), &base_bin, &obf_bin, &ks, &warm_cache))
        .collect();
    let s = warm_cache.stats();
    assert_eq!(s.embeds_computed, 0, "warm run recomputed nothing: {s:?}");
    assert_eq!(s.disk_misses, 0, "warm run missed nothing on disk: {s:?}");
    assert!(s.disk_hits > 0, "warm run served from disk: {s:?}");
    // The escape path is rank-only: it must stream off disk-served
    // embeddings, never build (or load) a Q×T matrix.
    assert_eq!(s.matrix_entries, 0, "rank-only stays matrix-free: {s:?}");

    for (ti, tool) in tools.iter().enumerate() {
        // Identical — not close: the escape fractions are ratios of
        // rank comparisons over bit-identical similarity scores.
        assert_eq!(
            cold[ti],
            warm[ti],
            "{}: cold vs warm profiles",
            tool.name()
        );
        assert_eq!(
            reference[ti],
            warm[ti],
            "{}: disk-served vs recomputed profiles",
            tool.name()
        );
    }
    std::fs::remove_dir_all(&dir).expect("scratch removed");
}

#[test]
fn matrix_metrics_warm_start_without_recomputation() {
    let dir = scratch("matrix");
    let store = Arc::new(Store::open(&dir).expect("store opens"));
    let (base_bin, obf_bin) = escape_workload();
    let tools = extended_differs();

    let cold_cache = EmbeddingCache::new(64);
    cold_cache.attach_store(Arc::clone(&store));
    let cold: Vec<f64> = tools
        .iter()
        .map(|t| precision_at_1_with(t.as_ref(), &base_bin, &obf_bin, &cold_cache))
        .collect();

    let warm_cache = EmbeddingCache::new(64);
    warm_cache.attach_store(Arc::clone(&store));
    let warm: Vec<f64> = tools
        .iter()
        .map(|t| precision_at_1_with(t.as_ref(), &base_bin, &obf_bin, &warm_cache))
        .collect();
    let s = warm_cache.stats();
    assert_eq!(s.embeds_computed, 0, "{s:?}");
    assert_eq!(s.disk_misses, 0, "{s:?}");
    // One matrix per tool, served straight from disk (embeddings are
    // not even touched on the matrix fast path).
    assert_eq!(s.disk_hits, tools.len() as u64, "{s:?}");
    assert_eq!(cold, warm, "precision@1 identical cold vs warm");
    std::fs::remove_dir_all(&dir).expect("scratch removed");
}
