//! End-to-end pipeline integration tests: every obfuscation configuration
//! must preserve the observable behaviour of optimized workload programs,
//! and the whole chain down to the binary must stay well-formed.

use khaos::obfuscate::{KhaosContext, KhaosMode};
use khaos::ollvm::OllvmMode;
use khaos::opt::{optimize, OptOptions};
use khaos::vm::{run_to_completion, RunResult};
use khaos::workloads;
use khaos_ir::Module;

fn baseline(m: &Module) -> RunResult {
    run_to_completion(m, &[3, 7]).unwrap_or_else(|e| panic!("{} baseline: {e}", m.name))
}

fn assert_same_behaviour(name: &str, cfg: &str, want: &RunResult, m: &Module) {
    let got =
        run_to_completion(m, &[3, 7]).unwrap_or_else(|e| panic!("{name} under {cfg}: {e}"));
    assert_eq!(want.output, got.output, "{name} under {cfg}: output diverged");
    assert_eq!(want.exit_code, got.exit_code, "{name} under {cfg}: exit code diverged");
}

/// A small cross-section of the suites, kept quick for CI.
fn sample_programs() -> Vec<Module> {
    vec![
        workloads::spec2006().swap_remove(3),  // 429.mcf
        workloads::spec2006().swap_remove(14), // 470.lbm
        workloads::coreutils_program("cat", 6),
        workloads::coreutils_program("sort", 77),
        workloads::tiii().swap_remove(1), // quickjs (setjmp + EH)
    ]
}

#[test]
fn khaos_modes_preserve_behaviour_on_optimized_workloads() {
    for src in sample_programs() {
        let mut opt = src.clone();
        optimize(&mut opt, &OptOptions::baseline());
        khaos_ir::verify::assert_valid(&opt);
        let want = baseline(&opt);

        for mode in KhaosMode::ALL {
            let mut m = opt.clone();
            let mut ctx = KhaosContext::new(0xBEEF);
            mode.apply(&mut m, &mut ctx)
                .unwrap_or_else(|e| panic!("{} {}: {e}", src.name, mode.name()));
            khaos_ir::verify::assert_valid(&m);
            assert_same_behaviour(&src.name, mode.name(), &want, &m);
        }
    }
}

#[test]
fn ollvm_modes_preserve_behaviour_on_optimized_workloads() {
    for src in sample_programs() {
        let mut opt = src.clone();
        optimize(&mut opt, &OptOptions::baseline());
        let want = baseline(&opt);

        for mode in [OllvmMode::Sub(1.0), OllvmMode::Bog(1.0), OllvmMode::Fla(0.1), OllvmMode::Fla(1.0)]
        {
            let mut m = opt.clone();
            mode.apply(&mut m, 0xCAFE);
            khaos_ir::verify::assert_valid(&m);
            assert_same_behaviour(&src.name, &mode.name(), &want, &m);
        }
    }
}

#[test]
fn obfuscated_modules_lower_to_binaries() {
    let src = workloads::coreutils_program("ls", 1);
    let mut opt = src.clone();
    optimize(&mut opt, &OptOptions::baseline());
    for mode in KhaosMode::ALL {
        let mut m = opt.clone();
        let mut ctx = KhaosContext::new(1);
        mode.apply(&mut m, &mut ctx).unwrap();
        let bin = khaos::binary::lower_module(&m);
        assert!(bin.inst_count() > 0);
        assert_eq!(bin.functions.len(), m.functions.len());
    }
}

#[test]
fn fission_fusion_change_function_counts_as_expected() {
    let src = workloads::spec2006().swap_remove(3); // 429.mcf
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());
    let before = opt.functions.len();

    let mut fissioned = opt.clone();
    let mut ctx = KhaosContext::new(2);
    KhaosMode::Fission.apply(&mut fissioned, &mut ctx).unwrap();
    assert!(
        fissioned.functions.len() > before,
        "fission adds sepFuncs ({before} -> {})",
        fissioned.functions.len()
    );
    assert!(ctx.fission_stats.sep_funcs > 0);

    let mut fused = opt.clone();
    let mut ctx = KhaosContext::new(2);
    KhaosMode::Fusion.apply(&mut fused, &mut ctx).unwrap();
    assert!(
        fused.functions.len() < before,
        "fusion merges pairs ({before} -> {})",
        fused.functions.len()
    );
    assert!(ctx.fusion_stats.fus_funcs > 0);
    assert!(ctx.fusion_stats.ratio() > 0.5, "most eligible functions aggregate");
}

#[test]
fn obfuscation_reduces_bindiff_precision() {
    use khaos::diff::{precision_at_1, Asm2Vec};

    let src = workloads::spec2006().swap_remove(3);
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());
    let base_bin = khaos::binary::lower_module(&opt);

    let mut obf = opt.clone();
    let mut ctx = KhaosContext::new(3);
    KhaosMode::FuFiAll.apply(&mut obf, &mut ctx).unwrap();
    let obf_bin = khaos::binary::lower_module(&obf);

    let tool = Asm2Vec::default();
    let self_p = precision_at_1(&tool, &base_bin, &base_bin);
    let obf_p = precision_at_1(&tool, &base_bin, &obf_bin);
    assert!(self_p > 0.99);
    assert!(
        obf_p < self_p * 0.75,
        "FuFi.all must significantly reduce Asm2Vec precision: {obf_p} vs {self_p}"
    );
}
