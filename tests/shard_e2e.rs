//! End-to-end pins for the shard-aware experiment runner.
//!
//! Two laws are pinned here:
//!
//! 1. **Partition laws** — for any shard count `n`, the shards
//!    `0/n .. n-1/n` are a permutation-free exact cover of the
//!    unsharded grid: every flat index is owned by exactly one shard,
//!    each shard visits its indices in ascending order, and selecting a
//!    concrete item list per shard re-concatenates (by index) to the
//!    original list.
//! 2. **Merge fidelity** — a Figure-10 grid produced by two sharded
//!    runs persisting into one `khaos-store` and reassembled with
//!    `fig10_merge` is **cell-for-cell bit-identical** to the
//!    single-process run, and a store missing a shard is refused with a
//!    precise listing of every missing cell.

use khaos_bench::experiments::{
    fig10_cells, fig10_expected, fig10_merge, fig7_cells, fig7_expected, fig7_merge, fig9_cells,
    fig9_expected, fig9_merge, table2_cells, table2_expected, table2_merge, Fig10Cell, Scope,
};
use khaos_bench::ShardSpec;
use khaos_store::Store;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "khaos-shard-e2e-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Partition law: for random grids and any `n`, the union of shards
    /// `0/n .. n-1/n` is a permutation-free exact cover of the grid.
    #[test]
    fn shards_are_a_permutation_free_exact_cover(len in 0usize..200, n in 1usize..9) {
        let grid: Vec<usize> = (0..len).collect();
        let mut owners = vec![0u32; len];
        let mut reassembled: Vec<Option<usize>> = vec![None; len];
        for index in 0..n {
            let shard = ShardSpec::new(index, n).expect("valid shard");
            let picked = shard.select(grid.clone());
            // Each shard's picks ascend (no permutation within a shard)...
            for w in picked.windows(2) {
                prop_assert!(w[0] < w[1], "shard {}/{} out of order", index, n);
            }
            // ...and agree with owns()/indices().
            let via_indices: Vec<usize> = shard.indices(len).collect();
            prop_assert_eq!(&picked, &via_indices);
            for i in picked {
                prop_assert!(shard.owns(i));
                owners[i] += 1;
                reassembled[i] = Some(i);
            }
        }
        // Exact cover: every index owned exactly once, nothing dropped,
        // nothing duplicated, and putting each shard's items back at
        // their flat indices reproduces the grid exactly.
        prop_assert!(owners.iter().all(|&c| c == 1));
        let reassembled: Vec<usize> = reassembled.into_iter().map(|x| x.expect("covered")).collect();
        prop_assert_eq!(reassembled, grid);
    }
}

fn assert_cells_bit_identical(a: &[Fig10Cell], b: &[Fig10Cell], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: cell count");
    for (ca, cb) in a.iter().zip(b) {
        assert_eq!(
            (&ca.program, &ca.config, ca.tool, ca.pipeline),
            (&cb.program, &cb.config, cb.tool, cb.pipeline),
            "{what}: cell identity/order"
        );
        for (ea, eb) in ca.escape.iter().zip(&cb.escape) {
            assert_eq!(
                ea.to_bits(),
                eb.to_bits(),
                "{what}: {}/{}/{} escape bits",
                ca.program,
                ca.config,
                ca.tool
            );
        }
    }
}

/// The acceptance pin: a fig10 grid produced by two sharded runs into
/// one `khaos-store`, then merged, is cell-for-cell identical to the
/// single-process run.
#[test]
fn two_shards_into_one_store_merge_to_the_single_process_grid() {
    let dir = scratch("merge");
    let store = Store::open(&dir).expect("store opens");

    // The single-process reference grid (no store involved).
    let reference = fig10_cells(Scope::Quick, ShardSpec::FULL, None);
    let expected = fig10_expected(Scope::Quick);
    assert_eq!(reference.len(), expected.len(), "reference grid is complete");
    assert!(reference.len() >= 12, "grid large enough to mean something");

    // "Process" A and "process" B: complementary shards persisting into
    // one shared store (the CI smoke runs the same flow as two real
    // processes; here the separation is per-call state).
    let a = fig10_cells(Scope::Quick, ShardSpec::new(0, 2).unwrap(), Some(&store));
    let b = fig10_cells(Scope::Quick, ShardSpec::new(1, 2).unwrap(), Some(&store));
    assert_eq!(a.len() + b.len(), reference.len(), "shards cover the grid");
    assert!(!a.is_empty() && !b.is_empty(), "both shards own cells");

    // The merged grid is complete and bit-identical to the reference.
    let merged = fig10_merge(Scope::Quick, &[&store]).expect("union of both shards is complete");
    assert_cells_bit_identical(&merged, &reference, "merged vs single-process");

    // Each shard's own cells also match the reference values directly
    // (shard-independence of the cell computation).
    for cell in a.iter().chain(&b) {
        let want = reference
            .iter()
            .find(|c| {
                (&c.program, &c.config, c.tool) == (&cell.program, &cell.config, cell.tool)
            })
            .expect("cell exists in reference");
        for (ea, eb) in cell.escape.iter().zip(&want.escape) {
            assert_eq!(ea.to_bits(), eb.to_bits(), "shard cell vs reference");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The refusal half: a store holding only one shard must be rejected
/// with a precise listing of exactly the other shard's cells.
#[test]
fn merge_refuses_an_incomplete_grid_listing_every_missing_cell() {
    let dir = scratch("partial");
    let store = Store::open(&dir).expect("store opens");
    let only = fig10_cells(Scope::Quick, ShardSpec::new(0, 2).unwrap(), Some(&store));

    let missing = match fig10_merge(Scope::Quick, &[&store]) {
        Ok(_) => panic!("half a grid must not merge"),
        Err(m) => m,
    };
    let expected = fig10_expected(Scope::Quick);
    assert_eq!(
        missing.len(),
        expected.len() - only.len(),
        "exactly the absent shard's cells are reported"
    );
    // Every reported line names a real expected cell that shard 0 does
    // not own, precisely (subject + pipeline fingerprint).
    for line in &missing {
        let key = expected
            .iter()
            .find(|k| line.starts_with(&k.subject()))
            .unwrap_or_else(|| panic!("`{line}` names no expected cell"));
        assert!(
            line.contains(&format!("{:016x}", key.pipeline)),
            "`{line}` must carry the pipeline fingerprint"
        );
        assert!(
            !only.iter().any(|c| c.subject() == key.subject()),
            "`{line}` was reported missing but shard 0 persisted it"
        );
    }

    // An empty extra store changes nothing; adding a store with the
    // complementary shard completes the union.
    let dir2 = scratch("partial2");
    let store2 = Store::open(&dir2).expect("second store opens");
    assert!(fig10_merge(Scope::Quick, &[&store, &store2]).is_err());
    fig10_cells(Scope::Quick, ShardSpec::new(1, 2).unwrap(), Some(&store2));
    let merged =
        fig10_merge(Scope::Quick, &[&store, &store2]).expect("union across two stores merges");
    assert_eq!(merged.len(), expected.len());
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
}

/// Figure 7 merge fidelity: a two-shard run reassembles to the
/// single-process grid with bit-identical overheads, and a lone shard
/// is refused.
#[test]
fn fig7_shards_merge_bit_identically() {
    let dir = scratch("fig7");
    let store = Store::open(&dir).expect("store opens");
    let reference = fig7_cells(Scope::Quick, ShardSpec::FULL, None);
    assert_eq!(reference.len(), fig7_expected(Scope::Quick).len());

    let a = fig7_cells(Scope::Quick, ShardSpec::new(0, 2).unwrap(), Some(&store));
    assert!(
        fig7_merge(Scope::Quick, &[&store]).is_err(),
        "half a grid must not merge"
    );
    let b = fig7_cells(Scope::Quick, ShardSpec::new(1, 2).unwrap(), Some(&store));
    assert_eq!(a.len() + b.len(), reference.len());

    let merged = fig7_merge(Scope::Quick, &[&store]).expect("union of both shards is complete");
    assert_eq!(merged.len(), reference.len());
    for (m, r) in merged.iter().zip(&reference) {
        assert_eq!(
            (m.suite, &m.program, &m.config, m.pipeline),
            (r.suite, &r.program, &r.config, r.pipeline),
            "fig7 cell identity/order"
        );
        assert_eq!(
            m.overhead.to_bits(),
            r.overhead.to_bits(),
            "fig7 {}/{}/{} overhead bits",
            m.suite,
            m.program,
            m.config
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Figure 9 merge fidelity: every BinTuner/Khaos similarity column and
/// the BinTuner overhead survive the store round-trip bit for bit.
#[test]
fn fig9_shards_merge_bit_identically() {
    let dir = scratch("fig9");
    let store = Store::open(&dir).expect("store opens");
    let reference = fig9_cells(Scope::Quick, ShardSpec::FULL, None);
    assert_eq!(reference.len(), fig9_expected(Scope::Quick).len());

    fig9_cells(Scope::Quick, ShardSpec::new(0, 2).unwrap(), Some(&store));
    fig9_cells(Scope::Quick, ShardSpec::new(1, 2).unwrap(), Some(&store));

    let merged = fig9_merge(Scope::Quick, &[&store]).expect("union of both shards is complete");
    assert_eq!(merged.len(), reference.len());
    for (m, r) in merged.iter().zip(&reference) {
        assert_eq!(
            (&m.program, m.pipeline),
            (&r.program, r.pipeline),
            "fig9 cell identity/order"
        );
        for (a, b) in m.bt.iter().zip(&r.bt).chain(m.kh.iter().zip(&r.kh)) {
            assert_eq!(a.to_bits(), b.to_bits(), "fig9 {} similarity bits", m.program);
        }
        assert_eq!(
            m.bt_overhead.to_bits(),
            r.bt_overhead.to_bits(),
            "fig9 {} overhead bits",
            m.program
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Table 2 merge fidelity: the raw fission/fusion counters round-trip
/// exactly (including the f64 `reduced_ratio_sum`, bit for bit), so
/// the per-suite aggregates a merged table derives are the
/// single-process numbers.
#[test]
fn table2_shards_merge_bit_identically() {
    let dir = scratch("table2");
    let store = Store::open(&dir).expect("store opens");
    let reference = table2_cells(Scope::Quick, ShardSpec::FULL, None);
    assert_eq!(reference.len(), table2_expected(Scope::Quick).len());

    table2_cells(Scope::Quick, ShardSpec::new(0, 2).unwrap(), Some(&store));
    table2_cells(Scope::Quick, ShardSpec::new(1, 2).unwrap(), Some(&store));

    let merged = table2_merge(Scope::Quick, &[&store]).expect("union of both shards is complete");
    assert_eq!(merged.len(), reference.len());
    for (m, r) in merged.iter().zip(&reference) {
        assert_eq!(
            (m.suite, &m.program, m.pipeline),
            (r.suite, &r.program, r.pipeline),
            "table2 cell identity/order"
        );
        assert_eq!(m.fusion, r.fusion, "table2 {} fusion counters", m.program);
        assert_eq!(
            m.fission.reduced_ratio_sum.to_bits(),
            r.fission.reduced_ratio_sum.to_bits(),
            "table2 {} reduced_ratio_sum bits",
            m.program
        );
        let strip = |s: &khaos_core::FissionStats| {
            (
                s.ori_funcs,
                s.fissioned_funcs,
                s.sep_funcs,
                s.sep_blocks,
                s.params_reduced,
            )
        };
        assert_eq!(
            strip(&m.fission),
            strip(&r.fission),
            "table2 {} fission counters",
            m.program
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
