//! End-to-end pins for the elastic (leased work-queue) coordinator.
//!
//! The acceptance scenario: a worker dies holding a claim on a
//! Figure-10 unit. Another worker pointed at the same store must steal
//! the stale claim after the lease horizon, redo the unit, and finish
//! the grid — and the merged grid must be **cell-for-cell
//! bit-identical** to the single-process run, because every cell is a
//! deterministic function of `(program, config, seed)`.
//!
//! The dead worker is simulated exactly: a claim file is taken through
//! the real [`Store::try_lease_report`] path and then leaked with
//! [`std::mem::forget`], which skips the lease's `Drop` just as a
//! SIGKILL would — the claim dangles on disk with no process behind
//! it. The horizon is injected as a parameter (not `KHAOS_LEASE_MS`)
//! so parallel tests can't race on process-global state.

use khaos_bench::experiments::{
    fig10_cells, fig10_elastic_sweep, fig10_expected, fig10_merge, Fig10Cell, Scope,
};
use khaos_bench::{ShardSpec, SEED};
use khaos_store::{ReportKey, Store};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("khaos-elastic-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lease_files(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "lease") {
                found.push(path);
            }
        }
    }
    found
}

fn assert_cells_bit_identical(a: &[Fig10Cell], b: &[Fig10Cell], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: cell count");
    for (ca, cb) in a.iter().zip(b) {
        assert_eq!(
            (&ca.program, &ca.config, ca.tool, ca.pipeline),
            (&cb.program, &cb.config, cb.tool, cb.pipeline),
            "{what}: cell identity/order"
        );
        for (ea, eb) in ca.escape.iter().zip(&cb.escape) {
            assert_eq!(
                ea.to_bits(),
                eb.to_bits(),
                "{what}: {}/{}/{} escape bits",
                ca.program,
                ca.config,
                ca.tool
            );
        }
    }
}

/// A worker killed mid-grid leaves a dangling claim; the surviving
/// worker steals it past the horizon, completes the grid, and the
/// merged result is bit-identical to the single-process reference.
/// A second worker pass over the finished store then computes nothing.
#[test]
fn stale_lease_is_stolen_and_the_merged_grid_is_bit_identical() {
    let dir = scratch("steal");
    let store = Store::open(&dir).expect("store opens");

    // Single-process reference grid (no store, no coordinator).
    let reference = fig10_cells(Scope::Quick, ShardSpec::FULL, None);
    let expected = fig10_expected(Scope::Quick);
    assert_eq!(reference.len(), expected.len());
    // Three tool cells per (config, program) unit.
    let units = expected.len() / 3;
    assert!(units >= 4, "grid large enough to mean something");

    // The "dead worker": claim the first unit's anchor cell (the
    // expected grid's innermost dimension is the tool, so expected[0]
    // IS unit 0's anchor) and leak the lease — no release, no Drop.
    let anchor = &expected[0];
    let subject = anchor.subject();
    let key = ReportKey {
        pipeline: anchor.pipeline,
        seed: SEED,
        subject: &subject,
    };
    let planted = store
        .try_lease_report(&key, Duration::from_secs(3600))
        .expect("lease io")
        .expect("first claim wins");
    assert!(!planted.was_stolen(), "fresh claim on an empty store");
    std::mem::forget(planted);
    assert_eq!(lease_files(&dir).len(), 1, "the dangling claim is on disk");

    // The surviving worker: a tiny horizon makes the dangling claim go
    // stale almost immediately; the sweep must steal it, redo the
    // unit, and finish every unit.
    let summary = fig10_elastic_sweep(Scope::Quick, &store, Duration::from_millis(100));
    assert_eq!(summary.units, units);
    assert!(
        summary.stolen >= 1,
        "the dangling claim must be stolen, not waited out: {summary:?}"
    );
    assert_eq!(summary.already_done, 0, "{summary:?}");
    assert_eq!(
        summary.computed, units,
        "the survivor computes the whole grid: {summary:?}"
    );
    assert!(
        lease_files(&dir).is_empty(),
        "every claim (including the stolen one) is released"
    );

    // The records the stolen unit's redo wrote — and everything else —
    // merge bit-identically to the single-process reference.
    let merged = fig10_merge(Scope::Quick, &[&store]).expect("grid is complete");
    assert_cells_bit_identical(&merged, &reference, "elastic merged vs single-process");

    // Re-running a worker over the finished store is a no-op: records
    // are the ground truth of doneness.
    let again = fig10_elastic_sweep(Scope::Quick, &store, Duration::from_millis(100));
    assert_eq!(again.already_done, units, "{again:?}");
    assert_eq!(again.computed, 0, "{again:?}");
    assert_eq!(again.stolen, 0, "{again:?}");
    assert_eq!(again.rounds, 1, "{again:?}");

    std::fs::remove_dir_all(&dir).unwrap();
}
