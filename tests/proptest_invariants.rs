//! Property-based tests over randomly generated programs: the generator,
//! the optimizer, the obfuscator and the VM must uphold their invariants
//! for *every* seed, not just the hand-picked ones.

use khaos::obfuscate::{KhaosContext, KhaosMode, KhaosOptions};
use khaos::opt::{optimize, OptLevel, OptOptions};
use khaos::vm::run_to_completion;
use khaos::workloads::{generate, ProgramProfile};
use proptest::prelude::*;

fn small_profile(seed: u64, functions: usize, constructs: usize) -> ProgramProfile {
    ProgramProfile {
        name: format!("prop_{seed}"),
        functions: functions.clamp(4, 14),
        constructs: constructs.clamp(2, 5),
        work_scale: 6,
        table_size: 2,
        ..ProgramProfile::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generated program verifies and runs to completion.
    #[test]
    fn generated_programs_verify_and_run(seed in 0u64..5000, nf in 4usize..14, nc in 2usize..5) {
        let mut p = small_profile(seed, nf, nc);
        p.seed = seed;
        let m = generate(&p);
        prop_assert!(khaos_ir::verify::verify_module(&m).is_ok());
        let r = run_to_completion(&m, &[seed as i64]).expect("program runs");
        prop_assert!(!r.output.is_empty());
    }

    /// Optimization at any level preserves observable behaviour.
    #[test]
    fn optimization_preserves_behaviour(seed in 0u64..2000, level in 0usize..4) {
        let mut p = small_profile(seed, 8, 3);
        p.seed = seed;
        let src = generate(&p);
        let want = run_to_completion(&src, &[1]).expect("baseline");
        let mut m = src.clone();
        optimize(&mut m, &OptOptions::level(OptLevel::ALL[level]));
        prop_assert!(khaos_ir::verify::verify_module(&m).is_ok());
        let got = run_to_completion(&m, &[1]).expect("optimized build runs");
        prop_assert_eq!(&want.output, &got.output);
        prop_assert_eq!(want.exit_code, got.exit_code);
    }

    /// Every Khaos mode preserves behaviour on every seed.
    #[test]
    fn khaos_preserves_behaviour(seed in 0u64..1000, mode_idx in 0usize..5) {
        let mut p = small_profile(seed, 10, 3);
        p.seed = seed;
        let mut src = generate(&p);
        optimize(&mut src, &OptOptions::baseline());
        let want = run_to_completion(&src, &[2]).expect("baseline");

        let mut m = src.clone();
        let mut ctx = KhaosContext::new(seed ^ 0xC60);
        KhaosMode::ALL[mode_idx].apply(&mut m, &mut ctx).expect("obfuscation");
        let got = run_to_completion(&m, &[2]).expect("obfuscated build runs");
        prop_assert_eq!(&want.output, &got.output);
        prop_assert_eq!(want.exit_code, got.exit_code);

        // And the full pipeline (re-optimization) must hold too.
        optimize(&mut m, &OptOptions::baseline());
        let got2 = run_to_completion(&m, &[2]).expect("re-optimized build runs");
        prop_assert_eq!(&want.output, &got2.output);
    }

    /// Khaos option ablations never break behaviour.
    #[test]
    fn khaos_options_preserve_behaviour(
        seed in 0u64..500,
        dfr in any::<bool>(),
        compress in any::<bool>(),
        deep in any::<bool>(),
    ) {
        let mut p = small_profile(seed, 10, 3);
        p.seed = seed;
        let mut src = generate(&p);
        optimize(&mut src, &OptOptions::baseline());
        let want = run_to_completion(&src, &[4]).expect("baseline");
        let mut m = src.clone();
        let options = KhaosOptions {
            data_flow_reduction: dfr,
            parameter_compression: compress,
            deep_fusion: deep,
            ..KhaosOptions::default()
        };
        let mut ctx = KhaosContext::with_options(seed, options);
        KhaosMode::FuFiAll.apply(&mut m, &mut ctx).expect("obfuscation");
        let got = run_to_completion(&m, &[4]).expect("runs");
        prop_assert_eq!(&want.output, &got.output);
    }

    /// The textual IR round-trips: print → parse → print is a fixpoint.
    #[test]
    fn printer_parser_roundtrip(seed in 0u64..2000) {
        let mut p = small_profile(seed, 6, 3);
        p.seed = seed;
        let m = generate(&p);
        let text = khaos_ir::printer::print_module(&m);
        let parsed = khaos_ir::parser::parse_module(&text).expect("printed IR parses");
        prop_assert_eq!(&m, &parsed);
    }

    /// Lowering never panics and yields one machine function per IR
    /// function with entry-block prologues.
    #[test]
    fn lowering_is_total(seed in 0u64..2000) {
        let mut p = small_profile(seed, 8, 3);
        p.seed = seed;
        let mut m = generate(&p);
        optimize(&mut m, &OptOptions::baseline());
        let bin = khaos::binary::lower_module(&m);
        prop_assert_eq!(bin.functions.len(), m.functions.len());
        for f in &bin.functions {
            prop_assert!(!f.blocks.is_empty());
            prop_assert!(f.blocks[0].insts.len() >= 2, "prologue present");
        }
    }

    /// N-way fusion (extension) preserves behaviour for every seed and
    /// arity, through the full re-optimization pipeline.
    #[test]
    fn nway_fusion_preserves_behaviour(seed in 0u64..600, arity in 2usize..=4) {
        let mut p = small_profile(seed, 12, 3);
        p.seed = seed;
        let mut src = generate(&p);
        optimize(&mut src, &OptOptions::baseline());
        let want = run_to_completion(&src, &[5]).expect("baseline");

        let mut m = src.clone();
        let mut ctx = KhaosContext::new(seed ^ 0xA11);
        khaos::obfuscate::fusion_n(&mut m, &mut ctx, arity).expect("n-way fusion");
        let got = run_to_completion(&m, &[5]).expect("fused build runs");
        prop_assert_eq!(&want.output, &got.output);
        prop_assert_eq!(want.exit_code, got.exit_code);

        optimize(&mut m, &OptOptions::baseline());
        let got2 = run_to_completion(&m, &[5]).expect("re-optimized fused build runs");
        prop_assert_eq!(&want.output, &got2.output);
    }

    /// The data-flow differ's embeddings are unit-length (or zero) and
    /// its similarity matrix self-match sits on the diagonal.
    #[test]
    fn dataflow_embeddings_are_normalized(seed in 0u64..800) {
        use khaos::diff::{DataFlowDiff, Differ};
        let mut p = small_profile(seed, 6, 3);
        p.seed = seed;
        let mut m = generate(&p);
        optimize(&mut m, &OptOptions::baseline());
        let bin = khaos::binary::lower_module(&m);
        let tool = DataFlowDiff::default();
        for e in tool.embed(&bin) {
            let norm: f64 = e.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!(norm < 1.0 + 1e-9, "unit or zero length, got {}", norm);
            prop_assert!(norm == 0.0 || norm > 1.0 - 1e-9);
        }
        let matrix = tool.similarity_matrix(&bin, &bin);
        for (i, row) in matrix.iter().enumerate() {
            for (j, s) in row.iter().enumerate() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(s));
                if i == j {
                    prop_assert!(*s > 0.999 || row.iter().all(|x| *x == 0.0));
                }
            }
        }
    }
}

/// Cross-check the fast dominator implementation against the naive
/// definition on generated CFGs (beyond the unit tests' fixed shapes).
#[test]
fn dominators_match_naive_on_generated_cfgs() {
    use khaos_ir::{BlockId, Cfg, DomTree};
    for seed in 0..40u64 {
        let p = ProgramProfile {
            name: format!("dom_{seed}"),
            functions: 6,
            constructs: 4,
            seed,
            ..ProgramProfile::default()
        };
        let m = generate(&p);
        for f in &m.functions {
            let cfg = Cfg::compute(f);
            let dt = DomTree::compute(f, &cfg);
            // Naive: a dominates b iff removing a disconnects b.
            for (a, _) in f.iter_blocks() {
                if !cfg.is_reachable(a) {
                    continue;
                }
                let mut visited = vec![false; f.blocks.len()];
                if f.entry() != a {
                    visited[f.entry().index()] = true;
                    let mut stack = vec![f.entry()];
                    while let Some(x) = stack.pop() {
                        f.block(x).term.for_each_successor(|s| {
                            if s != a && !visited[s.index()] {
                                visited[s.index()] = true;
                                stack.push(s);
                            }
                        });
                    }
                }
                for (b, _) in f.iter_blocks() {
                    if !cfg.is_reachable(b) {
                        continue;
                    }
                    let naive = a == b || !visited[b.index()];
                    assert_eq!(
                        dt.dominates(a, b),
                        naive,
                        "{}: dominates({a},{b}) mismatch",
                        f.name
                    );
                }
            }
            let _ = BlockId(0);
        }
    }
}
