//! Integration tests for the extension features: N-way fusion
//! (paper §3.3's "any number of functions" generalization), the
//! data-flow differ (§5's prediction) and stripped-binary diffing.

use khaos::binary::lower_module;
use khaos::diff::{precision_at_1, BinDiff, DataFlowDiff};
use khaos::obfuscate::{fufi_n, fusion, fusion_n, KhaosContext, KhaosError, KhaosMode};
use khaos::opt::{optimize, OptOptions};
use khaos::vm::{run_to_completion, RunResult};
use khaos::workloads;
use khaos_ir::Module;

fn baseline(m: &Module) -> RunResult {
    run_to_completion(m, &[3, 7]).unwrap_or_else(|e| panic!("{} baseline: {e}", m.name))
}

fn sample_programs() -> Vec<Module> {
    vec![
        workloads::spec2006().swap_remove(3),  // 429.mcf
        workloads::spec2006().swap_remove(12), // 462.libquantum
        workloads::coreutils_program("wc", 21),
        workloads::tiii().swap_remove(0), // jerryscript
    ]
}

#[test]
fn nway_fusion_preserves_behaviour_at_every_arity() {
    for src in sample_programs() {
        let mut opt = src.clone();
        optimize(&mut opt, &OptOptions::baseline());
        let want = baseline(&opt);

        for arity in 2..=4usize {
            let mut m = opt.clone();
            let mut ctx = KhaosContext::new(0xAB + arity as u64);
            fusion_n(&mut m, &mut ctx, arity)
                .unwrap_or_else(|e| panic!("{} arity {arity}: {e}", src.name));
            khaos_ir::verify::assert_valid(&m);
            // The full compiler pipeline reruns after obfuscation, as in
            // the paper's middle-end scheduling.
            optimize(&mut m, &OptOptions::baseline());
            khaos_ir::verify::assert_valid(&m);
            let got = run_to_completion(&m, &[3, 7])
                .unwrap_or_else(|e| panic!("{} arity {arity}: {e}", src.name));
            assert_eq!(want.output, got.output, "{} arity {arity}: output", src.name);
            assert_eq!(want.exit_code, got.exit_code, "{} arity {arity}: exit", src.name);
        }
    }
}

#[test]
fn fufi_n_preserves_behaviour_and_mixes_provenance() {
    for src in sample_programs().into_iter().take(2) {
        let mut opt = src.clone();
        optimize(&mut opt, &OptOptions::baseline());
        let want = baseline(&opt);

        for arity in [3usize, 4] {
            let mut m = opt.clone();
            let mut ctx = KhaosContext::new(0xF00 + arity as u64);
            fufi_n(&mut m, &mut ctx, arity)
                .unwrap_or_else(|e| panic!("{} fufi_n {arity}: {e}", src.name));
            assert!(ctx.fission_stats.sep_funcs > 0, "{}: fission ran", src.name);
            assert!(ctx.fusion_stats.fus_funcs > 0, "{}: fusion ran", src.name);
            optimize(&mut m, &OptOptions::baseline());
            let got = run_to_completion(&m, &[3, 7])
                .unwrap_or_else(|e| panic!("{} fufi_n {arity}: {e}", src.name));
            assert_eq!(want.output, got.output, "{} fufi_n {arity}", src.name);
        }
    }
}

#[test]
fn nway_rejects_out_of_budget_arities() {
    let mut m = workloads::coreutils_program("true", 1);
    let mut ctx = KhaosContext::new(1);
    assert_eq!(fusion_n(&mut m, &mut ctx, 1), Err(KhaosError::UnsupportedArity(1)));
    assert_eq!(fusion_n(&mut m, &mut ctx, 5), Err(KhaosError::UnsupportedArity(5)));
    // The error formats usefully.
    let msg = KhaosError::UnsupportedArity(5).to_string();
    assert!(msg.contains('5') && msg.contains("2..=4"), "{msg}");
}

#[test]
fn higher_arity_aggregates_into_fewer_functions() {
    let src = workloads::spec2006().swap_remove(5); // 445.gobmk: many funcs
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());

    let mut counts = Vec::new();
    for arity in 2..=4usize {
        let mut m = opt.clone();
        let mut ctx = KhaosContext::new(7);
        fusion_n(&mut m, &mut ctx, arity).unwrap();
        counts.push((m.functions.len(), ctx.fusion_stats.fus_funcs));
    }
    // More constituents per fusFunc => fewer fused functions and a
    // smaller module overall.
    assert!(counts[2].1 < counts[0].1, "arity 4 forms fewer fusFuncs: {counts:?}");
    assert!(counts[2].0 <= counts[0].0, "arity 4 leaves fewer functions: {counts:?}");
}

#[test]
fn nway_arity_two_consistent_with_pair_fusion_effect() {
    // Both drivers must aggregate a comparable share of functions.
    let src = workloads::coreutils_program("sort", 77);
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());

    let mut pair = opt.clone();
    let mut pair_ctx = KhaosContext::new(3);
    fusion(&mut pair, &mut pair_ctx).unwrap();

    let mut nway = opt.clone();
    let mut nway_ctx = KhaosContext::new(3);
    fusion_n(&mut nway, &mut nway_ctx, 2).unwrap();

    assert_eq!(pair_ctx.fusion_stats.eligible_funcs, nway_ctx.fusion_stats.eligible_funcs);
    let pr = pair_ctx.fusion_stats.ratio();
    let nr = nway_ctx.fusion_stats.ratio();
    assert!((pr - nr).abs() < 0.25, "aggregation ratios comparable: pair {pr} vs nway {nr}");
}

#[test]
fn dataflow_differ_survives_instruction_substitution_better_than_khaos() {
    // The tool embeds computation structure: intra-procedural obfuscation
    // (class-preserving substitution) must hurt it far less than moving
    // code across functions does.
    let src = workloads::spec2006().swap_remove(3);
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());
    let base_bin = lower_module(&opt);
    let tool = DataFlowDiff::default();

    // Khaos FuFi.all.
    let mut khaos = opt.clone();
    let mut ctx = KhaosContext::new(11);
    KhaosMode::FuFiAll.apply(&mut khaos, &mut ctx).unwrap();
    optimize(&mut khaos, &OptOptions::baseline());
    let khaos_p = precision_at_1(&tool, &base_bin, &lower_module(&khaos));

    // O-LLVM Fla at 10% (intra-procedural).
    let mut fla = opt.clone();
    khaos::ollvm::OllvmMode::Fla(0.1).apply(&mut fla, 11);
    optimize(&mut fla, &OptOptions::baseline());
    let fla_p = precision_at_1(&tool, &base_bin, &lower_module(&fla));

    assert!(
        fla_p > khaos_p + 0.2,
        "data-flow features resist intra-procedural obfuscation ({fla_p:.2}) \
         but not inter-procedural restructuring ({khaos_p:.2})"
    );
}

#[test]
fn dataflow_propagation_never_hurts_self_matching() {
    let src = workloads::coreutils_program("ls", 40);
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());
    let bin = lower_module(&opt);
    for tool in [DataFlowDiff::intra_only(), DataFlowDiff::default()] {
        let p = precision_at_1(&tool, &bin, &bin);
        assert!(p > 0.95, "{}: self precision {p}", tool.callee_weight);
    }
}

#[test]
fn stripping_degrades_bindiff_under_khaos() {
    let src = workloads::spec2006().swap_remove(7); // 450.soplex
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());
    let base_bin = lower_module(&opt);

    let mut obf = opt.clone();
    let mut ctx = KhaosContext::new(23);
    KhaosMode::FuFiAll.apply(&mut obf, &mut ctx).unwrap();
    optimize(&mut obf, &OptOptions::baseline());
    let obf_bin = lower_module(&obf);
    let mut stripped = obf_bin.clone();
    stripped.strip();

    let tool = BinDiff::default();
    let p_unstripped = precision_at_1(&tool, &base_bin, &obf_bin);
    let p_stripped = precision_at_1(&tool, &base_bin, &stripped);
    assert!(
        p_stripped < p_unstripped,
        "symbol names prop up BinDiff: stripped {p_stripped} vs un-stripped {p_unstripped}"
    );
}

#[test]
fn extended_differs_includes_dataflow_tool() {
    let tools = khaos::diff::extended_differs();
    assert_eq!(tools.len(), 5);
    assert_eq!(tools.last().unwrap().name(), "DataFlowDiff");
    // Every tool still self-matches on a real workload binary.
    let src = workloads::coreutils_program("echo", 14);
    let mut opt = src;
    optimize(&mut opt, &OptOptions::baseline());
    let bin = lower_module(&opt);
    for tool in &tools {
        let m = tool.similarity_matrix(&bin, &bin);
        assert_eq!(m.len(), bin.functions.len(), "{}", tool.name());
    }
}

#[test]
fn nway_tagged_pointers_survive_the_full_pipeline() {
    // T-III programs exercise function-pointer tables; N-way fusion plus
    // the follow-up optimizer must keep indirect dispatch working.
    let src = workloads::tiii().swap_remove(2); // busybox (applet table)
    let mut opt = src.clone();
    optimize(&mut opt, &OptOptions::baseline());
    let want = baseline(&opt);

    for arity in [3usize, 4] {
        let mut m = opt.clone();
        let mut ctx = KhaosContext::new(0x5EED + arity as u64);
        fusion_n(&mut m, &mut ctx, arity).unwrap();
        optimize(&mut m, &OptOptions::baseline());
        let got = run_to_completion(&m, &[3, 7])
            .unwrap_or_else(|e| panic!("{} arity {arity}: {e}", src.name));
        assert_eq!(want.output, got.output, "busybox arity {arity}");
    }
}
