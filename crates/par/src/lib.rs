//! # khaos-par — scoped-thread data parallelism
//!
//! A small, dependency-free rayon stand-in for the offline build
//! environment. Work is fanned out over `std::thread::scope` with
//! dynamic block scheduling (an atomic cursor over fixed-size index
//! blocks), so uneven task costs — obfuscating a `gcc`-sized module vs
//! a `cat`-sized one — still balance across cores.
//!
//! * [`par_map`] / [`par_map_slice`] — order-preserving parallel maps;
//! * [`par_map_with`] — an order-preserving parallel map with one
//!   reusable scratch value per worker (the streaming rank path's
//!   per-row similarity buffer);
//! * [`par_chunks_mut`] — parallel in-place fill of disjoint chunks of
//!   a flat buffer (the similarity-matrix row loop);
//! * [`max_threads`] — the worker count, overridable with the
//!   `KHAOS_THREADS` environment variable (`KHAOS_THREADS=1` forces
//!   fully sequential execution, useful for profiling and debugging).
//!
//! Beyond threads, the crate also carries the *cross-process* half of
//! the work-partitioning story: [`ShardSpec`] deterministically splits
//! a flattened work grid across cooperating processes/machines
//! (`KHAOS_SHARD=i/n`), the coarse-grained analogue of the in-process
//! block scheduling above.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set while this thread is a khaos-par worker: nested `par_*`
    /// calls then run sequentially instead of spawning another full
    /// complement of threads (which would oversubscribe to ~cores²
    /// when an experiment fan-out reaches the engine's parallel
    /// matrix rows). Carries the worker's lane index within its
    /// fan-out so observability layers (`khaos-obs`) can attribute
    /// spans to a stable worker lane.
    static WORKER_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// True on threads spawned by this crate's parallel helpers. Nested
/// parallel calls detect this and degrade to sequential execution, so
/// total concurrency stays at one level of [`max_threads`].
pub fn is_worker_thread() -> bool {
    WORKER_ID.with(Cell::get).is_some()
}

/// The calling thread's worker lane index within the current fan-out
/// (`0..threads`), or `None` off the worker pool. Lane indices are
/// reused across successive fan-outs — they identify a *lane*, not a
/// task — which is exactly what trace timelines want: work scheduled
/// on lane `k` of any `par_*` call shows up on one timeline row.
pub fn worker_id() -> Option<usize> {
    WORKER_ID.with(Cell::get)
}

/// Runs `f` with this thread marked as worker lane `id`.
fn as_worker<T>(id: usize, f: impl FnOnce() -> T) -> T {
    WORKER_ID.with(|w| w.set(Some(id)));
    let out = f();
    WORKER_ID.with(|w| w.set(None));
    out
}

/// Parses a `KHAOS_THREADS` override: trimmed integer, clamped to at
/// least one worker. `None` when the value does not parse (the caller
/// falls back to the machine's parallelism).
fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Warns — once per process — that a `KHAOS_THREADS` value was ignored.
/// A silently ignored override is worse than no override: a profiling
/// run the user believes is single-threaded would quietly fan out.
fn warn_bad_thread_override(raw: &str) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "khaos-par: ignoring unparseable KHAOS_THREADS value `{raw}` \
             (want a positive integer); using available parallelism"
        );
    });
}

/// Number of worker threads to use: `KHAOS_THREADS` when set and
/// parseable (a bad value warns once and is ignored), otherwise the
/// machine's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("KHAOS_THREADS") {
        match parse_thread_override(&v) {
            Some(n) => return n,
            None => warn_bad_thread_override(&v),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sequential-or-parallel decision: tiny workloads are not worth the
/// thread spawn overhead, and nested calls from inside a worker run
/// sequentially (see [`is_worker_thread`]).
fn effective_threads(n: usize) -> usize {
    if n < 2 || is_worker_thread() {
        return 1;
    }
    max_threads().min(n)
}

/// Parallel, order-preserving map over `0..n`.
///
/// Spawns scoped workers that claim fixed-size index blocks from an
/// atomic cursor; results are reassembled in index order. Falls back to
/// a plain loop when `n` is small or one thread is available.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    // Block size: ~4 blocks per worker bounds scheduling overhead while
    // keeping enough blocks for balance.
    let block = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..threads {
            let (cursor, done, f) = (&cursor, &done, &f);
            s.spawn(move || {
                as_worker(w, || loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + block).min(n);
                    let part: Vec<T> = (start..end).map(f).collect();
                    done.lock()
                        .expect("par_map worker panicked")
                        .push((start, part));
                })
            });
        }
    });
    let mut parts = done.into_inner().expect("par_map worker panicked");
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Parallel, order-preserving map over `0..n` with one reusable
/// scratch value per worker.
///
/// `init` builds each worker's scratch once; `f` receives it mutably
/// for every index the worker claims. The streaming rank path uses this
/// for its per-row similarity buffer: one `O(T)` allocation per worker
/// instead of one per query row. Results come back in index order, and
/// because `f(scratch, i)` must not let the scratch influence the
/// output value (it is scratch, not state), the result is identical to
/// the sequential map at any thread count.
pub fn par_map_with<S, T, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = effective_threads(n);
    if threads == 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let block = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..threads {
            let (cursor, done, init, f) = (&cursor, &done, &init, &f);
            s.spawn(move || {
                as_worker(w, || {
                    let mut scratch = init();
                    loop {
                        let start = cursor.fetch_add(block, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + block).min(n);
                        let part: Vec<T> = (start..end).map(|i| f(&mut scratch, i)).collect();
                        done.lock()
                            .expect("par_map_with worker panicked")
                            .push((start, part));
                    }
                })
            });
        }
    });
    let mut parts = done.into_inner().expect("par_map_with worker panicked");
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Parallel, order-preserving map over a slice.
pub fn par_map_slice<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map(items.len(), |i| f(&items[i]))
}

/// Splits `data` into consecutive `chunk_len`-sized chunks and fills
/// them in parallel; `f` receives each chunk's index and contents.
///
/// This is the flat-matrix row loop: `data` is the `rows × chunk_len`
/// storage and chunk `i` is row `i`.
///
/// # Panics
/// Panics when `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = effective_threads(n_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks: Mutex<Vec<(usize, &mut [T])>> =
        Mutex::new(data.chunks_mut(chunk_len).enumerate().rev().collect());
    std::thread::scope(|s| {
        for w in 0..threads {
            let (chunks, f) = (&chunks, &f);
            s.spawn(move || {
                as_worker(w, || loop {
                    // Claim a batch of rows per lock acquisition.
                    let mut batch = Vec::new();
                    {
                        let mut q = chunks.lock().expect("par_chunks_mut worker panicked");
                        for _ in 0..4 {
                            match q.pop() {
                                Some(item) => batch.push(item),
                                None => break,
                            }
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    for (i, chunk) in batch {
                        f(i, chunk);
                    }
                })
            });
        }
    });
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if max_threads() == 1 || is_worker_thread() {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| as_worker(0, fb));
        let a = fa();
        let b = hb.join().expect("join closure panicked");
        (a, b)
    })
}

/// One shard of a deterministically partitioned work grid: this
/// process owns every flat index `i` with `i % count == index`.
///
/// This is the cross-process analogue of the crate's thread fan-out:
/// experiment drivers flatten their `config × program` grids to a flat
/// index space, and `n` cooperating processes (or machines) each run
/// with a distinct `ShardSpec` (`KHAOS_SHARD=i/n`, or `--shard i/n` on
/// the experiment binaries). The partition laws the rest of the
/// workspace relies on (pinned by `tests/shard_e2e.rs`):
///
/// * **exact cover** — for any `n`, the shards `0/n .. n-1/n` own every
///   flat index exactly once (no index is dropped or duplicated);
/// * **order preservation** — each shard visits its owned indices in
///   ascending flat order, so per-shard output is a deterministic
///   subsequence of the unsharded run;
/// * **round-robin balance** — ownership interleaves (`i % n`), so
///   heterogeneous item costs (a `gcc`-sized program next to a
///   `cat`-sized one) spread across shards instead of clustering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// The degenerate single-shard spec owning the whole grid — what
    /// un-sharded runs use.
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// A shard `index/count`; errors unless `index < count` and
    /// `count >= 1`.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s) (want 0..{count})"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the canonical `i/n` form (`0/4`, `3/4`, …).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s
            .trim()
            .split_once('/')
            .ok_or_else(|| format!("`{s}` is not a shard spec (want `i/n`, e.g. `0/4`)"))?;
        let parse = |part: &str, what: &str| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("`{s}`: {what} `{part}` is not a non-negative integer"))
        };
        ShardSpec::new(parse(i, "shard index")?, parse(n, "shard count")?)
            .map_err(|e| format!("`{s}`: {e}"))
    }

    /// The shard named by the `KHAOS_SHARD` environment variable, or
    /// [`ShardSpec::FULL`] when the variable is **unset**. Any set
    /// value that is not a well-formed `i/n` — including blank and
    /// non-UTF-8 values — is an error naming the offending value,
    /// never a silent fallback: a shard quietly becoming `0/1` would
    /// redo (and re-persist) the whole grid on every machine of a
    /// sharded sweep, duplicating the fleet's work.
    pub fn from_env() -> Result<ShardSpec, String> {
        match std::env::var("KHAOS_SHARD") {
            Ok(v) if !v.trim().is_empty() => {
                ShardSpec::parse(&v).map_err(|e| format!("KHAOS_SHARD: {e}"))
            }
            Ok(v) => Err(format!(
                "KHAOS_SHARD: set but blank (`{v}`) — want `i/n` (e.g. `0/4`), or unset \
                 it for a full run"
            )),
            Err(std::env::VarError::NotPresent) => Ok(ShardSpec::FULL),
            Err(std::env::VarError::NotUnicode(v)) => Err(format!(
                "KHAOS_SHARD: not valid UTF-8 ({v:?}) — want `i/n` (e.g. `0/4`)"
            )),
        }
    }

    /// This shard's index (`0..count`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True for the degenerate single-shard spec (the whole grid).
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// True when this shard owns flat grid index `i`.
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// True when this shard owns a hash-identified work item (used
    /// where items have stable identities but no natural grid index,
    /// e.g. `khaos-obf --shard` partitioning by module-name hash).
    pub fn owns_hash(&self, h: u64) -> bool {
        (h % self.count as u64) as usize == self.index
    }

    /// The flat indices of `0..n` this shard owns, ascending.
    pub fn indices(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (self.index..n).step_by(self.count)
    }

    /// Filters a flattened work grid down to this shard's items,
    /// preserving order (ownership is by position in `items`).
    pub fn select<T>(&self, items: Vec<T>) -> Vec<T> {
        if self.is_full() {
            return items;
        }
        items
            .into_iter()
            .enumerate()
            .filter(|(i, _)| self.owns(*i))
            .map(|(_, x)| x)
            .collect()
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_parallelism_degrades_to_sequential() {
        assert!(!is_worker_thread(), "test thread is not a worker");
        // Inner par_map calls from inside workers must still produce
        // correct results — and must observe the worker flag so they
        // do not spawn a second level of threads.
        let outer = par_map(8, |i| {
            let inner = par_map(50, |j| i * 50 + j);
            let flag_seen = if max_threads() > 1 {
                is_worker_thread()
            } else {
                true
            };
            (inner.iter().sum::<usize>(), flag_seen)
        });
        for (i, (sum, flag_seen)) in outer.iter().enumerate() {
            let want: usize = (0..50).map(|j| i * 50 + j).sum();
            assert_eq!(*sum, want);
            assert!(flag_seen, "worker {i} did not see the nesting flag");
        }
        assert!(!is_worker_thread(), "flag must reset after the fan-out");
    }

    #[test]
    fn thread_override_parsing_and_fallback() {
        // Parseable values win (clamped to >= 1 worker).
        assert_eq!(parse_thread_override("8"), Some(8));
        assert_eq!(parse_thread_override("  4 "), Some(4));
        assert_eq!(parse_thread_override("0"), Some(1), "zero clamps to one");
        // Unparseable values are rejected — max_threads then falls back.
        for bad in ["", "eight", "-2", "3.5", "1x"] {
            assert_eq!(parse_thread_override(bad), None, "`{bad}`");
        }
        // The fallback path end-to-end: with an unparseable override in
        // the environment, max_threads must ignore it (warning once)
        // and report the machine's parallelism, never zero. Other tests
        // in this binary that race this env var at worst also take the
        // fallback, which is the default behaviour anyway.
        std::env::set_var("KHAOS_THREADS", "not-a-number");
        let fallback = max_threads();
        std::env::remove_var("KHAOS_THREADS");
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(fallback, machine, "bad override must fall back");
        assert!(fallback >= 1);
    }

    #[test]
    fn worker_ids_are_lane_indices() {
        assert_eq!(worker_id(), None, "non-worker threads have no lane");
        let threads = max_threads();
        let ids = par_map(256, |_| worker_id());
        for id in &ids {
            if threads > 1 {
                let lane = id.expect("parallel fan-out must run on workers");
                assert!(lane < threads.min(256), "lane {lane} out of range");
            } else {
                assert_eq!(*id, None, "sequential fallback stays off-pool");
            }
        }
        assert_eq!(worker_id(), None, "lane must reset after the fan-out");
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(1000, |i| i * 2);
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn par_map_handles_edges() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_slice_matches_sequential() {
        let items: Vec<u64> = (0..313).collect();
        let got = par_map_slice(&items, |x| x * x);
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_chunks_mut_fills_rows() {
        let rows = 57;
        let cols = 13;
        let mut data = vec![0usize; rows * cols];
        par_chunks_mut(&mut data, cols, |i, chunk| {
            assert_eq!(chunk.len(), cols);
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = i * cols + j;
            }
        });
        for (k, x) in data.iter().enumerate() {
            assert_eq!(*x, k);
        }
    }

    #[test]
    fn par_chunks_mut_ragged_tail() {
        let mut data = vec![0u32; 10];
        par_chunks_mut(&mut data, 4, |i, chunk| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par_map_with_matches_sequential_and_reuses_scratch() {
        // The scratch is a reusable buffer; the output must not depend
        // on what a previous index left in it.
        let got = par_map_with(513, Vec::<usize>::new, |scratch, i| {
            scratch.push(i); // deliberately dirty the scratch
            i * 3
        });
        let want: Vec<usize> = (0..513).map(|i| i * 3).collect();
        assert_eq!(got, want);
        assert_eq!(par_map_with(0, || (), |_, i| i), Vec::<usize>::new());
    }

    #[test]
    fn shard_parse_display_round_trip_and_rejects_bad_specs() {
        for (i, n) in [(0, 1), (0, 2), (1, 2), (6, 7)] {
            let s = ShardSpec::new(i, n).unwrap();
            assert_eq!(ShardSpec::parse(&s.to_string()).unwrap(), s);
            assert_eq!((s.index(), s.count()), (i, n));
        }
        assert!(ShardSpec::FULL.is_full());
        assert!(!ShardSpec::new(0, 2).unwrap().is_full());
        for bad in ["", "3", "a/b", "1/0", "2/2", "5/4", "-1/2", "1/2/3"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    /// Pins the loud-failure contract of `ShardSpec::from_env`: a set
    /// but malformed (or blank) `KHAOS_SHARD` must error *naming the
    /// offending value*, never silently fall back to a full run — the
    /// silent `0/1` fallback would make every machine of a sweep redo
    /// the whole grid. One test, serial sections: the variable is
    /// process-global state.
    #[test]
    fn from_env_fails_loudly_on_malformed_values() {
        // set_var/remove_var on a process-global is why this is a
        // single sequential test, not a loop of parallel cases.
        std::env::remove_var("KHAOS_SHARD");
        assert_eq!(ShardSpec::from_env().unwrap(), ShardSpec::FULL);
        for (val, named) in [
            ("", "blank"),
            ("   ", "blank"),
            ("banana", "`banana`"),
            ("1/0", "`1/0`"),
            ("5/4", "`5/4`"),
            ("1/2/3", "`1/2/3`"),
        ] {
            std::env::set_var("KHAOS_SHARD", val);
            let err = ShardSpec::from_env().expect_err(&format!("`{val}` must not parse"));
            assert!(
                err.contains("KHAOS_SHARD"),
                "error must name the variable: {err}"
            );
            assert!(
                err.contains(named),
                "error must name the offending value `{val}`: {err}"
            );
        }
        std::env::set_var("KHAOS_SHARD", "2/3");
        assert_eq!(
            ShardSpec::from_env().unwrap(),
            ShardSpec::new(2, 3).unwrap()
        );
        std::env::remove_var("KHAOS_SHARD");
    }

    #[test]
    fn shards_exactly_cover_any_grid() {
        for n in 1usize..8 {
            for len in [0usize, 1, 2, 7, 64, 101] {
                let mut seen = vec![0u32; len];
                for index in 0..n {
                    let shard = ShardSpec::new(index, n).unwrap();
                    let mut last = None;
                    for i in shard.indices(len) {
                        assert!(shard.owns(i));
                        assert!(last.map(|l| l < i).unwrap_or(true), "ascending order");
                        last = Some(i);
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "{n} shards over {len} items must cover each index exactly once"
                );
            }
        }
    }

    #[test]
    fn shard_select_preserves_order_and_partitions() {
        let items: Vec<u32> = (0..11).collect();
        let a = ShardSpec::new(0, 3).unwrap().select(items.clone());
        let b = ShardSpec::new(1, 3).unwrap().select(items.clone());
        let c = ShardSpec::new(2, 3).unwrap().select(items.clone());
        assert_eq!(a, vec![0, 3, 6, 9]);
        assert_eq!(b, vec![1, 4, 7, 10]);
        assert_eq!(c, vec![2, 5, 8]);
        assert_eq!(ShardSpec::FULL.select(items.clone()), items);
        // owns_hash partitions the hash space the same way.
        for h in 0u64..32 {
            let owners = (0..3)
                .filter(|&i| ShardSpec::new(i, 3).unwrap().owns_hash(h))
                .count();
            assert_eq!(owners, 1, "hash {h} must have exactly one owner");
        }
    }
}
