//! # khaos-par — scoped-thread data parallelism
//!
//! A small, dependency-free rayon stand-in for the offline build
//! environment. Work is fanned out over `std::thread::scope` with
//! dynamic block scheduling (an atomic cursor over fixed-size index
//! blocks), so uneven task costs — obfuscating a `gcc`-sized module vs
//! a `cat`-sized one — still balance across cores.
//!
//! * [`par_map`] / [`par_map_slice`] — order-preserving parallel maps;
//! * [`par_chunks_mut`] — parallel in-place fill of disjoint chunks of
//!   a flat buffer (the similarity-matrix row loop);
//! * [`max_threads`] — the worker count, overridable with the
//!   `KHAOS_THREADS` environment variable (`KHAOS_THREADS=1` forces
//!   fully sequential execution, useful for profiling and debugging).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set while this thread is a khaos-par worker: nested `par_*`
    /// calls then run sequentially instead of spawning another full
    /// complement of threads (which would oversubscribe to ~cores²
    /// when an experiment fan-out reaches the engine's parallel
    /// matrix rows).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on threads spawned by this crate's parallel helpers. Nested
/// parallel calls detect this and degrade to sequential execution, so
/// total concurrency stays at one level of [`max_threads`].
pub fn is_worker_thread() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Runs `f` with this thread marked as a worker.
fn as_worker<T>(f: impl FnOnce() -> T) -> T {
    IN_WORKER.with(|w| w.set(true));
    let out = f();
    IN_WORKER.with(|w| w.set(false));
    out
}

/// Parses a `KHAOS_THREADS` override: trimmed integer, clamped to at
/// least one worker. `None` when the value does not parse (the caller
/// falls back to the machine's parallelism).
fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Warns — once per process — that a `KHAOS_THREADS` value was ignored.
/// A silently ignored override is worse than no override: a profiling
/// run the user believes is single-threaded would quietly fan out.
fn warn_bad_thread_override(raw: &str) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "khaos-par: ignoring unparseable KHAOS_THREADS value `{raw}` \
             (want a positive integer); using available parallelism"
        );
    });
}

/// Number of worker threads to use: `KHAOS_THREADS` when set and
/// parseable (a bad value warns once and is ignored), otherwise the
/// machine's available parallelism.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("KHAOS_THREADS") {
        match parse_thread_override(&v) {
            Some(n) => return n,
            None => warn_bad_thread_override(&v),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sequential-or-parallel decision: tiny workloads are not worth the
/// thread spawn overhead, and nested calls from inside a worker run
/// sequentially (see [`is_worker_thread`]).
fn effective_threads(n: usize) -> usize {
    if n < 2 || is_worker_thread() {
        return 1;
    }
    max_threads().min(n)
}

/// Parallel, order-preserving map over `0..n`.
///
/// Spawns scoped workers that claim fixed-size index blocks from an
/// atomic cursor; results are reassembled in index order. Falls back to
/// a plain loop when `n` is small or one thread is available.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    // Block size: ~4 blocks per worker bounds scheduling overhead while
    // keeping enough blocks for balance.
    let block = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                as_worker(|| loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + block).min(n);
                    let part: Vec<T> = (start..end).map(&f).collect();
                    done.lock()
                        .expect("par_map worker panicked")
                        .push((start, part));
                })
            });
        }
    });
    let mut parts = done.into_inner().expect("par_map worker panicked");
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Parallel, order-preserving map over a slice.
pub fn par_map_slice<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map(items.len(), |i| f(&items[i]))
}

/// Splits `data` into consecutive `chunk_len`-sized chunks and fills
/// them in parallel; `f` receives each chunk's index and contents.
///
/// This is the flat-matrix row loop: `data` is the `rows × chunk_len`
/// storage and chunk `i` is row `i`.
///
/// # Panics
/// Panics when `chunk_len` is zero.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = effective_threads(n_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks: Mutex<Vec<(usize, &mut [T])>> =
        Mutex::new(data.chunks_mut(chunk_len).enumerate().rev().collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                as_worker(|| loop {
                    // Claim a batch of rows per lock acquisition.
                    let mut batch = Vec::new();
                    {
                        let mut q = chunks.lock().expect("par_chunks_mut worker panicked");
                        for _ in 0..4 {
                            match q.pop() {
                                Some(item) => batch.push(item),
                                None => break,
                            }
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    for (i, chunk) in batch {
                        f(i, chunk);
                    }
                })
            });
        }
    });
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if max_threads() == 1 || is_worker_thread() {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| as_worker(fb));
        let a = fa();
        let b = hb.join().expect("join closure panicked");
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_parallelism_degrades_to_sequential() {
        assert!(!is_worker_thread(), "test thread is not a worker");
        // Inner par_map calls from inside workers must still produce
        // correct results — and must observe the worker flag so they
        // do not spawn a second level of threads.
        let outer = par_map(8, |i| {
            let inner = par_map(50, |j| i * 50 + j);
            let flag_seen = if max_threads() > 1 {
                is_worker_thread()
            } else {
                true
            };
            (inner.iter().sum::<usize>(), flag_seen)
        });
        for (i, (sum, flag_seen)) in outer.iter().enumerate() {
            let want: usize = (0..50).map(|j| i * 50 + j).sum();
            assert_eq!(*sum, want);
            assert!(flag_seen, "worker {i} did not see the nesting flag");
        }
        assert!(!is_worker_thread(), "flag must reset after the fan-out");
    }

    #[test]
    fn thread_override_parsing_and_fallback() {
        // Parseable values win (clamped to >= 1 worker).
        assert_eq!(parse_thread_override("8"), Some(8));
        assert_eq!(parse_thread_override("  4 "), Some(4));
        assert_eq!(parse_thread_override("0"), Some(1), "zero clamps to one");
        // Unparseable values are rejected — max_threads then falls back.
        for bad in ["", "eight", "-2", "3.5", "1x"] {
            assert_eq!(parse_thread_override(bad), None, "`{bad}`");
        }
        // The fallback path end-to-end: with an unparseable override in
        // the environment, max_threads must ignore it (warning once)
        // and report the machine's parallelism, never zero. Other tests
        // in this binary that race this env var at worst also take the
        // fallback, which is the default behaviour anyway.
        std::env::set_var("KHAOS_THREADS", "not-a-number");
        let fallback = max_threads();
        std::env::remove_var("KHAOS_THREADS");
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(fallback, machine, "bad override must fall back");
        assert!(fallback >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(1000, |i| i * 2);
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn par_map_handles_edges() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_slice_matches_sequential() {
        let items: Vec<u64> = (0..313).collect();
        let got = par_map_slice(&items, |x| x * x);
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_chunks_mut_fills_rows() {
        let rows = 57;
        let cols = 13;
        let mut data = vec![0usize; rows * cols];
        par_chunks_mut(&mut data, cols, |i, chunk| {
            assert_eq!(chunk.len(), cols);
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = i * cols + j;
            }
        });
        for (k, x) in data.iter().enumerate() {
            assert_eq!(*x, k);
        }
    }

    #[test]
    fn par_chunks_mut_ragged_tail() {
        let mut data = vec![0u32; 10];
        par_chunks_mut(&mut data, 4, |i, chunk| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
