//! Deep unwinding scenarios: nested invokes, rethrow, longjmp across
//! multiple frames, and interaction of both mechanisms with stack
//! allocation — the machinery fission/fusion must not break.

use khaos_ir::builder::FunctionBuilder;
use khaos_ir::{BinOp, Callee, CmpPred, ExtFunc, ExtId, Module, Operand, Type};
use khaos_vm::{run_function, Value};

fn throw_ext(m: &mut Module) -> ExtId {
    m.declare_external(ExtFunc {
        name: "throw_exc".into(),
        params: vec![Type::I64],
        ret_ty: Type::Void,
        variadic: false,
    })
}

/// Exceptions unwind through intermediate plain-call frames.
#[test]
fn exception_skips_plain_frames() {
    let mut m = Module::new("t");
    let te = throw_ext(&mut m);

    let mut leaf = FunctionBuilder::new("leaf", Type::Void);
    leaf.call_ext(te, Type::Void, vec![Operand::const_int(Type::I64, 41)]);
    leaf.ret(None);
    let leaf = m.push_function(leaf.finish());

    // Two plain frames between the throw and the catch.
    let mut mid1 = FunctionBuilder::new("mid1", Type::Void);
    mid1.call(leaf, Type::Void, vec![]);
    mid1.ret(None);
    let mid1 = m.push_function(mid1.finish());
    let mut mid2 = FunctionBuilder::new("mid2", Type::Void);
    mid2.call(mid1, Type::Void, vec![]);
    mid2.ret(None);
    let mid2 = m.push_function(mid2.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let exc = main.new_local(Type::I64);
    let normal = main.new_block();
    let pad = main.new_pad_block(Some(exc));
    main.invoke(Callee::Direct(mid2), Type::Void, vec![], normal, pad);
    main.switch_to(normal);
    main.ret(Some(Operand::const_int(Type::I64, 0)));
    main.switch_to(pad);
    let plus = main.bin(BinOp::Add, Type::I64, Operand::local(exc), Operand::const_int(Type::I64, 1));
    main.ret(Some(Operand::local(plus)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 42);
}

/// An inner handler catches first; rethrowing reaches the outer handler.
#[test]
fn nested_invokes_catch_innermost_and_rethrow() {
    let mut m = Module::new("t");
    let te = throw_ext(&mut m);

    let mut thrower = FunctionBuilder::new("thrower", Type::Void);
    thrower.call_ext(te, Type::Void, vec![Operand::const_int(Type::I64, 5)]);
    thrower.ret(None);
    let thrower = m.push_function(thrower.finish());

    // inner: catches, adds 100, rethrows.
    let mut inner = FunctionBuilder::new("inner", Type::Void);
    let exc = inner.new_local(Type::I64);
    let normal = inner.new_block();
    let pad = inner.new_pad_block(Some(exc));
    inner.invoke(Callee::Direct(thrower), Type::Void, vec![], normal, pad);
    inner.switch_to(normal);
    inner.ret(None);
    inner.switch_to(pad);
    let bumped = inner.bin(BinOp::Add, Type::I64, Operand::local(exc), Operand::const_int(Type::I64, 100));
    inner.call_ext(te, Type::Void, vec![Operand::local(bumped)]);
    inner.ret(None);
    let inner = m.push_function(inner.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let exc2 = main.new_local(Type::I64);
    let normal2 = main.new_block();
    let pad2 = main.new_pad_block(Some(exc2));
    main.invoke(Callee::Direct(inner), Type::Void, vec![], normal2, pad2);
    main.switch_to(normal2);
    main.ret(Some(Operand::const_int(Type::I64, -1)));
    main.switch_to(pad2);
    main.ret(Some(Operand::local(exc2)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 105);
}

/// longjmp pops several frames and releases their stack allocations.
#[test]
fn longjmp_across_frames_releases_stack() {
    let mut m = Module::new("t");
    let setjmp = m.declare_external(ExtFunc {
        name: "setjmp".into(),
        params: vec![Type::Ptr],
        ret_ty: Type::I32,
        variadic: false,
    });
    let longjmp = m.declare_external(ExtFunc {
        name: "longjmp".into(),
        params: vec![Type::Ptr, Type::I32],
        ret_ty: Type::Void,
        variadic: false,
    });

    // deep(buf, n): allocates 64 bytes, recurses, longjmps at n == 0.
    let mut deep = FunctionBuilder::new("deep", Type::Void);
    let buf = deep.add_param(Type::Ptr);
    let n = deep.add_param(Type::I64);
    let big = deep.alloca(64);
    deep.store(Type::I64, Operand::local(n), Operand::local(big));
    let jump_bb = deep.new_block();
    let recurse_bb = deep.new_block();
    let z = deep.cmp(CmpPred::Sle, Type::I64, Operand::local(n), Operand::const_int(Type::I64, 0));
    deep.branch(Operand::local(z), jump_bb, recurse_bb);
    deep.switch_to(jump_bb);
    deep.call_ext(longjmp, Type::Void, vec![Operand::local(buf), Operand::const_int(Type::I32, 7)]);
    deep.ret(None);
    deep.switch_to(recurse_bb);
    let nm1 = deep.bin(BinOp::Sub, Type::I64, Operand::local(n), Operand::const_int(Type::I64, 1));
    deep.call(khaos_ir::FuncId(0), Type::Void, vec![Operand::local(buf), Operand::local(nm1)]);
    deep.ret(None);
    let deep_id = m.push_function(deep.finish());
    assert_eq!(deep_id, khaos_ir::FuncId(0));

    // main: run the setjmp/longjmp cycle many times — if frames leaked,
    // the arena would overflow well within the loop.
    let mut main = FunctionBuilder::new("main", Type::I64);
    let jb = main.alloca(8);
    let count = main.new_local(Type::I64);
    let head = main.new_block();
    let body = main.new_block();
    let after = main.new_block();
    let done = main.new_block();
    main.copy_to(count, Operand::const_int(Type::I64, 0));
    main.jump(head);
    main.switch_to(head);
    let c = main.cmp(CmpPred::Slt, Type::I64, Operand::local(count), Operand::const_int(Type::I64, 2000));
    main.branch(Operand::local(c), body, done);
    main.switch_to(body);
    let r = main.call_ext(setjmp, Type::I32, vec![Operand::local(jb)]).unwrap();
    let came_back = main.new_block();
    let go_deep = main.new_block();
    let rz = main.cmp(CmpPred::Eq, Type::I32, Operand::local(r), Operand::const_int(Type::I32, 0));
    main.branch(Operand::local(rz), go_deep, came_back);
    main.switch_to(go_deep);
    main.call(deep_id, Type::Void, vec![Operand::local(jb), Operand::const_int(Type::I64, 20)]);
    main.ret(Some(Operand::const_int(Type::I64, -1))); // unreachable: deep always longjmps
    main.switch_to(came_back);
    main.jump(after);
    main.switch_to(after);
    let ni = main.bin(BinOp::Add, Type::I64, Operand::local(count), Operand::const_int(Type::I64, 1));
    main.copy_to(count, Operand::local(ni));
    main.jump(head);
    main.switch_to(done);
    main.ret(Some(Operand::local(count)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    let r = run_function(&m, "main", &[]).unwrap();
    assert_eq!(r.exit_code, 2000, "2000 longjmp cycles without leaking stack");
}

/// Arguments of every numeric class round-trip through calls.
#[test]
fn mixed_argument_classes() {
    let mut m = Module::new("t");
    let mut callee = FunctionBuilder::new("mix", Type::F64);
    let a = callee.add_param(Type::I32);
    let b = callee.add_param(Type::F64);
    let c = callee.add_param(Type::I64);
    let aw = callee.cast(khaos_ir::CastKind::SExt, Operand::local(a), Type::I32, Type::I64);
    let s = callee.bin(BinOp::Add, Type::I64, Operand::local(aw), Operand::local(c));
    let sf = callee.cast(khaos_ir::CastKind::SiToFp, Operand::local(s), Type::I64, Type::F64);
    let r = callee.bin(BinOp::FAdd, Type::F64, Operand::local(sf), Operand::local(b));
    callee.ret(Some(Operand::local(r)));
    let cid = m.push_function(callee.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let r = main
        .call(
            cid,
            Type::F64,
            vec![
                Operand::const_int(Type::I32, -3),
                Operand::const_float(Type::F64, 0.5),
                Operand::const_int(Type::I64, 10),
            ],
        )
        .unwrap();
    let half = main.bin(BinOp::FMul, Type::F64, Operand::local(r), Operand::const_float(Type::F64, 2.0));
    let i = main.cast(khaos_ir::CastKind::FpToSi, Operand::local(half), Type::F64, Type::I64);
    main.ret(Some(Operand::local(i)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    // (-3 + 10 + 0.5) * 2 = 15
    assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 15);
    let _ = Value::Int(0);
}
