//! The interpreter proper: frames, dispatch, calls, unwinding.

use crate::cost::CostModel;
use crate::libc::{self, ExtOutcome};
use crate::memory::{addr_to_func, func_addr, Memory};
use crate::value::Value;
use khaos_ir::constant::normalize_int;
use khaos_ir::{
    BinOp, BlockId, Callee, CastKind, CmpPred, FuncId, Inst, LocalId, Module, Operand, Term, Type,
    UnOp,
};
use std::collections::HashMap;
use std::fmt;

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// A dynamic fault: bad memory access, division by zero, call through a
    /// tagged/invalid pointer, type confusion, etc.
    Trap(String),
    /// The step budget ran out (probably an accidental infinite loop).
    OutOfFuel,
    /// An exception reached the top of the stack.
    UncaughtException(i64),
    /// The module has no runnable entry function.
    NoEntry(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Trap(m) => write!(f, "trap: {m}"),
            VmError::OutOfFuel => write!(f, "out of fuel (step budget exhausted)"),
            VmError::UncaughtException(v) => write!(f, "uncaught exception {v}"),
            VmError::NoEntry(n) => write!(f, "no entry function `{n}`"),
        }
    }
}

impl std::error::Error for VmError {}

/// Execution configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Values returned by the `input_i64` external, in order (cycled).
    pub inputs: Vec<i64>,
    /// Maximum interpreter steps before [`VmError::OutOfFuel`].
    pub max_steps: u64,
    /// Size of the data arena in bytes (globals + heap + stack).
    pub data_size: usize,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            inputs: Vec::new(),
            max_steps: 200_000_000,
            data_size: 1 << 22,
            cost: CostModel::default(),
        }
    }
}

/// The observable result of a run: the differential-testing oracle plus the
/// simulated performance counters.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Everything printed through the output externals.
    pub output: Vec<i64>,
    /// The entry function's return value (or `exit` argument).
    pub exit_code: i64,
    /// Simulated cycles (the paper's "runtime").
    pub cycles: u64,
    /// Interpreter steps executed.
    pub steps: u64,
}

#[derive(Debug)]
struct Pending {
    dst: Option<LocalId>,
    /// `Some((normal, unwind))` when the pending call was an invoke.
    invoke: Option<(BlockId, BlockId)>,
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    locals: Vec<Value>,
    block: BlockId,
    inst: usize,
    stack_mark: u64,
    pending: Option<Pending>,
}

#[derive(Debug)]
pub(crate) struct JmpSnapshot {
    pub depth: usize,
    pub func: FuncId,
    pub block: BlockId,
    pub inst: usize,
    pub dst: Option<LocalId>,
    pub stack_mark: u64,
}

/// The interpreter. Most users want [`run_to_completion`]; `Vm` is exposed
/// for tests that need to poke at intermediate state.
pub struct Vm<'m> {
    m: &'m Module,
    pub(crate) mem: Memory,
    frames: Vec<Frame>,
    pub(crate) output: Vec<i64>,
    pub(crate) input_pos: usize,
    pub(crate) config: RunConfig,
    pub(crate) snapshots: Vec<JmpSnapshot>,
    pub(crate) file_offsets: Vec<u64>,
    /// 1-entry branch history per (function, block) site: last successor.
    predictor: HashMap<(u32, u32), BlockId>,
    /// Dual-issue pairing state for consecutive plain ALU ops.
    alu_pair: bool,
    cycles: u64,
    steps: u64,
    exit: Option<i64>,
}

enum Flow {
    Continue,
    Done(i64),
}

impl<'m> Vm<'m> {
    /// Creates a VM for `m`.
    pub fn new(m: &'m Module, config: RunConfig) -> Self {
        let mem = Memory::new(m, config.data_size);
        Vm {
            m,
            mem,
            frames: Vec::new(),
            output: Vec::new(),
            input_pos: 0,
            config,
            snapshots: Vec::new(),
            file_offsets: Vec::new(),
            predictor: HashMap::new(),
            alu_pair: false,
            cycles: 0,
            steps: 0,
            exit: None,
        }
    }

    /// Charges a control transfer at the current site with simple 1-entry
    /// branch prediction: stable directions cost [`CostModel::branch`],
    /// direction changes cost [`CostModel::branch_miss`].
    fn charge_branch(&mut self, multi_way_scan: usize, actual: BlockId) {
        let fr = self.frames.last().expect("frame");
        let site = (fr.func.0, fr.block.0);
        let predicted = self.predictor.insert(site, actual);
        let scan = self.config.cost.switch_case * (multi_way_scan as u64 / 2);
        self.cycles += scan
            + if predicted == Some(actual) {
                self.config.cost.branch
            } else {
                self.config.cost.branch_miss
            };
    }

    /// Module being executed.
    pub fn module(&self) -> &Module {
        self.m
    }

    fn trap<T>(&self, msg: impl Into<String>) -> Result<T, VmError> {
        Err(VmError::Trap(msg.into()))
    }

    fn read_operand(&self, fr: &Frame, o: &Operand) -> Value {
        match o {
            Operand::Local(l) => fr.locals[l.index()],
            Operand::Const(c) => Value::from_const(c),
        }
    }

    fn push_frame(
        &mut self,
        func: FuncId,
        args: &[Value],
        strict_arity: bool,
    ) -> Result<(), VmError> {
        let f = self.m.function(func);
        if strict_arity && !f.variadic && args.len() != f.param_count as usize {
            return self.trap(format!(
                "call to `{}` with {} args, expected {}",
                f.name,
                args.len(),
                f.param_count
            ));
        }
        if self.frames.len() >= 1 << 14 {
            return self.trap("call stack overflow");
        }
        let mut locals: Vec<Value> = f.locals.iter().map(|t| Value::zero(*t)).collect();
        for (i, a) in args.iter().take(f.param_count as usize).enumerate() {
            let ty = f.locals[i];
            // Indirect K&R-style calls may pass the compatible wider class;
            // normalize into the declared parameter type.
            let v = match (a, ty.is_float()) {
                (Value::Int(_), false) | (Value::Float(_), true) => a.normalize(ty),
                _ => return self.trap(format!("argument class mismatch calling `{}`", f.name)),
            };
            locals[i] = v;
        }
        self.frames.push(Frame {
            func,
            locals,
            block: f.entry(),
            inst: 0,
            stack_mark: self.mem.stack_mark(),
            pending: None,
        });
        Ok(())
    }

    fn do_return(&mut self, value: Option<Value>) -> Result<Flow, VmError> {
        self.cycles += self.config.cost.ret;
        let fr = self.frames.pop().expect("return with no frame");
        self.mem.stack_release(fr.stack_mark);
        // Drop setjmp snapshots pointing into the dead frame.
        self.snapshots.retain(|s| s.depth <= self.frames.len());
        let Some(caller) = self.frames.last_mut() else {
            return Ok(Flow::Done(value.map_or(0, Value::as_int)));
        };
        let pending = caller.pending.take().expect("caller must have pending call");
        if let Some(d) = pending.dst {
            let ty = self.m.function(caller.func).locals[d.index()];
            let v = value.ok_or(VmError::Trap("void return into value context".into()))?;
            caller.locals[d.index()] = v.normalize(ty);
        }
        if let Some((normal, _)) = pending.invoke {
            caller.block = normal;
            caller.inst = 0;
        }
        Ok(Flow::Continue)
    }

    pub(crate) fn unwind(&mut self, exc: i64) -> Result<(), VmError> {
        loop {
            let Some(fr) = self.frames.pop() else {
                return Err(VmError::UncaughtException(exc));
            };
            self.mem.stack_release(fr.stack_mark);
            self.snapshots.retain(|s| s.depth <= self.frames.len());
            let Some(caller) = self.frames.last_mut() else {
                return Err(VmError::UncaughtException(exc));
            };
            let pending = caller.pending.take().expect("caller must have pending call");
            if let Some((_, unwind)) = pending.invoke {
                caller.block = unwind;
                caller.inst = 0;
                let func = self.m.function(caller.func);
                if let Some(pad) = &func.block(unwind).pad {
                    if let Some(d) = pad.dst {
                        caller.locals[d.index()] = Value::Int(exc);
                    }
                }
                return Ok(());
            }
            // Plain call: keep popping.
        }
    }

    /// Enters the landing pad of the *current* frame's invoke (used when an
    /// invoked external throws: the exception is caught by this invoke).
    fn unwind_into_current(&mut self, exc: i64, unwind: BlockId) {
        let fr = self.frames.last_mut().expect("frame exists");
        fr.pending = None;
        fr.block = unwind;
        fr.inst = 0;
        let func = self.m.function(fr.func);
        if let Some(pad) = &func.block(unwind).pad {
            if let Some(d) = pad.dst {
                fr.locals[d.index()] = Value::Int(exc);
            }
        }
    }

    pub(crate) fn do_longjmp(&mut self, id: i64, val: i64) -> Result<(), VmError> {
        let idx = id as usize;
        if idx >= self.snapshots.len() {
            return self.trap(format!("longjmp with invalid jmpbuf id {id}"));
        }
        let (depth, func, block, inst, dst, stack_mark) = {
            let s = &self.snapshots[idx];
            (s.depth, s.func, s.block, s.inst, s.dst, s.stack_mark)
        };
        if depth > self.frames.len() {
            return self.trap("longjmp target frame no longer on the stack");
        }
        self.frames.truncate(depth);
        let fr = self.frames.last_mut().expect("longjmp with empty stack");
        if fr.func != func {
            return self.trap("longjmp target frame mismatch");
        }
        fr.pending = None;
        fr.block = block;
        fr.inst = inst;
        if let Some(d) = dst {
            let v = if val == 0 { 1 } else { val };
            fr.locals[d.index()] = Value::Int(normalize_int(v, Type::I32));
        }
        self.mem.stack_release(stack_mark);
        self.snapshots.retain(|s| s.depth <= self.frames.len());
        Ok(())
    }

    fn resolve_indirect(&self, addr: i64) -> Result<FuncId, VmError> {
        let a = addr as u64;
        match addr_to_func(a, self.m.functions.len()) {
            Some(f) => Ok(f),
            None => Err(VmError::Trap(format!(
                "indirect call to invalid address {a:#x}{}",
                if a & 0xe != 0 { " (tag bits still set — missing decode?)" } else { "" }
            ))),
        }
    }

    fn eval_call(
        &mut self,
        callee: Callee,
        args: Vec<Value>,
        dst: Option<LocalId>,
        invoke: Option<(BlockId, BlockId)>,
    ) -> Result<Flow, VmError> {
        let cost = &self.config.cost;
        self.cycles += cost.arg_cost(args.len());
        match callee {
            Callee::Direct(f) => {
                self.cycles += cost.call + invoke.map_or(0, |_| cost.invoke_extra);
                let caller = self.frames.last_mut().expect("frame exists");
                caller.pending = Some(Pending { dst, invoke });
                self.push_frame(f, &args, true)?;
                Ok(Flow::Continue)
            }
            Callee::Indirect(_) => unreachable!("resolved before eval_call"),
            Callee::Ext(e) => {
                self.cycles += cost.ext_call;
                let name = self.m.external(e).name.clone();
                match libc::dispatch(self, &name, &args)? {
                    ExtOutcome::Ret(v) => {
                        let fr = self.frames.last_mut().expect("frame exists");
                        if let Some(d) = dst {
                            let ty = self.m.function(fr.func).locals[d.index()];
                            let v = v.ok_or(VmError::Trap(format!(
                                "external `{name}` returned void into value context"
                            )))?;
                            fr.locals[d.index()] = v.normalize(ty);
                        }
                        if let Some((normal, _)) = invoke {
                            fr.block = normal;
                            fr.inst = 0;
                        }
                        Ok(Flow::Continue)
                    }
                    ExtOutcome::Throw(exc) => {
                        if let Some((_, unwind)) = invoke {
                            self.unwind_into_current(exc, unwind);
                            Ok(Flow::Continue)
                        } else {
                            self.unwind(exc)?;
                            Ok(Flow::Continue)
                        }
                    }
                    ExtOutcome::Exit(code) => Ok(Flow::Done(code)),
                    ExtOutcome::Setjmp { buf } => {
                        let fr = self.frames.last().expect("frame exists");
                        let snap = JmpSnapshot {
                            depth: self.frames.len(),
                            func: fr.func,
                            block: fr.block,
                            inst: fr.inst,
                            dst,
                            stack_mark: self.mem.stack_mark(),
                        };
                        let id = self.snapshots.len() as i64;
                        self.snapshots.push(snap);
                        self.mem
                            .write(buf as u64, Type::I64, Value::Int(id))
                            .map_err(|e| VmError::Trap(format!("setjmp buffer: {}", e.message)))?;
                        let fr = self.frames.last_mut().expect("frame exists");
                        if let Some(d) = dst {
                            fr.locals[d.index()] = Value::Int(0);
                        }
                        if let Some((normal, _)) = invoke {
                            fr.block = normal;
                            fr.inst = 0;
                        }
                        Ok(Flow::Continue)
                    }
                    ExtOutcome::Longjmp { id, val } => {
                        self.do_longjmp(id, val)?;
                        Ok(Flow::Continue)
                    }
                }
            }
        }
    }

    fn step(&mut self) -> Result<Flow, VmError> {
        let fr = self.frames.last().expect("step with no frame");
        let func = self.m.function(fr.func);
        let block = func.block(fr.block);

        if fr.inst < block.insts.len() {
            let inst = block.insts[fr.inst].clone();
            // Advance before executing so calls resume correctly.
            self.frames.last_mut().expect("frame").inst += 1;
            // Dual-issue pairing: every second consecutive plain ALU op is
            // free (hidden by superscalar issue).
            if CostModel::is_pairable_alu(&inst) {
                if self.alu_pair {
                    self.alu_pair = false;
                } else {
                    self.alu_pair = true;
                    self.cycles += self.config.cost.inst_cost(&inst);
                }
            } else {
                self.alu_pair = false;
                self.cycles += self.config.cost.inst_cost(&inst);
            }
            self.exec_inst(inst)
        } else {
            let term = block.term.clone();
            self.exec_term(term)
        }
    }

    fn exec_inst(&mut self, inst: Inst) -> Result<Flow, VmError> {
        match inst {
            Inst::Bin { op, ty, dst, lhs, rhs } => {
                let fr = self.frames.last().expect("frame");
                let a = self.read_operand(fr, &lhs);
                let b = self.read_operand(fr, &rhs);
                let v = self.eval_bin(op, ty, a, b)?;
                self.frames.last_mut().expect("frame").locals[dst.index()] = v.normalize(ty);
                Ok(Flow::Continue)
            }
            Inst::Un { op, ty, dst, src } => {
                let fr = self.frames.last().expect("frame");
                let s = self.read_operand(fr, &src);
                let v = match op {
                    UnOp::Neg => Value::Int(s.as_int().wrapping_neg()),
                    UnOp::Not => Value::Int(!s.as_int()),
                    UnOp::FNeg => Value::Float(-s.as_float()),
                };
                self.frames.last_mut().expect("frame").locals[dst.index()] = v.normalize(ty);
                Ok(Flow::Continue)
            }
            Inst::Cmp { pred, ty, dst, lhs, rhs } => {
                let fr = self.frames.last().expect("frame");
                let a = self.read_operand(fr, &lhs);
                let b = self.read_operand(fr, &rhs);
                let r = eval_cmp(pred, ty, a, b);
                self.frames.last_mut().expect("frame").locals[dst.index()] =
                    Value::Int(r as i64);
                Ok(Flow::Continue)
            }
            Inst::Select { ty, dst, cond, on_true, on_false } => {
                let fr = self.frames.last().expect("frame");
                let c = self.read_operand(fr, &cond).as_int() & 1;
                let v = if c == 1 {
                    self.read_operand(fr, &on_true)
                } else {
                    self.read_operand(fr, &on_false)
                };
                self.frames.last_mut().expect("frame").locals[dst.index()] = v.normalize(ty);
                Ok(Flow::Continue)
            }
            Inst::Copy { ty, dst, src } => {
                let fr = self.frames.last().expect("frame");
                let v = self.read_operand(fr, &src);
                self.frames.last_mut().expect("frame").locals[dst.index()] = v.normalize(ty);
                Ok(Flow::Continue)
            }
            Inst::Cast { kind, dst, src, from, to } => {
                let fr = self.frames.last().expect("frame");
                let s = self.read_operand(fr, &src);
                let v = eval_cast(kind, s, from, to);
                self.frames.last_mut().expect("frame").locals[dst.index()] = v;
                Ok(Flow::Continue)
            }
            Inst::Load { ty, dst, addr } => {
                let fr = self.frames.last().expect("frame");
                let a = self.read_operand(fr, &addr).as_int() as u64;
                let v = self
                    .mem
                    .read(a, ty)
                    .map_err(|e| VmError::Trap(format!("load: {} at {:#x}", e.message, e.addr)))?;
                self.frames.last_mut().expect("frame").locals[dst.index()] = v;
                Ok(Flow::Continue)
            }
            Inst::Store { ty, addr, value } => {
                let fr = self.frames.last().expect("frame");
                let a = self.read_operand(fr, &addr).as_int() as u64;
                let v = self.read_operand(fr, &value).normalize(ty);
                self.mem
                    .write(a, ty, v)
                    .map_err(|e| VmError::Trap(format!("store: {} at {:#x}", e.message, e.addr)))?;
                Ok(Flow::Continue)
            }
            Inst::Alloca { dst, size, align } => {
                let a = self
                    .mem
                    .stack_alloc(size, align)
                    .map_err(|e| VmError::Trap(e.message))?;
                self.frames.last_mut().expect("frame").locals[dst.index()] = Value::Int(a as i64);
                Ok(Flow::Continue)
            }
            Inst::PtrAdd { dst, base, offset } => {
                let fr = self.frames.last().expect("frame");
                let b = self.read_operand(fr, &base).as_int();
                let o = self.read_operand(fr, &offset).as_int();
                self.frames.last_mut().expect("frame").locals[dst.index()] =
                    Value::Int(b.wrapping_add(o));
                Ok(Flow::Continue)
            }
            Inst::Call { dst, callee, args } => {
                let fr = self.frames.last().expect("frame");
                let vals: Vec<Value> = args.iter().map(|a| self.read_operand(fr, a)).collect();
                let callee = match callee {
                    Callee::Indirect(p) => {
                        let addr = self.read_operand(self.frames.last().expect("frame"), &p).as_int();
                        self.cycles += self.config.cost.indirect_extra;
                        Callee::Direct(self.resolve_indirect(addr)?)
                    }
                    c => c,
                };
                if let Callee::Direct(f) = callee {
                    // Indirect calls resolved above use relaxed arity.
                    let relaxed = matches!(args.len(), n if n != self.m.function(f).param_count as usize);
                    if relaxed {
                        self.cycles += self.config.cost.call;
                        let caller = self.frames.last_mut().expect("frame");
                        caller.pending = Some(Pending { dst, invoke: None });
                        self.push_frame(f, &vals, false)?;
                        return Ok(Flow::Continue);
                    }
                }
                self.eval_call(callee, vals, dst, None)
            }
            Inst::FuncAddr { dst, func } => {
                self.frames.last_mut().expect("frame").locals[dst.index()] =
                    Value::Int(func_addr(func) as i64);
                Ok(Flow::Continue)
            }
            Inst::GlobalAddr { dst, global } => {
                let a = self.mem.global_addr(global);
                self.frames.last_mut().expect("frame").locals[dst.index()] = Value::Int(a as i64);
                Ok(Flow::Continue)
            }
        }
    }

    fn exec_term(&mut self, term: Term) -> Result<Flow, VmError> {
        match term {
            Term::Jump(t) => {
                self.cycles += self.config.cost.branch;
                let fr = self.frames.last_mut().expect("frame");
                fr.block = t;
                fr.inst = 0;
                Ok(Flow::Continue)
            }
            Term::Branch { cond, then_bb, else_bb } => {
                let fr = self.frames.last().expect("frame");
                let c = self.read_operand(fr, &cond).as_int() & 1;
                let target = if c == 1 { then_bb } else { else_bb };
                self.charge_branch(0, target);
                let fr = self.frames.last_mut().expect("frame");
                fr.block = target;
                fr.inst = 0;
                Ok(Flow::Continue)
            }
            Term::Switch { ty: _, value, cases, default } => {
                let fr = self.frames.last().expect("frame");
                let v = self.read_operand(fr, &value).as_int();
                let target =
                    cases.iter().find(|(c, _)| *c == v).map(|(_, t)| *t).unwrap_or(default);
                // Lowered switches scan a cmp/jcc chain, and erratic
                // targets (flattening dispatch) mispredict.
                self.charge_branch(cases.len(), target);
                let fr = self.frames.last_mut().expect("frame");
                fr.block = target;
                fr.inst = 0;
                Ok(Flow::Continue)
            }
            Term::Ret(v) => {
                let value = v.map(|o| self.read_operand(self.frames.last().expect("frame"), &o));
                // Normalize to the function's return type.
                let value = match value {
                    Some(val) => {
                        let rt = self.m.function(self.frames.last().expect("frame").func).ret_ty;
                        Some(val.normalize(rt))
                    }
                    None => None,
                };
                self.do_return(value)
            }
            Term::Invoke { dst, callee, args, normal, unwind } => {
                let fr = self.frames.last().expect("frame");
                let vals: Vec<Value> = args.iter().map(|a| self.read_operand(fr, a)).collect();
                let callee = match callee {
                    Callee::Indirect(p) => {
                        let addr = self.read_operand(self.frames.last().expect("frame"), &p).as_int();
                        self.cycles += self.config.cost.indirect_extra;
                        Callee::Direct(self.resolve_indirect(addr)?)
                    }
                    c => c,
                };
                self.eval_call(callee, vals, dst, Some((normal, unwind)))
            }
            Term::Unreachable => self.trap("executed unreachable"),
        }
    }

    fn eval_bin(&self, op: BinOp, ty: Type, a: Value, b: Value) -> Result<Value, VmError> {
        if op.is_float_op() {
            let (x, y) = (a.as_float(), b.as_float());
            let r = match op {
                BinOp::FAdd => x + y,
                BinOp::FSub => x - y,
                BinOp::FMul => x * y,
                BinOp::FDiv => x / y,
                _ => unreachable!(),
            };
            return Ok(Value::Float(r).normalize(ty));
        }
        let (x, y) = (a.as_int(), b.as_int());
        let bits = ty.bits().unwrap_or(64);
        let shift_mask = (bits.max(8) - 1) as i64; // i1 shifts unused in practice
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::SDiv => {
                if y == 0 {
                    return self.trap("integer division by zero");
                }
                x.wrapping_div(y)
            }
            BinOp::SRem => {
                if y == 0 {
                    return self.trap("integer remainder by zero");
                }
                x.wrapping_rem(y)
            }
            BinOp::UDiv => {
                if y == 0 {
                    return self.trap("integer division by zero");
                }
                (to_unsigned(x, bits) / to_unsigned(y, bits)) as i64
            }
            BinOp::URem => {
                if y == 0 {
                    return self.trap("integer remainder by zero");
                }
                (to_unsigned(x, bits) % to_unsigned(y, bits)) as i64
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl((y & shift_mask) as u32),
            BinOp::LShr => (to_unsigned(x, bits) >> (y & shift_mask) as u32) as i64,
            BinOp::AShr => x >> (y & shift_mask) as u32,
            _ => unreachable!(),
        };
        Ok(Value::Int(r).normalize(ty))
    }

    /// Runs `entry` with `args` until completion.
    ///
    /// # Errors
    /// Propagates traps, fuel exhaustion and uncaught exceptions.
    pub fn run(&mut self, entry: FuncId, args: &[Value]) -> Result<RunResult, VmError> {
        self.push_frame(entry, args, true)?;
        loop {
            if self.steps >= self.config.max_steps {
                return Err(VmError::OutOfFuel);
            }
            self.steps += 1;
            match self.step()? {
                Flow::Continue => {}
                Flow::Done(code) => {
                    self.exit = Some(code);
                    return Ok(RunResult {
                        output: std::mem::take(&mut self.output),
                        exit_code: code,
                        cycles: self.cycles,
                        steps: self.steps,
                    });
                }
            }
        }
    }
}

fn to_unsigned(x: i64, bits: u32) -> u64 {
    if bits >= 64 {
        x as u64
    } else {
        (x as u64) & ((1u64 << bits) - 1)
    }
}

fn eval_cmp(pred: CmpPred, ty: Type, a: Value, b: Value) -> bool {
    if pred.is_float_pred() {
        let (x, y) = (a.as_float(), b.as_float());
        return match pred {
            CmpPred::FEq => x == y,
            CmpPred::FNe => x != y,
            CmpPred::FLt => x < y,
            CmpPred::FLe => x <= y,
            CmpPred::FGt => x > y,
            CmpPred::FGe => x >= y,
            _ => unreachable!(),
        };
    }
    let (x, y) = (a.as_int(), b.as_int());
    let bits = ty.bits().unwrap_or(64);
    let (ux, uy) = (to_unsigned(x, bits), to_unsigned(y, bits));
    match pred {
        CmpPred::Eq => x == y,
        CmpPred::Ne => x != y,
        CmpPred::Slt => x < y,
        CmpPred::Sle => x <= y,
        CmpPred::Sgt => x > y,
        CmpPred::Sge => x >= y,
        CmpPred::Ult => ux < uy,
        CmpPred::Ule => ux <= uy,
        CmpPred::Ugt => ux > uy,
        CmpPred::Uge => ux >= uy,
        _ => unreachable!(),
    }
}

fn eval_cast(kind: CastKind, s: Value, from: Type, to: Type) -> Value {
    match kind {
        CastKind::Trunc | CastKind::SExt => Value::Int(s.as_int()).normalize(to),
        CastKind::ZExt => {
            let bits = from.bits().unwrap_or(64);
            Value::Int(to_unsigned(s.as_int(), bits) as i64).normalize(to)
        }
        CastKind::FpToSi => {
            let f = s.as_float();
            let v = if f.is_nan() {
                0
            } else {
                f.max(i64::MIN as f64).min(i64::MAX as f64) as i64
            };
            Value::Int(v).normalize(to)
        }
        CastKind::SiToFp => Value::Float(s.as_int() as f64).normalize(to),
        CastKind::FpTrunc | CastKind::FpExt => Value::Float(s.as_float()).normalize(to),
        CastKind::PtrToInt => Value::Int(s.as_int()),
        CastKind::IntToPtr => Value::Int(s.as_int()),
    }
}

/// Runs the module's entry function (`main`, falling back to the single
/// exported function) with default inputs.
///
/// # Errors
/// Fails when no entry exists or execution faults.
pub fn run_to_completion(m: &Module, inputs: &[i64]) -> Result<RunResult, VmError> {
    let config = RunConfig { inputs: inputs.to_vec(), ..RunConfig::default() };
    run_with_config(m, config)
}

/// [`run_to_completion`] with an explicit configuration.
///
/// # Errors
/// Fails when no entry exists or execution faults.
pub fn run_with_config(m: &Module, config: RunConfig) -> Result<RunResult, VmError> {
    let entry = m
        .function_by_name("main")
        .map(|(id, _)| id)
        .ok_or_else(|| VmError::NoEntry("main".into()))?;
    let f = m.function(entry);
    let args: Vec<Value> = f.param_types().iter().map(|t| Value::zero(*t)).collect();
    let mut vm = Vm::new(m, config);
    vm.run(entry, &args)
}

/// Runs an arbitrary function with integer/float arguments (test helper).
///
/// # Errors
/// Fails when the function is missing or execution faults.
pub fn run_function(m: &Module, name: &str, args: &[Value]) -> Result<RunResult, VmError> {
    let (id, _) = m.function_by_name(name).ok_or_else(|| VmError::NoEntry(name.into()))?;
    let mut vm = Vm::new(m, RunConfig::default());
    vm.run(id, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{ExtFunc, Module, Operand};

    fn int_fn_module(build: impl FnOnce(&mut FunctionBuilder, &mut Module)) -> Module {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", Type::I64);
        build(&mut fb, &mut m);
        m.push_function(fb.finish());
        khaos_ir::verify::assert_valid(&m);
        m
    }

    #[test]
    fn arithmetic_and_return() {
        let m = int_fn_module(|fb, _| {
            let a = fb.bin(
                BinOp::Mul,
                Type::I64,
                Operand::const_int(Type::I64, 6),
                Operand::const_int(Type::I64, 7),
            );
            fb.ret(Some(Operand::local(a)));
        });
        let r = run_function(&m, "main", &[]).unwrap();
        assert_eq!(r.exit_code, 42);
        assert!(r.cycles > 0);
    }

    #[test]
    fn division_by_zero_traps() {
        let m = int_fn_module(|fb, _| {
            let a = fb.bin(
                BinOp::SDiv,
                Type::I64,
                Operand::const_int(Type::I64, 1),
                Operand::const_int(Type::I64, 0),
            );
            fb.ret(Some(Operand::local(a)));
        });
        let e = run_function(&m, "main", &[]).unwrap_err();
        assert!(matches!(e, VmError::Trap(m) if m.contains("division by zero")));
    }

    #[test]
    fn loop_summation() {
        // sum 1..=10 via a loop
        let m = int_fn_module(|fb, _| {
            let i = fb.new_local(Type::I64);
            let sum = fb.new_local(Type::I64);
            let h = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            fb.copy_to(i, Operand::const_int(Type::I64, 1));
            fb.copy_to(sum, Operand::const_int(Type::I64, 0));
            fb.jump(h);
            fb.switch_to(h);
            let c = fb.cmp(CmpPred::Sle, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 10));
            fb.branch(Operand::local(c), body, exit);
            fb.switch_to(body);
            let ns = fb.bin(BinOp::Add, Type::I64, Operand::local(sum), Operand::local(i));
            fb.copy_to(sum, Operand::local(ns));
            let ni = fb.bin(BinOp::Add, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
            fb.copy_to(i, Operand::local(ni));
            fb.jump(h);
            fb.switch_to(exit);
            fb.ret(Some(Operand::local(sum)));
        });
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 55);
    }

    #[test]
    fn memory_via_alloca() {
        let m = int_fn_module(|fb, _| {
            let p = fb.alloca(8);
            fb.store(Type::I64, Operand::const_int(Type::I64, 99), Operand::local(p));
            let v = fb.load(Type::I64, Operand::local(p));
            fb.ret(Some(Operand::local(v)));
        });
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 99);
    }

    #[test]
    fn direct_and_indirect_calls() {
        let mut m = Module::new("t");
        let mut callee = FunctionBuilder::new("add3", Type::I64);
        let p = callee.add_param(Type::I64);
        let r = callee.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 3));
        callee.ret(Some(Operand::local(r)));
        let cid = m.push_function(callee.finish());

        let mut main = FunctionBuilder::new("main", Type::I64);
        let d = main.call(cid, Type::I64, vec![Operand::const_int(Type::I64, 10)]).unwrap();
        let fp = main.funcaddr(cid);
        let ind = main
            .call_indirect(Operand::local(fp), Type::I64, vec![Operand::local(d)])
            .unwrap();
        main.ret(Some(Operand::local(ind)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 16);
    }

    #[test]
    fn tagged_pointer_call_traps_without_decode() {
        let mut m = Module::new("t");
        let mut callee = FunctionBuilder::new("f", Type::Void);
        callee.ret(None);
        let cid = m.push_function(callee.finish());
        let mut main = FunctionBuilder::new("main", Type::I64);
        let fp = main.funcaddr(cid);
        let fi = main.cast(CastKind::PtrToInt, Operand::local(fp), Type::Ptr, Type::I64);
        let tagged = main.bin(BinOp::Or, Type::I64, Operand::local(fi), Operand::const_int(Type::I64, 4));
        let tp = main.cast(CastKind::IntToPtr, Operand::local(tagged), Type::I64, Type::Ptr);
        main.call_indirect(Operand::local(tp), Type::Void, vec![]);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        let e = run_function(&m, "main", &[]).unwrap_err();
        assert!(matches!(e, VmError::Trap(msg) if msg.contains("tag bits")));
    }

    #[test]
    fn exception_unwinds_to_landing_pad() {
        let mut m = Module::new("t");
        let throw_ext = m.declare_external(ExtFunc {
            name: "throw_exc".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        // thrower: plain call to throw_exc -> unwinds through.
        let mut thrower = FunctionBuilder::new("thrower", Type::Void);
        thrower.call_ext(throw_ext, Type::Void, vec![Operand::const_int(Type::I64, 77)]);
        thrower.ret(None);
        let tid = m.push_function(thrower.finish());
        // main: invoke thrower; pad returns the exception value.
        let mut main = FunctionBuilder::new("main", Type::I64);
        let exc = main.new_local(Type::I64);
        let normal = main.new_block();
        let pad = main.new_pad_block(Some(exc));
        main.invoke(Callee::Direct(tid), Type::Void, vec![], normal, pad);
        main.switch_to(normal);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        main.switch_to(pad);
        main.ret(Some(Operand::local(exc)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 77);
    }

    #[test]
    fn uncaught_exception_reported() {
        let mut m = Module::new("t");
        let throw_ext = m.declare_external(ExtFunc {
            name: "throw_exc".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        let mut main = FunctionBuilder::new("main", Type::I64);
        main.call_ext(throw_ext, Type::Void, vec![Operand::const_int(Type::I64, 5)]);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        let e = run_function(&m, "main", &[]).unwrap_err();
        assert_eq!(e, VmError::UncaughtException(5));
    }

    #[test]
    fn setjmp_longjmp_roundtrip() {
        let mut m = Module::new("t");
        let setjmp = m.declare_external(ExtFunc {
            name: "setjmp".into(),
            params: vec![Type::Ptr],
            ret_ty: Type::I32,
            variadic: false,
        });
        let longjmp = m.declare_external(ExtFunc {
            name: "longjmp".into(),
            params: vec![Type::Ptr, Type::I32],
            ret_ty: Type::Void,
            variadic: false,
        });
        // jumper(buf): longjmp(buf, 9)
        let mut jumper = FunctionBuilder::new("jumper", Type::Void);
        let bp = jumper.add_param(Type::Ptr);
        jumper.call_ext(longjmp, Type::Void, vec![Operand::local(bp), Operand::const_int(Type::I32, 9)]);
        jumper.ret(None);
        let jid = m.push_function(jumper.finish());
        // main: buf = alloca; r = setjmp(buf); if r==0 { jumper(buf); return 1 } else return r
        let mut main = FunctionBuilder::new("main", Type::I64);
        let buf = main.alloca(8);
        let r = main.call_ext(setjmp, Type::I32, vec![Operand::local(buf)]).unwrap();
        let first = main.new_block();
        let again = main.new_block();
        let c = main.cmp(CmpPred::Eq, Type::I32, Operand::local(r), Operand::const_int(Type::I32, 0));
        main.branch(Operand::local(c), first, again);
        main.switch_to(first);
        main.call(jid, Type::Void, vec![Operand::local(buf)]);
        main.ret(Some(Operand::const_int(Type::I64, 1)));
        main.switch_to(again);
        let w = main.cast(CastKind::SExt, Operand::local(r), Type::I32, Type::I64);
        main.ret(Some(Operand::local(w)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 9);
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut m = Module::new("t");
        let mut main = FunctionBuilder::new("main", Type::I64);
        let h = main.new_block();
        main.jump(h);
        main.switch_to(h);
        main.jump(h);
        m.push_function(main.finish());
        let mut vm = Vm::new(&m, RunConfig { max_steps: 1000, ..RunConfig::default() });
        let (id, _) = m.function_by_name("main").unwrap();
        assert_eq!(vm.run(id, &[]).unwrap_err(), VmError::OutOfFuel);
    }

    #[test]
    fn switch_dispatch() {
        let m = int_fn_module(|fb, _| {
            let a = fb.new_block();
            let b = fb.new_block();
            let d = fb.new_block();
            fb.switch(
                Type::I64,
                Operand::const_int(Type::I64, 1),
                vec![(0, a), (1, b)],
                d,
            );
            fb.switch_to(a);
            fb.ret(Some(Operand::const_int(Type::I64, 100)));
            fb.switch_to(b);
            fb.ret(Some(Operand::const_int(Type::I64, 200)));
            fb.switch_to(d);
            fb.ret(Some(Operand::const_int(Type::I64, 300)));
        });
        assert_eq!(run_function(&m, "main", &[]).unwrap().exit_code, 200);
    }

    #[test]
    fn stack_args_cost_more_than_reg_args() {
        // Two identical callees, one called with 2 args, one with 8.
        let mut m = Module::new("t");
        let mut few = FunctionBuilder::new("few", Type::I64);
        let p0 = few.add_param(Type::I64);
        let _p1 = few.add_param(Type::I64);
        few.ret(Some(Operand::local(p0)));
        let fid = m.push_function(few.finish());
        let mut many = FunctionBuilder::new("many", Type::I64);
        let q0 = many.add_param(Type::I64);
        for _ in 1..8 {
            many.add_param(Type::I64);
        }
        many.ret(Some(Operand::local(q0)));
        let mid = m.push_function(many.finish());

        let mk_main = |m: &Module, use_many: bool| -> Module {
            let mut m2 = m.clone();
            let mut main = FunctionBuilder::new("main", Type::I64);
            let one = Operand::const_int(Type::I64, 1);
            let r = if use_many {
                main.call(mid, Type::I64, vec![one; 8]).unwrap()
            } else {
                main.call(fid, Type::I64, vec![one; 2]).unwrap()
            };
            main.ret(Some(Operand::local(r)));
            m2.push_function(main.finish());
            m2
        };
        let cheap = run_function(&mk_main(&m, false), "main", &[]).unwrap().cycles;
        let pricey = run_function(&mk_main(&m, true), "main", &[]).unwrap().cycles;
        assert!(pricey > cheap, "8-arg call must cost more than 2-arg call");
    }
}
