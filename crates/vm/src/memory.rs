//! The flat memory arena: globals, heap and alloca stack.

use crate::value::Value;
use khaos_ir::{FuncId, GInit, Module, Type};

/// Base of the synthetic code address space. Function `i` lives at
/// `FUNC_SPACE_BASE + i * FUNC_SPACE_STRIDE`.
pub const FUNC_SPACE_BASE: u64 = 0x4000_0000;

/// Spacing between synthetic function addresses. 16-byte alignment is what
/// makes the low 4 pointer bits available for the fusion tag (paper §A.1).
pub const FUNC_SPACE_STRIDE: u64 = 16;

/// First mapped data address (addresses below trap, catching null and
/// tagged-pointer dereferences).
const DATA_BASE: u64 = 0x1000;

/// A memory access failure.
#[derive(Clone, Debug, PartialEq)]
pub struct MemError {
    /// Offending address.
    pub addr: u64,
    /// What went wrong.
    pub message: String,
}

/// Flat little-endian memory with three bump regions: globals (fixed after
/// load), heap (grows only) and the alloca stack (grows per frame, restored
/// on return/unwind).
#[derive(Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    global_addrs: Vec<u64>,
    heap_sp: u64,
    stack_sp: u64,
    stack_base: u64,
    limit: u64,
}

impl Memory {
    /// Lays out `m`'s globals (applying function-pointer relocations with
    /// addends) and sets up heap/stack regions of `data_size` bytes total.
    pub fn new(m: &Module, data_size: usize) -> Self {
        let limit = DATA_BASE + data_size as u64;
        let mut bytes = vec![0u8; limit as usize];
        let mut cursor = DATA_BASE;
        let mut global_addrs = Vec::with_capacity(m.globals.len());
        for g in &m.globals {
            let align = g.align.max(1) as u64;
            cursor = cursor.div_ceil(align) * align;
            global_addrs.push(cursor);
            let mut at = cursor;
            for init in &g.init {
                match init {
                    GInit::Bytes(b) => {
                        bytes[at as usize..at as usize + b.len()].copy_from_slice(b);
                        at += b.len() as u64;
                    }
                    GInit::Int { value, ty } => {
                        let sz = ty.size() as usize;
                        bytes[at as usize..at as usize + sz]
                            .copy_from_slice(&value.to_le_bytes()[..sz]);
                        at += sz as u64;
                    }
                    GInit::Float { value, ty } => {
                        let sz = ty.size() as usize;
                        if *ty == Type::F32 {
                            bytes[at as usize..at as usize + 4]
                                .copy_from_slice(&(*value as f32).to_le_bytes());
                        } else {
                            bytes[at as usize..at as usize + 8]
                                .copy_from_slice(&value.to_le_bytes());
                        }
                        at += sz as u64;
                    }
                    GInit::Zero(n) => at += *n as u64,
                    GInit::FuncPtr { func, addend } => {
                        // The relocation: function address + addend. The
                        // addend carries the fusion tag bits.
                        let v = func_addr(*func).wrapping_add(*addend as u64);
                        bytes[at as usize..at as usize + 8].copy_from_slice(&v.to_le_bytes());
                        at += 8;
                    }
                }
            }
            cursor = at;
        }
        // Heap grows from after globals; stack occupies the top half.
        let heap_sp = cursor.div_ceil(16) * 16;
        let stack_base = DATA_BASE + (data_size as u64) / 2;
        let stack_base = stack_base.max(heap_sp + 64);
        Memory { bytes, global_addrs, heap_sp, stack_sp: stack_base, stack_base, limit }
    }

    /// Address of global `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn global_addr(&self, i: khaos_ir::GlobalId) -> u64 {
        self.global_addrs[i.index()]
    }

    /// Current alloca stack pointer (saved at frame entry).
    pub fn stack_mark(&self) -> u64 {
        self.stack_sp
    }

    /// Restores the alloca stack pointer (frame exit / unwind / longjmp).
    pub fn stack_release(&mut self, mark: u64) {
        debug_assert!(mark >= self.stack_base && mark <= self.limit);
        self.stack_sp = mark;
    }

    /// Bump-allocates `size` bytes (aligned) on the alloca stack.
    pub fn stack_alloc(&mut self, size: u32, align: u32) -> Result<u64, MemError> {
        let align = align.max(1) as u64;
        let at = self.stack_sp.div_ceil(align) * align;
        let end = at + size as u64;
        if end > self.limit {
            return Err(MemError { addr: at, message: "stack overflow".into() });
        }
        self.stack_sp = end;
        Ok(at)
    }

    /// Bump-allocates `size` bytes on the heap (`malloc`).
    pub fn heap_alloc(&mut self, size: u64) -> Result<u64, MemError> {
        let at = self.heap_sp.div_ceil(16) * 16;
        let end = at + size;
        if end > self.stack_base {
            return Err(MemError { addr: at, message: "out of heap memory".into() });
        }
        self.heap_sp = end;
        Ok(at)
    }

    fn check(&self, addr: u64, size: u64) -> Result<(), MemError> {
        if addr < DATA_BASE || addr + size > self.limit {
            return Err(MemError {
                addr,
                message: if addr >= FUNC_SPACE_BASE {
                    "data access to code address (tagged or raw function pointer?)".into()
                } else if addr == 0 {
                    "null dereference".into()
                } else {
                    "out-of-bounds access".into()
                },
            });
        }
        Ok(())
    }

    /// Reads a typed value.
    ///
    /// # Errors
    /// Fails on unmapped addresses.
    pub fn read(&self, addr: u64, ty: Type) -> Result<Value, MemError> {
        let size = ty.size() as u64;
        self.check(addr, size)?;
        let at = addr as usize;
        let v = match ty {
            Type::I1 => Value::Int((self.bytes[at] & 1) as i64),
            Type::I8 => Value::Int(self.bytes[at] as i8 as i64),
            Type::I16 => {
                Value::Int(i16::from_le_bytes(self.bytes[at..at + 2].try_into().expect("size")) as i64)
            }
            Type::I32 => {
                Value::Int(i32::from_le_bytes(self.bytes[at..at + 4].try_into().expect("size")) as i64)
            }
            Type::I64 | Type::Ptr => {
                Value::Int(i64::from_le_bytes(self.bytes[at..at + 8].try_into().expect("size")))
            }
            Type::F32 => Value::Float(
                f32::from_le_bytes(self.bytes[at..at + 4].try_into().expect("size")) as f64,
            ),
            Type::F64 => {
                Value::Float(f64::from_le_bytes(self.bytes[at..at + 8].try_into().expect("size")))
            }
            Type::Void => return Err(MemError { addr, message: "read of void".into() }),
        };
        Ok(v)
    }

    /// Writes a typed value.
    ///
    /// # Errors
    /// Fails on unmapped addresses.
    pub fn write(&mut self, addr: u64, ty: Type, v: Value) -> Result<(), MemError> {
        let size = ty.size() as u64;
        self.check(addr, size)?;
        let at = addr as usize;
        match (ty, v) {
            (Type::I1 | Type::I8, Value::Int(x)) => self.bytes[at] = x as u8,
            (Type::I16, Value::Int(x)) => {
                self.bytes[at..at + 2].copy_from_slice(&(x as i16).to_le_bytes())
            }
            (Type::I32, Value::Int(x)) => {
                self.bytes[at..at + 4].copy_from_slice(&(x as i32).to_le_bytes())
            }
            (Type::I64 | Type::Ptr, Value::Int(x)) => {
                self.bytes[at..at + 8].copy_from_slice(&x.to_le_bytes())
            }
            (Type::F32, Value::Float(x)) => {
                self.bytes[at..at + 4].copy_from_slice(&(x as f32).to_le_bytes())
            }
            (Type::F64, Value::Float(x)) => {
                self.bytes[at..at + 8].copy_from_slice(&x.to_le_bytes())
            }
            (t, v) => return Err(MemError { addr, message: format!("type mismatch {t} vs {v:?}") }),
        }
        Ok(())
    }

    /// Raw byte copy (`memcpy`).
    ///
    /// # Errors
    /// Fails if either range is unmapped.
    pub fn copy(&mut self, dst: u64, src: u64, n: u64) -> Result<(), MemError> {
        self.check(dst, n)?;
        self.check(src, n)?;
        self.bytes.copy_within(src as usize..(src + n) as usize, dst as usize);
        Ok(())
    }

    /// Raw byte fill (`memset`).
    ///
    /// # Errors
    /// Fails if the range is unmapped.
    pub fn fill(&mut self, dst: u64, byte: u8, n: u64) -> Result<(), MemError> {
        self.check(dst, n)?;
        self.bytes[dst as usize..(dst + n) as usize].fill(byte);
        Ok(())
    }

    /// Reads a NUL-terminated string (capped at 4096 bytes).
    ///
    /// # Errors
    /// Fails if the start address is unmapped.
    pub fn read_cstr(&self, addr: u64) -> Result<Vec<u8>, MemError> {
        self.check(addr, 1)?;
        let mut out = Vec::new();
        let mut at = addr;
        while at < self.limit && out.len() < 4096 {
            let b = self.bytes[at as usize];
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            at += 1;
        }
        Ok(out)
    }
}

/// The synthetic address of function `f`.
pub fn func_addr(f: FuncId) -> u64 {
    FUNC_SPACE_BASE + f.index() as u64 * FUNC_SPACE_STRIDE
}

/// Decodes a synthetic code address back to a function id.
///
/// Returns `None` if the address is outside the code space or is not
/// exactly 16-byte aligned (e.g. still carries fusion tag bits).
pub fn addr_to_func(addr: u64, func_count: usize) -> Option<FuncId> {
    if addr < FUNC_SPACE_BASE {
        return None;
    }
    let off = addr - FUNC_SPACE_BASE;
    if !off.is_multiple_of(FUNC_SPACE_STRIDE) {
        return None;
    }
    let idx = (off / FUNC_SPACE_STRIDE) as usize;
    if idx < func_count {
        Some(FuncId::new(idx))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::{Global, GlobalId};

    fn empty_mem() -> Memory {
        Memory::new(&Module::new("m"), 1 << 16)
    }

    #[test]
    fn read_write_roundtrip() {
        let mut mem = empty_mem();
        let a = mem.stack_alloc(16, 8).unwrap();
        mem.write(a, Type::I32, Value::Int(-7)).unwrap();
        assert_eq!(mem.read(a, Type::I32).unwrap(), Value::Int(-7));
        mem.write(a + 8, Type::F64, Value::Float(2.5)).unwrap();
        assert_eq!(mem.read(a + 8, Type::F64).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn null_and_oob_trap() {
        let mem = empty_mem();
        assert!(mem.read(0, Type::I64).is_err());
        assert!(mem.read(u64::MAX / 2, Type::I8).is_err());
    }

    #[test]
    fn code_space_is_not_data() {
        let mem = empty_mem();
        let err = mem.read(FUNC_SPACE_BASE, Type::I64).unwrap_err();
        assert!(err.message.contains("code address"));
    }

    #[test]
    fn stack_release_restores() {
        let mut mem = empty_mem();
        let mark = mem.stack_mark();
        let a = mem.stack_alloc(64, 16).unwrap();
        assert_eq!(a % 16, 0);
        let b = mem.stack_alloc(8, 8).unwrap();
        assert!(b >= a + 64);
        mem.stack_release(mark);
        let c = mem.stack_alloc(64, 16).unwrap();
        assert_eq!(a, c, "stack reuses released space");
    }

    #[test]
    fn global_layout_and_relocation() {
        let mut m = Module::new("m");
        let mut fb = khaos_ir::builder::FunctionBuilder::new("f", Type::Void);
        fb.ret(None);
        let f = m.push_function(fb.finish());
        m.push_global(Global {
            name: "t".into(),
            init: vec![GInit::Int { value: 0x1122, ty: Type::I32 }, GInit::FuncPtr { func: f, addend: 12 }],
            align: 8,
            exported: false,
        });
        let mem = Memory::new(&m, 1 << 16);
        let ga = mem.global_addr(GlobalId(0));
        assert_eq!(mem.read(ga, Type::I32).unwrap(), Value::Int(0x1122));
        let fp = mem.read(ga + 4, Type::Ptr).unwrap().as_int() as u64;
        assert_eq!(fp, func_addr(f) + 12, "relocation addend applied");
    }

    #[test]
    fn func_addr_roundtrip() {
        let f = FuncId(3);
        assert_eq!(addr_to_func(func_addr(f), 10), Some(f));
        assert_eq!(addr_to_func(func_addr(f) | 4, 10), None, "tagged pointer rejected");
        assert_eq!(addr_to_func(func_addr(FuncId(10)), 10), None);
        assert_eq!(addr_to_func(0x100, 10), None);
    }

    #[test]
    fn cstr_reading() {
        let mut mem = empty_mem();
        let a = mem.stack_alloc(8, 1).unwrap();
        for (i, b) in b"hi\0".iter().enumerate() {
            mem.write(a + i as u64, Type::I8, Value::Int(*b as i64)).unwrap();
        }
        assert_eq!(mem.read_cstr(a).unwrap(), b"hi".to_vec());
    }
}
