//! The cycle cost model.

use khaos_ir::{BinOp, Inst};

/// Relative cycle costs charged by the interpreter.
///
/// The absolute numbers are synthetic; what matters for reproducing the
/// paper's overhead *shape* is the relative weight of call overhead,
/// argument passing (registers vs. stack) and memory traffic against plain
/// ALU work — those are the costs fission and fusion add or remove.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Plain ALU operation.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Float divide.
    pub fdiv: u64,
    /// Load or store.
    pub mem: u64,
    /// Alloca (stack pointer bump).
    pub alloca: u64,
    /// Direct call (prologue + epilogue + branch overhead).
    pub call: u64,
    /// Indirect call extra (branch-target misprediction).
    pub indirect_extra: u64,
    /// Per-argument move into a register slot.
    pub arg_reg: u64,
    /// Per-argument push beyond the 6 register slots (stack traffic).
    pub arg_stack: u64,
    /// External (libc) call.
    pub ext_call: u64,
    /// Correctly-predicted branch / jump / switch dispatch.
    pub branch: u64,
    /// Mispredicted branch or switch target (pipeline flush). The VM keeps
    /// a 1-entry history per branch site: stable directions (loops,
    /// opaque predicates) are cheap, erratic dispatch (flattened
    /// functions) pays this — which is exactly where Fla's 279% comes
    /// from on real hardware.
    pub branch_miss: u64,
    /// Extra cost per switch case (the cmp/jcc scan of lowered switches).
    pub switch_case: u64,
    /// Invoke setup (EH tables, same branchy cost as a call plus a bit).
    pub invoke_extra: u64,
    /// Return.
    pub ret: u64,
}

/// Number of integer argument slots passed in registers (x86-64 SysV).
pub const REG_ARG_SLOTS: usize = 6;

impl Default for CostModel {
    /// Weights approximate a modern out-of-order core: plain ALU work is
    /// almost free (hidden by superscalar issue), while memory traffic,
    /// calls, argument spills and unpredictable dispatch dominate — the
    /// costs the paper's overhead numbers are made of.
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 2,
            div: 24,
            fdiv: 16,
            mem: 6,
            alloca: 2,
            call: 24,
            indirect_extra: 10,
            arg_reg: 1,
            arg_stack: 6,
            ext_call: 20,
            branch: 1,
            branch_miss: 16,
            switch_case: 1,
            invoke_extra: 6,
            ret: 8,
        }
    }
}

impl CostModel {
    /// True for plain register ops a dual-issue core pairs up: the VM
    /// charges every *second* consecutive one nothing, which is how
    /// instruction-substitution chains stay cheap on real machines.
    pub fn is_pairable_alu(inst: &Inst) -> bool {
        match inst {
            Inst::Bin { op, .. } => !matches!(
                op,
                BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem | BinOp::FDiv
            ),
            Inst::Un { .. }
            | Inst::Cmp { .. }
            | Inst::Select { .. }
            | Inst::Copy { .. }
            | Inst::Cast { .. }
            | Inst::PtrAdd { .. } => true,
            _ => false,
        }
    }

    /// Cost of a non-call instruction.
    pub fn inst_cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Bin { op, .. } => match op {
                BinOp::Mul => self.mul,
                BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => self.div,
                BinOp::FDiv => self.fdiv,
                BinOp::FMul => self.mul,
                _ => self.alu,
            },
            Inst::Un { .. }
            | Inst::Cmp { .. }
            | Inst::Select { .. }
            | Inst::Copy { .. }
            | Inst::Cast { .. }
            | Inst::PtrAdd { .. }
            | Inst::FuncAddr { .. }
            | Inst::GlobalAddr { .. } => self.alu,
            Inst::Load { .. } | Inst::Store { .. } => self.mem,
            Inst::Alloca { .. } => self.alloca,
            // Calls are charged separately by the machine (arg traffic).
            Inst::Call { .. } => 0,
        }
    }

    /// Cost of passing `n` arguments in a call.
    pub fn arg_cost(&self, n: usize) -> u64 {
        let reg = n.min(REG_ARG_SLOTS) as u64;
        let stack = n.saturating_sub(REG_ARG_SLOTS) as u64;
        reg * self.arg_reg + stack * self.arg_stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::{LocalId, Operand, Type};

    #[test]
    fn division_dominates_alu() {
        let cm = CostModel::default();
        let div = Inst::Bin {
            op: BinOp::SDiv,
            ty: Type::I32,
            dst: LocalId(0),
            lhs: Operand::const_int(Type::I32, 6),
            rhs: Operand::const_int(Type::I32, 3),
        };
        let add = Inst::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            dst: LocalId(0),
            lhs: Operand::const_int(Type::I32, 6),
            rhs: Operand::const_int(Type::I32, 3),
        };
        assert!(cm.inst_cost(&div) > 10 * cm.inst_cost(&add));
    }

    #[test]
    fn stack_args_cost_more() {
        let cm = CostModel::default();
        // 6 register args vs 8 args (2 on the stack).
        let six = cm.arg_cost(6);
        let eight = cm.arg_cost(8);
        assert_eq!(six, 6 * cm.arg_reg);
        assert_eq!(eight, 6 * cm.arg_reg + 2 * cm.arg_stack);
        assert!(eight > six + 2, "stack args are strictly more expensive");
    }

    #[test]
    fn calls_charged_by_machine_not_inst() {
        let cm = CostModel::default();
        let call = Inst::Call { dst: None, callee: khaos_ir::Callee::Ext(khaos_ir::ExtId(0)), args: vec![] };
        assert_eq!(cm.inst_cost(&call), 0);
    }
}
