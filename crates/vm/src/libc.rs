//! The synthetic libc: external functions resolved by name.
//!
//! Everything is deterministic: "files" have pseudo-random but seeded
//! contents, `clock` returns the cycle counter, and all printing goes to
//! the in-memory output vector used by the differential-testing oracle.

use crate::machine::{Vm, VmError};
use crate::value::Value;
use khaos_ir::Type;

/// What an external call did.
pub enum ExtOutcome {
    /// Normal return (with a value unless void).
    Ret(Option<Value>),
    /// The callee threw; the machine unwinds.
    Throw(i64),
    /// The program exits with a code.
    Exit(i64),
    /// `setjmp` — the machine snapshots its own state.
    Setjmp {
        /// jmpbuf pointer.
        buf: i64,
    },
    /// `longjmp` — the machine restores a snapshot.
    Longjmp {
        /// Snapshot id read from the jmpbuf.
        id: i64,
        /// Value delivered to the setjmp site.
        val: i64,
    },
}

/// Synthetic file size for `open`/`read_file` (bytes per fd).
const FILE_SIZE: u64 = 256;

fn fnv1a(bytes: &[u8]) -> i64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h as i64
}

fn arg(args: &[Value], i: usize, name: &str) -> Result<Value, VmError> {
    args.get(i).copied().ok_or_else(|| VmError::Trap(format!("`{name}` missing argument {i}")))
}

/// Dispatches an external call by name.
///
/// # Errors
/// Traps on unknown externals or bad arguments.
pub fn dispatch(vm: &mut Vm<'_>, name: &str, args: &[Value]) -> Result<ExtOutcome, VmError> {
    match name {
        "print_i64" => {
            let v = arg(args, 0, name)?.as_int();
            vm.output.push(v);
            Ok(ExtOutcome::Ret(None))
        }
        "print_f64" => {
            let v = arg(args, 0, name)?.as_float();
            vm.output.push(v.to_bits() as i64);
            Ok(ExtOutcome::Ret(None))
        }
        "print_str" => {
            let p = arg(args, 0, name)?.as_int() as u64;
            let s = vm.mem.read_cstr(p).map_err(|e| VmError::Trap(e.message))?;
            vm.output.push(fnv1a(&s));
            Ok(ExtOutcome::Ret(None))
        }
        // printf-alike: hashes the format string and records each vararg.
        "printf" => {
            let p = arg(args, 0, name)?.as_int() as u64;
            let s = vm.mem.read_cstr(p).map_err(|e| VmError::Trap(e.message))?;
            vm.output.push(fnv1a(&s));
            for a in &args[1..] {
                match a {
                    Value::Int(v) => vm.output.push(*v),
                    Value::Float(v) => vm.output.push(v.to_bits() as i64),
                }
            }
            Ok(ExtOutcome::Ret(Some(Value::Int(args.len() as i64 - 1))))
        }
        "input_i64" => {
            let v = if vm.config.inputs.is_empty() {
                0
            } else {
                let v = vm.config.inputs[vm.input_pos % vm.config.inputs.len()];
                vm.input_pos += 1;
                v
            };
            Ok(ExtOutcome::Ret(Some(Value::Int(v))))
        }
        "malloc" => {
            let n = arg(args, 0, name)?.as_int().max(0) as u64;
            let p = vm.mem.heap_alloc(n.max(1)).map_err(|e| VmError::Trap(e.message))?;
            Ok(ExtOutcome::Ret(Some(Value::Int(p as i64))))
        }
        "free" => Ok(ExtOutcome::Ret(None)),
        "memcpy" => {
            let d = arg(args, 0, name)?.as_int() as u64;
            let s = arg(args, 1, name)?.as_int() as u64;
            let n = arg(args, 2, name)?.as_int().max(0) as u64;
            vm.mem.copy(d, s, n).map_err(|e| VmError::Trap(e.message))?;
            Ok(ExtOutcome::Ret(Some(Value::Int(d as i64))))
        }
        "memset" => {
            let d = arg(args, 0, name)?.as_int() as u64;
            let b = arg(args, 1, name)?.as_int() as u8;
            let n = arg(args, 2, name)?.as_int().max(0) as u64;
            vm.mem.fill(d, b, n).map_err(|e| VmError::Trap(e.message))?;
            Ok(ExtOutcome::Ret(Some(Value::Int(d as i64))))
        }
        "open" => {
            // Name is hashed into the fd so different paths act differently
            // but deterministically.
            let p = arg(args, 0, name)?.as_int() as u64;
            let s = vm.mem.read_cstr(p).map_err(|e| VmError::Trap(e.message))?;
            if s.is_empty() {
                return Ok(ExtOutcome::Ret(Some(Value::Int(-1))));
            }
            let fd = vm.file_offsets.len() as i64;
            vm.file_offsets.push(0);
            let _ = fnv1a(&s);
            Ok(ExtOutcome::Ret(Some(Value::Int(fd + 3))))
        }
        "read_file" => {
            let fd = arg(args, 0, name)?.as_int() - 3;
            let buf = arg(args, 1, name)?.as_int() as u64;
            let n = arg(args, 2, name)?.as_int().max(0) as u64;
            if fd < 0 || fd as usize >= vm.file_offsets.len() {
                return Ok(ExtOutcome::Ret(Some(Value::Int(-1))));
            }
            let off = vm.file_offsets[fd as usize];
            let remaining = FILE_SIZE.saturating_sub(off);
            let take = remaining.min(n);
            for i in 0..take {
                let pos = off + i;
                let byte = (((fd as u64 + 1).wrapping_mul(31).wrapping_add(pos))
                    .wrapping_mul(2654435761))
                    >> 24;
                vm.mem
                    .write(buf + i, Type::I8, Value::Int((byte & 0x7f) as i64))
                    .map_err(|e| VmError::Trap(e.message))?;
            }
            vm.file_offsets[fd as usize] += take;
            Ok(ExtOutcome::Ret(Some(Value::Int(take as i64))))
        }
        "close" => Ok(ExtOutcome::Ret(Some(Value::Int(0)))),
        "setjmp" => {
            let buf = arg(args, 0, name)?.as_int();
            Ok(ExtOutcome::Setjmp { buf })
        }
        "longjmp" => {
            let bufp = arg(args, 0, name)?.as_int() as u64;
            let val = arg(args, 1, name)?.as_int();
            let id = vm
                .mem
                .read(bufp, Type::I64)
                .map_err(|e| VmError::Trap(format!("longjmp buffer: {}", e.message)))?
                .as_int();
            Ok(ExtOutcome::Longjmp { id, val })
        }
        "throw_exc" => {
            let v = arg(args, 0, name)?.as_int();
            Ok(ExtOutcome::Throw(v))
        }
        "exit" => {
            let v = arg(args, 0, name)?.as_int();
            Ok(ExtOutcome::Exit(v))
        }
        "abs_i64" => {
            let v = arg(args, 0, name)?.as_int();
            Ok(ExtOutcome::Ret(Some(Value::Int(v.wrapping_abs()))))
        }
        "sqrt_f64" => {
            let v = arg(args, 0, name)?.as_float();
            Ok(ExtOutcome::Ret(Some(Value::Float(v.max(0.0).sqrt()))))
        }
        "floor_f64" => {
            let v = arg(args, 0, name)?.as_float();
            Ok(ExtOutcome::Ret(Some(Value::Float(v.floor()))))
        }
        other => Err(VmError::Trap(format!("unknown external function `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{run_function, RunConfig, Vm};
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{ExtFunc, Module, Operand};

    fn ext(m: &mut Module, name: &str, params: Vec<Type>, ret: Type) -> khaos_ir::ExtId {
        m.declare_external(ExtFunc { name: name.into(), params, ret_ty: ret, variadic: false })
    }

    #[test]
    fn print_collects_output() {
        let mut m = Module::new("t");
        let p = ext(&mut m, "print_i64", vec![Type::I64], Type::Void);
        let mut main = FunctionBuilder::new("main", Type::I64);
        main.call_ext(p, Type::Void, vec![Operand::const_int(Type::I64, 41)]);
        main.call_ext(p, Type::Void, vec![Operand::const_int(Type::I64, 42)]);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        let r = run_function(&m, "main", &[]).unwrap();
        assert_eq!(r.output, vec![41, 42]);
    }

    #[test]
    fn input_stream_cycles() {
        let mut m = Module::new("t");
        let inp = ext(&mut m, "input_i64", vec![], Type::I64);
        let p = ext(&mut m, "print_i64", vec![Type::I64], Type::Void);
        let mut main = FunctionBuilder::new("main", Type::I64);
        for _ in 0..3 {
            let v = main.call_ext(inp, Type::I64, vec![]).unwrap();
            main.call_ext(p, Type::Void, vec![Operand::local(v)]);
        }
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        let (id, _) = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(&m, RunConfig { inputs: vec![7, 8], ..RunConfig::default() });
        let r = vm.run(id, &[]).unwrap();
        assert_eq!(r.output, vec![7, 8, 7]);
    }

    #[test]
    fn malloc_and_memset() {
        let mut m = Module::new("t");
        let malloc = ext(&mut m, "malloc", vec![Type::I64], Type::Ptr);
        let memset = ext(&mut m, "memset", vec![Type::Ptr, Type::I64, Type::I64], Type::Ptr);
        let mut main = FunctionBuilder::new("main", Type::I64);
        let p = main.call_ext(malloc, Type::Ptr, vec![Operand::const_int(Type::I64, 16)]).unwrap();
        main.call_ext(
            memset,
            Type::Ptr,
            vec![
                Operand::local(p),
                Operand::const_int(Type::I64, 0xAB),
                Operand::const_int(Type::I64, 16),
            ],
        );
        let v = main.load(Type::I8, Operand::local(p));
        let w = main.cast(khaos_ir::CastKind::SExt, Operand::local(v), Type::I8, Type::I64);
        main.ret(Some(Operand::local(w)));
        m.push_function(main.finish());
        let r = run_function(&m, "main", &[]).unwrap();
        assert_eq!(r.exit_code, 0xABu8 as i8 as i64);
    }

    #[test]
    fn file_reads_are_deterministic_and_finite() {
        let mut m = Module::new("t");
        let open = ext(&mut m, "open", vec![Type::Ptr], Type::I32);
        let read = ext(&mut m, "read_file", vec![Type::I32, Type::Ptr, Type::I64], Type::I32);
        let p = ext(&mut m, "print_i64", vec![Type::I64], Type::Void);
        let mut main = FunctionBuilder::new("main", Type::I64);
        // name buffer with "f\0"
        let nb = main.alloca(2);
        main.store(Type::I8, Operand::const_int(Type::I8, b'f' as i64), Operand::local(nb));
        let nb1 = main.ptradd(Operand::local(nb), Operand::const_int(Type::I64, 1));
        main.store(Type::I8, Operand::const_int(Type::I8, 0), Operand::local(nb1));
        let fd = main.call_ext(open, Type::I32, vec![Operand::local(nb)]).unwrap();
        let buf = main.alloca(512);
        // two reads: second sees advancing offset; a third after EOF gives 0.
        let h = main.new_block();
        let done = main.new_block();
        main.jump(h);
        main.switch_to(h);
        let n = main
            .call_ext(
                read,
                Type::I32,
                vec![Operand::local(fd), Operand::local(buf), Operand::const_int(Type::I64, 200)],
            )
            .unwrap();
        let n64 = main.cast(khaos_ir::CastKind::SExt, Operand::local(n), Type::I32, Type::I64);
        main.call_ext(p, Type::Void, vec![Operand::local(n64)]);
        let c = main.cmp(khaos_ir::CmpPred::Sgt, Type::I32, Operand::local(n), Operand::const_int(Type::I32, 0));
        main.branch(Operand::local(c), h, done);
        main.switch_to(done);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        let r1 = run_function(&m, "main", &[]).unwrap();
        let r2 = run_function(&m, "main", &[]).unwrap();
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.output, vec![200, 56, 0], "256-byte file in two reads, then EOF");
    }

    #[test]
    fn unknown_external_traps() {
        let mut m = Module::new("t");
        let bogus = ext(&mut m, "does_not_exist", vec![], Type::Void);
        let mut main = FunctionBuilder::new("main", Type::I64);
        main.call_ext(bogus, Type::Void, vec![]);
        main.ret(Some(Operand::const_int(Type::I64, 0)));
        m.push_function(main.finish());
        assert!(run_function(&m, "main", &[]).is_err());
    }
}
