//! # khaos-vm — the KIR execution substrate
//!
//! A deterministic interpreter for KIR modules with a per-instruction
//! **cycle cost model**. It plays two roles in the Khaos reproduction:
//!
//! 1. **Correctness oracle** — an obfuscated module must produce exactly
//!    the same [`RunResult::output`] and exit code as the baseline build
//!    (differential testing).
//! 2. **Performance simulator** — [`RunResult::cycles`] stands in for the
//!    paper's wall-clock runtime when measuring obfuscation overhead
//!    (Figures 6 and 7). The model charges realistic relative costs for
//!    calls, register vs. stack argument passing, memory traffic and
//!    division, which is where fission/fusion overhead comes from.
//!
//! The VM also implements the runtime machinery the paper's mechanisms
//! assume: 16-byte-aligned synthetic function addresses (so the fusion
//! tag bits 2–3 are available), relocation addends on global function
//! pointers, `setjmp`/`longjmp`, and `invoke`-based exception unwinding.
//! Indirect calls through a *tagged* pointer trap — the obfuscator must
//! emit explicit decode code, and the differential tests prove it does.

mod cost;
mod libc;
mod machine;
mod memory;
mod value;

pub use cost::CostModel;
pub use machine::{run_function, run_to_completion, run_with_config, RunConfig, RunResult, Vm, VmError};
pub use memory::{Memory, FUNC_SPACE_BASE, FUNC_SPACE_STRIDE};
pub use value::Value;
