//! Runtime values.

use khaos_ir::constant::normalize_int;
use khaos_ir::{Const, Type};

/// A dynamically-typed runtime value.
///
/// Integers and pointers are carried as `i64` (pointers are unsigned
/// addresses stored in two's complement); floats as `f64` (an `f32` value
/// is stored widened and re-narrowed at each operation of type `f32`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Integer or pointer payload.
    Int(i64),
    /// Float payload.
    Float(f64),
}

impl Value {
    /// The zero value for `ty`.
    pub fn zero(ty: Type) -> Value {
        if ty.is_float() {
            Value::Float(0.0)
        } else {
            Value::Int(0)
        }
    }

    /// Converts a constant into a runtime value.
    pub fn from_const(c: &Const) -> Value {
        match c {
            Const::Int { value, ty } => Value::Int(normalize_int(*value, *ty)),
            Const::Float { value, .. } => Value::Float(*value),
            Const::Null => Value::Int(0),
        }
    }

    /// Reads the integer payload.
    ///
    /// # Panics
    /// Panics if the value is a float (the verifier rules this out for
    /// well-typed modules).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => panic!("expected int value, found float {v}"),
        }
    }

    /// Reads the float payload.
    ///
    /// # Panics
    /// Panics if the value is an integer.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            Value::Int(v) => panic!("expected float value, found int {v}"),
        }
    }

    /// Wraps the payload to `ty`'s width/precision, producing the canonical
    /// value stored in a local of that type.
    pub fn normalize(self, ty: Type) -> Value {
        match (self, ty) {
            (Value::Int(v), t) if t.is_int() => Value::Int(normalize_int(v, t)),
            (Value::Int(v), Type::Ptr) => Value::Int(v),
            (Value::Float(v), Type::F32) => Value::Float(v as f32 as f64),
            (Value::Float(v), Type::F64) => Value::Float(v),
            (v, t) => panic!("cannot normalize {v:?} to {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matches_type_class() {
        assert_eq!(Value::zero(Type::I32), Value::Int(0));
        assert_eq!(Value::zero(Type::F32), Value::Float(0.0));
        assert_eq!(Value::zero(Type::Ptr), Value::Int(0));
    }

    #[test]
    fn normalize_wraps_ints() {
        assert_eq!(Value::Int(300).normalize(Type::I8), Value::Int(44));
        assert_eq!(Value::Int(-1).normalize(Type::I64), Value::Int(-1));
        assert_eq!(Value::Int(3).normalize(Type::I1), Value::Int(1));
    }

    #[test]
    fn normalize_narrows_f32() {
        let v = Value::Float(1.000000001).normalize(Type::F32);
        assert_eq!(v, Value::Float(1.000000001f32 as f64));
    }

    #[test]
    fn const_conversion() {
        assert_eq!(Value::from_const(&Const::int(Type::I8, 257)), Value::Int(1));
        assert_eq!(Value::from_const(&Const::Null), Value::Int(0));
        assert_eq!(Value::from_const(&Const::float(Type::F64, 2.5)), Value::Float(2.5));
    }
}
