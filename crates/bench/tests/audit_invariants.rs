//! Invariants of the semantic auditor over the real workload suites.
//!
//! Two directions, both required by the paper-reproduction contract:
//!
//! 1. **No false positives** — every pipeline the experiments actually
//!    run (random combinations of obfuscation atoms and `-O` levels,
//!    at their harness positions) must produce zero
//!    [`AuditDiagnostic`]s on every module of every suite.
//! 2. **No false negatives** — every seeded miscompile from the
//!    mutation generators (dropped store, retargeted call, orphaned
//!    block) must be flagged when diffed against the clean module.

use khaos_bench::harness::{build_baseline, SEED};
use khaos_ir::audit::mutation::{generate, MutationClass};
use khaos_ir::audit::ModuleSummary;
use khaos_ir::Module;
use khaos_pass::{PassCtx, Pipeline, VerifyPolicy};
use proptest::prelude::*;

fn suites() -> Vec<(&'static str, Vec<Module>)> {
    vec![
        ("spec2006", khaos_workloads::spec2006()),
        ("spec2017", khaos_workloads::spec2017()),
        ("coreutils", khaos_workloads::coreutils()),
        ("tiii", khaos_workloads::tiii()),
    ]
}

const OBF_ATOMS: &[&str] = &[
    "fission",
    "fusion",
    "fufi_sep",
    "fufi_ori",
    "fufi_all",
    "fusion_n(arity=2)",
    "fusion_n(arity=3)",
    "sub(ratio=0.5)",
    "bog(ratio=0.3)",
    "fla(ratio=0.5)",
];

const OPT_LEVELS: &[&str] = &["O0", "O1", "O2", "O3", "O2+lto"];

/// Runs `spec` on `m` under [`VerifyPolicy::AuditAfterEach`], panicking
/// with the audit report on any violation.
fn run_audited(m: &Module, spec: &str, seed: u64) -> Module {
    let pipeline = Pipeline::parse(spec).unwrap_or_else(|e| panic!("spec `{spec}`: {e}"));
    let mut work = m.clone();
    let mut ctx = PassCtx::new(seed).with_verify(VerifyPolicy::AuditAfterEach);
    pipeline
        .run(&mut work, &mut ctx)
        .unwrap_or_else(|e| panic!("`{spec}` on {}: {e}", m.name));
    work
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random (suite, module, obfuscation atom, opt level) pipelines at
    /// the harness position produce zero audit diagnostics.
    #[test]
    fn random_pipelines_audit_clean(
        suite_ix in 0usize..4,
        module_salt in any::<u64>(),
        atom_ix in 0usize..10,
        level_ix in 0usize..5,
        seed_salt in any::<u64>(),
    ) {
        let (_, mods) = suites().swap_remove(suite_ix);
        let m = &mods[(module_salt as usize) % mods.len()];
        let seed = SEED ^ seed_salt;

        // The plain `-O` build on the source module…
        let spec = OPT_LEVELS[level_ix];
        run_audited(m, spec, seed);

        // …and the obfuscation pipeline on the optimized baseline.
        let baseline = build_baseline(m);
        let spec = format!("{} | O2+lto", OBF_ATOMS[atom_ix]);
        run_audited(&baseline, &spec, seed);
    }
}

/// Identity comparison is clean for every module of every suite, both
/// raw and at its optimized baseline: the auditor reports nothing when
/// nothing changed.
#[test]
fn clean_modules_self_diff_empty() {
    for (sname, mods) in suites() {
        for m in &mods {
            let s = ModuleSummary::compute(m);
            let diags = ModuleSummary::diff(&s, &s);
            assert!(diags.is_empty(), "{sname}/{}: {diags:?}", m.name);

            let base = build_baseline(m);
            let sb = ModuleSummary::compute(&base);
            let diags = ModuleSummary::diff(&sb, &sb);
            assert!(diags.is_empty(), "{sname}/{} baseline: {diags:?}", m.name);
        }
    }
}

/// Every generated mutant of every class, seeded into real workload
/// modules, is flagged by the auditor: a 100% catch rate.
#[test]
fn seeded_miscompiles_all_caught() {
    let classes = [
        MutationClass::DroppedStore,
        MutationClass::RetargetedCall,
        MutationClass::OrphanedBlock,
    ];
    let mut per_class = [0usize; 3];
    for (sname, mods) in suites() {
        for m in &mods {
            let before = ModuleSummary::compute(m);
            for (ci, &class) in classes.iter().enumerate() {
                for mutant in generate(m, class, 4) {
                    let after = ModuleSummary::compute(&mutant.module);
                    let diags = ModuleSummary::diff(&before, &after);
                    assert!(
                        !diags.is_empty(),
                        "{sname}/{}: undetected {class:?}: {}",
                        m.name,
                        mutant.description
                    );
                    per_class[ci] += 1;
                }
            }
        }
    }
    // The generators must actually fire on the real suites — an empty
    // mutant set would make this test vacuous.
    for (ci, &class) in classes.iter().enumerate() {
        assert!(
            per_class[ci] >= 8,
            "too few {class:?} mutants: {}",
            per_class[ci]
        );
    }
}
