//! # khaos-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4).
//! Each `figN`/`tableN` function prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` records the measured numbers next to the
//! paper's. The `experiments` binary dispatches to these functions.

pub mod coordinator;
pub mod experiments;
pub mod harness;

pub use coordinator::{run_elastic, run_elastic_with, ElasticSummary, WorkUnit};
pub use harness::{
    active_shard, artifact_store, build_at, build_baseline, build_binary, build_config, geomean,
    geomean_ratio, khaos_apply, khaos_apply_nway, khaos_atom, measure_cycles, obfuscate_ollvm,
    ollvm_atom, overhead_pct, par_fan_out, persist_metrics, persist_metrics_to, prepare_baselines,
    run_spec, stored_report, BuildConfig, ShardSpec, SEED,
};
