//! The per-figure / per-table experiment drivers.
//!
//! Every function prints the same rows or series the paper's artifact
//! reports. See `EXPERIMENTS.md` at the repository root for paper-vs-
//! measured notes.

use crate::harness::{
    active_shard, artifact_store, build_at, build_baseline, build_binary, build_config, geomean,
    geomean_ratio, khaos_apply, khaos_atom, measure_cycles, overhead_pct, par_fan_out,
    persist_metrics_to, prepare_baselines, run_spec, BuildConfig, ShardSpec, SEED,
};
use khaos_binary::{histogram_distance, lower_module, opcode_histogram};
use khaos_bintuner::BinTuner;
use khaos_core::{FissionStats, FusionStats, KhaosMode};
use khaos_diff::{
    binary_similarity, deepbindiff_precision_at_1, escape_profile, precision_at_1, Asm2Vec,
    BinDiff, DeepBinDiff, Differ, Safe, VulSeeker,
};
use khaos_ir::Module;
use khaos_ollvm::OllvmMode;
use khaos_opt::OptLevel;
use khaos_store::{ReportKey, Store};
use khaos_workloads::{coreutils, spec2006, spec2017, tiii, TIII_CVES};

/// Scope knob: `--quick` trims the program sets so a laptop run finishes
/// in seconds; the default covers the full suites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Trimmed program sets.
    Quick,
    /// The full suites (T-I: 47 programs, T-II: 108, T-III: 5).
    Full,
}

fn t1_programs(scope: Scope) -> Vec<Module> {
    let mut v = spec2006();
    v.extend(spec2017());
    if scope == Scope::Quick {
        v.truncate(6);
    }
    v
}

fn t2_programs(scope: Scope) -> Vec<Module> {
    let mut v = coreutils();
    if scope == Scope::Quick {
        v.truncate(8);
    }
    v
}

/// Applies the active shard to a flattened work list, announcing the
/// partial coverage; un-sharded runs pass through untouched. Sharded
/// figure runs print their shard's rows only — aggregate rows
/// (GEOMEAN/averages) then cover the shard, not the suite, which the
/// note makes explicit.
fn shard_select<T>(shard: ShardSpec, what: &str, items: Vec<T>) -> Vec<T> {
    if shard.is_full() {
        return items;
    }
    let total = items.len();
    let owned = shard.select(items);
    println!(
        "# shard {shard}: measuring {} of {total} {what} (aggregates cover this shard only)",
        owned.len()
    );
    owned
}

/// **Figure 6** — runtime overhead of the five Khaos modes on the SPEC
/// CPU 2006/2017 stand-ins, per program plus geometric means.
pub fn fig6(scope: Scope) {
    println!("# Figure 6: runtime overhead (%) of Khaos modes, baseline O2+LTO");
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "program", "Fission", "Fusion", "FuFi.sep", "FuFi.ori", "FuFi.all"
    );
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); KhaosMode::ALL.len()];
    let programs = shard_select(active_shard(), "T-I programs", t1_programs(scope));
    // One worker per program: baseline + the five mode builds.
    let rows = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        let base_cycles = measure_cycles(&base);
        let ohs: Vec<f64> = KhaosMode::ALL
            .iter()
            .map(|mode| {
                let (obf, _) = khaos_apply(&base, *mode, SEED);
                overhead_pct(base_cycles, measure_cycles(&obf))
            })
            .collect();
        (src.name.clone(), ohs)
    });
    for (name, ohs) in rows {
        let mut row = format!("{name:<20}");
        for (k, oh) in ohs.into_iter().enumerate() {
            per_mode[k].push(oh);
            row.push_str(&format!(" {oh:>8.1}%"));
        }
        println!("{row}");
    }
    let mut row = format!("{:<20}", "GEOMEAN");
    for ohs in &per_mode {
        row.push_str(&format!(" {:>8.1}%", geomean_ratio(ohs)));
    }
    println!("{row}");
}

/// **Figure 7** — overhead comparison against O-LLVM (Sub/Bog/Fla at
/// 100%, Fla-10 at 10%) with geometric means per suite.
pub fn fig7(scope: Scope) {
    println!("# Figure 7: runtime overhead (%) — O-LLVM vs Khaos (GEOMEAN)");
    let configs: Vec<(String, BuildConfig)> = vec![
        ("Sub".into(), BuildConfig::Ollvm(OllvmMode::Sub(1.0))),
        ("Bog".into(), BuildConfig::Ollvm(OllvmMode::Bog(1.0))),
        ("Fla".into(), BuildConfig::Ollvm(OllvmMode::Fla(1.0))),
        ("Fla-10".into(), BuildConfig::Ollvm(OllvmMode::Fla(0.1))),
        ("Fission".into(), BuildConfig::Khaos(KhaosMode::Fission)),
        ("Fusion".into(), BuildConfig::Khaos(KhaosMode::Fusion)),
        ("FuFi.sep".into(), BuildConfig::Khaos(KhaosMode::FuFiSep)),
        ("FuFi.ori".into(), BuildConfig::Khaos(KhaosMode::FuFiOri)),
        ("FuFi.all".into(), BuildConfig::Khaos(KhaosMode::FuFiAll)),
    ];
    let suites: Vec<(&str, Vec<Module>)> = if scope == Scope::Quick {
        vec![("SPEC(quick)", t1_programs(scope))]
    } else {
        vec![("SPEC CPU 2006", spec2006()), ("SPEC CPU 2017", spec2017())]
    };
    print!("{:<14}", "config");
    for (sname, _) in &suites {
        print!(" {sname:>15}");
    }
    println!(" {:>10}", "GEOMEAN");
    // Baselines are shared by all nine configurations: build once.
    let baselines: Vec<Vec<(Module, u64)>> = suites
        .iter()
        .map(|(_, programs)| prepare_baselines(programs))
        .collect();
    for (name, cfg) in &configs {
        let mut all = Vec::new();
        print!("{name:<14}");
        for prepared in &baselines {
            let ohs = par_fan_out(prepared, |(base, base_cycles)| {
                let obf = build_config(base, *cfg);
                overhead_pct(*base_cycles, measure_cycles(&obf))
            });
            all.extend_from_slice(&ohs);
            print!(" {:>14.1}%", geomean_ratio(&ohs));
        }
        println!(" {:>9.1}%", geomean_ratio(&all));
    }
}

/// **Figure 8** — Precision@1 of the five diffing tools against the eight
/// obfuscation configurations (obfuscated vs un-obfuscated, un-stripped).
pub fn fig8(scope: Scope) {
    println!("# Figure 8: diffing accuracy vs obfuscation (T-I + T-II)");
    println!("#   BinDiff column = normalized whole-binary similarity;");
    println!("#   learning tools = Precision@1 with relaxed pairing (paper 4.2)");
    let configs = BuildConfig::figure8_set();
    let mut programs = t1_programs(scope);
    programs.extend(t2_programs(scope));
    let programs = shard_select(active_shard(), "T-I + T-II programs", programs);

    print!("{:<10}", "config");
    for t in ["BinDiff", "VulSeeker", "Asm2Vec", "SAFE", "DeepBinDiff"] {
        print!(" {t:>11}");
    }
    println!();

    // Baselines (and their lowered binaries) are shared by all eight
    // configurations; the embedding cache then reuses the baseline-side
    // embeddings across every config row.
    let prepared: Vec<_> = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        let base_bin = lower_module(&base);
        (base, base_bin)
    });
    for cfg in configs {
        let per_program = par_fan_out(&prepared, |(base, base_bin)| {
            let obf_bin = build_binary(base, cfg);
            [
                binary_similarity(&BinDiff::default(), base_bin, &obf_bin),
                precision_at_1(&VulSeeker::default(), base_bin, &obf_bin),
                precision_at_1(&Asm2Vec::default(), base_bin, &obf_bin),
                precision_at_1(&Safe::default(), base_bin, &obf_bin),
                deepbindiff_precision_at_1(&DeepBinDiff::default(), base_bin, &obf_bin),
            ]
        });
        print!("{:<10}", cfg.name());
        for t in 0..5 {
            let avg: f64 =
                per_program.iter().map(|s| s[t]).sum::<f64>() / per_program.len().max(1) as f64;
            print!(" {avg:>11.3}");
        }
        println!();
    }
}

/// The SPECint 2006 + SPECspeed 2017 subset plotted in Figure 9.
fn fig9_names() -> Vec<&'static str> {
    vec![
        "400.perlbench",
        "401.bzip2",
        "429.mcf",
        "445.gobmk",
        "456.hmmer",
        "458.sjeng",
        "462.libquantum",
        "464.h264ref",
        "473.astar",
        "483.xalancbmk",
        "600.perlbench_s",
        "605.mcf_s",
        "620.omnetpp_s",
        "623.xalancbmk_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "641.leela_s",
        "657.xz_s",
    ]
}

/// **Figure 9** — BinDiff similarity of BinTuner and Khaos builds against
/// `O0`–`O3` reference builds, plus BinTuner's runtime overhead against
/// the paper's `O2+LTO` Khaos baseline (paper reports 30.35%).
pub fn fig9(scope: Scope) {
    println!("# Figure 9: BinDiff similarity — BinTuner vs Khaos (FuFi.all)");
    let names = fig9_names();
    let mut programs: Vec<Module> = spec2006()
        .into_iter()
        .chain(spec2017())
        .filter(|m| names.contains(&m.name.as_str()))
        .collect();
    if scope == Scope::Quick {
        programs.truncate(4);
    }

    let differ = BinDiff::default();
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8} {:>8} {:>10}",
        "program",
        "BT/O0",
        "BT/O1",
        "BT/O2",
        "BT/O3",
        "KH/O0",
        "KH/O1",
        "KH/O2",
        "KH/O3",
        "BT-ovh%"
    );
    let mut bt_cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut kh_cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut bt_overheads = Vec::new();
    // Fan out per program: each worker runs the BinTuner search, the
    // Khaos build, and the eight whole-binary comparisons.
    let results = par_fan_out(&programs, |src| {
        let refs: Vec<_> = OptLevel::ALL
            .iter()
            .map(|l| lower_module(&build_at(src, *l)))
            .collect();

        let tuned = BinTuner {
            budget: 16,
            seed: SEED,
        }
        .tune(src);
        let baseline = build_baseline(src);
        let base_cycles = measure_cycles(&baseline);
        let bt_overhead = overhead_pct(base_cycles, measure_cycles(&tuned.module));

        let (khaos, _) = khaos_apply(&baseline, KhaosMode::FuFiAll, SEED);
        let khaos_bin = lower_module(&khaos);

        let bt: Vec<f64> = refs
            .iter()
            .map(|r| binary_similarity(&differ, r, &tuned.binary))
            .collect();
        let kh: Vec<f64> = refs
            .iter()
            .map(|r| binary_similarity(&differ, r, &khaos_bin))
            .collect();
        (src.name.clone(), bt, kh, bt_overhead)
    });
    for (name, bt, kh, bt_overhead) in results {
        bt_overheads.push(bt_overhead);
        let mut row = format!("{name:<18}");
        for (k, s) in bt.into_iter().enumerate() {
            bt_cols[k].push(s);
            row.push_str(&format!(" {s:>8.3}"));
        }
        row.push_str("  ");
        for (k, s) in kh.into_iter().enumerate() {
            kh_cols[k].push(s);
            row.push_str(&format!(" {s:>8.3}"));
        }
        row.push_str(&format!(" {bt_overhead:>9.1}%"));
        println!("{row}");
    }
    let mut row = format!("{:<18}", "GEOMEAN");
    for c in &bt_cols {
        row.push_str(&format!(" {:>8.3}", geomean(c)));
    }
    row.push_str("  ");
    for c in &kh_cols {
        row.push_str(&format!(" {:>8.3}", geomean(c)));
    }
    row.push_str(&format!(" {:>9.1}%", geomean_ratio(&bt_overheads)));
    println!("{row}");
    println!("# paper: Khaos scores well below BinTuner at every level; BinTuner overhead 30.35%");
}

/// The escape thresholds of Figure 10 (the paper's `escape@{1,10,50}`).
pub const FIG10_KS: [usize; 3] = [1, 10, 50];

/// The six obfuscation configurations of Figure 10, in row order
/// (Fla at 100% here, as in the paper).
pub fn fig10_configs() -> Vec<(String, BuildConfig)> {
    vec![
        ("Sub".into(), BuildConfig::Ollvm(OllvmMode::Sub(1.0))),
        ("Bog".into(), BuildConfig::Ollvm(OllvmMode::Bog(1.0))),
        ("Fla".into(), BuildConfig::Ollvm(OllvmMode::Fla(1.0))),
        ("FuFi.sep".into(), BuildConfig::Khaos(KhaosMode::FuFiSep)),
        ("FuFi.ori".into(), BuildConfig::Khaos(KhaosMode::FuFiOri)),
        ("FuFi.all".into(), BuildConfig::Khaos(KhaosMode::FuFiAll)),
    ]
}

/// The three learning-based tools Figure 10 evaluates, in column order.
fn fig10_tools() -> Vec<(&'static str, Box<dyn Differ + Sync>)> {
    vec![
        ("VulSeeker", Box::new(VulSeeker::default())),
        ("Asm2Vec", Box::new(Asm2Vec::default())),
        ("SAFE", Box::new(Safe::default())),
    ]
}

/// The T-III programs of Figure 10; `--quick` trims the suite so the
/// sharding end-to-end tests stay cheap.
fn fig10_programs(scope: Scope) -> Vec<Module> {
    let mut v = tiii();
    if scope == Scope::Quick {
        v.truncate(2);
    }
    v
}

/// The `khaos-store` report subject of one Figure-10 cell — together
/// with the config pipeline's fingerprint and [`SEED`] this is the
/// cell's complete `ReportKey`, so any process that knows the grid can
/// query (or check for) the cell without recomputing anything.
pub fn fig10_subject(program: &str, config: &str, tool: &str) -> String {
    format!("fig10/{program}/{config}/{tool}")
}

/// One measured Figure-10 cell: the escape profile of `tool` on
/// `program` built under `config`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig10Cell {
    /// Program name (T-III member).
    pub program: String,
    /// Configuration display name (Figure-10 row).
    pub config: String,
    /// Differ name (Figure-10 column).
    pub tool: &'static str,
    /// `Pipeline::fingerprint()` of the configuration's build spec —
    /// the report keyspace the cell persists under.
    pub pipeline: u64,
    /// `escape@{1,10,50}` ([`FIG10_KS`]).
    pub escape: [f64; 3],
}

impl Fig10Cell {
    /// The cell's store subject (same form as [`Fig10CellKey::subject`]).
    pub fn subject(&self) -> String {
        fig10_subject(&self.program, &self.config, self.tool)
    }
}

/// The identity of one expected Figure-10 cell (no measurement) — what
/// the merge layer checks a union of shard stores against.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig10CellKey {
    /// Program name.
    pub program: String,
    /// Configuration display name.
    pub config: String,
    /// Differ name.
    pub tool: &'static str,
    /// Configuration pipeline fingerprint.
    pub pipeline: u64,
}

impl Fig10CellKey {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        fig10_subject(&self.program, &self.config, self.tool)
    }
}

/// Every cell of the Figure-10 grid in canonical order (the flattened
/// `config × program` grid of [`fig10_cells`], tools innermost) —
/// the completeness contract [`fig10_merge`] enforces.
pub fn fig10_expected(scope: Scope) -> Vec<Fig10CellKey> {
    let configs = fig10_configs();
    let tools = fig10_tools();
    let programs = fig10_programs(scope);
    let mut out = Vec::new();
    for (config, cfg) in &configs {
        for program in &programs {
            for (tool, _) in &tools {
                out.push(Fig10CellKey {
                    program: program.name.clone(),
                    config: config.clone(),
                    tool,
                    pipeline: cfg.fingerprint(),
                });
            }
        }
    }
    out
}

/// Measures `shard`'s share of the Figure-10 grid, returning its cells
/// in canonical grid order and persisting each into `store` (when
/// given) under the cell's `ReportKey`.
///
/// The shard partitions the **flattened `config × program` grid** —
/// the expensive unit is one obfuscated build, shared by all three
/// tools, so tools stay inside the cell. Every cell is a deterministic
/// function of `(program, config, seed)` alone: any shard of any
/// process computes bit-identical values for the cells it owns, which
/// is what lets [`fig10_merge`] reassemble a grid from machines that
/// never shared memory (pinned by `tests/shard_e2e.rs`).
pub fn fig10_cells(scope: Scope, shard: ShardSpec, store: Option<&Store>) -> Vec<Fig10Cell> {
    let configs = fig10_configs();
    let tools = fig10_tools();
    let programs = fig10_programs(scope);

    // One flat (config × program) grid: a single fan-out level keeps
    // concurrency at ~core count instead of multiplying config workers
    // by program workers — and gives the shard its index space. The
    // shard is applied *before* the baseline builds so a shard only
    // pays for the programs its cells actually touch.
    let grid: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..programs.len()).map(move |pi| (ci, pi)))
        .collect();
    let grid = shard.select(grid);
    // Baselines are shared by every config row touching the program;
    // build each distinct program of the owned cells exactly once.
    // (Baselines are deterministic per program, so building a subset
    // yields the same binaries the full run would — cell values stay
    // shard-independent.)
    let needed: Vec<usize> = {
        let mut v: Vec<usize> = grid.iter().map(|&(_, pi)| pi).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let prepared: Vec<_> = par_fan_out(&needed, |&pi| {
        let base = build_baseline(&programs[pi]);
        (lower_module(&base), base)
    });
    let cells: Vec<Vec<Fig10Cell>> = par_fan_out(&grid, |&(ci, pi)| {
        let slot = needed.binary_search(&pi).expect("pi collected from grid");
        let (base_bin, base) = &prepared[slot];
        let (cfg_name, cfg) = &configs[ci];
        let obf_bin = build_binary(base, *cfg);
        tools
            .iter()
            .map(|(tool_name, tool)| {
                let profile = escape_profile(tool.as_ref(), base_bin, &obf_bin, &FIG10_KS);
                let cell = Fig10Cell {
                    program: base_bin.name.clone(),
                    config: cfg_name.clone(),
                    tool: tool_name,
                    pipeline: cfg.fingerprint(),
                    escape: [profile[0], profile[1], profile[2]],
                };
                // Durable per-cell result, keyed by the build pipeline's
                // fingerprint (no-op without a store).
                if let Some(store) = store {
                    persist_metrics_to(
                        store,
                        &cell.subject(),
                        cell.pipeline,
                        &[
                            ("escape@1", cell.escape[0]),
                            ("escape@10", cell.escape[1]),
                            ("escape@50", cell.escape[2]),
                        ],
                    );
                }
                cell
            })
            .collect()
    });
    cells.into_iter().flatten().collect()
}

/// First-seen-order dedup — the row/column orders of the printed
/// tables, derived from the cells themselves.
fn uniq<T: PartialEq>(items: impl Iterator<Item = T>) -> Vec<T> {
    let mut v = Vec::new();
    for x in items {
        if !v.contains(&x) {
            v.push(x);
        }
    }
    v
}

/// Prints the Figure-10 tables (one per threshold, config rows × tool
/// columns, averaged over programs) from a complete cell grid. The
/// header names the grid's actual dimensions — a merge run at a
/// different scope than the shards (e.g. `--quick fig10-merge` over
/// full-scope stores) is then visibly a truncated grid, not silently a
/// smaller Figure 10.
fn fig10_print_tables(cells: &[Fig10Cell]) {
    let programs = uniq(cells.iter().map(|c| c.program.as_str()));
    println!(
        "# grid: {} cells over {} program(s): {}",
        cells.len(),
        programs.len(),
        programs.join(", ")
    );
    let configs = uniq(cells.iter().map(|c| c.config.as_str()));
    let tools = uniq(cells.iter().map(|c| c.tool));
    for (ki, k) in FIG10_KS.iter().enumerate() {
        println!("\n## escape@{k}");
        print!("{:<10}", "config");
        for t in &tools {
            print!(" {t:>10}");
        }
        println!();
        for config in &configs {
            print!("{config:<10}");
            for tool in &tools {
                let scores: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.config == *config && c.tool == *tool)
                    .map(|c| c.escape[ki])
                    .collect();
                let avg = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
                print!(" {avg:>10.2}");
            }
            println!();
        }
    }
}

/// **Figure 10** — escape@1/10/50 of the T-III vulnerable functions under
/// each obfuscation. Honours the active shard (`KHAOS_SHARD` /
/// `--shard i/n`): a sharded run measures only its share of the
/// `config × program` grid, persists the cells into `KHAOS_STORE`, and
/// prints them row-wise; `experiments fig10-merge <DIR...>` reassembles
/// the full tables from any union of shard stores.
pub fn fig10(scope: Scope) {
    println!("# Figure 10: escape ratio of vulnerable functions (T-III)");
    let shard = active_shard();
    let store = artifact_store();
    if !shard.is_full() && store.is_none() {
        println!(
            "# WARNING: sharded run without KHAOS_STORE — cells will be printed but \
             not persisted, so fig10-merge cannot reassemble this shard"
        );
    }
    let cells = fig10_cells(scope, shard, store.as_deref());
    if shard.is_full() {
        fig10_print_tables(&cells);
        return;
    }
    println!(
        "# shard {shard}: {} of {} cells (merge with `experiments fig10-merge <store-dirs>`)",
        cells.len(),
        fig10_expected(scope).len()
    );
    println!(
        "{:<16} {:<10} {:<10} {:>9} {:>9} {:>9}",
        "program", "config", "tool", "escape@1", "escape@10", "escape@50"
    );
    for c in &cells {
        println!(
            "{:<16} {:<10} {:<10} {:>9.2} {:>9.2} {:>9.2}",
            c.program, c.config, c.tool, c.escape[0], c.escape[1], c.escape[2]
        );
    }
}

/// Reassembles the complete Figure-10 grid from any union of shard
/// stores (earlier stores win on duplicate cells, though duplicates are
/// bit-identical by determinism). Returns the cells in canonical grid
/// order, or — when any expected cell is missing from every store — an
/// `Err` listing each missing cell precisely (subject + pipeline
/// fingerprint), so an operator can see exactly which shard never ran
/// or never persisted.
pub fn fig10_merge(scope: Scope, stores: &[&Store]) -> Result<Vec<Fig10Cell>, Vec<String>> {
    fig10_merge_expected(&fig10_expected(scope), stores)
}

/// [`fig10_merge`] against an already-computed expected grid (the
/// merge CLI computes the grid once and reuses it for its header and
/// missing-cell accounting — regenerating it re-synthesizes the whole
/// T-III suite).
fn fig10_merge_expected(
    expected: &[Fig10CellKey],
    stores: &[&Store],
) -> Result<Vec<Fig10Cell>, Vec<String>> {
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for key in expected {
        let subject = key.subject();
        let report_key = ReportKey {
            pipeline: key.pipeline,
            seed: SEED,
            subject: &subject,
        };
        // A store I/O failure is not "the shard never ran" — keep the
        // distinction so the operator fixes the store instead of
        // re-running an expensive shard sweep. (Corrupt records decode
        // to `Ok(None)` by design; `khaos-store verify` names those.)
        let mut found = None;
        let mut read_errors = Vec::new();
        for s in stores {
            match s.get_report(&report_key) {
                Ok(Some(r)) => {
                    found = Some(r);
                    break;
                }
                Ok(None) => {}
                Err(e) => read_errors.push(format!("{}: {e}", s.root().display())),
            }
        }
        let Some(report) = found else {
            missing.push(if read_errors.is_empty() {
                format!(
                    "{subject} (pipeline {:016x}, seed {:#x})",
                    key.pipeline, SEED
                )
            } else {
                // Name every failing store, not just the last — the
                // operator should fix them all in one pass.
                format!(
                    "{subject} (store read error — cell may exist: {})",
                    read_errors.join("; ")
                )
            });
            continue;
        };
        let metric = |name: &str| {
            report
                .metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        match (metric("escape@1"), metric("escape@10"), metric("escape@50")) {
            (Some(e1), Some(e10), Some(e50)) => cells.push(Fig10Cell {
                program: key.program.clone(),
                config: key.config.clone(),
                tool: key.tool,
                pipeline: key.pipeline,
                escape: [e1, e10, e50],
            }),
            _ => missing.push(format!(
                "{subject} (record present but missing escape@{{1,10,50}} metrics)"
            )),
        }
    }
    if missing.is_empty() {
        Ok(cells)
    } else {
        Err(missing)
    }
}

/// `experiments fig10-merge DIR...` — reassembles and prints the full
/// Figure-10 tables from a union of shard stores, or lists every
/// missing cell and fails. Returns whether the grid was complete.
pub fn fig10_report(scope: Scope, store_dirs: &[String]) -> bool {
    // One grid generation serves the header, the merge and the
    // missing-cell accounting.
    let expected = fig10_expected(scope);
    println!("# Figure 10 (merged from {} store(s))", store_dirs.len());
    println!(
        "# scope: {scope:?} — expecting {} cells; match the shards' --quick flag, or a \
         full-scope store merges into a silently smaller grid",
        expected.len()
    );
    let mut stores = Vec::new();
    for dir in store_dirs {
        // Merging must never conjure a store: a typo'd path is an
        // error, not an empty store whose every cell reads as missing.
        match Store::open_existing(dir) {
            Ok(s) => stores.push(s),
            Err(e) => {
                println!("# cannot open store `{dir}`: {e}");
                return false;
            }
        }
    }
    let refs: Vec<&Store> = stores.iter().collect();
    match fig10_merge_expected(&expected, &refs) {
        Ok(cells) => {
            fig10_print_tables(&cells);
            true
        }
        Err(missing) => {
            println!(
                "# INCOMPLETE GRID: {} of {} cells missing:",
                missing.len(),
                expected.len()
            );
            for m in &missing {
                println!("#   missing {m}");
            }
            false
        }
    }
}

/// **Figure 11** — normalized opcode-histogram distance of every
/// configuration against the baseline build.
pub fn fig11(scope: Scope) {
    println!("# Figure 11: opcode histogram distance (normalized per suite)");
    let mut configs: Vec<(String, Option<BuildConfig>)> = vec![
        ("Sub".into(), Some(BuildConfig::Ollvm(OllvmMode::Sub(1.0)))),
        ("Bog".into(), Some(BuildConfig::Ollvm(OllvmMode::Bog(1.0)))),
        (
            "Fla-10".into(),
            Some(BuildConfig::Ollvm(OllvmMode::Fla(0.1))),
        ),
        ("BinTuner".into(), None), // handled specially
    ];
    configs.extend(
        KhaosMode::ALL
            .iter()
            .map(|m| (m.name().to_string(), Some(BuildConfig::Khaos(*m)))),
    );
    let programs = shard_select(active_shard(), "T-I programs", t1_programs(scope));

    // Fan out per program; each worker builds every configuration.
    let rows = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        let base_hist = opcode_histogram(&lower_module(&base));
        let ds: Vec<f64> = configs
            .iter()
            .map(|(_, cfg)| {
                let obf_bin = match cfg {
                    Some(c) => build_binary(&base, *c),
                    None => {
                        BinTuner {
                            budget: 8,
                            seed: SEED,
                        }
                        .tune(src)
                        .binary
                    }
                };
                histogram_distance(&base_hist, &opcode_histogram(&obf_bin))
            })
            .collect();
        (src.name.clone(), ds)
    });
    // distances[config][program]
    let mut distances: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut names: Vec<String> = Vec::new();
    for (name, ds) in rows {
        names.push(name);
        for (ci, d) in ds.into_iter().enumerate() {
            distances[ci].push(d);
        }
    }
    // Normalize by the max distance over everything (the paper's scheme).
    let max = distances
        .iter()
        .flat_map(|v| v.iter())
        .cloned()
        .fold(1e-9f64, f64::max);
    print!("{:<20}", "program");
    for (n, _) in &configs {
        print!(" {n:>9}");
    }
    println!();
    for (pi, pname) in names.iter().enumerate() {
        print!("{pname:<20}");
        for d in &distances {
            print!(" {:>9.3}", d[pi] / max);
        }
        println!();
    }
    print!("{:<20}", "GEOMEAN");
    for d in &distances {
        let norm: Vec<f64> = d.iter().map(|x| x / max).collect();
        print!(" {:>9.3}", geomean(&norm));
    }
    println!();
}

/// **Table 1** — the diffing-tool characteristics summary.
pub fn table1() {
    println!("# Table 1: chosen diffing works");
    println!(
        "{:<12} {:<12} {:<7} {:<7} {:<7} {:<10}",
        "diffing", "granularity", "symbol", "time", "memory", "call-graph"
    );
    println!(
        "{:<12} {:<12} {:<7} {:<7} {:<7} {:<10}",
        "", "", "relying", "heavy", "heavy", "lacking"
    );
    for (name, gran, sym, time, mem, cg) in [
        ("BinDiff", "function", "Y", "N", "N", "N"),
        ("VulSeeker", "function", "N", "Y", "Y", "Y"),
        ("Asm2Vec", "function", "N", "N", "N", "Y"),
        ("SAFE", "function", "N", "N", "N", "Y"),
        ("DeepBinDiff", "basic block", "N", "Y", "Y", "N"),
    ] {
        println!("{name:<12} {gran:<12} {sym:<7} {time:<7} {mem:<7} {cg:<10}");
    }
}

/// **Table 2** — fission/fusion internal statistics per suite.
pub fn table2(scope: Scope) {
    println!("# Table 2: statistics of the fission and the fusion");
    let suites: Vec<(&str, Vec<Module>)> = if scope == Scope::Quick {
        vec![("SPEC2006(q)", {
            let mut v = spec2006();
            v.truncate(4);
            v
        })]
    } else {
        vec![
            ("SPEC CPU 2006", spec2006()),
            ("SPEC CPU 2017", spec2017()),
            ("CoreUtils", coreutils()),
        ]
    };
    println!(
        "{:<16} {:>12} {:>8} {:>8} {:>13} {:>8} {:>8}",
        "suite", "FissionRatio", "#BB", "RR", "FusionRatio", "#RP", "#HBB"
    );
    for (name, programs) in suites {
        let mut fi = FissionStats::default();
        let mut fu = FusionStats::default();
        // Fission stats come from a pure-fission build; fusion stats
        // from a pure-fusion build (the paper measures the primitives
        // individually, "without the combination").
        let stats = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let (_, fi_ctx) = khaos_apply(&base, KhaosMode::Fission, SEED);
            let (_, fu_ctx) = khaos_apply(&base, KhaosMode::Fusion, SEED);
            (fi_ctx.fission_stats, fu_ctx.fusion_stats)
        });
        for (fis, fus) in &stats {
            fi.merge(fis);
            fu.merge(fus);
        }
        println!(
            "{:<16} {:>11.0}% {:>8.2} {:>7.0}% {:>12.0}% {:>8.2} {:>8.2}",
            name,
            fi.ratio() * 100.0,
            fi.avg_blocks(),
            fi.reduced_ratio() * 100.0,
            fu.ratio() * 100.0,
            fu.avg_reduced_params(),
            fu.avg_innocuous(),
        );
    }
    println!("# paper: Fission 116-152%, #BB 5.3-6.5, RR 34-44%; Fusion 97-99%, #RP 1.2-1.5, #HBB 1.0-1.9");
}

/// **Table 3** — the CVE inventory of the T-III suite.
pub fn table3() {
    println!("# Table 3: vulnerable functions of Test Suite III");
    println!("{:<16} {:<28} CVE", "program", "function");
    let mut total = 0;
    for (prog, funcs) in TIII_CVES {
        for (f, cve) in *funcs {
            println!("{prog:<16} {f:<28} {cve}");
            total += 1;
        }
    }
    println!("total vulnerable functions: {total}");
}

/// Ablation: the data-flow reduction, parameter compression and deep
/// fusion switches called out in DESIGN.md.
pub fn ablations(scope: Scope) {
    use khaos_core::KhaosOptions;
    println!("# Ablations: Khaos design-choice switches");
    let programs = {
        let mut v = t1_programs(Scope::Quick);
        if scope == Scope::Quick {
            v.truncate(3);
        }
        v
    };

    let run = |name: &str, options: KhaosOptions, mode: KhaosMode| {
        let mut ohs = Vec::new();
        let mut fi = FissionStats::default();
        let mut fu = FusionStats::default();
        let pipeline = khaos_pass::Pipeline::parse(khaos_atom(mode)).expect("ablation spec");
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_cycles = measure_cycles(&base);
            let mut m = base.clone();
            let mut ctx = khaos_pass::PassCtx::with_options(SEED, options.clone());
            pipeline.run(&mut m, &mut ctx).expect("ablation build");
            let oh = overhead_pct(base_cycles, measure_cycles(&m));
            (oh, ctx.fission_stats, ctx.fusion_stats)
        });
        for (oh, fis, fus) in &results {
            ohs.push(*oh);
            fi.merge(fis);
            fu.merge(fus);
        }
        println!(
            "{:<34} overhead {:>7.1}%  paramsReduced {:>4}  #RP {:>5.2}  deepPairs {:>4}",
            name,
            geomean_ratio(&ohs),
            fi.params_reduced,
            fu.avg_reduced_params(),
            fu.deep_fused_pairs,
        );
    };

    run(
        "Fission (default)",
        KhaosOptions::default(),
        KhaosMode::Fission,
    );
    run(
        "Fission w/o data-flow reduction",
        KhaosOptions {
            data_flow_reduction: false,
            ..Default::default()
        },
        KhaosMode::Fission,
    );
    run(
        "Fission naive regions (min_value 0)",
        KhaosOptions {
            fission_min_value: 0.0,
            fission_max_regions: 64,
            ..Default::default()
        },
        KhaosMode::Fission,
    );
    run(
        "Fusion (default)",
        KhaosOptions::default(),
        KhaosMode::Fusion,
    );
    run(
        "Fusion w/o param compression",
        KhaosOptions {
            parameter_compression: false,
            ..Default::default()
        },
        KhaosMode::Fusion,
    );
    run(
        "Fusion w/o deep fusion",
        KhaosOptions {
            deep_fusion: false,
            ..Default::default()
        },
        KhaosMode::Fusion,
    );
}

/// **Extension E10** — N-way fusion arity sweep (`ext-arity`).
///
/// Paper §3.3 fixes the fusion arity at two "to balance the performance
/// overhead and the obfuscation effect" and §A.1's tag-bit budget caps
/// the general form at four constituents. This sweep measures the
/// trade-off the paper asserts: overhead and anti-diffing effect as the
/// arity grows.
pub fn ext_arity(scope: Scope) {
    use crate::harness::khaos_apply_nway;
    println!("# Extension: N-way fusion arity sweep (fusion-only builds)");
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "arity", "overhead", "BinDiff", "Asm2Vec", "SAFE", "DataFlow", "fus/funcs"
    );
    let programs = t1_programs(scope);
    for arity in 2..=4usize {
        let mut ohs = Vec::new();
        let mut bindiff = Vec::new();
        let mut asm2vec = Vec::new();
        let mut safe = Vec::new();
        let mut dataflow = Vec::new();
        let mut fus_funcs = 0usize;
        let mut eligible = 0usize;
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_cycles = measure_cycles(&base);
            let base_bin = lower_module(&base);
            let (obf, ctx) = khaos_apply_nway(&base, arity, SEED);
            let oh = overhead_pct(base_cycles, measure_cycles(&obf));
            let obf_bin = lower_module(&obf);
            (
                oh,
                [
                    binary_similarity(&BinDiff::default(), &base_bin, &obf_bin),
                    precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin),
                    precision_at_1(&Safe::default(), &base_bin, &obf_bin),
                    precision_at_1(&khaos_diff::DataFlowDiff::default(), &base_bin, &obf_bin),
                ],
                ctx.fusion_stats.fus_funcs,
                ctx.fusion_stats.eligible_funcs,
            )
        });
        for (oh, scores, fus, elig) in results {
            ohs.push(oh);
            bindiff.push(scores[0]);
            asm2vec.push(scores[1]);
            safe.push(scores[2]);
            dataflow.push(scores[3]);
            fus_funcs += fus;
            eligible += elig;
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<8} {:>9.1}% {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>5}/{:<4}",
            arity,
            geomean_ratio(&ohs),
            avg(&bindiff),
            avg(&asm2vec),
            avg(&safe),
            avg(&dataflow),
            fus_funcs,
            eligible,
        );
    }
    println!("# expectation: overhead grows with arity; diffing accuracy falls;");
    println!("# fus/funcs shrinks (each fusFunc swallows more functions)");

    // Same sweep at the paper's obfuscation-effect-first operating point:
    // fission first, then N-way fusion over sepFuncs + untouched originals
    // (the arity-k analogue of FuFi.all).
    println!("\n## FuFi.all at arity k (fission + N-way fusion)");
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>9}",
        "arity", "overhead", "BinDiff", "Asm2Vec", "SAFE"
    );
    let programs = t1_programs(if scope == Scope::Quick {
        Scope::Quick
    } else {
        Scope::Full
    });
    for arity in 2..=4usize {
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_cycles = measure_cycles(&base);
            let base_bin = lower_module(&base);
            let (m, _) = run_spec(&base, &format!("fufi_n(arity={arity}) | O2+lto"), SEED);
            let oh = overhead_pct(base_cycles, measure_cycles(&m));
            let obf_bin = lower_module(&m);
            (
                oh,
                binary_similarity(&BinDiff::default(), &base_bin, &obf_bin),
                precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin),
                precision_at_1(&Safe::default(), &base_bin, &obf_bin),
            )
        });
        let ohs: Vec<f64> = results.iter().map(|r| r.0).collect();
        let bindiff: Vec<f64> = results.iter().map(|r| r.1).collect();
        let asm2vec: Vec<f64> = results.iter().map(|r| r.2).collect();
        let safe: Vec<f64> = results.iter().map(|r| r.3).collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<8} {:>9.1}% {:>9.3} {:>9.3} {:>9.3}",
            arity,
            geomean_ratio(&ohs),
            avg(&bindiff),
            avg(&asm2vec),
            avg(&safe),
        );
    }
}

/// **Extension E11** — the data-flow-representation differ (`ext-dataflow`).
///
/// Paper §5: *"we predict the potential of data flow representation can
/// be further tapped."* [`khaos_diff::DataFlowDiff`] embeds def-use-chain
/// features only; this experiment reruns the Figure-8 protocol with it
/// alongside the control-flow-reliant tools.
pub fn ext_dataflow(scope: Scope) {
    println!("# Extension: data-flow diffing (paper section-5 prediction)");
    println!("#   Precision@1, relaxed pairing — higher = more Khaos-resistant");
    let configs = BuildConfig::figure8_set();
    let mut programs = t1_programs(scope);
    programs.extend(t2_programs(scope));

    let tools: Vec<(&str, Box<dyn Differ + Sync>)> = vec![
        ("VulSeeker", Box::new(VulSeeker::default())),
        ("Asm2Vec", Box::new(Asm2Vec::default())),
        ("SAFE", Box::new(Safe::default())),
        ("DF/intra", Box::new(khaos_diff::DataFlowDiff::intra_only())),
        ("DataFlow", Box::new(khaos_diff::DataFlowDiff::default())),
    ];
    print!("{:<10}", "config");
    for (t, _) in &tools {
        print!(" {t:>11}");
    }
    println!();
    let prepared: Vec<_> = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        (lower_module(&base), base)
    });
    for cfg in configs {
        let per_program = par_fan_out(&prepared, |(base_bin, base)| {
            let obf_bin = build_binary(base, cfg);
            tools
                .iter()
                .map(|(_, tool)| precision_at_1(tool.as_ref(), base_bin, &obf_bin))
                .collect::<Vec<f64>>()
        });
        print!("{:<10}", cfg.name());
        for k in 0..tools.len() {
            let avg: f64 =
                per_program.iter().map(|s| s[k]).sum::<f64>() / per_program.len().max(1) as f64;
            print!(" {avg:>11.3}");
        }
        println!();
    }
    println!("# reading: DataFlow is near-immune to intra-procedural obfuscation");
    println!("# (Fla-10 row) and beats the call-graph tool (VulSeeker) under every");
    println!("# Khaos mode; sequence embeddings still edge it out after fission —");
    println!("# see EXPERIMENTS.md E11 for the honest verdict on the section-5 claim");
}

/// **Extension E12** — stripped-binary diffing (`ext-stripped`).
///
/// The paper highlights that BinDiff's resilience comes from symbol
/// names on un-stripped binaries (§4.2, Table 1). Real embedded firmware
/// is stripped; this experiment reruns BinDiff with stripped targets to
/// quantify how much of its accuracy is the symbol table.
pub fn ext_stripped(scope: Scope) {
    println!("# Extension: BinDiff with stripped targets (symbols removed)");
    println!(
        "{:<10} {:>13} {:>13} {:>11} {:>11}",
        "config", "sim/unstrip", "sim/strip", "P@1/unstrip", "P@1/strip"
    );
    let configs: Vec<BuildConfig> = vec![
        BuildConfig::Ollvm(OllvmMode::Sub(1.0)),
        BuildConfig::Ollvm(OllvmMode::Fla(0.1)),
        BuildConfig::Khaos(KhaosMode::Fission),
        BuildConfig::Khaos(KhaosMode::Fusion),
        BuildConfig::Khaos(KhaosMode::FuFiAll),
    ];
    let programs = t1_programs(scope);
    for cfg in configs {
        let tool = BinDiff::default();
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_bin = lower_module(&base);
            let obf_bin = build_binary(&base, cfg);
            let mut stripped = obf_bin.clone();
            stripped.strip();
            [
                binary_similarity(&tool, &base_bin, &obf_bin),
                binary_similarity(&tool, &base_bin, &stripped),
                precision_at_1(&tool, &base_bin, &obf_bin),
                precision_at_1(&tool, &base_bin, &stripped),
            ]
        });
        let sim_u: Vec<f64> = results.iter().map(|r| r[0]).collect();
        let sim_s: Vec<f64> = results.iter().map(|r| r[1]).collect();
        let p_u: Vec<f64> = results.iter().map(|r| r[2]).collect();
        let p_s: Vec<f64> = results.iter().map(|r| r[3]).collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<10} {:>13.3} {:>13.3} {:>11.3} {:>11.3}",
            cfg.name(),
            avg(&sim_u),
            avg(&sim_s),
            avg(&p_u),
            avg(&p_s)
        );
    }
    println!("# expectation: stripping costs BinDiff accuracy everywhere, and");
    println!("# under Khaos the structural fallback has nothing left to hold onto");
}
