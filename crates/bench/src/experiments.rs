//! The per-figure / per-table experiment drivers.
//!
//! Every function prints the same rows or series the paper's artifact
//! reports. See `EXPERIMENTS.md` at the repository root for paper-vs-
//! measured notes.

use crate::coordinator::{run_elastic, run_elastic_with, ElasticSummary, WorkUnit};
use crate::harness::{
    active_shard, artifact_store, build_at, build_baseline, build_binary, build_config, geomean,
    geomean_ratio, khaos_apply, khaos_atom, measure_cycles, overhead_pct, par_fan_out,
    persist_metrics_to, run_spec, BuildConfig, ShardSpec, SEED,
};
use khaos_binary::{histogram_distance, lower_module, opcode_histogram};
use khaos_bintuner::BinTuner;
use khaos_core::{FissionStats, FusionStats, KhaosMode};
use khaos_diff::{
    binary_similarity, deepbindiff_precision_at_1, escape_profile, precision_at_1, Asm2Vec,
    BinDiff, DeepBinDiff, Differ, Safe, VulSeeker,
};
use khaos_ir::Module;
use khaos_ollvm::OllvmMode;
use khaos_opt::OptLevel;
use khaos_store::{ReportKey, Store};
use khaos_workloads::{coreutils, spec2006, spec2017, tiii, TIII_CVES};

/// Scope knob: `--quick` trims the program sets so a laptop run finishes
/// in seconds; the default covers the full suites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Trimmed program sets.
    Quick,
    /// The full suites (T-I: 47 programs, T-II: 108, T-III: 5).
    Full,
}

fn t1_programs(scope: Scope) -> Vec<Module> {
    let mut v = spec2006();
    v.extend(spec2017());
    if scope == Scope::Quick {
        v.truncate(6);
    }
    v
}

fn t2_programs(scope: Scope) -> Vec<Module> {
    let mut v = coreutils();
    if scope == Scope::Quick {
        v.truncate(8);
    }
    v
}

/// Applies the active shard to a flattened work list, announcing the
/// partial coverage; un-sharded runs pass through untouched. Sharded
/// figure runs print their shard's rows only — aggregate rows
/// (GEOMEAN/averages) then cover the shard, not the suite, which the
/// note makes explicit.
fn shard_select<T>(shard: ShardSpec, what: &str, items: Vec<T>) -> Vec<T> {
    if shard.is_full() {
        return items;
    }
    let total = items.len();
    let owned = shard.select(items);
    println!(
        "# shard {shard}: measuring {} of {total} {what} (aggregates cover this shard only)",
        owned.len()
    );
    owned
}

/// **Figure 6** — runtime overhead of the five Khaos modes on the SPEC
/// CPU 2006/2017 stand-ins, per program plus geometric means.
pub fn fig6(scope: Scope) {
    println!("# Figure 6: runtime overhead (%) of Khaos modes, baseline O2+LTO");
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "program", "Fission", "Fusion", "FuFi.sep", "FuFi.ori", "FuFi.all"
    );
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); KhaosMode::ALL.len()];
    let programs = shard_select(active_shard(), "T-I programs", t1_programs(scope));
    // One worker per program: baseline + the five mode builds.
    let rows = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        let base_cycles = measure_cycles(&base);
        let ohs: Vec<f64> = KhaosMode::ALL
            .iter()
            .map(|mode| {
                let (obf, _) = khaos_apply(&base, *mode, SEED);
                overhead_pct(base_cycles, measure_cycles(&obf))
            })
            .collect();
        (src.name.clone(), ohs)
    });
    for (name, ohs) in rows {
        let mut row = format!("{name:<20}");
        for (k, oh) in ohs.into_iter().enumerate() {
            per_mode[k].push(oh);
            row.push_str(&format!(" {oh:>8.1}%"));
        }
        println!("{row}");
    }
    let mut row = format!("{:<20}", "GEOMEAN");
    for ohs in &per_mode {
        row.push_str(&format!(" {:>8.1}%", geomean_ratio(ohs)));
    }
    println!("{row}");
}

/// The nine configurations of Figure 7, in row order (O-LLVM's
/// Sub/Bog/Fla at 100%, Fla-10 at 10%, then the five Khaos modes).
pub fn fig7_configs() -> Vec<(String, BuildConfig)> {
    vec![
        ("Sub".into(), BuildConfig::Ollvm(OllvmMode::Sub(1.0))),
        ("Bog".into(), BuildConfig::Ollvm(OllvmMode::Bog(1.0))),
        ("Fla".into(), BuildConfig::Ollvm(OllvmMode::Fla(1.0))),
        ("Fla-10".into(), BuildConfig::Ollvm(OllvmMode::Fla(0.1))),
        ("Fission".into(), BuildConfig::Khaos(KhaosMode::Fission)),
        ("Fusion".into(), BuildConfig::Khaos(KhaosMode::Fusion)),
        ("FuFi.sep".into(), BuildConfig::Khaos(KhaosMode::FuFiSep)),
        ("FuFi.ori".into(), BuildConfig::Khaos(KhaosMode::FuFiOri)),
        ("FuFi.all".into(), BuildConfig::Khaos(KhaosMode::FuFiAll)),
    ]
}

/// The suites of Figure 7 (its GEOMEAN columns), trimmed under
/// `--quick`.
fn fig7_suites(scope: Scope) -> Vec<(&'static str, Vec<Module>)> {
    if scope == Scope::Quick {
        vec![("SPEC(quick)", t1_programs(scope))]
    } else {
        vec![("SPEC CPU 2006", spec2006()), ("SPEC CPU 2017", spec2017())]
    }
}

/// The `khaos-store` report subject of one Figure-7 cell.
pub fn fig7_subject(suite: &str, program: &str, config: &str) -> String {
    format!("fig7/{suite}/{program}/{config}")
}

/// One measured Figure-7 cell: the runtime overhead of `program`
/// (member of `suite`) built under `config`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig7Cell {
    /// Suite the program belongs to (Figure-7 column group).
    pub suite: &'static str,
    /// Program name.
    pub program: String,
    /// Configuration display name (Figure-7 row).
    pub config: String,
    /// Configuration pipeline fingerprint (the report keyspace).
    pub pipeline: u64,
    /// Runtime overhead (%) against the `O2+LTO` baseline.
    pub overhead: f64,
}

impl Fig7Cell {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        fig7_subject(self.suite, &self.program, &self.config)
    }
}

/// The identity of one expected Figure-7 cell (no measurement).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig7CellKey {
    /// Suite the program belongs to.
    pub suite: &'static str,
    /// Program name.
    pub program: String,
    /// Configuration display name.
    pub config: String,
    /// Configuration pipeline fingerprint.
    pub pipeline: u64,
}

impl Fig7CellKey {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        fig7_subject(self.suite, &self.program, &self.config)
    }
}

/// Every cell of the Figure-7 grid in canonical order (configs outer,
/// then suites, then programs) — the completeness contract
/// [`fig7_merge`] enforces.
pub fn fig7_expected(scope: Scope) -> Vec<Fig7CellKey> {
    let configs = fig7_configs();
    let suites = fig7_suites(scope);
    let mut out = Vec::new();
    for (config, cfg) in &configs {
        for (suite, programs) in &suites {
            for program in programs {
                out.push(Fig7CellKey {
                    suite,
                    program: program.name.clone(),
                    config: config.clone(),
                    pipeline: cfg.fingerprint(),
                });
            }
        }
    }
    out
}

/// Measures `shard`'s share of the Figure-7 grid, returning its cells
/// in canonical grid order and persisting each into `store` (when
/// given) under the cell's `ReportKey`. Like [`fig10_cells`], every
/// cell is a deterministic function of `(program, config, seed)`, so
/// shards computed by different processes merge bit-identically.
pub fn fig7_cells(scope: Scope, shard: ShardSpec, store: Option<&Store>) -> Vec<Fig7Cell> {
    let configs = fig7_configs();
    let suites = fig7_suites(scope);
    let mut grid: Vec<(usize, usize, usize)> = Vec::new();
    for ci in 0..configs.len() {
        for (si, (_, programs)) in suites.iter().enumerate() {
            for pi in 0..programs.len() {
                grid.push((ci, si, pi));
            }
        }
    }
    let grid = shard.select(grid);
    // Baselines are shared by all nine configuration rows touching a
    // program: build each distinct program of the owned cells once.
    let needed: Vec<(usize, usize)> = {
        let mut v: Vec<(usize, usize)> = grid.iter().map(|&(_, si, pi)| (si, pi)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let prepared: Vec<(Module, u64)> = par_fan_out(&needed, |&(si, pi)| {
        let base = build_baseline(&suites[si].1[pi]);
        let cycles = measure_cycles(&base);
        (base, cycles)
    });
    par_fan_out(&grid, |&(ci, si, pi)| {
        let slot = needed
            .binary_search(&(si, pi))
            .expect("(si, pi) collected from grid");
        let (base, base_cycles) = &prepared[slot];
        let (cfg_name, cfg) = &configs[ci];
        let obf = build_config(base, *cfg);
        let cell = Fig7Cell {
            suite: suites[si].0,
            program: base.name.clone(),
            config: cfg_name.clone(),
            pipeline: cfg.fingerprint(),
            overhead: overhead_pct(*base_cycles, measure_cycles(&obf)),
        };
        if let Some(store) = store {
            persist_metrics_to(
                store,
                &cell.subject(),
                cell.pipeline,
                &[("overhead%", cell.overhead)],
            );
        }
        cell
    })
}

/// Prints the Figure-7 table (config rows, per-suite geometric means
/// plus the overall GEOMEAN) from a complete cell grid.
fn fig7_print_table(cells: &[Fig7Cell]) {
    let suites = uniq(cells.iter().map(|c| c.suite));
    let configs = uniq(cells.iter().map(|c| c.config.as_str()));
    print!("{:<14}", "config");
    for sname in &suites {
        print!(" {sname:>15}");
    }
    println!(" {:>10}", "GEOMEAN");
    for config in &configs {
        let mut all = Vec::new();
        print!("{config:<14}");
        for suite in &suites {
            let ohs: Vec<f64> = cells
                .iter()
                .filter(|c| c.config == *config && c.suite == *suite)
                .map(|c| c.overhead)
                .collect();
            all.extend_from_slice(&ohs);
            print!(" {:>14.1}%", geomean_ratio(&ohs));
        }
        println!(" {:>9.1}%", geomean_ratio(&all));
    }
}

/// **Figure 7** — overhead comparison against O-LLVM (Sub/Bog/Fla at
/// 100%, Fla-10 at 10%) with geometric means per suite. Honours the
/// active shard like [`fig10`]: a sharded run measures only its share
/// of the `config × suite × program` grid, persists the cells into
/// `KHAOS_STORE`, and prints them row-wise; `experiments fig7-merge
/// <DIR...>` reassembles the full table.
pub fn fig7(scope: Scope) {
    println!("# Figure 7: runtime overhead (%) — O-LLVM vs Khaos (GEOMEAN)");
    let shard = active_shard();
    let store = artifact_store();
    if !shard.is_full() && store.is_none() {
        println!(
            "# WARNING: sharded run without KHAOS_STORE — cells will be printed but \
             not persisted, so fig7-merge cannot reassemble this shard"
        );
    }
    let cells = fig7_cells(scope, shard, store.as_deref());
    if shard.is_full() {
        fig7_print_table(&cells);
        return;
    }
    println!(
        "# shard {shard}: {} of {} cells (merge with `experiments fig7-merge <store-dirs>`)",
        cells.len(),
        fig7_expected(scope).len()
    );
    println!(
        "{:<14} {:<16} {:<10} {:>10}",
        "suite", "program", "config", "overhead"
    );
    for c in &cells {
        println!(
            "{:<14} {:<16} {:<10} {:>9.1}%",
            c.suite, c.program, c.config, c.overhead
        );
    }
}

/// Reassembles the complete Figure-7 grid from any union of shard
/// stores, or lists every missing cell precisely.
pub fn fig7_merge(scope: Scope, stores: &[&Store]) -> Result<Vec<Fig7Cell>, Vec<String>> {
    let expected = fig7_expected(scope);
    let pairs: Vec<(String, u64)> = expected.iter().map(|k| (k.subject(), k.pipeline)).collect();
    let values = merge_grid(&["overhead%"], &pairs, stores)?;
    Ok(expected
        .into_iter()
        .zip(values)
        .map(|(k, v)| Fig7Cell {
            suite: k.suite,
            program: k.program,
            config: k.config,
            pipeline: k.pipeline,
            overhead: v[0],
        })
        .collect())
}

/// `experiments fig7-merge DIR...` — reassembles and prints the full
/// Figure-7 table from a union of shard stores, or lists every missing
/// cell and fails. Returns whether the grid was complete.
pub fn fig7_report(scope: Scope, store_dirs: &[String]) -> bool {
    let expected = fig7_expected(scope);
    merged_report(
        "Figure 7",
        scope,
        expected.len(),
        store_dirs,
        fig7_merge,
        fig7_print_table,
    )
}

/// **Figure 7, elastic** — the grid as a leased work queue in the
/// shared `KHAOS_STORE` (see [`crate::coordinator`]). Each unit is one
/// cell and re-derives its baseline, so any worker can own any cell;
/// the store's report and embedding tiers absorb most of the repeat
/// cost. Returns `false` (without working) when no store is
/// configured.
pub fn fig7_elastic(scope: Scope) -> bool {
    let Some(store) = artifact_store() else {
        eprintln!("experiments: --elastic needs KHAOS_STORE (the shared store is the work queue)");
        return false;
    };
    println!("# Figure 7: runtime overhead (%) — O-LLVM vs Khaos (GEOMEAN)");
    println!("# elastic worker over {}", store.root().display());
    let configs = fig7_configs();
    let suites = fig7_suites(scope);
    let mut grid: Vec<(usize, usize, usize)> = Vec::new();
    for ci in 0..configs.len() {
        for (si, (_, programs)) in suites.iter().enumerate() {
            for pi in 0..programs.len() {
                grid.push((ci, si, pi));
            }
        }
    }
    let units: Vec<WorkUnit> = grid
        .iter()
        .map(|&(ci, si, pi)| {
            let (cfg_name, cfg) = &configs[ci];
            let subject = fig7_subject(suites[si].0, &suites[si].1[pi].name, cfg_name);
            WorkUnit {
                label: subject.clone(),
                lease: (subject.clone(), cfg.fingerprint()),
                outputs: vec![(subject, cfg.fingerprint())],
            }
        })
        .collect();
    let summary = run_elastic(&store, "fig7", &units, |i| {
        let (ci, si, pi) = grid[i];
        let (cfg_name, cfg) = &configs[ci];
        let src = &suites[si].1[pi];
        let base = build_baseline(src);
        let base_cycles = measure_cycles(&base);
        let obf = build_config(&base, *cfg);
        persist_metrics_to(
            &store,
            &fig7_subject(suites[si].0, &src.name, cfg_name),
            cfg.fingerprint(),
            &[("overhead%", overhead_pct(base_cycles, measure_cycles(&obf)))],
        );
    });
    print_elastic_summary("fig7", &summary);
    elastic_epilogue(fig7_merge(scope, &[&store]), |cells| {
        fig7_print_table(cells)
    })
}

/// **Figure 8** — Precision@1 of the five diffing tools against the eight
/// obfuscation configurations (obfuscated vs un-obfuscated, un-stripped).
pub fn fig8(scope: Scope) {
    println!("# Figure 8: diffing accuracy vs obfuscation (T-I + T-II)");
    println!("#   BinDiff column = normalized whole-binary similarity;");
    println!("#   learning tools = Precision@1 with relaxed pairing (paper 4.2)");
    let configs = BuildConfig::figure8_set();
    let mut programs = t1_programs(scope);
    programs.extend(t2_programs(scope));
    let programs = shard_select(active_shard(), "T-I + T-II programs", programs);

    print!("{:<10}", "config");
    for t in ["BinDiff", "VulSeeker", "Asm2Vec", "SAFE", "DeepBinDiff"] {
        print!(" {t:>11}");
    }
    println!();

    // Baselines (and their lowered binaries) are shared by all eight
    // configurations; the embedding cache then reuses the baseline-side
    // embeddings across every config row.
    let prepared: Vec<_> = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        let base_bin = lower_module(&base);
        (base, base_bin)
    });
    for cfg in configs {
        let per_program = par_fan_out(&prepared, |(base, base_bin)| {
            let obf_bin = build_binary(base, cfg);
            [
                binary_similarity(&BinDiff::default(), base_bin, &obf_bin),
                precision_at_1(&VulSeeker::default(), base_bin, &obf_bin),
                precision_at_1(&Asm2Vec::default(), base_bin, &obf_bin),
                precision_at_1(&Safe::default(), base_bin, &obf_bin),
                deepbindiff_precision_at_1(&DeepBinDiff::default(), base_bin, &obf_bin),
            ]
        });
        print!("{:<10}", cfg.name());
        for t in 0..5 {
            let avg: f64 =
                per_program.iter().map(|s| s[t]).sum::<f64>() / per_program.len().max(1) as f64;
            print!(" {avg:>11.3}");
        }
        println!();
    }
}

/// The SPECint 2006 + SPECspeed 2017 subset plotted in Figure 9.
fn fig9_names() -> Vec<&'static str> {
    vec![
        "400.perlbench",
        "401.bzip2",
        "429.mcf",
        "445.gobmk",
        "456.hmmer",
        "458.sjeng",
        "462.libquantum",
        "464.h264ref",
        "473.astar",
        "483.xalancbmk",
        "600.perlbench_s",
        "605.mcf_s",
        "620.omnetpp_s",
        "623.xalancbmk_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "641.leela_s",
        "657.xz_s",
    ]
}

/// The T-I programs of Figure 9, trimmed under `--quick`.
fn fig9_programs(scope: Scope) -> Vec<Module> {
    let names = fig9_names();
    let mut programs: Vec<Module> = spec2006()
        .into_iter()
        .chain(spec2017())
        .filter(|m| names.contains(&m.name.as_str()))
        .collect();
    if scope == Scope::Quick {
        programs.truncate(4);
    }
    programs
}

/// The `khaos-store` report subject of one Figure-9 cell (one cell per
/// program: the whole BinTuner-vs-Khaos row).
pub fn fig9_subject(program: &str) -> String {
    format!("fig9/{program}")
}

/// The stored metric names of one Figure-9 cell, in row order.
const FIG9_METRICS: [&str; 9] = [
    "bt/o0", "bt/o1", "bt/o2", "bt/o3", "kh/o0", "kh/o1", "kh/o2", "kh/o3", "bt-ovh%",
];

/// The fingerprint keying Figure-9 cells: the Khaos side of the
/// comparison (`FuFi.all | O2+lto`) — the BinTuner search has no
/// pipeline spec of its own.
fn fig9_pipeline() -> u64 {
    BuildConfig::Khaos(KhaosMode::FuFiAll).fingerprint()
}

/// One measured Figure-9 cell: BinDiff similarity of the BinTuner and
/// Khaos (`FuFi.all`) builds of `program` against its `O0`–`O3`
/// reference builds, plus BinTuner's runtime overhead.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig9Cell {
    /// Program name.
    pub program: String,
    /// Report keyspace fingerprint ([`Fig9CellKey::pipeline`]).
    pub pipeline: u64,
    /// BinTuner-build similarity vs `O0..O3`.
    pub bt: [f64; 4],
    /// Khaos-build similarity vs `O0..O3`.
    pub kh: [f64; 4],
    /// BinTuner runtime overhead (%) vs the `O2+LTO` baseline.
    pub bt_overhead: f64,
}

impl Fig9Cell {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        fig9_subject(&self.program)
    }
}

/// The identity of one expected Figure-9 cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig9CellKey {
    /// Program name.
    pub program: String,
    /// Report keyspace fingerprint.
    pub pipeline: u64,
}

impl Fig9CellKey {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        fig9_subject(&self.program)
    }
}

/// Every cell of the Figure-9 grid in canonical (program) order.
pub fn fig9_expected(scope: Scope) -> Vec<Fig9CellKey> {
    fig9_programs(scope)
        .iter()
        .map(|m| Fig9CellKey {
            program: m.name.clone(),
            pipeline: fig9_pipeline(),
        })
        .collect()
}

/// Measures `shard`'s share of the Figure-9 grid (one cell per
/// program), persisting each cell into `store` when given. Cells are
/// deterministic functions of `(program, seed)`, so shards merge
/// bit-identically.
pub fn fig9_cells(scope: Scope, shard: ShardSpec, store: Option<&Store>) -> Vec<Fig9Cell> {
    let programs = shard.select(fig9_programs(scope));
    let differ = BinDiff::default();
    // Fan out per program: each worker runs the BinTuner search, the
    // Khaos build, and the eight whole-binary comparisons.
    par_fan_out(&programs, |src| {
        let refs: Vec<_> = OptLevel::ALL
            .iter()
            .map(|l| lower_module(&build_at(src, *l)))
            .collect();

        let tuned = BinTuner {
            budget: 16,
            seed: SEED,
        }
        .tune(src);
        let baseline = build_baseline(src);
        let base_cycles = measure_cycles(&baseline);
        let bt_overhead = overhead_pct(base_cycles, measure_cycles(&tuned.module));

        let (khaos, _) = khaos_apply(&baseline, KhaosMode::FuFiAll, SEED);
        let khaos_bin = lower_module(&khaos);

        let bt: Vec<f64> = refs
            .iter()
            .map(|r| binary_similarity(&differ, r, &tuned.binary))
            .collect();
        let kh: Vec<f64> = refs
            .iter()
            .map(|r| binary_similarity(&differ, r, &khaos_bin))
            .collect();
        let cell = Fig9Cell {
            program: src.name.clone(),
            pipeline: fig9_pipeline(),
            bt: [bt[0], bt[1], bt[2], bt[3]],
            kh: [kh[0], kh[1], kh[2], kh[3]],
            bt_overhead,
        };
        if let Some(store) = store {
            persist_metrics_to(store, &cell.subject(), cell.pipeline, &fig9_metrics(&cell));
        }
        cell
    })
}

/// The cell's stored metric pairs, in [`FIG9_METRICS`] order.
fn fig9_metrics(cell: &Fig9Cell) -> Vec<(&'static str, f64)> {
    let values = [
        cell.bt[0],
        cell.bt[1],
        cell.bt[2],
        cell.bt[3],
        cell.kh[0],
        cell.kh[1],
        cell.kh[2],
        cell.kh[3],
        cell.bt_overhead,
    ];
    FIG9_METRICS.iter().copied().zip(values).collect()
}

fn fig9_row(cell: &Fig9Cell) -> String {
    let mut row = format!("{:<18}", cell.program);
    for s in cell.bt {
        row.push_str(&format!(" {s:>8.3}"));
    }
    row.push_str("  ");
    for s in cell.kh {
        row.push_str(&format!(" {s:>8.3}"));
    }
    row.push_str(&format!(" {:>9.1}%", cell.bt_overhead));
    row
}

fn fig9_print_header() {
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8} {:>8} {:>10}",
        "program",
        "BT/O0",
        "BT/O1",
        "BT/O2",
        "BT/O3",
        "KH/O0",
        "KH/O1",
        "KH/O2",
        "KH/O3",
        "BT-ovh%"
    );
}

/// Prints the Figure-9 table (per-program rows plus the GEOMEAN row)
/// from a complete cell grid.
fn fig9_print_table(cells: &[Fig9Cell]) {
    fig9_print_header();
    let mut bt_cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut kh_cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut bt_overheads = Vec::new();
    for cell in cells {
        bt_overheads.push(cell.bt_overhead);
        for k in 0..4 {
            bt_cols[k].push(cell.bt[k]);
            kh_cols[k].push(cell.kh[k]);
        }
        println!("{}", fig9_row(cell));
    }
    let mut row = format!("{:<18}", "GEOMEAN");
    for c in &bt_cols {
        row.push_str(&format!(" {:>8.3}", geomean(c)));
    }
    row.push_str("  ");
    for c in &kh_cols {
        row.push_str(&format!(" {:>8.3}", geomean(c)));
    }
    row.push_str(&format!(" {:>9.1}%", geomean_ratio(&bt_overheads)));
    println!("{row}");
    println!("# paper: Khaos scores well below BinTuner at every level; BinTuner overhead 30.35%");
}

/// **Figure 9** — BinDiff similarity of BinTuner and Khaos builds against
/// `O0`–`O3` reference builds, plus BinTuner's runtime overhead against
/// the paper's `O2+LTO` Khaos baseline (paper reports 30.35%). Honours
/// the active shard like [`fig10`]; `experiments fig9-merge <DIR...>`
/// reassembles the full table from shard stores.
pub fn fig9(scope: Scope) {
    println!("# Figure 9: BinDiff similarity — BinTuner vs Khaos (FuFi.all)");
    let shard = active_shard();
    let store = artifact_store();
    if !shard.is_full() && store.is_none() {
        println!(
            "# WARNING: sharded run without KHAOS_STORE — cells will be printed but \
             not persisted, so fig9-merge cannot reassemble this shard"
        );
    }
    let cells = fig9_cells(scope, shard, store.as_deref());
    if shard.is_full() {
        fig9_print_table(&cells);
        return;
    }
    println!(
        "# shard {shard}: {} of {} cells (merge with `experiments fig9-merge <store-dirs>`)",
        cells.len(),
        fig9_expected(scope).len()
    );
    fig9_print_header();
    for cell in &cells {
        println!("{}", fig9_row(cell));
    }
}

/// Reassembles the complete Figure-9 grid from any union of shard
/// stores, or lists every missing cell precisely.
pub fn fig9_merge(scope: Scope, stores: &[&Store]) -> Result<Vec<Fig9Cell>, Vec<String>> {
    let expected = fig9_expected(scope);
    let pairs: Vec<(String, u64)> = expected.iter().map(|k| (k.subject(), k.pipeline)).collect();
    let values = merge_grid(&FIG9_METRICS, &pairs, stores)?;
    Ok(expected
        .into_iter()
        .zip(values)
        .map(|(k, v)| Fig9Cell {
            program: k.program,
            pipeline: k.pipeline,
            bt: [v[0], v[1], v[2], v[3]],
            kh: [v[4], v[5], v[6], v[7]],
            bt_overhead: v[8],
        })
        .collect())
}

/// `experiments fig9-merge DIR...` — reassembles and prints the full
/// Figure-9 table from a union of shard stores, or lists every missing
/// cell and fails. Returns whether the grid was complete.
pub fn fig9_report(scope: Scope, store_dirs: &[String]) -> bool {
    let expected = fig9_expected(scope);
    merged_report(
        "Figure 9",
        scope,
        expected.len(),
        store_dirs,
        fig9_merge,
        fig9_print_table,
    )
}

/// **Figure 9, elastic** — one work unit per program on the shared
/// store's leased work queue (see [`crate::coordinator`]). Returns
/// `false` (without working) when no store is configured.
pub fn fig9_elastic(scope: Scope) -> bool {
    let Some(store) = artifact_store() else {
        eprintln!("experiments: --elastic needs KHAOS_STORE (the shared store is the work queue)");
        return false;
    };
    println!("# Figure 9: BinDiff similarity — BinTuner vs Khaos (FuFi.all)");
    println!("# elastic worker over {}", store.root().display());
    let programs = fig9_programs(scope);
    let units: Vec<WorkUnit> = programs
        .iter()
        .map(|m| {
            let subject = fig9_subject(&m.name);
            WorkUnit {
                label: subject.clone(),
                lease: (subject.clone(), fig9_pipeline()),
                outputs: vec![(subject, fig9_pipeline())],
            }
        })
        .collect();
    let differ = BinDiff::default();
    let summary = run_elastic(&store, "fig9", &units, |i| {
        let src = &programs[i];
        let refs: Vec<_> = OptLevel::ALL
            .iter()
            .map(|l| lower_module(&build_at(src, *l)))
            .collect();
        let tuned = BinTuner {
            budget: 16,
            seed: SEED,
        }
        .tune(src);
        let baseline = build_baseline(src);
        let base_cycles = measure_cycles(&baseline);
        let bt_overhead = overhead_pct(base_cycles, measure_cycles(&tuned.module));
        let (khaos, _) = khaos_apply(&baseline, KhaosMode::FuFiAll, SEED);
        let khaos_bin = lower_module(&khaos);
        let bt: Vec<f64> = refs
            .iter()
            .map(|r| binary_similarity(&differ, r, &tuned.binary))
            .collect();
        let kh: Vec<f64> = refs
            .iter()
            .map(|r| binary_similarity(&differ, r, &khaos_bin))
            .collect();
        let cell = Fig9Cell {
            program: src.name.clone(),
            pipeline: fig9_pipeline(),
            bt: [bt[0], bt[1], bt[2], bt[3]],
            kh: [kh[0], kh[1], kh[2], kh[3]],
            bt_overhead,
        };
        persist_metrics_to(&store, &cell.subject(), cell.pipeline, &fig9_metrics(&cell));
    });
    print_elastic_summary("fig9", &summary);
    elastic_epilogue(fig9_merge(scope, &[&store]), |cells| {
        fig9_print_table(cells)
    })
}

/// The escape thresholds of Figure 10 (the paper's `escape@{1,10,50}`).
pub const FIG10_KS: [usize; 3] = [1, 10, 50];

/// The six obfuscation configurations of Figure 10, in row order
/// (Fla at 100% here, as in the paper).
pub fn fig10_configs() -> Vec<(String, BuildConfig)> {
    vec![
        ("Sub".into(), BuildConfig::Ollvm(OllvmMode::Sub(1.0))),
        ("Bog".into(), BuildConfig::Ollvm(OllvmMode::Bog(1.0))),
        ("Fla".into(), BuildConfig::Ollvm(OllvmMode::Fla(1.0))),
        ("FuFi.sep".into(), BuildConfig::Khaos(KhaosMode::FuFiSep)),
        ("FuFi.ori".into(), BuildConfig::Khaos(KhaosMode::FuFiOri)),
        ("FuFi.all".into(), BuildConfig::Khaos(KhaosMode::FuFiAll)),
    ]
}

/// The three learning-based tools Figure 10 evaluates, in column order.
fn fig10_tools() -> Vec<(&'static str, Box<dyn Differ + Sync>)> {
    vec![
        ("VulSeeker", Box::new(VulSeeker::default())),
        ("Asm2Vec", Box::new(Asm2Vec::default())),
        ("SAFE", Box::new(Safe::default())),
    ]
}

/// The T-III programs of Figure 10; `--quick` trims the suite so the
/// sharding end-to-end tests stay cheap.
fn fig10_programs(scope: Scope) -> Vec<Module> {
    let mut v = tiii();
    if scope == Scope::Quick {
        v.truncate(2);
    }
    v
}

/// The `khaos-store` report subject of one Figure-10 cell — together
/// with the config pipeline's fingerprint and [`SEED`] this is the
/// cell's complete `ReportKey`, so any process that knows the grid can
/// query (or check for) the cell without recomputing anything.
pub fn fig10_subject(program: &str, config: &str, tool: &str) -> String {
    format!("fig10/{program}/{config}/{tool}")
}

/// One measured Figure-10 cell: the escape profile of `tool` on
/// `program` built under `config`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig10Cell {
    /// Program name (T-III member).
    pub program: String,
    /// Configuration display name (Figure-10 row).
    pub config: String,
    /// Differ name (Figure-10 column).
    pub tool: &'static str,
    /// `Pipeline::fingerprint()` of the configuration's build spec —
    /// the report keyspace the cell persists under.
    pub pipeline: u64,
    /// `escape@{1,10,50}` ([`FIG10_KS`]).
    pub escape: [f64; 3],
}

impl Fig10Cell {
    /// The cell's store subject (same form as [`Fig10CellKey::subject`]).
    pub fn subject(&self) -> String {
        fig10_subject(&self.program, &self.config, self.tool)
    }
}

/// The identity of one expected Figure-10 cell (no measurement) — what
/// the merge layer checks a union of shard stores against.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig10CellKey {
    /// Program name.
    pub program: String,
    /// Configuration display name.
    pub config: String,
    /// Differ name.
    pub tool: &'static str,
    /// Configuration pipeline fingerprint.
    pub pipeline: u64,
}

impl Fig10CellKey {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        fig10_subject(&self.program, &self.config, self.tool)
    }
}

/// Every cell of the Figure-10 grid in canonical order (the flattened
/// `config × program` grid of [`fig10_cells`], tools innermost) —
/// the completeness contract [`fig10_merge`] enforces.
pub fn fig10_expected(scope: Scope) -> Vec<Fig10CellKey> {
    let configs = fig10_configs();
    let tools = fig10_tools();
    let programs = fig10_programs(scope);
    let mut out = Vec::new();
    for (config, cfg) in &configs {
        for program in &programs {
            for (tool, _) in &tools {
                out.push(Fig10CellKey {
                    program: program.name.clone(),
                    config: config.clone(),
                    tool,
                    pipeline: cfg.fingerprint(),
                });
            }
        }
    }
    out
}

/// Measures `shard`'s share of the Figure-10 grid, returning its cells
/// in canonical grid order and persisting each into `store` (when
/// given) under the cell's `ReportKey`.
///
/// The shard partitions the **flattened `config × program` grid** —
/// the expensive unit is one obfuscated build, shared by all three
/// tools, so tools stay inside the cell. Every cell is a deterministic
/// function of `(program, config, seed)` alone: any shard of any
/// process computes bit-identical values for the cells it owns, which
/// is what lets [`fig10_merge`] reassemble a grid from machines that
/// never shared memory (pinned by `tests/shard_e2e.rs`).
pub fn fig10_cells(scope: Scope, shard: ShardSpec, store: Option<&Store>) -> Vec<Fig10Cell> {
    let configs = fig10_configs();
    let tools = fig10_tools();
    let programs = fig10_programs(scope);

    // One flat (config × program) grid: a single fan-out level keeps
    // concurrency at ~core count instead of multiplying config workers
    // by program workers — and gives the shard its index space. The
    // shard is applied *before* the baseline builds so a shard only
    // pays for the programs its cells actually touch.
    let grid: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..programs.len()).map(move |pi| (ci, pi)))
        .collect();
    let grid = shard.select(grid);
    // Baselines are shared by every config row touching the program;
    // build each distinct program of the owned cells exactly once.
    // (Baselines are deterministic per program, so building a subset
    // yields the same binaries the full run would — cell values stay
    // shard-independent.)
    let needed: Vec<usize> = {
        let mut v: Vec<usize> = grid.iter().map(|&(_, pi)| pi).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let prepared: Vec<_> = par_fan_out(&needed, |&pi| {
        let base = build_baseline(&programs[pi]);
        (lower_module(&base), base)
    });
    let cells: Vec<Vec<Fig10Cell>> = par_fan_out(&grid, |&(ci, pi)| {
        let slot = needed.binary_search(&pi).expect("pi collected from grid");
        let (base_bin, base) = &prepared[slot];
        let (cfg_name, cfg) = &configs[ci];
        let obf_bin = build_binary(base, *cfg);
        tools
            .iter()
            .map(|(tool_name, tool)| {
                let profile = escape_profile(tool.as_ref(), base_bin, &obf_bin, &FIG10_KS);
                let cell = Fig10Cell {
                    program: base_bin.name.clone(),
                    config: cfg_name.clone(),
                    tool: tool_name,
                    pipeline: cfg.fingerprint(),
                    escape: [profile[0], profile[1], profile[2]],
                };
                // Durable per-cell result, keyed by the build pipeline's
                // fingerprint (no-op without a store).
                if let Some(store) = store {
                    persist_metrics_to(
                        store,
                        &cell.subject(),
                        cell.pipeline,
                        &[
                            ("escape@1", cell.escape[0]),
                            ("escape@10", cell.escape[1]),
                            ("escape@50", cell.escape[2]),
                        ],
                    );
                }
                cell
            })
            .collect()
    });
    cells.into_iter().flatten().collect()
}

/// First-seen-order dedup — the row/column orders of the printed
/// tables, derived from the cells themselves.
fn uniq<T: PartialEq>(items: impl Iterator<Item = T>) -> Vec<T> {
    let mut v = Vec::new();
    for x in items {
        if !v.contains(&x) {
            v.push(x);
        }
    }
    v
}

/// Prints the Figure-10 tables (one per threshold, config rows × tool
/// columns, averaged over programs) from a complete cell grid. The
/// header names the grid's actual dimensions — a merge run at a
/// different scope than the shards (e.g. `--quick fig10-merge` over
/// full-scope stores) is then visibly a truncated grid, not silently a
/// smaller Figure 10.
fn fig10_print_tables(cells: &[Fig10Cell]) {
    let programs = uniq(cells.iter().map(|c| c.program.as_str()));
    println!(
        "# grid: {} cells over {} program(s): {}",
        cells.len(),
        programs.len(),
        programs.join(", ")
    );
    let configs = uniq(cells.iter().map(|c| c.config.as_str()));
    let tools = uniq(cells.iter().map(|c| c.tool));
    for (ki, k) in FIG10_KS.iter().enumerate() {
        println!("\n## escape@{k}");
        print!("{:<10}", "config");
        for t in &tools {
            print!(" {t:>10}");
        }
        println!();
        for config in &configs {
            print!("{config:<10}");
            for tool in &tools {
                let scores: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.config == *config && c.tool == *tool)
                    .map(|c| c.escape[ki])
                    .collect();
                let avg = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
                print!(" {avg:>10.2}");
            }
            println!();
        }
    }
}

/// **Figure 10** — escape@1/10/50 of the T-III vulnerable functions under
/// each obfuscation. Honours the active shard (`KHAOS_SHARD` /
/// `--shard i/n`): a sharded run measures only its share of the
/// `config × program` grid, persists the cells into `KHAOS_STORE`, and
/// prints them row-wise; `experiments fig10-merge <DIR...>` reassembles
/// the full tables from any union of shard stores.
pub fn fig10(scope: Scope) {
    println!("# Figure 10: escape ratio of vulnerable functions (T-III)");
    let shard = active_shard();
    let store = artifact_store();
    if !shard.is_full() && store.is_none() {
        println!(
            "# WARNING: sharded run without KHAOS_STORE — cells will be printed but \
             not persisted, so fig10-merge cannot reassemble this shard"
        );
    }
    let cells = fig10_cells(scope, shard, store.as_deref());
    if shard.is_full() {
        fig10_print_tables(&cells);
        return;
    }
    println!(
        "# shard {shard}: {} of {} cells (merge with `experiments fig10-merge <store-dirs>`)",
        cells.len(),
        fig10_expected(scope).len()
    );
    println!(
        "{:<16} {:<10} {:<10} {:>9} {:>9} {:>9}",
        "program", "config", "tool", "escape@1", "escape@10", "escape@50"
    );
    for c in &cells {
        println!(
            "{:<16} {:<10} {:<10} {:>9.2} {:>9.2} {:>9.2}",
            c.program, c.config, c.tool, c.escape[0], c.escape[1], c.escape[2]
        );
    }
}

/// Reassembles the complete Figure-10 grid from any union of shard
/// stores (earlier stores win on duplicate cells, though duplicates are
/// bit-identical by determinism). Returns the cells in canonical grid
/// order, or — when any expected cell is missing from every store — an
/// `Err` listing each missing cell precisely (subject + pipeline
/// fingerprint), so an operator can see exactly which shard never ran
/// or never persisted.
pub fn fig10_merge(scope: Scope, stores: &[&Store]) -> Result<Vec<Fig10Cell>, Vec<String>> {
    fig10_merge_expected(&fig10_expected(scope), stores)
}

/// Looks up every expected `(subject, pipeline)` cell across a union
/// of stores, returning each cell's metric values (in `metrics` order)
/// in expected order — or, when any cell is missing from every store,
/// an `Err` listing each missing cell precisely (subject + pipeline
/// fingerprint), so an operator can see exactly which shard never ran
/// or never persisted. Every `figN_merge`/`table2_merge` is this one
/// contract over its own grid.
fn merge_grid(
    metrics: &[&str],
    expected: &[(String, u64)],
    stores: &[&Store],
) -> Result<Vec<Vec<f64>>, Vec<String>> {
    let mut cells = Vec::new();
    let mut missing = Vec::new();
    for (subject, pipeline) in expected {
        let report_key = ReportKey {
            pipeline: *pipeline,
            seed: SEED,
            subject,
        };
        // A store I/O failure is not "the shard never ran" — keep the
        // distinction so the operator fixes the store instead of
        // re-running an expensive shard sweep. (Corrupt records decode
        // to `Ok(None)` by design; `khaos-store verify` names those.)
        let mut found = None;
        let mut read_errors = Vec::new();
        for s in stores {
            match s.get_report(&report_key) {
                Ok(Some(r)) => {
                    found = Some(r);
                    break;
                }
                Ok(None) => {}
                Err(e) => read_errors.push(format!("{}: {e}", s.root().display())),
            }
        }
        let Some(report) = found else {
            missing.push(if read_errors.is_empty() {
                format!("{subject} (pipeline {pipeline:016x}, seed {:#x})", SEED)
            } else {
                // Name every failing store, not just the last — the
                // operator should fix them all in one pass.
                format!(
                    "{subject} (store read error — cell may exist: {})",
                    read_errors.join("; ")
                )
            });
            continue;
        };
        let values: Option<Vec<f64>> = metrics
            .iter()
            .map(|name| {
                report
                    .metrics
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
            })
            .collect();
        match values {
            Some(v) => cells.push(v),
            None => missing.push(format!(
                "{subject} (record present but missing {} metrics)",
                metrics.join("/")
            )),
        }
    }
    if missing.is_empty() {
        Ok(cells)
    } else {
        Err(missing)
    }
}

/// [`fig10_merge`] against an already-computed expected grid (the
/// merge CLI computes the grid once and reuses it for its header and
/// missing-cell accounting — regenerating it re-synthesizes the whole
/// T-III suite).
fn fig10_merge_expected(
    expected: &[Fig10CellKey],
    stores: &[&Store],
) -> Result<Vec<Fig10Cell>, Vec<String>> {
    let pairs: Vec<(String, u64)> = expected.iter().map(|k| (k.subject(), k.pipeline)).collect();
    let values = merge_grid(&["escape@1", "escape@10", "escape@50"], &pairs, stores)?;
    Ok(expected
        .iter()
        .zip(values)
        .map(|(k, v)| Fig10Cell {
            program: k.program.clone(),
            config: k.config.clone(),
            tool: k.tool,
            pipeline: k.pipeline,
            escape: [v[0], v[1], v[2]],
        })
        .collect())
}

/// Shared driver of the `figN-merge`/`table2-merge` CLI targets: opens
/// every store (a typo'd path must be an error, not an empty store
/// whose every cell reads as missing), runs the figure's merge, and
/// prints the merged table or the precise missing-cell listing.
/// Returns whether the grid was complete.
fn merged_report<T>(
    what: &str,
    scope: Scope,
    expected_len: usize,
    store_dirs: &[String],
    merge: impl FnOnce(Scope, &[&Store]) -> Result<Vec<T>, Vec<String>>,
    print: impl FnOnce(&[T]),
) -> bool {
    println!("# {what} (merged from {} store(s))", store_dirs.len());
    println!(
        "# scope: {scope:?} — expecting {expected_len} cells; match the shards' --quick \
         flag, or a full-scope store merges into a silently smaller grid"
    );
    let mut stores = Vec::new();
    for dir in store_dirs {
        match Store::open_existing(dir) {
            Ok(s) => stores.push(s),
            Err(e) => {
                println!("# cannot open store `{dir}`: {e}");
                return false;
            }
        }
    }
    let refs: Vec<&Store> = stores.iter().collect();
    match merge(scope, &refs) {
        Ok(cells) => {
            print(&cells);
            true
        }
        Err(missing) => {
            println!(
                "# INCOMPLETE GRID: {} of {expected_len} cells missing:",
                missing.len()
            );
            for m in &missing {
                println!("#   missing {m}");
            }
            false
        }
    }
}

/// Prints one worker's elastic-loop accounting (stderr, like the
/// steal lines — stdout stays the figure's table).
fn print_elastic_summary(what: &str, s: &ElasticSummary) {
    eprintln!(
        "# elastic {what}: {} unit(s) — {} computed here, {} already done, \
         {} stale lease(s) stolen, {} round(s)",
        s.units, s.computed, s.already_done, s.stolen, s.rounds
    );
}

/// After an elastic run every unit's records exist, so the merge can
/// only fail on a scope mismatch (records persisted under a different
/// `--quick` grid) — still reported precisely rather than silently.
fn elastic_epilogue<T>(merge: Result<Vec<T>, Vec<String>>, print: impl FnOnce(&[T])) -> bool {
    match merge {
        Ok(cells) => {
            print(&cells);
            true
        }
        Err(missing) => {
            println!("# INCOMPLETE GRID: {} cells missing:", missing.len());
            for m in &missing {
                println!("#   missing {m}");
            }
            false
        }
    }
}

/// `experiments fig10-merge DIR...` — reassembles and prints the full
/// Figure-10 tables from a union of shard stores, or lists every
/// missing cell and fails. Returns whether the grid was complete.
pub fn fig10_report(scope: Scope, store_dirs: &[String]) -> bool {
    // One grid generation serves the header, the merge and the
    // missing-cell accounting.
    let expected = fig10_expected(scope);
    merged_report(
        "Figure 10",
        scope,
        expected.len(),
        store_dirs,
        |_, refs| fig10_merge_expected(&expected, refs),
        fig10_print_tables,
    )
}

/// **Figure 10, elastic** — the `config × program` grid as a leased
/// work queue in the shared `KHAOS_STORE` (see [`crate::coordinator`]).
/// One work unit is one obfuscated build shared by all three tool
/// columns — the same grain as the static path, so a redone unit
/// recomputes exactly the records a dead worker owed. Any number of
/// workers run this concurrently; each prints the complete merged
/// tables once the grid's records all exist. Returns `false` (without
/// working) when no store is configured.
pub fn fig10_elastic(scope: Scope) -> bool {
    let Some(store) = artifact_store() else {
        eprintln!("experiments: --elastic needs KHAOS_STORE (the shared store is the work queue)");
        return false;
    };
    println!("# Figure 10: escape ratio of vulnerable functions (T-III)");
    println!("# elastic worker over {}", store.root().display());
    let summary = fig10_elastic_sweep(scope, &store, Store::lease_horizon());
    print_elastic_summary("fig10", &summary);
    elastic_epilogue(fig10_merge(scope, &[&store]), |cells| {
        fig10_print_tables(cells)
    })
}

/// One worker's pass over the Figure-10 work queue at an explicit
/// lease `horizon` (tests inject a tiny horizon to exercise stealing
/// without touching the process-global `KHAOS_LEASE_MS`). Returns
/// once every unit's records exist in `store`.
pub fn fig10_elastic_sweep(
    scope: Scope,
    store: &Store,
    horizon: std::time::Duration,
) -> ElasticSummary {
    let configs = fig10_configs();
    let tools = fig10_tools();
    let programs = fig10_programs(scope);
    let grid: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..programs.len()).map(move |pi| (ci, pi)))
        .collect();
    let units: Vec<WorkUnit> = grid
        .iter()
        .map(|&(ci, pi)| {
            let (cfg_name, cfg) = &configs[ci];
            let program = &programs[pi].name;
            WorkUnit {
                label: format!("fig10/{program}/{cfg_name}"),
                lease: (
                    fig10_subject(program, cfg_name, tools[0].0),
                    cfg.fingerprint(),
                ),
                outputs: tools
                    .iter()
                    .map(|(t, _)| (fig10_subject(program, cfg_name, t), cfg.fingerprint()))
                    .collect(),
            }
        })
        .collect();
    run_elastic_with(store, "fig10", &units, horizon, |i| {
        let (ci, pi) = grid[i];
        let (cfg_name, cfg) = &configs[ci];
        let src = &programs[pi];
        let base = build_baseline(src);
        let base_bin = lower_module(&base);
        let obf_bin = build_binary(&base, *cfg);
        for (tool_name, tool) in &tools {
            let profile = escape_profile(tool.as_ref(), &base_bin, &obf_bin, &FIG10_KS);
            persist_metrics_to(
                store,
                &fig10_subject(&src.name, cfg_name, tool_name),
                cfg.fingerprint(),
                &[
                    ("escape@1", profile[0]),
                    ("escape@10", profile[1]),
                    ("escape@50", profile[2]),
                ],
            );
        }
    })
}

/// **Figure 11** — normalized opcode-histogram distance of every
/// configuration against the baseline build.
pub fn fig11(scope: Scope) {
    println!("# Figure 11: opcode histogram distance (normalized per suite)");
    let mut configs: Vec<(String, Option<BuildConfig>)> = vec![
        ("Sub".into(), Some(BuildConfig::Ollvm(OllvmMode::Sub(1.0)))),
        ("Bog".into(), Some(BuildConfig::Ollvm(OllvmMode::Bog(1.0)))),
        (
            "Fla-10".into(),
            Some(BuildConfig::Ollvm(OllvmMode::Fla(0.1))),
        ),
        ("BinTuner".into(), None), // handled specially
    ];
    configs.extend(
        KhaosMode::ALL
            .iter()
            .map(|m| (m.name().to_string(), Some(BuildConfig::Khaos(*m)))),
    );
    let programs = shard_select(active_shard(), "T-I programs", t1_programs(scope));

    // Fan out per program; each worker builds every configuration.
    let rows = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        let base_hist = opcode_histogram(&lower_module(&base));
        let ds: Vec<f64> = configs
            .iter()
            .map(|(_, cfg)| {
                let obf_bin = match cfg {
                    Some(c) => build_binary(&base, *c),
                    None => {
                        BinTuner {
                            budget: 8,
                            seed: SEED,
                        }
                        .tune(src)
                        .binary
                    }
                };
                histogram_distance(&base_hist, &opcode_histogram(&obf_bin))
            })
            .collect();
        (src.name.clone(), ds)
    });
    // distances[config][program]
    let mut distances: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut names: Vec<String> = Vec::new();
    for (name, ds) in rows {
        names.push(name);
        for (ci, d) in ds.into_iter().enumerate() {
            distances[ci].push(d);
        }
    }
    // Normalize by the max distance over everything (the paper's scheme).
    let max = distances
        .iter()
        .flat_map(|v| v.iter())
        .cloned()
        .fold(1e-9f64, f64::max);
    print!("{:<20}", "program");
    for (n, _) in &configs {
        print!(" {n:>9}");
    }
    println!();
    for (pi, pname) in names.iter().enumerate() {
        print!("{pname:<20}");
        for d in &distances {
            print!(" {:>9.3}", d[pi] / max);
        }
        println!();
    }
    print!("{:<20}", "GEOMEAN");
    for d in &distances {
        let norm: Vec<f64> = d.iter().map(|x| x / max).collect();
        print!(" {:>9.3}", geomean(&norm));
    }
    println!();
}

/// **Table 1** — the diffing-tool characteristics summary.
pub fn table1() {
    println!("# Table 1: chosen diffing works");
    println!(
        "{:<12} {:<12} {:<7} {:<7} {:<7} {:<10}",
        "diffing", "granularity", "symbol", "time", "memory", "call-graph"
    );
    println!(
        "{:<12} {:<12} {:<7} {:<7} {:<7} {:<10}",
        "", "", "relying", "heavy", "heavy", "lacking"
    );
    for (name, gran, sym, time, mem, cg) in [
        ("BinDiff", "function", "Y", "N", "N", "N"),
        ("VulSeeker", "function", "N", "Y", "Y", "Y"),
        ("Asm2Vec", "function", "N", "N", "N", "Y"),
        ("SAFE", "function", "N", "N", "N", "Y"),
        ("DeepBinDiff", "basic block", "N", "Y", "Y", "N"),
    ] {
        println!("{name:<12} {gran:<12} {sym:<7} {time:<7} {mem:<7} {cg:<10}");
    }
}

/// The suites of Table 2 (its rows), trimmed under `--quick`.
fn table2_suites(scope: Scope) -> Vec<(&'static str, Vec<Module>)> {
    if scope == Scope::Quick {
        vec![("SPEC2006(q)", {
            let mut v = spec2006();
            v.truncate(4);
            v
        })]
    } else {
        vec![
            ("SPEC CPU 2006", spec2006()),
            ("SPEC CPU 2017", spec2017()),
            ("CoreUtils", coreutils()),
        ]
    }
}

/// The `khaos-store` report subject of one Table-2 cell (one cell per
/// program: its raw fission + fusion counters).
pub fn table2_subject(suite: &str, program: &str) -> String {
    format!("table2/{suite}/{program}")
}

/// The stored metric names of one Table-2 cell: the raw
/// [`FissionStats`]/[`FusionStats`] counters, *not* the derived
/// ratios — ratios don't merge, counters do (sum per suite), which is
/// what keeps the merged table bit-identical to a single-process run.
const TABLE2_METRICS: [&str; 14] = [
    "fi/ori_funcs",
    "fi/fissioned_funcs",
    "fi/sep_funcs",
    "fi/sep_blocks",
    "fi/reduced_ratio_sum",
    "fi/params_reduced",
    "fu/eligible_funcs",
    "fu/fused_funcs",
    "fu/fus_funcs",
    "fu/params_removed",
    "fu/innocuous_blocks",
    "fu/deep_fused_pairs",
    "fu/trampolines",
    "fu/indirect_sites_rewritten",
];

/// The fingerprint keying Table-2 cells (the fission build's pipeline;
/// one cell covers both primitive builds).
fn table2_pipeline() -> u64 {
    BuildConfig::Khaos(KhaosMode::Fission).fingerprint()
}

/// One measured Table-2 cell: the fission/fusion counters of one
/// program (fission stats from a pure-fission build, fusion stats from
/// a pure-fusion build — the paper measures the primitives
/// individually, "without the combination").
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Cell {
    /// Suite the program belongs to (Table-2 row).
    pub suite: &'static str,
    /// Program name.
    pub program: String,
    /// Report keyspace fingerprint.
    pub pipeline: u64,
    /// Fission counters of the pure-fission build.
    pub fission: FissionStats,
    /// Fusion counters of the pure-fusion build.
    pub fusion: FusionStats,
}

impl Table2Cell {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        table2_subject(self.suite, &self.program)
    }
}

/// The identity of one expected Table-2 cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2CellKey {
    /// Suite the program belongs to.
    pub suite: &'static str,
    /// Program name.
    pub program: String,
    /// Report keyspace fingerprint.
    pub pipeline: u64,
}

impl Table2CellKey {
    /// The cell's store subject.
    pub fn subject(&self) -> String {
        table2_subject(self.suite, &self.program)
    }
}

/// Every cell of the Table-2 grid in canonical (suite, program) order.
pub fn table2_expected(scope: Scope) -> Vec<Table2CellKey> {
    let suites = table2_suites(scope);
    let mut out = Vec::new();
    for (suite, programs) in &suites {
        for program in programs {
            out.push(Table2CellKey {
                suite,
                program: program.name.clone(),
                pipeline: table2_pipeline(),
            });
        }
    }
    out
}

/// The cell's stored metric pairs, in [`TABLE2_METRICS`] order.
/// Counters round-trip exactly through `f64` (they are far below
/// 2^53); `reduced_ratio_sum` is stored bit-for-bit.
fn table2_metrics(cell: &Table2Cell) -> Vec<(&'static str, f64)> {
    let fi = &cell.fission;
    let fu = &cell.fusion;
    let values = [
        fi.ori_funcs as f64,
        fi.fissioned_funcs as f64,
        fi.sep_funcs as f64,
        fi.sep_blocks as f64,
        fi.reduced_ratio_sum,
        fi.params_reduced as f64,
        fu.eligible_funcs as f64,
        fu.fused_funcs as f64,
        fu.fus_funcs as f64,
        fu.params_removed as f64,
        fu.innocuous_blocks as f64,
        fu.deep_fused_pairs as f64,
        fu.trampolines as f64,
        fu.indirect_sites_rewritten as f64,
    ];
    TABLE2_METRICS.iter().copied().zip(values).collect()
}

/// Inverse of [`table2_metrics`]: counters back out of a merged
/// record's values (in [`TABLE2_METRICS`] order).
fn table2_stats_from(v: &[f64]) -> (FissionStats, FusionStats) {
    (
        FissionStats {
            ori_funcs: v[0] as usize,
            fissioned_funcs: v[1] as usize,
            sep_funcs: v[2] as usize,
            sep_blocks: v[3] as usize,
            reduced_ratio_sum: v[4],
            params_reduced: v[5] as usize,
        },
        FusionStats {
            eligible_funcs: v[6] as usize,
            fused_funcs: v[7] as usize,
            fus_funcs: v[8] as usize,
            params_removed: v[9] as usize,
            innocuous_blocks: v[10] as usize,
            deep_fused_pairs: v[11] as usize,
            trampolines: v[12] as usize,
            indirect_sites_rewritten: v[13] as usize,
        },
    )
}

/// Measures `shard`'s share of the Table-2 grid (one cell per
/// program), persisting each cell into `store` when given. Cells are
/// deterministic functions of `(program, seed)`, so shards merge
/// bit-identically.
pub fn table2_cells(scope: Scope, shard: ShardSpec, store: Option<&Store>) -> Vec<Table2Cell> {
    let suites = table2_suites(scope);
    let mut grid: Vec<(usize, usize)> = Vec::new();
    for (si, (_, programs)) in suites.iter().enumerate() {
        for pi in 0..programs.len() {
            grid.push((si, pi));
        }
    }
    let grid = shard.select(grid);
    par_fan_out(&grid, |&(si, pi)| {
        let src = &suites[si].1[pi];
        let base = build_baseline(src);
        let (_, fi_ctx) = khaos_apply(&base, KhaosMode::Fission, SEED);
        let (_, fu_ctx) = khaos_apply(&base, KhaosMode::Fusion, SEED);
        let cell = Table2Cell {
            suite: suites[si].0,
            program: src.name.clone(),
            pipeline: table2_pipeline(),
            fission: fi_ctx.fission_stats,
            fusion: fu_ctx.fusion_stats,
        };
        if let Some(store) = store {
            persist_metrics_to(
                store,
                &cell.subject(),
                cell.pipeline,
                &table2_metrics(&cell),
            );
        }
        cell
    })
}

/// Prints the Table-2 rows (per-suite aggregates) from a complete cell
/// grid. Per-suite counters are summed in canonical program order, so
/// the derived ratios match a single-process run bit for bit.
fn table2_print_table(cells: &[Table2Cell]) {
    println!(
        "{:<16} {:>12} {:>8} {:>8} {:>13} {:>8} {:>8}",
        "suite", "FissionRatio", "#BB", "RR", "FusionRatio", "#RP", "#HBB"
    );
    for suite in uniq(cells.iter().map(|c| c.suite)) {
        let mut fi = FissionStats::default();
        let mut fu = FusionStats::default();
        for c in cells.iter().filter(|c| c.suite == suite) {
            fi.merge(&c.fission);
            fu.merge(&c.fusion);
        }
        println!(
            "{:<16} {:>11.0}% {:>8.2} {:>7.0}% {:>12.0}% {:>8.2} {:>8.2}",
            suite,
            fi.ratio() * 100.0,
            fi.avg_blocks(),
            fi.reduced_ratio() * 100.0,
            fu.ratio() * 100.0,
            fu.avg_reduced_params(),
            fu.avg_innocuous(),
        );
    }
    println!("# paper: Fission 116-152%, #BB 5.3-6.5, RR 34-44%; Fusion 97-99%, #RP 1.2-1.5, #HBB 1.0-1.9");
}

/// **Table 2** — fission/fusion internal statistics per suite. Honours
/// the active shard like [`fig10`]; `experiments table2-merge <DIR...>`
/// reassembles the full table from shard stores.
pub fn table2(scope: Scope) {
    println!("# Table 2: statistics of the fission and the fusion");
    let shard = active_shard();
    let store = artifact_store();
    if !shard.is_full() && store.is_none() {
        println!(
            "# WARNING: sharded run without KHAOS_STORE — cells will be printed but \
             not persisted, so table2-merge cannot reassemble this shard"
        );
    }
    let cells = table2_cells(scope, shard, store.as_deref());
    if shard.is_full() {
        table2_print_table(&cells);
        return;
    }
    println!(
        "# shard {shard}: {} of {} cells (merge with `experiments table2-merge <store-dirs>`)",
        cells.len(),
        table2_expected(scope).len()
    );
    println!(
        "{:<16} {:<16} {:>9} {:>9} {:>9} {:>9}",
        "suite", "program", "sepFuncs", "sepBBs", "fusFuncs", "remParams"
    );
    for c in &cells {
        println!(
            "{:<16} {:<16} {:>9} {:>9} {:>9} {:>9}",
            c.suite,
            c.program,
            c.fission.sep_funcs,
            c.fission.sep_blocks,
            c.fusion.fus_funcs,
            c.fusion.params_removed
        );
    }
}

/// Reassembles the complete Table-2 grid from any union of shard
/// stores, or lists every missing cell precisely.
pub fn table2_merge(scope: Scope, stores: &[&Store]) -> Result<Vec<Table2Cell>, Vec<String>> {
    let expected = table2_expected(scope);
    let pairs: Vec<(String, u64)> = expected.iter().map(|k| (k.subject(), k.pipeline)).collect();
    let values = merge_grid(&TABLE2_METRICS, &pairs, stores)?;
    Ok(expected
        .into_iter()
        .zip(values)
        .map(|(k, v)| {
            let (fission, fusion) = table2_stats_from(&v);
            Table2Cell {
                suite: k.suite,
                program: k.program,
                pipeline: k.pipeline,
                fission,
                fusion,
            }
        })
        .collect())
}

/// `experiments table2-merge DIR...` — reassembles and prints the full
/// Table 2 from a union of shard stores, or lists every missing cell
/// and fails. Returns whether the grid was complete.
pub fn table2_report(scope: Scope, store_dirs: &[String]) -> bool {
    let expected = table2_expected(scope);
    println!("# Table 2: statistics of the fission and the fusion");
    merged_report(
        "Table 2",
        scope,
        expected.len(),
        store_dirs,
        table2_merge,
        table2_print_table,
    )
}

/// **Table 2, elastic** — one work unit per program on the shared
/// store's leased work queue (see [`crate::coordinator`]). Returns
/// `false` (without working) when no store is configured.
pub fn table2_elastic(scope: Scope) -> bool {
    let Some(store) = artifact_store() else {
        eprintln!("experiments: --elastic needs KHAOS_STORE (the shared store is the work queue)");
        return false;
    };
    println!("# Table 2: statistics of the fission and the fusion");
    println!("# elastic worker over {}", store.root().display());
    let suites = table2_suites(scope);
    let mut grid: Vec<(usize, usize)> = Vec::new();
    for (si, (_, programs)) in suites.iter().enumerate() {
        for pi in 0..programs.len() {
            grid.push((si, pi));
        }
    }
    let units: Vec<WorkUnit> = grid
        .iter()
        .map(|&(si, pi)| {
            let subject = table2_subject(suites[si].0, &suites[si].1[pi].name);
            WorkUnit {
                label: subject.clone(),
                lease: (subject.clone(), table2_pipeline()),
                outputs: vec![(subject, table2_pipeline())],
            }
        })
        .collect();
    let summary = run_elastic(&store, "table2", &units, |i| {
        let (si, pi) = grid[i];
        let src = &suites[si].1[pi];
        let base = build_baseline(src);
        let (_, fi_ctx) = khaos_apply(&base, KhaosMode::Fission, SEED);
        let (_, fu_ctx) = khaos_apply(&base, KhaosMode::Fusion, SEED);
        let cell = Table2Cell {
            suite: suites[si].0,
            program: src.name.clone(),
            pipeline: table2_pipeline(),
            fission: fi_ctx.fission_stats,
            fusion: fu_ctx.fusion_stats,
        };
        persist_metrics_to(
            &store,
            &cell.subject(),
            cell.pipeline,
            &table2_metrics(&cell),
        );
    });
    print_elastic_summary("table2", &summary);
    elastic_epilogue(table2_merge(scope, &[&store]), |cells| {
        table2_print_table(cells)
    })
}

/// **Table 3** — the CVE inventory of the T-III suite.
pub fn table3() {
    println!("# Table 3: vulnerable functions of Test Suite III");
    println!("{:<16} {:<28} CVE", "program", "function");
    let mut total = 0;
    for (prog, funcs) in TIII_CVES {
        for (f, cve) in *funcs {
            println!("{prog:<16} {f:<28} {cve}");
            total += 1;
        }
    }
    println!("total vulnerable functions: {total}");
}

/// Ablation: the data-flow reduction, parameter compression and deep
/// fusion switches called out in DESIGN.md.
pub fn ablations(scope: Scope) {
    use khaos_core::KhaosOptions;
    println!("# Ablations: Khaos design-choice switches");
    let programs = {
        let mut v = t1_programs(Scope::Quick);
        if scope == Scope::Quick {
            v.truncate(3);
        }
        v
    };

    let run = |name: &str, options: KhaosOptions, mode: KhaosMode| {
        let mut ohs = Vec::new();
        let mut fi = FissionStats::default();
        let mut fu = FusionStats::default();
        let pipeline = khaos_pass::Pipeline::parse(khaos_atom(mode)).expect("ablation spec");
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_cycles = measure_cycles(&base);
            let mut m = base.clone();
            let mut ctx = khaos_pass::PassCtx::with_options(SEED, options.clone());
            pipeline.run(&mut m, &mut ctx).expect("ablation build");
            let oh = overhead_pct(base_cycles, measure_cycles(&m));
            (oh, ctx.fission_stats, ctx.fusion_stats)
        });
        for (oh, fis, fus) in &results {
            ohs.push(*oh);
            fi.merge(fis);
            fu.merge(fus);
        }
        println!(
            "{:<34} overhead {:>7.1}%  paramsReduced {:>4}  #RP {:>5.2}  deepPairs {:>4}",
            name,
            geomean_ratio(&ohs),
            fi.params_reduced,
            fu.avg_reduced_params(),
            fu.deep_fused_pairs,
        );
    };

    run(
        "Fission (default)",
        KhaosOptions::default(),
        KhaosMode::Fission,
    );
    run(
        "Fission w/o data-flow reduction",
        KhaosOptions {
            data_flow_reduction: false,
            ..Default::default()
        },
        KhaosMode::Fission,
    );
    run(
        "Fission naive regions (min_value 0)",
        KhaosOptions {
            fission_min_value: 0.0,
            fission_max_regions: 64,
            ..Default::default()
        },
        KhaosMode::Fission,
    );
    run(
        "Fusion (default)",
        KhaosOptions::default(),
        KhaosMode::Fusion,
    );
    run(
        "Fusion w/o param compression",
        KhaosOptions {
            parameter_compression: false,
            ..Default::default()
        },
        KhaosMode::Fusion,
    );
    run(
        "Fusion w/o deep fusion",
        KhaosOptions {
            deep_fusion: false,
            ..Default::default()
        },
        KhaosMode::Fusion,
    );
}

/// **Extension E10** — N-way fusion arity sweep (`ext-arity`).
///
/// Paper §3.3 fixes the fusion arity at two "to balance the performance
/// overhead and the obfuscation effect" and §A.1's tag-bit budget caps
/// the general form at four constituents. This sweep measures the
/// trade-off the paper asserts: overhead and anti-diffing effect as the
/// arity grows.
pub fn ext_arity(scope: Scope) {
    use crate::harness::khaos_apply_nway;
    println!("# Extension: N-way fusion arity sweep (fusion-only builds)");
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "arity", "overhead", "BinDiff", "Asm2Vec", "SAFE", "DataFlow", "fus/funcs"
    );
    let programs = t1_programs(scope);
    for arity in 2..=4usize {
        let mut ohs = Vec::new();
        let mut bindiff = Vec::new();
        let mut asm2vec = Vec::new();
        let mut safe = Vec::new();
        let mut dataflow = Vec::new();
        let mut fus_funcs = 0usize;
        let mut eligible = 0usize;
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_cycles = measure_cycles(&base);
            let base_bin = lower_module(&base);
            let (obf, ctx) = khaos_apply_nway(&base, arity, SEED);
            let oh = overhead_pct(base_cycles, measure_cycles(&obf));
            let obf_bin = lower_module(&obf);
            (
                oh,
                [
                    binary_similarity(&BinDiff::default(), &base_bin, &obf_bin),
                    precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin),
                    precision_at_1(&Safe::default(), &base_bin, &obf_bin),
                    precision_at_1(&khaos_diff::DataFlowDiff::default(), &base_bin, &obf_bin),
                ],
                ctx.fusion_stats.fus_funcs,
                ctx.fusion_stats.eligible_funcs,
            )
        });
        for (oh, scores, fus, elig) in results {
            ohs.push(oh);
            bindiff.push(scores[0]);
            asm2vec.push(scores[1]);
            safe.push(scores[2]);
            dataflow.push(scores[3]);
            fus_funcs += fus;
            eligible += elig;
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<8} {:>9.1}% {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>5}/{:<4}",
            arity,
            geomean_ratio(&ohs),
            avg(&bindiff),
            avg(&asm2vec),
            avg(&safe),
            avg(&dataflow),
            fus_funcs,
            eligible,
        );
    }
    println!("# expectation: overhead grows with arity; diffing accuracy falls;");
    println!("# fus/funcs shrinks (each fusFunc swallows more functions)");

    // Same sweep at the paper's obfuscation-effect-first operating point:
    // fission first, then N-way fusion over sepFuncs + untouched originals
    // (the arity-k analogue of FuFi.all).
    println!("\n## FuFi.all at arity k (fission + N-way fusion)");
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>9}",
        "arity", "overhead", "BinDiff", "Asm2Vec", "SAFE"
    );
    let programs = t1_programs(if scope == Scope::Quick {
        Scope::Quick
    } else {
        Scope::Full
    });
    for arity in 2..=4usize {
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_cycles = measure_cycles(&base);
            let base_bin = lower_module(&base);
            let (m, _) = run_spec(&base, &format!("fufi_n(arity={arity}) | O2+lto"), SEED);
            let oh = overhead_pct(base_cycles, measure_cycles(&m));
            let obf_bin = lower_module(&m);
            (
                oh,
                binary_similarity(&BinDiff::default(), &base_bin, &obf_bin),
                precision_at_1(&Asm2Vec::default(), &base_bin, &obf_bin),
                precision_at_1(&Safe::default(), &base_bin, &obf_bin),
            )
        });
        let ohs: Vec<f64> = results.iter().map(|r| r.0).collect();
        let bindiff: Vec<f64> = results.iter().map(|r| r.1).collect();
        let asm2vec: Vec<f64> = results.iter().map(|r| r.2).collect();
        let safe: Vec<f64> = results.iter().map(|r| r.3).collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<8} {:>9.1}% {:>9.3} {:>9.3} {:>9.3}",
            arity,
            geomean_ratio(&ohs),
            avg(&bindiff),
            avg(&asm2vec),
            avg(&safe),
        );
    }
}

/// **Extension E11** — the data-flow-representation differ (`ext-dataflow`).
///
/// Paper §5: *"we predict the potential of data flow representation can
/// be further tapped."* [`khaos_diff::DataFlowDiff`] embeds def-use-chain
/// features only; this experiment reruns the Figure-8 protocol with it
/// alongside the control-flow-reliant tools.
pub fn ext_dataflow(scope: Scope) {
    println!("# Extension: data-flow diffing (paper section-5 prediction)");
    println!("#   Precision@1, relaxed pairing — higher = more Khaos-resistant");
    let configs = BuildConfig::figure8_set();
    let mut programs = t1_programs(scope);
    programs.extend(t2_programs(scope));

    let tools: Vec<(&str, Box<dyn Differ + Sync>)> = vec![
        ("VulSeeker", Box::new(VulSeeker::default())),
        ("Asm2Vec", Box::new(Asm2Vec::default())),
        ("SAFE", Box::new(Safe::default())),
        ("DF/intra", Box::new(khaos_diff::DataFlowDiff::intra_only())),
        ("DataFlow", Box::new(khaos_diff::DataFlowDiff::default())),
    ];
    print!("{:<10}", "config");
    for (t, _) in &tools {
        print!(" {t:>11}");
    }
    println!();
    let prepared: Vec<_> = par_fan_out(&programs, |src| {
        let base = build_baseline(src);
        (lower_module(&base), base)
    });
    for cfg in configs {
        let per_program = par_fan_out(&prepared, |(base_bin, base)| {
            let obf_bin = build_binary(base, cfg);
            tools
                .iter()
                .map(|(_, tool)| precision_at_1(tool.as_ref(), base_bin, &obf_bin))
                .collect::<Vec<f64>>()
        });
        print!("{:<10}", cfg.name());
        for k in 0..tools.len() {
            let avg: f64 =
                per_program.iter().map(|s| s[k]).sum::<f64>() / per_program.len().max(1) as f64;
            print!(" {avg:>11.3}");
        }
        println!();
    }
    println!("# reading: DataFlow is near-immune to intra-procedural obfuscation");
    println!("# (Fla-10 row) and beats the call-graph tool (VulSeeker) under every");
    println!("# Khaos mode; sequence embeddings still edge it out after fission —");
    println!("# see EXPERIMENTS.md E11 for the honest verdict on the section-5 claim");
}

/// **Extension E12** — stripped-binary diffing (`ext-stripped`).
///
/// The paper highlights that BinDiff's resilience comes from symbol
/// names on un-stripped binaries (§4.2, Table 1). Real embedded firmware
/// is stripped; this experiment reruns BinDiff with stripped targets to
/// quantify how much of its accuracy is the symbol table.
pub fn ext_stripped(scope: Scope) {
    println!("# Extension: BinDiff with stripped targets (symbols removed)");
    println!(
        "{:<10} {:>13} {:>13} {:>11} {:>11}",
        "config", "sim/unstrip", "sim/strip", "P@1/unstrip", "P@1/strip"
    );
    let configs: Vec<BuildConfig> = vec![
        BuildConfig::Ollvm(OllvmMode::Sub(1.0)),
        BuildConfig::Ollvm(OllvmMode::Fla(0.1)),
        BuildConfig::Khaos(KhaosMode::Fission),
        BuildConfig::Khaos(KhaosMode::Fusion),
        BuildConfig::Khaos(KhaosMode::FuFiAll),
    ];
    let programs = t1_programs(scope);
    for cfg in configs {
        let tool = BinDiff::default();
        let results = par_fan_out(&programs, |src| {
            let base = build_baseline(src);
            let base_bin = lower_module(&base);
            let obf_bin = build_binary(&base, cfg);
            let mut stripped = obf_bin.clone();
            stripped.strip();
            [
                binary_similarity(&tool, &base_bin, &obf_bin),
                binary_similarity(&tool, &base_bin, &stripped),
                precision_at_1(&tool, &base_bin, &obf_bin),
                precision_at_1(&tool, &base_bin, &stripped),
            ]
        });
        let sim_u: Vec<f64> = results.iter().map(|r| r[0]).collect();
        let sim_s: Vec<f64> = results.iter().map(|r| r[1]).collect();
        let p_u: Vec<f64> = results.iter().map(|r| r[2]).collect();
        let p_s: Vec<f64> = results.iter().map(|r| r[3]).collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:<10} {:>13.3} {:>13.3} {:>11.3} {:>11.3}",
            cfg.name(),
            avg(&sim_u),
            avg(&sim_s),
            avg(&p_u),
            avg(&p_s)
        );
    }
    println!("# expectation: stripping costs BinDiff accuracy everywhere, and");
    println!("# under Khaos the structural fallback has nothing left to hold onto");
}
