//! khaos-lint — static semantic auditor for build pipelines.
//!
//! Runs every example pipeline over the paper's workload suites under
//! [`VerifyPolicy::AuditAfterEach`]: after each pass the module must
//! stay structurally valid *and* preserve its observable-behavior
//! summary (reachable external calls, global read/write/escape sets,
//! exported signatures). Also reports the dataflow lints on the
//! pre-obfuscation inputs: use-before-init sites (defined behavior —
//! KIR zero-initializes locals — but usually a generator bug),
//! removable dead assignments, and unreachable blocks.
//!
//! ```text
//! khaos-lint [--suite NAME]... [--spec SPEC]... [--roots] [--quiet]
//! ```
//!
//! Exits non-zero when any pipeline fails its audit.

use khaos_ir::analysis::cfg::Cfg;
use khaos_ir::analysis::dataflow::{dead_assignments, unreachable_blocks, use_before_init};
use khaos_ir::audit::ModuleSummary;
use khaos_ir::Module;
use khaos_pass::{PassCtx, Pipeline, VerifyPolicy};
use std::process::ExitCode;

/// The plain `-O` sweep, run on the source module as
/// [`khaos_bench::harness::build_at`] does.
const RAW_SPECS: &[&str] = &["O0", "O1", "O2", "O3", "O2+lto"];

/// The obfuscation pipelines at their paper position: applied on top of
/// the `O2+lto` baseline, as [`khaos_bench::harness::khaos_apply`] does.
const OBF_SPECS: &[&str] = &[
    "fission | O2+lto",
    "fusion | O2+lto",
    "fufi_sep | O2+lto",
    "fufi_ori | O2+lto",
    "fufi_all | O2+lto",
    "fusion_n(arity=2) | O2+lto",
    "fusion_n(arity=3) | O2+lto",
    "fusion_n(arity=4) | O2+lto",
    "sub(ratio=0.5) | O2+lto",
    "bog(ratio=0.3) | O2+lto",
    "fla(ratio=0.5) | O2+lto",
];

const SEED: u64 = khaos_bench::harness::SEED;

struct Options {
    suites: Vec<String>,
    specs: Vec<String>,
    roots: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        suites: Vec::new(),
        specs: Vec::new(),
        roots: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--suite" => opts
                .suites
                .push(args.next().ok_or("--suite needs a value")?),
            "--spec" => opts.specs.push(args.next().ok_or("--spec needs a value")?),
            "--roots" => opts.roots = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: khaos-lint [--suite NAME]... [--spec SPEC]... [--roots] [--quiet]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn suite_modules(name: &str) -> Option<Vec<Module>> {
    match name {
        "spec2006" => Some(khaos_workloads::spec2006()),
        "spec2017" => Some(khaos_workloads::spec2017()),
        "coreutils" => Some(khaos_workloads::coreutils()),
        "tiii" => Some(khaos_workloads::tiii()),
        _ => None,
    }
}

/// Static dataflow lints on one input module; returns the number of
/// warnings printed.
fn lint_module(m: &Module, quiet: bool) -> usize {
    let mut warnings = 0;
    for f in &m.functions {
        let cfg = Cfg::compute(f);
        for v in use_before_init(f, &cfg) {
            warnings += 1;
            if !quiet {
                let site = match v.inst {
                    Some(i) => format!("inst {i}"),
                    None => "terminator".to_string(),
                };
                println!(
                    "  warn {}/{}: local {} may be read before initialization at {} {site}",
                    m.name, f.name, v.local, v.block
                );
            }
        }
        let dead = dead_assignments(f, &cfg);
        let removable = dead.iter().filter(|d| d.removable).count();
        if removable > 0 && !quiet {
            println!(
                "  note {}/{}: {removable} removable dead assignment(s)",
                m.name, f.name
            );
        }
        let orphans = unreachable_blocks(f, &cfg);
        if !orphans.is_empty() && !quiet {
            println!(
                "  note {}/{}: {} structurally unreachable block(s)",
                m.name,
                f.name,
                orphans.len()
            );
        }
    }
    warnings
}

/// Runs one pipeline under [`VerifyPolicy::AuditAfterEach`]; returns
/// `true` when the audit (or structural verification) failed.
fn audit_run(suite: &str, m: &Module, spec: &str) -> bool {
    let pipeline = match Pipeline::parse(spec) {
        Ok(p) => p,
        Err(e) => {
            println!("FAIL {suite}/{} `{spec}`: bad spec: {e}", m.name);
            return true;
        }
    };
    let mut work = m.clone();
    let mut ctx = PassCtx::new(SEED).with_verify(VerifyPolicy::AuditAfterEach);
    match pipeline.run(&mut work, &mut ctx) {
        Ok(_) => false,
        Err(e) => {
            println!("FAIL {suite}/{} `{spec}`: {e}", m.name);
            true
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let suite_names: Vec<String> = if opts.suites.is_empty() {
        ["spec2006", "spec2017", "coreutils", "tiii"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        opts.suites.clone()
    };
    let mut runs = 0usize;
    let mut failures = 0usize;
    let mut warnings = 0usize;
    for sname in &suite_names {
        let Some(mods) = suite_modules(sname) else {
            eprintln!("unknown suite `{sname}` (spec2006|spec2017|coreutils|tiii)");
            return ExitCode::FAILURE;
        };
        for m in &mods {
            warnings += lint_module(m, opts.quiet);
            if opts.roots {
                let s = ModuleSummary::compute(m);
                println!("{sname}/{}: {} audit root(s)", m.name, s.roots.len());
                for (root, eff) in &s.roots {
                    println!(
                        "  root {root}: {} ext call(s), {} global read(s), {} write(s), {} escape(s)",
                        eff.ext_calls.len(),
                        eff.global_reads.len(),
                        eff.global_writes.len(),
                        eff.global_escapes.len()
                    );
                }
            }
            if !opts.specs.is_empty() {
                // Explicit specs run directly on the source module.
                for spec in &opts.specs {
                    runs += 1;
                    failures += audit_run(sname, m, spec) as usize;
                }
                continue;
            }
            for spec in RAW_SPECS {
                runs += 1;
                failures += audit_run(sname, m, spec) as usize;
            }
            // The obfuscation pipelines start from the optimized
            // baseline, matching the harness' `khaos_apply` position.
            let baseline = khaos_bench::harness::build_baseline(m);
            for spec in OBF_SPECS {
                runs += 1;
                failures += audit_run(sname, &baseline, spec) as usize;
            }
        }
        if !opts.quiet {
            println!("suite {sname}: done");
        }
    }
    println!(
        "khaos-lint: {runs} pipeline run(s), {failures} audit failure(s), {warnings} dataflow warning(s)"
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
