//! `experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] <fig6|fig7|fig8|fig9|fig10|fig11|table1|table2|table3|ablations
//!                        |ext-arity|ext-dataflow|ext-stripped|all>
//! ```
//!
//! The `ext-*` targets are extension experiments beyond the paper's
//! evaluation: the N-way fusion arity sweep, the §5 data-flow-diffing
//! prediction, and stripped-binary BinDiff.

use khaos_bench::experiments::{self, Scope};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scope = if quick { Scope::Quick } else { Scope::Full };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let targets: Vec<&str> = if targets.is_empty() || targets.contains(&"all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
            "ext-arity",
            "ext-dataflow",
            "ext-stripped",
        ]
    } else {
        targets
    };

    for t in targets {
        let start = Instant::now();
        match t {
            "fig6" => experiments::fig6(scope),
            "fig7" => experiments::fig7(scope),
            "fig8" => experiments::fig8(scope),
            "fig9" => experiments::fig9(scope),
            "fig10" => experiments::fig10(scope),
            "fig11" => experiments::fig11(scope),
            "table1" => experiments::table1(),
            "table2" => experiments::table2(scope),
            "table3" => experiments::table3(),
            "ablations" => experiments::ablations(scope),
            "ext-arity" => experiments::ext_arity(scope),
            "ext-dataflow" => experiments::ext_dataflow(scope),
            "ext-stripped" => experiments::ext_stripped(scope),
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!(
                    "usage: experiments [--quick] <fig6..fig11|table1..table3|ablations|ext-arity|ext-dataflow|ext-stripped|all>"
                );
                std::process::exit(2);
            }
        }
        eprintln!("[{t} took {:.1?}]\n", start.elapsed());
    }
}
