//! `experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--shard i/n] [--elastic]
//!             <fig6|fig7|fig8|fig9|fig10|fig11
//!              |table1|table2|table3|ablations
//!              |ext-arity|ext-dataflow|ext-stripped|all>
//! experiments [--quick] <fig7-merge|fig9-merge|fig10-merge|table2-merge> DIR...
//! ```
//!
//! The `ext-*` targets are extension experiments beyond the paper's
//! evaluation: the N-way fusion arity sweep, the §5 data-flow-diffing
//! prediction, and stripped-binary BinDiff.
//!
//! `--shard i/n` (or the `KHAOS_SHARD=i/n` environment variable) runs
//! this process as shard `i` of `n`: grid-shaped experiments measure
//! only their deterministic share of the flattened work grid, so `n`
//! processes — or machines sharing nothing but store directories —
//! split a sweep. Shard runs should set `KHAOS_STORE` so each cell is
//! persisted; `figN-merge`/`table2-merge DIR...` then reassembles the
//! complete grid from any union of shard stores (and fails, listing
//! every missing cell, when the union is incomplete).
//!
//! `--elastic` replaces the static partition with the leased work
//! queue in the shared `KHAOS_STORE` (see `khaos_bench::coordinator`):
//! every worker pointed at the same store claims open cells, steals
//! stale claims from dead peers after the lease horizon
//! (`KHAOS_LEASE_MS`, default 120s), and exits only when the whole
//! grid's records exist — no up-front `i/n` arithmetic, and a killed
//! worker costs one re-computed cell instead of a hole in the grid.

use khaos_bench::experiments::{self, Scope};
use khaos_bench::ShardSpec;
use std::time::Instant;

/// A grid reassembler: prints the full table from shard-store DIRs,
/// returning whether the grid was complete.
type MergeFn = fn(Scope, &[String]) -> bool;

/// An elastic driver: one worker's pass over a target's leased work
/// queue, returning false when no store is configured.
type ElasticFn = fn(Scope) -> bool;

/// The merge targets: each reassembles one full grid from shard-store
/// DIRs and exits 1 when cells are missing.
const MERGE_TARGETS: [(&str, MergeFn); 4] = [
    ("fig7-merge", experiments::fig7_report),
    ("fig9-merge", experiments::fig9_report),
    ("fig10-merge", experiments::fig10_report),
    ("table2-merge", experiments::table2_report),
];

/// Targets whose drivers honour `KHAOS_SHARD` (grid-shaped, per-cell
/// persisted). Everything else runs FULL on every shard.
const SHARDED_TARGETS: [&str; 7] = ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table2"];

/// Targets with an elastic (leased work-queue) driver.
const ELASTIC_TARGETS: [(&str, ElasticFn); 4] = [
    ("fig7", experiments::fig7_elastic),
    ("fig9", experiments::fig9_elastic),
    ("fig10", experiments::fig10_elastic),
    ("table2", experiments::table2_elastic),
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--shard i/n] [--elastic] \
         <fig6..fig11|table1..table3|ablations|ext-arity|ext-dataflow|ext-stripped|all>\n       \
         experiments [--quick] <fig7-merge|fig9-merge|fig10-merge|table2-merge> DIR..."
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scope = if quick { Scope::Quick } else { Scope::Full };
    let mut elastic = false;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--elastic" => elastic = true,
            "--shard" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                let shard = match ShardSpec::parse(v) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("experiments: --shard {e}");
                        std::process::exit(2);
                    }
                };
                // One mechanism for every driver: the flag writes the
                // same variable the harness reads (KHAOS_SHARD).
                std::env::set_var("KHAOS_SHARD", shard.to_string());
            }
            other if other.starts_with("--") => {
                eprintln!("experiments: unknown flag `{other}`");
                std::process::exit(2);
            }
            other => positional.push(other),
        }
    }

    // Merge targets consume the remaining positionals as store dirs.
    if let Some(&(name, report)) = positional
        .first()
        .and_then(|t| MERGE_TARGETS.iter().find(|(n, _)| n == t))
    {
        let dirs: Vec<String> = positional[1..].iter().map(|s| s.to_string()).collect();
        let dirs = if dirs.is_empty() {
            match std::env::var("KHAOS_STORE") {
                Ok(d) if !d.trim().is_empty() => vec![d],
                _ => {
                    eprintln!("experiments: {name} needs store DIRs (or KHAOS_STORE)");
                    std::process::exit(2);
                }
            }
        } else {
            dirs
        };
        let complete = report(scope, &dirs);
        std::process::exit(if complete { 0 } else { 1 });
    }

    let targets: Vec<&str> = if positional.is_empty() || positional.contains(&"all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
            "ext-arity",
            "ext-dataflow",
            "ext-stripped",
        ]
    } else {
        positional
    };

    let shard = khaos_bench::active_shard();
    if elastic && !shard.is_full() {
        eprintln!(
            "experiments: WARNING: --elastic ignores the static shard {shard} — \
             the work queue balances itself; every elastic worker scans the full grid"
        );
    }
    for t in targets {
        // Only the grid-shaped drivers shard. A sharded run of any
        // other target would duplicate its full cost on every shard,
        // so say so loudly instead of letting it pass as a smaller
        // sweep.
        if !shard.is_full() && !SHARDED_TARGETS.contains(&t) {
            eprintln!(
                "experiments: WARNING: `{t}` does not shard — shard {shard} runs it in FULL \
                 (every shard duplicates this cost; sharded targets: {})",
                SHARDED_TARGETS.join(", ")
            );
        }
        let start = Instant::now();
        if elastic {
            if let Some(&(_, run)) = ELASTIC_TARGETS.iter().find(|(n, _)| *n == t) {
                if !run(scope) {
                    std::process::exit(1);
                }
                eprintln!("[{t} took {:.1?}]\n", start.elapsed());
                continue;
            }
            eprintln!(
                "experiments: WARNING: `{t}` has no elastic driver — running it plainly \
                 (elastic targets: {})",
                ELASTIC_TARGETS.map(|(n, _)| n).join(", ")
            );
        }
        match t {
            "fig6" => experiments::fig6(scope),
            "fig7" => experiments::fig7(scope),
            "fig8" => experiments::fig8(scope),
            "fig9" => experiments::fig9(scope),
            "fig10" => experiments::fig10(scope),
            "fig11" => experiments::fig11(scope),
            "table1" => experiments::table1(),
            "table2" => experiments::table2(scope),
            "table3" => experiments::table3(),
            "ablations" => experiments::ablations(scope),
            "ext-arity" => experiments::ext_arity(scope),
            "ext-dataflow" => experiments::ext_dataflow(scope),
            "ext-stripped" => experiments::ext_stripped(scope),
            other => {
                eprintln!("unknown experiment `{other}`");
                usage();
            }
        }
        eprintln!("[{t} took {:.1?}]\n", start.elapsed());
    }
}
