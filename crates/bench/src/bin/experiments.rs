//! `experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--shard i/n] <fig6|fig7|fig8|fig9|fig10|fig11
//!                        |table1|table2|table3|ablations
//!                        |ext-arity|ext-dataflow|ext-stripped|all>
//! experiments [--quick] fig10-merge DIR...
//! ```
//!
//! The `ext-*` targets are extension experiments beyond the paper's
//! evaluation: the N-way fusion arity sweep, the §5 data-flow-diffing
//! prediction, and stripped-binary BinDiff.
//!
//! `--shard i/n` (or the `KHAOS_SHARD=i/n` environment variable) runs
//! this process as shard `i` of `n`: grid-shaped experiments measure
//! only their deterministic share of the flattened work grid, so `n`
//! processes — or machines sharing nothing but store directories —
//! split a sweep. Shard runs should set `KHAOS_STORE` so each cell is
//! persisted; `fig10-merge DIR...` then reassembles the complete
//! Figure-10 grid from any union of shard stores (and fails, listing
//! every missing cell, when the union is incomplete).

use khaos_bench::experiments::{self, Scope};
use khaos_bench::ShardSpec;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scope = if quick { Scope::Quick } else { Scope::Full };
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--shard" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                let shard = match ShardSpec::parse(v) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("experiments: --shard {e}");
                        std::process::exit(2);
                    }
                };
                // One mechanism for every driver: the flag writes the
                // same variable the harness reads (KHAOS_SHARD).
                std::env::set_var("KHAOS_SHARD", shard.to_string());
            }
            other if other.starts_with("--") => {
                eprintln!("experiments: unknown flag `{other}`");
                std::process::exit(2);
            }
            other => positional.push(other),
        }
    }

    // `fig10-merge` consumes the remaining positionals as store dirs.
    if positional.first() == Some(&"fig10-merge") {
        let dirs: Vec<String> = positional[1..].iter().map(|s| s.to_string()).collect();
        let dirs = if dirs.is_empty() {
            match std::env::var("KHAOS_STORE") {
                Ok(d) if !d.trim().is_empty() => vec![d],
                _ => {
                    eprintln!("experiments: fig10-merge needs store DIRs (or KHAOS_STORE)");
                    std::process::exit(2);
                }
            }
        } else {
            dirs
        };
        let complete = experiments::fig10_report(scope, &dirs);
        std::process::exit(if complete { 0 } else { 1 });
    }

    let targets: Vec<&str> = if positional.is_empty() || positional.contains(&"all") {
        vec![
            "table1",
            "table2",
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
            "ext-arity",
            "ext-dataflow",
            "ext-stripped",
        ]
    } else {
        positional
    };

    // Only the grid-shaped drivers shard (see ROADMAP: the aggregate
    // targets need per-cell persistence first). A sharded run of any
    // other target would duplicate its full cost on every shard, so
    // say so loudly instead of letting it pass as a smaller sweep.
    const SHARDED_TARGETS: [&str; 4] = ["fig6", "fig8", "fig10", "fig11"];
    let shard = khaos_bench::active_shard();
    for t in targets {
        if !shard.is_full() && !SHARDED_TARGETS.contains(&t) {
            eprintln!(
                "experiments: WARNING: `{t}` does not shard — shard {shard} runs it in FULL \
                 (every shard duplicates this cost; sharded targets: {})",
                SHARDED_TARGETS.join(", ")
            );
        }
        let start = Instant::now();
        match t {
            "fig6" => experiments::fig6(scope),
            "fig7" => experiments::fig7(scope),
            "fig8" => experiments::fig8(scope),
            "fig9" => experiments::fig9(scope),
            "fig10" => experiments::fig10(scope),
            "fig11" => experiments::fig11(scope),
            "table1" => experiments::table1(),
            "table2" => experiments::table2(scope),
            "table3" => experiments::table3(),
            "ablations" => experiments::ablations(scope),
            "ext-arity" => experiments::ext_arity(scope),
            "ext-dataflow" => experiments::ext_dataflow(scope),
            "ext-stripped" => experiments::ext_stripped(scope),
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!(
                    "usage: experiments [--quick] [--shard i/n] <fig6..fig11|table1..table3|ablations|ext-arity|ext-dataflow|ext-stripped|all>\n       experiments [--quick] fig10-merge DIR..."
                );
                std::process::exit(2);
            }
        }
        eprintln!("[{t} took {:.1?}]\n", start.elapsed());
    }
}
