//! The elastic shard coordinator: the flattened experiment grid as a
//! persistent work queue with cell-level leases in `khaos-store`.
//!
//! Static sharding (`KHAOS_SHARD=i/n`) partitions a grid up front:
//! fine for two machines, wasteful at fleet scale where build costs
//! per cell vary 10× — the sweep finishes when the unluckiest shard
//! does. The coordinator replaces the static partition with a work
//! queue that lives *in the shared store itself*:
//!
//! - Every experiment grid flattens into [`WorkUnit`]s. A unit is
//!   **done** when all of its output report records exist in the
//!   store; the records are the ground truth, not any scheduler state.
//! - A worker claims an open unit by creating the unit's **claim
//!   file** (`rep/<addr>.lease`, atomic `O_EXCL` — see
//!   [`Store::try_lease_report`]) next to where the unit's records
//!   will land. Claim files are invisible to `stats`/`verify`/`gc`
//!   and never travel through `merge`.
//! - A worker that dies mid-unit leaves a dangling claim. Once the
//!   claim's age passes the **lease horizon** any other worker steals
//!   it — the same rename-verify-delete primitive that arbitrates the
//!   `gc.lock` steal, so two stealers can never both win — and redoes
//!   the unit. Every cell is a deterministic function of
//!   `(program, config, seed)`, so a redo (or even a double-compute
//!   when a horizon is set shorter than a live worker's build) writes
//!   byte-identical records: correctness never depends on the lease,
//!   only wasted work does.
//! - Adding a machine mid-run just works: point it at the same store
//!   and it claims whatever is still open.
//!
//! The loop exits only when every unit's records exist, no matter who
//! computed them — so any number of concurrent workers, each running
//! this same loop, converge on one complete, bit-identical grid.

use crate::harness::{par_fan_out, SEED};
use khaos_store::{Lease, ReportKey, Store};
use std::time::Duration;

/// How long an idle worker sleeps between scans when every open unit
/// is leased by someone else (waiting for their records to land or
/// their leases to go stale).
const POLL: Duration = Duration::from_millis(50);

/// One claimable unit of grid work: the grain of the work queue.
///
/// A unit usually covers one expensive build and every cheap cell
/// computed from it (e.g. one Figure-10 `(config, program)` build
/// shared by all three tool columns), so the lease is taken on a
/// single anchor cell while doneness checks every output cell.
pub struct WorkUnit {
    /// Display name for steal/abort diagnostics, and the needle
    /// `KHAOS_COORD_ABORT_ON` is matched against.
    pub label: String,
    /// `(subject, pipeline)` of the anchor cell whose claim file
    /// leases the whole unit.
    pub lease: (String, u64),
    /// `(subject, pipeline)` of every report record the unit
    /// persists; the unit is done when all of them exist.
    pub outputs: Vec<(String, u64)>,
}

/// What one worker's [`run_elastic`] loop did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElasticSummary {
    /// Total units in the grid.
    pub units: usize,
    /// Units this worker computed (including re-computes of stolen
    /// stragglers).
    pub computed: usize,
    /// Units whose records already existed when this worker first
    /// scanned the grid (a resumed or partially-complete sweep).
    pub already_done: usize,
    /// Stale claims stolen from presumed-dead workers.
    pub stolen: usize,
    /// Scan rounds the loop ran.
    pub rounds: usize,
}

fn unit_done(store: &Store, unit: &WorkUnit) -> bool {
    unit.outputs.iter().all(|(subject, pipeline)| {
        matches!(
            store.get_report(&ReportKey {
                pipeline: *pipeline,
                seed: SEED,
                subject,
            }),
            Ok(Some(_))
        )
    })
}

/// [`run_elastic_with`] at the process-wide lease horizon
/// (`KHAOS_LEASE_MS`, default 120s — [`Store::lease_horizon`]).
pub fn run_elastic<F>(store: &Store, what: &str, units: &[WorkUnit], compute: F) -> ElasticSummary
where
    F: Fn(usize) + Sync,
{
    run_elastic_with(store, what, units, Store::lease_horizon(), compute)
}

/// Runs one worker's share of an elastic sweep: claim open units,
/// compute them (`compute(i)` must persist every `units[i].outputs`
/// record into `store`), release, repeat until the whole grid's
/// records exist. Blocks while other live workers hold the remaining
/// units, re-stealing their claims if they go stale.
///
/// Claims are taken at most a batch at a time (the machine's
/// parallelism), so concurrent workers interleave batches instead of
/// one worker claiming the whole queue up front.
///
/// ## Deterministic failure injection
///
/// When `KHAOS_COORD_ABORT_ON` is set, the worker calls
/// [`std::process::abort`] immediately after claiming the first unit
/// whose label contains the value — skipping every `Drop`, so the
/// claim file dangles exactly as a SIGKILLed worker's would. The CI
/// work-stealing smoke uses this to kill a worker at a precise cell
/// instead of racing a timed `kill`.
///
/// # Panics
/// Panics when a computed unit's records are still absent on the
/// post-batch check — the store is misconfigured (e.g. read-only) and
/// looping would re-compute the unit forever.
pub fn run_elastic_with<F>(
    store: &Store,
    what: &str,
    units: &[WorkUnit],
    horizon: Duration,
    compute: F,
) -> ElasticSummary
where
    F: Fn(usize) + Sync,
{
    let batch_cap = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let abort_on = std::env::var("KHAOS_COORD_ABORT_ON")
        .ok()
        .filter(|s| !s.is_empty());
    let mut summary = ElasticSummary {
        units: units.len(),
        ..Default::default()
    };
    let mut first_scan = true;
    loop {
        summary.rounds += 1;
        let mut open = Vec::new();
        for (i, unit) in units.iter().enumerate() {
            if unit_done(store, unit) {
                if first_scan {
                    summary.already_done += 1;
                }
            } else {
                open.push(i);
            }
        }
        first_scan = false;
        if open.is_empty() {
            break;
        }
        let mut claimed: Vec<(usize, Lease)> = Vec::new();
        for &i in &open {
            if claimed.len() >= batch_cap {
                break;
            }
            let unit = &units[i];
            let key = ReportKey {
                pipeline: unit.lease.1,
                seed: SEED,
                subject: &unit.lease.0,
            };
            match store.try_lease_report(&key, horizon) {
                Ok(Some(lease)) => {
                    if lease.was_stolen() {
                        summary.stolen += 1;
                        eprintln!(
                            "# elastic {what}: stole stale lease for {} \
                             (holder presumed dead; redoing the unit)",
                            unit.label
                        );
                    }
                    if let Some(needle) = &abort_on {
                        if unit.label.contains(needle.as_str()) {
                            eprintln!(
                                "# elastic {what}: KHAOS_COORD_ABORT_ON={needle} matched \
                                 {} — aborting with the claim held",
                                unit.label
                            );
                            std::process::abort();
                        }
                    }
                    claimed.push((i, lease));
                }
                // Leased by a live peer: skip, it (or its stealer)
                // will produce the records.
                Ok(None) => {}
                Err(e) => eprintln!("# elastic {what}: cannot lease {}: {e}", unit.label),
            }
        }
        if claimed.is_empty() {
            // Every open unit is claimed elsewhere — wait for records
            // to land, or for a straggler's lease to cross the
            // horizon and become stealable next round.
            std::thread::sleep(POLL);
            continue;
        }
        par_fan_out(&claimed, |(i, _lease)| compute(*i));
        for (i, _) in &claimed {
            assert!(
                unit_done(store, &units[*i]),
                "elastic {what}: computed {} but its records are absent from {} — \
                 persistence is failing (read-only store?), refusing to loop forever",
                units[*i].label,
                store.root().display()
            );
        }
        summary.computed += claimed.len();
        // Dropping the batch's leases deletes the claim files — only
        // now, after the records they cover are durable.
        drop(claimed);
    }
    summary
}
