//! Shared experiment plumbing: build pipelines, measurement, statistics,
//! and the parallel fan-out helpers the experiment drivers use to spread
//! build-config × workload × tool grids across cores.
//!
//! Every module the drivers evaluate is built through a
//! [`khaos_pass::Pipeline`]: [`BuildConfig`] is a thin name → spec
//! table, and the historical helpers ([`build_baseline`],
//! [`khaos_apply`], [`obfuscate_ollvm`], …) are wrappers over
//! [`run_spec`]. Binaries built for diffing carry the pipeline's
//! fingerprint as build provenance (see [`build_binary`]), so the
//! process-wide `khaos-diff` embedding cache is safely shared across
//! drivers that rebuild the same (program, pipeline) pair.
//!
//! ## Persistent artifacts
//!
//! When the `KHAOS_STORE` environment variable names a directory, the
//! whole harness runs against that persistent artifact store
//! ([`artifact_store`]): the embedding cache behind every metric call
//! tiers memory → disk → compute (so fig6–fig11/table2 sweeps
//! warm-start across processes), [`run_spec`] persists each build's
//! [`khaos_pass::PipelineReport`] keyed by the pipeline's fingerprint,
//! and drivers can attach metric results to the same keys via
//! [`persist_metrics`]. Store writes are atomic renames, so concurrent
//! [`par_fan_out`] workers share one store safely.
//!
//! ## Sharding: static and elastic
//!
//! `KHAOS_SHARD=i/n` ([`active_shard`]) statically partitions every
//! grid-shaped driver's flattened work grid; `figN-merge` reassembles
//! the full grid from the shards' stores. `--elastic` goes further:
//! the grid becomes a leased work queue *in* the shared store
//! ([`crate::coordinator`]) — workers claim open cells with atomic
//! claim files, steal stale claims from dead peers after the lease
//! horizon, and converge on one complete grid with no up-front
//! partition. Both modes rely on the same invariant: every cell is a
//! deterministic function of `(program, config, seed)`, so shards,
//! stealers, and even double-computed cells merge bit-identically.

use khaos_binary::{lower_module, Binary};
use khaos_core::KhaosMode;
use khaos_ir::Module;
use khaos_ollvm::OllvmMode;
use khaos_opt::OptLevel;
pub use khaos_par::ShardSpec;
use khaos_pass::{PassCtx, Pipeline, PipelineReport, VerifyPolicy};
use khaos_store::{Store, StoredReport};
use khaos_vm::{run_with_config, RunConfig};
use std::sync::Arc;

/// The obfuscation seed used across all experiments (determinism).
pub const SEED: u64 = 0xC60_2023;

/// The spec atom of a Khaos mode (the obfuscation half of its build
/// pipeline).
pub fn khaos_atom(mode: KhaosMode) -> &'static str {
    match mode {
        KhaosMode::Fission => "fission",
        KhaosMode::Fusion => "fusion",
        KhaosMode::FuFiSep => "fufi_sep",
        KhaosMode::FuFiOri => "fufi_ori",
        KhaosMode::FuFiAll => "fufi_all",
    }
}

/// The spec atom of an O-LLVM mode.
pub fn ollvm_atom(mode: OllvmMode) -> String {
    match mode {
        OllvmMode::Sub(r) if r >= 1.0 => "sub".into(),
        OllvmMode::Bog(r) if r >= 1.0 => "bog".into(),
        OllvmMode::Fla(r) if r >= 1.0 => "fla".into(),
        OllvmMode::Sub(r) => format!("sub(ratio={r})"),
        OllvmMode::Bog(r) => format!("bog(ratio={r})"),
        OllvmMode::Fla(r) => format!("fla(ratio={r})"),
    }
}

/// One build configuration evaluated in the figures — a *name* for a
/// pipeline spec ([`BuildConfig::spec`]), nothing more.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BuildConfig {
    /// Un-obfuscated baseline at `O2 + LTO` (the paper's baseline).
    Baseline,
    /// An O-LLVM transform over the baseline.
    Ollvm(OllvmMode),
    /// A Khaos mode over the baseline.
    Khaos(KhaosMode),
}

impl BuildConfig {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            BuildConfig::Baseline => "Baseline".into(),
            BuildConfig::Ollvm(m) => m.name(),
            BuildConfig::Khaos(m) => m.name().into(),
        }
    }

    /// The pipeline spec applied **on top of the optimized baseline**:
    /// the obfuscation atom followed by the rest of the compiler
    /// pipeline (`O2+lto` again), or the empty (identity) pipeline for
    /// the baseline itself.
    pub fn spec(&self) -> String {
        match self {
            BuildConfig::Baseline => String::new(),
            BuildConfig::Ollvm(m) => format!("{} | O2+lto", ollvm_atom(*m)),
            BuildConfig::Khaos(m) => format!("{} | O2+lto", khaos_atom(*m)),
        }
    }

    /// The parsed pipeline for [`BuildConfig::spec`].
    pub fn pipeline(&self) -> Pipeline {
        let spec = self.spec();
        Pipeline::parse(&spec).unwrap_or_else(|e| panic!("config spec `{spec}`: {e}"))
    }

    /// The build-provenance fingerprint of this configuration
    /// ([`Pipeline::fingerprint`] of [`BuildConfig::spec`]). Distinct
    /// configurations — including the same transform at different
    /// knobs, e.g. `Fla(0.1)` vs `Fla(1.0)` — have distinct
    /// fingerprints.
    pub fn fingerprint(&self) -> u64 {
        self.pipeline().fingerprint()
    }

    /// The eight obfuscated configurations of Figure 8/11, in order.
    pub fn figure8_set() -> Vec<BuildConfig> {
        let mut v: Vec<BuildConfig> = OllvmMode::STANDARD
            .iter()
            .map(|m| BuildConfig::Ollvm(*m))
            .collect();
        v.extend(KhaosMode::ALL.iter().map(|m| BuildConfig::Khaos(*m)));
        v
    }
}

/// The artifact store configured by `KHAOS_STORE`, shared with the
/// process-wide `khaos-diff` embedding cache (whose disk tier it is).
/// `None` when no store is configured — every persistence helper in
/// this module is then a no-op.
pub fn artifact_store() -> Option<Arc<Store>> {
    // Routing through the cache (rather than `Store::from_env`
    // directly) keeps exactly one `Store` per process and ensures the
    // disk tier is attached before the first metric call.
    khaos_diff::EmbeddingCache::global().store()
}

/// Converts a pipeline report into its persistent form, stamped with
/// the subject it was measured on (a thin re-export of
/// [`StoredReport::from_pipeline`] so drivers only need `khaos-bench`).
pub fn stored_report(subject: &str, report: &PipelineReport) -> StoredReport {
    StoredReport::from_pipeline(subject, report)
}

/// Persists metric results for a build, keyed by the pipeline's
/// fingerprint, the experiment seed and a free-form subject (program
/// name, experiment cell, …). No-op without a configured store; store
/// errors are swallowed — persistence must never fail an experiment.
pub fn persist_metrics(subject: &str, pipeline_fingerprint: u64, metrics: &[(&str, f64)]) {
    if let Some(store) = artifact_store() {
        persist_metrics_to(&store, subject, pipeline_fingerprint, metrics);
    }
}

/// [`persist_metrics`] into an explicit store — the form the sharded
/// drivers use so tests can target scratch stores without touching the
/// process-wide `KHAOS_STORE` state. Store errors are swallowed here
/// too: persistence must never fail an experiment.
pub fn persist_metrics_to(
    store: &Store,
    subject: &str,
    pipeline_fingerprint: u64,
    metrics: &[(&str, f64)],
) {
    let report = StoredReport {
        spec: String::new(),
        pipeline: pipeline_fingerprint,
        seed: SEED,
        subject: subject.to_string(),
        total_micros: 0,
        passes: Vec::new(),
        metrics: metrics.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
    };
    let _ = store.put_report(&report);
}

/// The shard this process runs as: `KHAOS_SHARD=i/n` when set (the
/// experiment binaries' `--shard i/n` flag writes the same variable),
/// [`ShardSpec::FULL`] otherwise.
///
/// # Panics
/// Panics on a malformed `KHAOS_SHARD` value — a shard silently
/// degrading to the full grid would redo every cell on every machine of
/// a sharded sweep, so the harness fails loudly instead.
pub fn active_shard() -> ShardSpec {
    ShardSpec::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Runs a pipeline spec over a clone of `src` with a fresh context
/// seeded `seed`, verifying *and semantically auditing* after every
/// pass ([`VerifyPolicy::AuditAfterEach`]) — stricter than the legacy
/// entry points, which only verified structural well-formedness right
/// after the obfuscation transform: every pass must now also preserve
/// the module's observable-behavior summary (reachable external calls,
/// global read/write/escape sets, exported signatures), so a
/// structurally valid miscompile fails loudly *before* the `O2+lto`
/// re-optimization could reshape the evidence. Returns the built
/// module and the context (Table-2 statistics).
///
/// With an [`artifact_store`] configured, the run's
/// [`khaos_pass::PipelineReport`] is persisted keyed by
/// `(pipeline fingerprint, seed, program name)` — every build any
/// driver performs leaves a durable timing/IR-delta record.
///
/// # Panics
/// Panics when the spec does not parse or the pipeline produces invalid
/// IR — both are harness bugs, surfaced loudly.
pub fn run_spec(src: &Module, spec: &str, seed: u64) -> (Module, PassCtx) {
    let pipeline = Pipeline::parse(spec).unwrap_or_else(|e| panic!("spec `{spec}`: {e}"));
    let mut m = src.clone();
    let mut ctx = PassCtx::new(seed).with_verify(VerifyPolicy::AuditAfterEach);
    let report = pipeline
        .run(&mut m, &mut ctx)
        .unwrap_or_else(|e| panic!("pipeline `{spec}` on {}: {e}", src.name));
    if let Some(store) = artifact_store() {
        let _ = store.put_report(&stored_report(&src.name, &report));
    }
    (m, ctx)
}

/// Optimizes a freshly-generated module at the paper's baseline level
/// (`O2` with LTO).
pub fn build_baseline(src: &Module) -> Module {
    run_spec(src, "O2+lto", SEED).0
}

/// Builds at an explicit optimization level without LTO (Figure 9 axes).
pub fn build_at(src: &Module, level: OptLevel) -> Module {
    run_spec(src, level.name(), SEED).0
}

/// Applies a Khaos mode to an already-optimized module, followed by the
/// rest of the compiler pipeline (`O2 + LTO` again): Khaos schedules its
/// passes in the middle-end *before* the regular optimizations, so the
/// inliner runs over the restructured code — thinned `remFunc`s get
/// inlined into their callers and disappear (the paper's negative
/// overhead cases), while `sepFunc`s/`fusFunc`s are pinned `noinline`.
pub fn khaos_apply(baseline: &Module, mode: KhaosMode, seed: u64) -> (Module, PassCtx) {
    run_spec(baseline, &format!("{} | O2+lto", khaos_atom(mode)), seed)
}

/// Applies the N-way fusion extension (arity 2–4) at the same pipeline
/// position as [`khaos_apply`] (for the `ext-arity` sweep).
///
/// # Panics
/// Panics when the arity is outside `2..=4` or the transform produces
/// invalid IR (both are harness bugs, surfaced loudly).
pub fn khaos_apply_nway(baseline: &Module, arity: usize, seed: u64) -> (Module, PassCtx) {
    // `fusion_n`, not `fusion(arity=..)`: the sweep must hold the N-way
    // group-building driver fixed across arity 2..=4 (at arity 2 the
    // pairwise `fusion` atom is a different pairing algorithm).
    run_spec(baseline, &format!("fusion_n(arity={arity}) | O2+lto"), seed)
}

/// Applies an O-LLVM mode to an already-optimized module (same pipeline
/// position and post-pass optimization as Khaos).
pub fn obfuscate_ollvm(baseline: &Module, mode: OllvmMode, seed: u64) -> Module {
    run_spec(baseline, &format!("{} | O2+lto", ollvm_atom(mode)), seed).0
}

/// Builds the module for `config` from an optimized baseline.
pub fn build_config(baseline: &Module, config: BuildConfig) -> Module {
    run_spec(baseline, &config.spec(), SEED).0
}

/// Builds and lowers `config`, stamping the binary with the pipeline's
/// fingerprint as build provenance — the form the diffing drivers feed
/// to `khaos-diff`, whose embedding cache keys on the provenance-mixed
/// binary fingerprint.
pub fn build_binary(baseline: &Module, config: BuildConfig) -> Binary {
    lower_module(&build_config(baseline, config)).with_build_provenance(config.fingerprint())
}

/// Simulated runtime of a module in cycles.
///
/// # Panics
/// Panics when the program faults — obfuscated programs must run.
pub fn measure_cycles(m: &Module) -> u64 {
    let cfg = RunConfig {
        inputs: vec![3, 7, 11],
        ..RunConfig::default()
    };
    run_with_config(m, cfg)
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", m.name))
        .cycles
}

/// Order-preserving parallel fan-out over experiment items (programs,
/// build configs, tool grids). Each item's work runs on a worker from
/// the `khaos-par` pool; results come back in input order so the
/// experiment drivers print rows deterministically. `KHAOS_THREADS=1`
/// forces sequential execution.
pub fn par_fan_out<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    khaos_par::par_map_slice(items, f)
}

/// Builds and measures the `O2+LTO` baseline of every program in
/// parallel, returning `(optimized module, baseline cycles)` pairs in
/// input order. Experiment drivers that sweep many configurations over
/// the same programs hoist this out of their config loops.
pub fn prepare_baselines(programs: &[Module]) -> Vec<(Module, u64)> {
    par_fan_out(programs, |src| {
        let base = build_baseline(src);
        let cycles = measure_cycles(&base);
        (base, cycles)
    })
}

/// Percentage overhead of `obf` relative to `base`.
pub fn overhead_pct(base: u64, obf: u64) -> f64 {
    (obf as f64 / base as f64 - 1.0) * 100.0
}

/// Geometric mean of `(1 + overhead_i)`, expressed again as a percentage
/// overhead — the paper's GEOMEAN columns.
pub fn geomean_ratio(overheads_pct: &[f64]) -> f64 {
    if overheads_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads_pct
        .iter()
        .map(|o| ((o / 100.0) + 1.0).max(1e-6).ln())
        .sum();
    ((log_sum / overheads_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Plain geometric mean of positive values (similarity scores etc.).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_workloads::coreutils_program;

    #[test]
    fn geomean_ratio_matches_hand_calc() {
        // 10% and 21% -> sqrt(1.1*1.21) = 1.15369 -> 15.37%
        let g = geomean_ratio(&[10.0, 21.0]);
        assert!((g - 15.369).abs() < 0.01, "{g}");
        assert_eq!(geomean_ratio(&[]), 0.0);
    }

    #[test]
    fn negative_overheads_supported() {
        let g = geomean_ratio(&[-10.0, 10.0]);
        assert!(g < 0.5 && g > -1.5, "{g}");
    }

    #[test]
    fn overhead_pct_signs() {
        assert!((overhead_pct(100, 107) - 7.0).abs() < 1e-9);
        assert!((overhead_pct(100, 93) + 7.0).abs() < 1e-9);
    }

    #[test]
    fn build_config_names_and_specs() {
        assert_eq!(BuildConfig::Khaos(KhaosMode::FuFiOri).name(), "FuFi.ori");
        assert_eq!(BuildConfig::figure8_set().len(), 8);
        assert_eq!(
            BuildConfig::Khaos(KhaosMode::FuFiOri).spec(),
            "fufi_ori | O2+lto"
        );
        assert_eq!(
            BuildConfig::Ollvm(OllvmMode::Fla(0.1)).spec(),
            "fla(ratio=0.1) | O2+lto"
        );
        assert_eq!(BuildConfig::Baseline.spec(), "");
        // Specs in the table all parse.
        for cfg in BuildConfig::figure8_set() {
            cfg.pipeline();
        }
    }

    #[test]
    fn distinct_configs_distinct_fingerprints() {
        let mut seen = std::collections::HashMap::new();
        let mut all = BuildConfig::figure8_set();
        all.push(BuildConfig::Baseline);
        all.push(BuildConfig::Ollvm(OllvmMode::Fla(1.0)));
        for cfg in all {
            if let Some(other) = seen.insert(cfg.fingerprint(), cfg) {
                panic!("{:?} and {:?} share a fingerprint", cfg, other);
            }
        }
    }

    #[test]
    fn pipeline_measures_deterministically() {
        let src = coreutils_program("cat", 6);
        let base = build_baseline(&src);
        assert_eq!(measure_cycles(&base), measure_cycles(&base));
        let (obf, _) = khaos_apply(&base, KhaosMode::FuFiOri, SEED);
        let _ = measure_cycles(&obf); // must not fault
    }

    #[test]
    fn build_binary_stamps_provenance() {
        let src = coreutils_program("ls", 1);
        let base = build_baseline(&src);
        let cfg = BuildConfig::Khaos(KhaosMode::Fission);
        let bin = build_binary(&base, cfg);
        assert_eq!(bin.build_provenance, cfg.fingerprint());
        let other = build_binary(&base, BuildConfig::Ollvm(OllvmMode::Sub(1.0)));
        assert_ne!(bin.build_provenance, other.build_provenance);
    }
}
