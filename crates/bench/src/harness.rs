//! Shared experiment plumbing: build pipelines, measurement, statistics,
//! and the parallel fan-out helpers the experiment drivers use to spread
//! build-config × workload × tool grids across cores.

use khaos_core::{KhaosContext, KhaosMode};
use khaos_ir::Module;
use khaos_ollvm::OllvmMode;
use khaos_opt::{optimize, OptLevel, OptOptions};
use khaos_vm::{run_with_config, RunConfig};

/// The obfuscation seed used across all experiments (determinism).
pub const SEED: u64 = 0xC60_2023;

/// One build configuration evaluated in the figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BuildConfig {
    /// Un-obfuscated baseline at `O2 + LTO` (the paper's baseline).
    Baseline,
    /// An O-LLVM transform over the baseline.
    Ollvm(OllvmMode),
    /// A Khaos mode over the baseline.
    Khaos(KhaosMode),
}

impl BuildConfig {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            BuildConfig::Baseline => "Baseline".into(),
            BuildConfig::Ollvm(m) => m.name(),
            BuildConfig::Khaos(m) => m.name().into(),
        }
    }

    /// The eight obfuscated configurations of Figure 8/11, in order.
    pub fn figure8_set() -> Vec<BuildConfig> {
        let mut v: Vec<BuildConfig> = OllvmMode::STANDARD
            .iter()
            .map(|m| BuildConfig::Ollvm(*m))
            .collect();
        v.extend(KhaosMode::ALL.iter().map(|m| BuildConfig::Khaos(*m)));
        v
    }
}

/// Optimizes a freshly-generated module at the paper's baseline level
/// (`O2` with LTO).
pub fn build_baseline(src: &Module) -> Module {
    let mut m = src.clone();
    optimize(&mut m, &OptOptions::baseline());
    m
}

/// Builds at an explicit optimization level without LTO (Figure 9 axes).
pub fn build_at(src: &Module, level: OptLevel) -> Module {
    let mut m = src.clone();
    optimize(&mut m, &OptOptions::level(level));
    m
}

/// Applies a Khaos mode to an already-optimized module, followed by the
/// rest of the compiler pipeline (`O2 + LTO` again): Khaos schedules its
/// passes in the middle-end *before* the regular optimizations, so the
/// inliner runs over the restructured code — thinned `remFunc`s get
/// inlined into their callers and disappear (the paper's negative
/// overhead cases), while `sepFunc`s/`fusFunc`s are pinned `noinline`.
pub fn khaos_apply(baseline: &Module, mode: KhaosMode, seed: u64) -> (Module, KhaosContext) {
    let mut m = baseline.clone();
    let mut ctx = KhaosContext::new(seed);
    mode.apply(&mut m, &mut ctx)
        .expect("khaos obfuscation produced invalid IR");
    optimize(&mut m, &OptOptions::baseline());
    (m, ctx)
}

/// Applies the N-way fusion extension (arity 2–4) at the same pipeline
/// position as [`khaos_apply`] (for the `ext-arity` sweep).
///
/// # Panics
/// Panics when the arity is outside `2..=4` or the transform produces
/// invalid IR (both are harness bugs, surfaced loudly).
pub fn khaos_apply_nway(baseline: &Module, arity: usize, seed: u64) -> (Module, KhaosContext) {
    let mut m = baseline.clone();
    let mut ctx = KhaosContext::new(seed);
    khaos_core::fusion_n(&mut m, &mut ctx, arity).expect("n-way fusion produced invalid IR");
    optimize(&mut m, &OptOptions::baseline());
    (m, ctx)
}

/// Applies an O-LLVM mode to an already-optimized module (same pipeline
/// position and post-pass optimization as Khaos).
pub fn obfuscate_ollvm(baseline: &Module, mode: OllvmMode, seed: u64) -> Module {
    let mut m = baseline.clone();
    mode.apply(&mut m, seed);
    optimize(&mut m, &OptOptions::baseline());
    m
}

/// Builds the module for `config` from an optimized baseline.
pub fn build_config(baseline: &Module, config: BuildConfig) -> Module {
    match config {
        BuildConfig::Baseline => baseline.clone(),
        BuildConfig::Ollvm(m) => obfuscate_ollvm(baseline, m, SEED),
        BuildConfig::Khaos(m) => khaos_apply(baseline, m, SEED).0,
    }
}

/// Simulated runtime of a module in cycles.
///
/// # Panics
/// Panics when the program faults — obfuscated programs must run.
pub fn measure_cycles(m: &Module) -> u64 {
    let cfg = RunConfig {
        inputs: vec![3, 7, 11],
        ..RunConfig::default()
    };
    run_with_config(m, cfg)
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", m.name))
        .cycles
}

/// Order-preserving parallel fan-out over experiment items (programs,
/// build configs, tool grids). Each item's work runs on a worker from
/// the `khaos-par` pool; results come back in input order so the
/// experiment drivers print rows deterministically. `KHAOS_THREADS=1`
/// forces sequential execution.
pub fn par_fan_out<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    khaos_par::par_map_slice(items, f)
}

/// Builds and measures the `O2+LTO` baseline of every program in
/// parallel, returning `(optimized module, baseline cycles)` pairs in
/// input order. Experiment drivers that sweep many configurations over
/// the same programs hoist this out of their config loops.
pub fn prepare_baselines(programs: &[Module]) -> Vec<(Module, u64)> {
    par_fan_out(programs, |src| {
        let base = build_baseline(src);
        let cycles = measure_cycles(&base);
        (base, cycles)
    })
}

/// Percentage overhead of `obf` relative to `base`.
pub fn overhead_pct(base: u64, obf: u64) -> f64 {
    (obf as f64 / base as f64 - 1.0) * 100.0
}

/// Geometric mean of `(1 + overhead_i)`, expressed again as a percentage
/// overhead — the paper's GEOMEAN columns.
pub fn geomean_ratio(overheads_pct: &[f64]) -> f64 {
    if overheads_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads_pct
        .iter()
        .map(|o| ((o / 100.0) + 1.0).max(1e-6).ln())
        .sum();
    ((log_sum / overheads_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Plain geometric mean of positive values (similarity scores etc.).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_workloads::coreutils_program;

    #[test]
    fn geomean_ratio_matches_hand_calc() {
        // 10% and 21% -> sqrt(1.1*1.21) = 1.15369 -> 15.37%
        let g = geomean_ratio(&[10.0, 21.0]);
        assert!((g - 15.369).abs() < 0.01, "{g}");
        assert_eq!(geomean_ratio(&[]), 0.0);
    }

    #[test]
    fn negative_overheads_supported() {
        let g = geomean_ratio(&[-10.0, 10.0]);
        assert!(g < 0.5 && g > -1.5, "{g}");
    }

    #[test]
    fn overhead_pct_signs() {
        assert!((overhead_pct(100, 107) - 7.0).abs() < 1e-9);
        assert!((overhead_pct(100, 93) + 7.0).abs() < 1e-9);
    }

    #[test]
    fn build_config_names() {
        assert_eq!(BuildConfig::Khaos(KhaosMode::FuFiOri).name(), "FuFi.ori");
        assert_eq!(BuildConfig::figure8_set().len(), 8);
    }

    #[test]
    fn pipeline_measures_deterministically() {
        let src = coreutils_program("cat", 6);
        let base = build_baseline(&src);
        assert_eq!(measure_cycles(&base), measure_cycles(&base));
        let (obf, _) = khaos_apply(&base, KhaosMode::FuFiOri, SEED);
        let _ = measure_cycles(&obf); // must not fault
    }
}
