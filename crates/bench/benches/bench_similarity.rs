//! Criterion bench for the batched similarity engine: the seed
//! (per-pair cosine, matrix-per-query) `escape@k` path against the
//! batched path (cached normalized embeddings, one flat matrix, `O(T)`
//! rank queries) on a 200-function binary pair.
//!
//! Writes `BENCH_similarity.json` at the repository root with the
//! baseline-vs-batched timings so future PRs can track the perf
//! trajectory. The acceptance bar for this engine is a ≥10× speedup on
//! `escape@k`; the JSON records the measured factor per tool, plus a
//! `kernels` section (which SIMD dispatch won, per-kernel ns/dot and
//! speedup over the naive scalar loop, with a hard forced-scalar-vs-
//! dispatched ranked-bit-equivalence gate) and a `quantized` section
//! (int8 shortlist scan cost per candidate, bytes per function, and
//! the recall-1.0-after-exact-re-rank gate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use khaos_bench::{build_baseline, khaos_apply, SEED};
use khaos_binary::{lower_module, Binary};
use khaos_core::KhaosMode;
use khaos_diff::engine::{dot_scalar, stream_top_k, EmbedScorer, FunctionEmbeddings};
use khaos_diff::kernels::{self, KernelKind};
use khaos_diff::{
    escape_at_k, escape_profile_with, stream_top_k_quantized, Asm2Vec, BinDiff, DataFlowDiff,
    Differ, EmbeddingCache, QuantizedEmbeddings, Safe, VulSeeker, QUANT_SHORTLIST_FACTOR,
};
use khaos_pass::{PassCtx, Pipeline, VerifyPolicy};
use khaos_workloads::{generate, ProgramProfile};
use std::sync::Arc;

/// A 200-function baseline/obfuscated pair with every tenth function
/// annotated vulnerable (the Figure-10 shape at T-I scale). The
/// generator profile is oversized because `O2+LTO` inlines and strips a
/// large share of the generated workers; the assert pins the scale the
/// speedup claim is made at.
fn build_pair() -> (Binary, Binary) {
    let profile = ProgramProfile {
        name: "bench_sim".into(),
        functions: 460,
        constructs: 3,
        ..ProgramProfile::default()
    };
    let src = generate(&profile);
    let base = build_baseline(&src);
    let (obf, _) = khaos_apply(&base, KhaosMode::FuFiAll, SEED);
    let mut base_bin = lower_module(&base);
    assert!(
        base_bin.functions.len() >= 200,
        "bench pair must be >= 200 functions, got {}",
        base_bin.functions.len()
    );
    for f in base_bin.functions.iter_mut().step_by(10) {
        f.provenance.annotations.push("vulnerable".into());
    }
    (base_bin, lower_module(&obf))
}

// The measured baseline is `khaos_diff::reference` — the frozen seed
// implementation (full matrix rebuild per vulnerable query), shared
// with the equivalence suite so bench and tests pin the same
// semantics.
use khaos_diff::reference::reference_escape_at_k as seed_escape_at_k;

/// The frozen **seed data layout**: one heap `Vec<MOperand>` per
/// instruction, plus the seed fingerprint/embedding algorithms walking
/// it verbatim (per-n-gram `format!`, per-instruction pointer chase).
/// The operand-pool refactor removed this layout from the tree; the
/// bench keeps a faithful copy as the measured baseline for the
/// cold fingerprint+embed comparison recorded in
/// `BENCH_similarity.json`. Faithfulness is asserted, not assumed:
/// the nested fingerprint must equal `Binary::fingerprint()` and the
/// nested embeddings must equal the pooled tools' output exactly.
mod seed_layout {
    use khaos_binary::{Binary, MOperand, Opcode, SymRef};
    use khaos_diff::{add_token, opcode_class, operand_class, EMB_DIM};

    pub struct NestedInst {
        pub opcode: Opcode,
        pub operands: Vec<MOperand>,
    }

    pub struct NestedBlock {
        pub insts: Vec<NestedInst>,
        pub succs: Vec<u32>,
        pub calls: Vec<SymRef>,
    }

    pub struct NestedFunction {
        pub name: Option<String>,
        pub exported: bool,
        pub blocks: Vec<NestedBlock>,
    }

    pub struct NestedBinary {
        pub name: String,
        pub build_provenance: u64,
        pub stripped: bool,
        pub functions: Vec<NestedFunction>,
        pub relocations: Vec<khaos_binary::Reloc>,
        pub externals: Vec<String>,
    }

    /// Re-nests a pooled binary into the seed layout (one operand
    /// `Vec` per instruction).
    pub fn from_binary(b: &Binary) -> NestedBinary {
        NestedBinary {
            name: b.name.clone(),
            build_provenance: b.build_provenance,
            stripped: b.stripped,
            functions: b
                .functions
                .iter()
                .map(|f| NestedFunction {
                    name: f.name.clone(),
                    exported: f.exported,
                    blocks: f
                        .blocks
                        .iter()
                        .map(|blk| NestedBlock {
                            insts: blk
                                .insts
                                .iter()
                                .map(|i| NestedInst {
                                    opcode: i.opcode,
                                    operands: i.operands(&f.operand_pool).to_vec(),
                                })
                                .collect(),
                            succs: blk.succs.clone(),
                            calls: blk.calls.clone(),
                        })
                        .collect(),
                })
                .collect(),
            relocations: b.relocations.clone(),
            externals: b.externals.iter().map(|e| e.name.clone()).collect(),
        }
    }

    // --- the seed `Binary::fingerprint`, verbatim over the nested layout ---

    struct Mix {
        lanes: [u64; 4],
        next: usize,
    }

    impl Mix {
        fn new() -> Self {
            Mix {
                lanes: [
                    0x243f6a8885a308d3,
                    0x13198a2e03707344,
                    0xa4093822299f31d0,
                    0x082efa98ec4e6c89,
                ],
                next: 0,
            }
        }

        #[inline]
        fn u64(&mut self, v: u64) {
            let lane = &mut self.lanes[self.next & 3];
            let mut x = *lane ^ v;
            x = x.wrapping_mul(0x9e3779b97f4a7c15);
            x ^= x >> 29;
            *lane = x;
            self.next = self.next.wrapping_add(1);
        }

        fn bytes(&mut self, bs: &[u8]) {
            let mut chunks = bs.chunks_exact(8);
            for c in &mut chunks {
                self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
            }
            let mut tail = [0u8; 8];
            tail[..chunks.remainder().len()].copy_from_slice(chunks.remainder());
            self.u64(u64::from_le_bytes(tail));
            self.u64(bs.len() as u64);
        }

        fn finish(&self) -> u64 {
            let mut x = 0u64;
            for (k, lane) in self.lanes.iter().enumerate() {
                x ^= lane.rotate_left(17 * k as u32);
                x = x.wrapping_mul(0xff51afd7ed558ccd);
                x ^= x >> 33;
            }
            x
        }
    }

    /// Seed fingerprint over the nested layout; must equal
    /// `Binary::fingerprint()` of the pooled original.
    pub fn fingerprint(b: &NestedBinary) -> u64 {
        let mut h = Mix::new();
        h.bytes(b.name.as_bytes());
        h.u64(b.build_provenance);
        h.u64(b.stripped as u64);
        h.u64(b.functions.len() as u64);
        for f in &b.functions {
            match &f.name {
                Some(n) => {
                    h.u64(1);
                    h.bytes(n.as_bytes());
                }
                None => h.u64(0),
            }
            h.u64(f.exported as u64);
            h.u64(f.blocks.len() as u64);
            for blk in &f.blocks {
                h.u64(
                    (blk.insts.len() as u64)
                        | ((blk.succs.len() as u64) << 21)
                        | ((blk.calls.len() as u64) << 42),
                );
                let mut acc: u64 = 0xcbf29ce484222325;
                for i in &blk.insts {
                    let mut w = i.opcode as u64;
                    for (k, o) in i.operands.iter().enumerate() {
                        let enc = match o {
                            MOperand::Reg(r) => (1 << 56) | *r as u64,
                            MOperand::FReg(r) => (2 << 56) | *r as u64,
                            MOperand::Imm(v) => (3 << 56) ^ *v as u64,
                            MOperand::Mem { base, offset } => {
                                (4 << 56) | ((*base as u64) << 32) ^ (*offset as u32 as u64)
                            }
                            MOperand::Sym(SymRef::Func(i)) => (5 << 56) | *i as u64,
                            MOperand::Sym(SymRef::Global(i)) => (6 << 56) | *i as u64,
                            MOperand::Sym(SymRef::Ext(i)) => (7 << 56) | *i as u64,
                            MOperand::Label(l) => (8 << 56) | *l as u64,
                        };
                        w ^= enc.rotate_left(7 + 13 * k as u32);
                    }
                    acc = (acc ^ w).wrapping_mul(0x100000001b3);
                }
                h.u64(acc);
                for pair in blk.succs.chunks(2) {
                    let hi = pair.get(1).map(|s| (*s as u64) << 32).unwrap_or(1 << 63);
                    h.u64(pair[0] as u64 | hi);
                }
                for c in &blk.calls {
                    h.u64(match c {
                        SymRef::Func(i) => (1 << 32) | *i as u64,
                        SymRef::Global(i) => (2 << 32) | *i as u64,
                        SymRef::Ext(i) => (3 << 32) | *i as u64,
                    });
                }
            }
        }
        h.u64(b.relocations.len() as u64);
        for r in &b.relocations {
            h.u64(((r.func as u64) << 32) ^ r.addend as u64);
        }
        h.u64(b.externals.len() as u64);
        for e in &b.externals {
            h.bytes(e.as_bytes());
        }
        h.finish()
    }

    // --- the seed Asm2Vec / SAFE embeds, verbatim over the nested layout ---

    fn inst_class_token(i: &NestedInst) -> String {
        let mut s = String::from(opcode_class(i.opcode));
        for (k, o) in i.operands.iter().enumerate() {
            s.push(if k == 0 { ' ' } else { ',' });
            s.push_str(operand_class(o));
        }
        s
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Seed Asm2Vec embedding: per-walk token sequences, n-grams
    /// materialized with `format!` (the allocation cost the pooled path
    /// removed).
    pub fn asm2vec_embed(b: &NestedBinary, walks: u32, walk_len: u32, seed: u64) -> Vec<Vec<f64>> {
        b.functions
            .iter()
            .map(|f| {
                let mut v = vec![0.0; EMB_DIM];
                if f.blocks.is_empty() {
                    return v;
                }
                let per_block: Vec<Vec<String>> = f
                    .blocks
                    .iter()
                    .map(|blk| blk.insts.iter().map(inst_class_token).collect())
                    .collect();
                let mut rng = seed ^ 0x9e3779b97f4a7c15;
                for w in 0..walks {
                    let mut cur = if f.blocks.len() > 1 {
                        (w as usize) % f.blocks.len()
                    } else {
                        0
                    };
                    let mut sequence: Vec<&str> = Vec::new();
                    for _ in 0..walk_len {
                        for t in &per_block[cur] {
                            sequence.push(t);
                        }
                        let succs = &f.blocks[cur].succs;
                        if succs.is_empty() {
                            break;
                        }
                        cur = succs[(xorshift(&mut rng) % succs.len() as u64) as usize] as usize;
                        if cur >= f.blocks.len() {
                            break;
                        }
                    }
                    for i in 0..sequence.len() {
                        add_token(&mut v, sequence[i], 1.0);
                        if i + 1 < sequence.len() {
                            let bg = format!("{}|{}", sequence[i], sequence[i + 1]);
                            add_token(&mut v, &bg, 0.5);
                        }
                        if i + 2 < sequence.len() {
                            let tg =
                                format!("{}|{}|{}", sequence[i], sequence[i + 1], sequence[i + 2]);
                            add_token(&mut v, &tg, 0.25);
                        }
                    }
                }
                let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if n > 0.0 {
                    for x in &mut v {
                        *x /= n;
                    }
                }
                v
            })
            .collect()
    }

    /// Seed SAFE embedding: positional tokens materialized with
    /// `format!` per token occurrence.
    pub fn safe_embed(b: &NestedBinary, position_period: usize) -> Vec<Vec<f64>> {
        use std::collections::HashMap;
        let mut df: HashMap<String, f64> = HashMap::new();
        let streams: Vec<Vec<String>> = b
            .functions
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .flat_map(|blk| blk.insts.iter().map(inst_class_token))
                    .collect()
            })
            .collect();
        for s in &streams {
            for t in s {
                *df.entry(t.clone()).or_insert(0.0) += 1.0;
            }
        }
        let total: f64 = df.values().sum::<f64>().max(1.0);
        streams
            .iter()
            .map(|s| {
                let mut v = vec![0.0; EMB_DIM];
                let n = s.len().max(1) as f64;
                for (i, t) in s.iter().enumerate() {
                    let attention = (total / (1.0 + df[t])).ln().max(0.1);
                    let phase = (i / position_period) % 4;
                    let positional = format!("{t}#p{phase}");
                    add_token(&mut v, t, attention / n);
                    add_token(&mut v, &positional, 0.5 * attention / n);
                }
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for x in &mut v {
                        *x /= norm;
                    }
                }
                v
            })
            .collect()
    }
}

/// Mean-of-`iters` wall clock via the shared [`khaos_obs::timer`]
/// stopwatch — the one timing idiom the pass reports and the serve
/// dispatcher use too.
fn time_ns<F: FnMut() -> f64>(iters: u32, mut f: F) -> (f64, f64) {
    let mut value = 0.0;
    let (ns, ()) = khaos_obs::timer::time_ns(|| {
        for _ in 0..iters {
            value = criterion::black_box(f());
        }
    });
    (ns as f64 / iters as f64, value)
}

/// Best-of-`rounds` timing: the minimum single-round wall clock plus
/// the last value. A speedup ratio of two best-of measurements is
/// robust to scheduler noise in a way a ratio of averages is not —
/// each side sheds its own worst rounds.
fn time_ns_best<F: FnMut() -> f64>(rounds: u32, mut f: F) -> (f64, f64) {
    khaos_obs::timer::best_of_ns(rounds, || criterion::black_box(f()))
}

fn json_escape_entry(tool: &str, seed_ns: f64, cold_ns: f64, warm_ns: f64, equal: bool) -> String {
    format!(
        "    {{\"tool\": \"{tool}\", \"seed_escape_ns\": {seed_ns:.0}, \
         \"batched_cold_ns\": {cold_ns:.0}, \"batched_warm_ns\": {warm_ns:.0}, \
         \"speedup\": {:.2}, \"values_equal\": {equal}}}",
        seed_ns / cold_ns
    )
}

fn bench_similarity(c: &mut Criterion) {
    let (base_bin, obf_bin) = build_pair();
    let tools: Vec<Box<dyn Differ>> = vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
        Box::new(DataFlowDiff::default()),
    ];

    // Criterion-style per-tool comparison of one full matrix build.
    {
        let mut group = c.benchmark_group("similarity_matrix_200fn");
        group.sample_size(5);
        for tool in &tools {
            group.bench_with_input(BenchmarkId::new("per_pair", tool.name()), tool, |b, t| {
                b.iter(|| t.similarity_matrix(&base_bin, &obf_bin))
            });
            group.bench_with_input(
                BenchmarkId::new("batched_cold", tool.name()),
                tool,
                |b, t| {
                    b.iter(|| {
                        // Fresh cache: embeds both sides, then one flat build.
                        let cache = EmbeddingCache::new(4);
                        t.batched_similarity(&base_bin, &obf_bin, &cache)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("batched_warm", tool.name()),
                tool,
                |b, t| {
                    b.iter(|| t.batched_similarity(&base_bin, &obf_bin, EmbeddingCache::global()))
                },
            );
        }
        group.finish();
    }

    // The acceptance measurement: the Figure-10 escape protocol —
    // escape@{1,10,50} over ~20 vulnerable functions — seed path vs
    // batched path, per tool. The seed fig10 driver called
    // `escape_at_k` once per threshold, each call rebuilding the
    // matrix per vulnerable query; the engine's `escape_profile`
    // answers all three thresholds from one rank pass. The headline
    // "cold" number uses a **fresh cache per call** — every iteration
    // pays embedding + fingerprinting + ranking in full (on an unseen
    // pair the rank-only path streams per-query rows and never builds
    // the Q×T matrix), so the speedup reflects the engine itself, not
    // process-global cache hits. The warm number (shared global cache,
    // the wrapper default, i.e. what fig10 actually pays beyond its
    // first call) is reported alongside.
    const KS: [usize; 3] = [1, 10, 50];
    let mut entries = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    println!(
        "\n# escape@{{1,10,50}}, 200-function pair, {} tools",
        tools.len()
    );
    println!(
        "{:<14} {:>16} {:>15} {:>15} {:>9} {:>7}",
        "tool", "seed", "batched/cold", "batched/warm", "speedup", "equal"
    );
    for tool in &tools {
        let (cold_ns, cold_v) = time_ns(3, || {
            let cache = EmbeddingCache::new(4);
            escape_profile_with(tool.as_ref(), &base_bin, &obf_bin, &KS, &cache)
                .iter()
                .sum()
        });
        let (warm_ns, warm_v) = time_ns(5, || {
            KS.iter()
                .map(|&k| escape_at_k(tool.as_ref(), &base_bin, &obf_bin, k))
                .sum()
        });
        let (seed_ns, seed_v) = time_ns(1, || {
            KS.iter()
                .map(|&k| seed_escape_at_k(tool.as_ref(), &base_bin, &obf_bin, k))
                .sum()
        });
        let equal = (seed_v - cold_v).abs() < 1e-12 && (seed_v - warm_v).abs() < 1e-12;
        let speedup = seed_ns / cold_ns;
        worst_speedup = worst_speedup.min(speedup);
        println!(
            "{:<14} {:>13.2} ms {:>12.2} ms {:>12.2} ms {:>8.1}x {:>7}",
            tool.name(),
            seed_ns / 1e6,
            cold_ns / 1e6,
            warm_ns / 1e6,
            speedup,
            equal
        );
        assert!(
            equal,
            "{}: batched escape@{{1,10,50}} diverged from seed path",
            tool.name()
        );
        entries.push(json_escape_entry(
            tool.name(),
            seed_ns,
            cold_ns,
            warm_ns,
            equal,
        ));
    }
    println!("# worst cold speedup: {worst_speedup:.1}x (acceptance bar: >= 10x)");

    // -----------------------------------------------------------------
    // Layout comparison: cold fingerprint+embed over the frozen seed
    // (nested operand `Vec`s, `format!` n-grams) vs the flat operand
    // pool + streamed token hashing, on the same pair. Faithfulness of
    // the nested baseline is asserted before timing: same digests, same
    // embeddings, bit for bit.
    // -----------------------------------------------------------------
    let nested_base = seed_layout::from_binary(&base_bin);
    let nested_obf = seed_layout::from_binary(&obf_bin);
    let a2v = Asm2Vec::default();
    let safe = Safe::default();
    let digests_equal = seed_layout::fingerprint(&nested_base) == base_bin.fingerprint()
        && seed_layout::fingerprint(&nested_obf) == obf_bin.fingerprint();
    assert!(
        digests_equal,
        "nested baseline diverged from Binary::fingerprint"
    );
    let embeddings_equal =
        seed_layout::asm2vec_embed(&nested_base, a2v.walks, a2v.walk_len, a2v.seed)
            == a2v.embed(&base_bin)
            && seed_layout::safe_embed(&nested_obf, safe.position_period) == safe.embed(&obf_bin);
    assert!(embeddings_equal, "nested baseline embeddings diverged");

    let (layout_seed_ns, _) = time_ns(5, || {
        let mut acc = 0.0;
        for nb in [&nested_base, &nested_obf] {
            acc += (seed_layout::fingerprint(nb) & 0xff) as f64;
            acc += seed_layout::asm2vec_embed(nb, a2v.walks, a2v.walk_len, a2v.seed)[0][0];
            acc += seed_layout::safe_embed(nb, safe.position_period)[0][0];
        }
        acc
    });
    let (layout_pooled_ns, _) = time_ns(5, || {
        let mut acc = 0.0;
        for b in [&base_bin, &obf_bin] {
            acc += (b.fingerprint() & 0xff) as f64;
            acc += a2v.embed(b)[0][0];
            acc += safe.embed(b)[0][0];
        }
        acc
    });
    let layout_speedup = layout_seed_ns / layout_pooled_ns;
    println!(
        "# layout: cold fingerprint+embed {:.2} ms (seed nested) -> {:.2} ms (operand pool), {:.2}x (bar: >= 2x)",
        layout_seed_ns / 1e6,
        layout_pooled_ns / 1e6,
        layout_speedup
    );
    assert!(
        layout_speedup >= 2.0,
        "operand-pool layout regression: cold fingerprint+embed only {layout_speedup:.2}x \
         over the seed nested layout (bar: >= 2x)"
    );

    // Rank-only streaming path: escape@{1,10,50} with embeddings warm
    // but no matrix — the memory-flat path for 1000+-function binaries.
    // One untimed call warms the embedding cache so the measurement is
    // rank work only, as labeled.
    let stream_cache = EmbeddingCache::new(8);
    let _ = khaos_diff::escape_profile_streaming(&a2v, &base_bin, &obf_bin, &KS, &stream_cache);
    let (streaming_ns, _) = time_ns(5, || {
        khaos_diff::escape_profile_streaming(&a2v, &base_bin, &obf_bin, &KS, &stream_cache)
            .iter()
            .sum()
    });
    let stream_matrices = stream_cache.stats().matrix_entries;
    assert_eq!(
        stream_matrices, 0,
        "streaming escape must not build a matrix"
    );
    println!(
        "# streaming: rank-only escape@{{1,10,50}} {:.3} ms, matrices built: {stream_matrices}",
        streaming_ns / 1e6
    );

    // -----------------------------------------------------------------
    // Parallel streaming rank path: the same rank-only escape with
    // EVERY query function vulnerable (the widest row fan-out the pair
    // offers), multi-threaded vs KHAOS_THREADS=1. The ranked output is
    // hard-asserted bit-identical between the two — indices and score
    // bits — at a forced thread count of 7, so the equivalence claim is
    // exercised even on single-core machines; the ≥2× wall-clock bar is
    // enforced wherever the hardware can physically parallelize.
    // -----------------------------------------------------------------
    let mut all_vuln = base_bin.clone();
    for f in all_vuln.functions.iter_mut() {
        f.provenance.annotations.push("vulnerable".into());
    }
    let par_cache = EmbeddingCache::new(8);
    let _ = khaos_diff::escape_profile_streaming(&a2v, &all_vuln, &obf_bin, &KS, &par_cache);
    let queries: Vec<usize> = (0..all_vuln.functions.len()).collect();

    // An operator-provided KHAOS_THREADS cap is restored after every
    // forced setting below — the bench must not erase an explicit
    // constraint for the rest of the process.
    let prior_threads = std::env::var("KHAOS_THREADS").ok();
    let restore_threads = || match &prior_threads {
        Some(v) => std::env::set_var("KHAOS_THREADS", v),
        None => std::env::remove_var("KHAOS_THREADS"),
    };

    // Bit-equivalence first (KHAOS_THREADS=1 vs a forced 7 workers).
    let ranked_at = |threads: &str| {
        std::env::set_var("KHAOS_THREADS", threads);
        let scorer = a2v.row_scorer(&all_vuln, &obf_bin, &par_cache);
        let ranked = khaos_diff::par_stream_top_k_rows(scorer.as_ref(), &queries, 50);
        let escape =
            khaos_diff::escape_profile_streaming(&a2v, &all_vuln, &obf_bin, &KS, &par_cache);
        restore_threads();
        (ranked, escape)
    };
    let (seq_ranked, seq_escape) = ranked_at("1");
    let (par_ranked, par_escape) = ranked_at("7");
    let mut ranked_bits_equal = seq_ranked.len() == par_ranked.len();
    for (ra, rb) in seq_ranked.iter().zip(&par_ranked) {
        ranked_bits_equal &= ra.len() == rb.len()
            && ra
                .iter()
                .zip(rb)
                .all(|(&(ja, sa), &(jb, sb))| ja == jb && sa.to_bits() == sb.to_bits());
    }
    ranked_bits_equal &= seq_escape
        .iter()
        .zip(&par_escape)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        ranked_bits_equal,
        "parallel streaming rank output diverged from KHAOS_THREADS=1 — \
         ranked indices/score bits must be thread-count-independent"
    );

    // Then the wall-clock comparison: forced single thread vs the
    // worker count the process would otherwise use (the operator's
    // KHAOS_THREADS cap when set, machine parallelism otherwise).
    std::env::set_var("KHAOS_THREADS", "1");
    let (par_seq_ns, seq_v) = time_ns(5, || {
        khaos_diff::escape_profile_streaming(&a2v, &all_vuln, &obf_bin, &KS, &par_cache)
            .iter()
            .sum()
    });
    restore_threads();
    let threads = khaos_par::max_threads();
    let (par_mt_ns, par_v) = time_ns(5, || {
        khaos_diff::escape_profile_streaming(&a2v, &all_vuln, &obf_bin, &KS, &par_cache)
            .iter()
            .sum()
    });
    assert_eq!(
        seq_v.to_bits(),
        par_v.to_bits(),
        "timed escape values must agree between thread counts"
    );
    let par_speedup = par_seq_ns / par_mt_ns;
    println!(
        "# parallel streaming: {} rows, escape@{{1,10,50}} {:.3} ms (1 thread) -> {:.3} ms \
         ({threads} threads), {par_speedup:.2}x (bar: >= 2x on multi-core), bit-equal: {ranked_bits_equal}",
        queries.len(),
        par_seq_ns / 1e6,
        par_mt_ns / 1e6,
    );
    // The ≥2× bar binds only where the hardware has real headroom: a
    // one-core container cannot honestly speed up wall-clock, and a
    // loaded 4-vCPU CI runner measures too noisily over 5 iterations to
    // gate on — the bit-equivalence assert above is the correctness
    // gate everywhere; the wall-clock bar is a perf-regression tripwire
    // for hosts with ≥8 workers.
    if threads >= 8 {
        assert!(
            par_speedup >= 2.0,
            "parallel streaming regression: only {par_speedup:.2}x over KHAOS_THREADS=1 \
             with {threads} workers (bar: >= 2x)"
        );
    } else {
        println!(
            "# parallel streaming: {threads} worker(s) — wall-clock bar not binding \
             (needs >= 8 workers); ranked bit-equivalence is the gate here"
        );
    }

    // -----------------------------------------------------------------
    // Runtime-dispatched dot kernels: per-kernel ns/dot on real
    // embedding rows vs the naive scalar loop, plus a hard bitwise
    // equivalence gate — the dispatched ranked output (forced scalar vs
    // whatever dispatch picked) must match bit for bit, mirroring the
    // KHAOS_THREADS gate above.
    // -----------------------------------------------------------------
    let qe = Arc::new(FunctionEmbeddings::from_rows(a2v.embed(&base_bin)));
    let te = Arc::new(FunctionEmbeddings::from_rows(a2v.embed(&obf_bin)));
    let n_dots = (qe.len() * te.len()) as f64;
    let scan_f64 = |dot: &dyn Fn(&[f64], &[f64]) -> f64| {
        let mut acc = 0.0;
        for i in 0..qe.len() {
            let q = qe.row(i);
            for j in 0..te.len() {
                acc += dot(q, te.row(j));
            }
        }
        acc
    };
    let (naive_total_ns, _naive_v) = time_ns(3, || scan_f64(&dot_scalar));
    let naive_dot_ns = naive_total_ns / n_dots;
    // The bitwise reference is the *blocked* scalar kernel — the naive
    // sequential sum above rounds differently and is only the speedup
    // baseline; every dispatched kernel replicates the blocked
    // reduction exactly.
    let blocked_ref = scan_f64(&|a, b| {
        kernels::table_for(KernelKind::Scalar)
            .expect("scalar table")
            .dot(a, b)
    });
    let active = kernels::active();
    let available = kernels::available();
    let mut kernel_entries = Vec::new();
    let mut best_speedup = 0.0f64;
    println!(
        "# kernels: dispatch picked {} of [{}], naive dot_scalar {naive_dot_ns:.1} ns/dot (dim {})",
        active.name(),
        available
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", "),
        qe.dim()
    );
    for kind in &available {
        let table = kernels::table_for(*kind).expect("available kernel has a table");
        let (total_ns, v) = time_ns(3, || scan_f64(&|a, b| table.dot(a, b)));
        assert_eq!(
            v.to_bits(),
            blocked_ref.to_bits(),
            "{}: every dispatched kernel must reproduce the blocked scalar \
             reduction bit for bit; the timed totals diverged",
            kind.name()
        );
        let ns_per_dot = total_ns / n_dots;
        let speedup = naive_dot_ns / ns_per_dot;
        if *kind != KernelKind::Scalar {
            best_speedup = best_speedup.max(speedup);
        }
        println!(
            "#   {:<7} {ns_per_dot:>7.1} ns/dot  {speedup:>5.2}x vs dot_scalar",
            kind.name()
        );
        kernel_entries.push(format!(
            "      {{\"kind\": \"{}\", \"ns_per_dot\": {ns_per_dot:.1}, \
             \"speedup_vs_dot_scalar\": {speedup:.2}}}",
            kind.name()
        ));
    }
    if available.contains(&KernelKind::Avx2) {
        assert!(
            best_speedup >= 1.5,
            "SIMD kernel regression: best dispatched f64 dot only {best_speedup:.2}x \
             over dot_scalar on an AVX2-capable host (bar: >= 1.5x)"
        );
    }

    // Forced-scalar vs dispatched ranked output, bit for bit.
    let kernel_ranked_at = |kind: Option<KernelKind>| {
        kernels::force_kernel(kind);
        let scorer = a2v.row_scorer(&all_vuln, &obf_bin, &par_cache);
        let ranked = khaos_diff::par_stream_top_k_rows(scorer.as_ref(), &queries, 50);
        let escape =
            khaos_diff::escape_profile_streaming(&a2v, &all_vuln, &obf_bin, &KS, &par_cache);
        kernels::force_kernel(None);
        (ranked, escape)
    };
    let (scalar_ranked, scalar_escape) = kernel_ranked_at(Some(KernelKind::Scalar));
    let (auto_ranked, auto_escape) = kernel_ranked_at(None);
    let mut kernel_bits_equal = scalar_ranked.len() == auto_ranked.len();
    for (ra, rb) in scalar_ranked.iter().zip(&auto_ranked) {
        kernel_bits_equal &= ra.len() == rb.len()
            && ra
                .iter()
                .zip(rb)
                .all(|(&(ja, sa), &(jb, sb))| ja == jb && sa.to_bits() == sb.to_bits());
    }
    kernel_bits_equal &= scalar_escape
        .iter()
        .zip(&auto_escape)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        kernel_bits_equal,
        "dispatched kernel ranked output diverged from forced-scalar — \
         ranked indices/score bits must be dispatch-independent"
    );
    println!(
        "# kernels: forced-scalar vs dispatched ({}) ranked output bit-equal: {kernel_bits_equal}",
        active.name()
    );

    // -----------------------------------------------------------------
    // Quantized shortlist tier: int8 candidate scan vs the exact f64
    // scan, per candidate, plus the recall gate — shortlist + exact
    // re-rank must reproduce the exact top-k bit for bit at the fig10
    // thresholds.
    // -----------------------------------------------------------------
    let qq = QuantizedEmbeddings::from_embeddings(&qe);
    let tq = QuantizedEmbeddings::from_embeddings(&te);
    let (approx_total_ns, _) = time_ns(3, || {
        let mut acc = 0.0;
        for i in 0..qq.len() {
            qq.approx_scan(i, &tq, |_, s| acc += s);
        }
        acc
    });
    let (disp_total_ns, _) = time_ns(3, || scan_f64(&khaos_diff::dot));
    let approx_ns = approx_total_ns / n_dots;
    let disp_ns = disp_total_ns / n_dots;
    let quant_speedup_scalar = naive_dot_ns / approx_ns;
    let quant_speedup_disp = disp_ns / approx_ns;
    println!(
        "# quantized: approx scan {approx_ns:.1} ns/candidate vs f64 scalar {naive_dot_ns:.1} \
         ({quant_speedup_scalar:.2}x, bar: >= 4x with SIMD) / dispatched {disp_ns:.1} \
         ({quant_speedup_disp:.2}x); {} bytes/function vs {} f64",
        qq.bytes_per_function(),
        qe.dim() * 8
    );
    if available.contains(&KernelKind::Avx2) {
        assert!(
            quant_speedup_scalar >= 4.0,
            "quantized scan regression: int8 candidate scan only {quant_speedup_scalar:.2}x \
             over the scalar f64 scan on a SIMD host (bar: >= 4x)"
        );
    }
    // Recall + bit-identity of the re-ranked shortlist at the fig10
    // thresholds, over every query row.
    let exact_scorer = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te), true);
    let mut recalls = Vec::new();
    let mut rerank_bits_equal = true;
    for &k in &KS {
        let mut hit = 0usize;
        let mut want = 0usize;
        for qi in 0..qe.len() {
            let exact = stream_top_k(&exact_scorer, qi, k);
            let approx = stream_top_k_quantized(
                &qq,
                &tq,
                &exact_scorer,
                qi,
                k,
                QUANT_SHORTLIST_FACTOR,
                true,
            );
            rerank_bits_equal &= approx.len() == exact.len()
                && approx
                    .iter()
                    .zip(&exact)
                    .all(|(&(ja, sa), &(jb, sb))| ja == jb && sa.to_bits() == sb.to_bits());
            want += exact.len();
            let exact_set: std::collections::HashSet<usize> =
                exact.iter().map(|&(j, _)| j).collect();
            hit += approx.iter().filter(|(j, _)| exact_set.contains(j)).count();
        }
        recalls.push(hit as f64 / want.max(1) as f64);
    }
    assert!(
        rerank_bits_equal && recalls.iter().all(|&r| r == 1.0),
        "quantized shortlist (factor {QUANT_SHORTLIST_FACTOR}) failed the recall gate: \
         recall@{{1,10,50}} = {recalls:?}, rerank bit-equal: {rerank_bits_equal}"
    );
    println!(
        "# quantized: shortlist factor {QUANT_SHORTLIST_FACTOR}, recall@{{1,10,50}} = \
         [{:.2}, {:.2}, {:.2}], re-ranked output bit-equal: {rerank_bits_equal}",
        recalls[0], recalls[1], recalls[2]
    );

    // -----------------------------------------------------------------
    // Corpus-scale IVF index tier: a 10k-function corpus, queried
    // through the coarse quantizer + certified int8 shortlist + exact
    // re-rank, against the brute-force exact scan. Three gates:
    // recall@{1,10,50} must be exactly 1.0 at the default nprobe,
    // the fig10-pair index must reproduce the exact ranking bit for
    // bit, and escape@k answered through the index must equal the
    // streaming escape protocol. The ≥5× per-query speedup bar binds
    // on SIMD hosts (the int8 scan is where the arithmetic savings
    // come from; a scalar host only saves the margin window).
    // -----------------------------------------------------------------
    use khaos_index::{IndexParams, IvfIndex, RowMeta};

    const CORPUS_ROWS: usize = 10_000;
    const CORPUS_DIM: usize = 64;
    let corpus_rows: Vec<Vec<f64>> = (0..CORPUS_ROWS)
        .map(|i| {
            let cluster = i % 96;
            (0..CORPUS_DIM)
                .map(|d| {
                    let base = (((cluster * 131 + d * 17) % 255) as f64 / 127.5) - 1.0;
                    let h = (i as u64 ^ 0xC60_2023)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left((d % 61) as u32);
                    base + ((h as f64 / u64::MAX as f64) - 0.5) * 0.5
                })
                .collect()
        })
        .collect();
    let corpus_meta: Vec<RowMeta> = (0..CORPUS_ROWS)
        .map(|i| RowMeta {
            binary: (i / 64) as u64,
            function: (i % 64) as u32,
            name: String::new(),
        })
        .collect();
    let corpus = Arc::new(FunctionEmbeddings::from_rows(corpus_rows));
    let big_idx = IvfIndex::build(
        "bench",
        0,
        Arc::clone(&corpus),
        corpus_meta,
        &IndexParams::default(),
    );
    assert!(
        big_idx.default_nprobe() < big_idx.nlist(),
        "the 10k corpus must exercise a partial probe (nprobe {} of nlist {})",
        big_idx.default_nprobe(),
        big_idx.nlist()
    );

    // Queries: perturbed corpus rows — near the data manifold, never
    // exact duplicates.
    let index_queries: Vec<Vec<f64>> = (0..64usize)
        .map(|qi| {
            let row = big_idx.exact_rows().row((qi * 157) % CORPUS_ROWS);
            row.iter()
                .enumerate()
                .map(|(d, &v)| {
                    let h = (qi as u64)
                        .wrapping_mul(0x2545_F491_4F6C_DD1D)
                        .rotate_left((d % 59) as u32);
                    v + ((h as f64 / u64::MAX as f64) - 0.5) * 0.02
                })
                .collect()
        })
        .collect();
    let query_emb = FunctionEmbeddings::from_rows(index_queries.clone());
    let query_rows: Vec<usize> = (0..query_emb.len()).collect();

    // The recall gate: exactly 1.0 at every fig10 threshold, default
    // nprobe.
    let mut index_recalls = Vec::new();
    for &k in &KS {
        let r = big_idx.recall_at(&query_emb, &query_rows, k, 0);
        assert_eq!(
            r,
            1.0,
            "index recall@{k} = {r} at default nprobe {} (nlist {}) on the {CORPUS_ROWS}-row corpus",
            big_idx.default_nprobe(),
            big_idx.nlist()
        );
        index_recalls.push(r);
    }

    // Per-query wall clock: brute-force exact scan vs the index at its
    // default nprobe, same queries, same k, best-of-rounds on both
    // sides so a noisy scheduler round cannot sink the ratio.
    const INDEX_K: usize = 50;
    let (brute_total_ns, brute_v) = time_ns_best(4, || {
        let mut acc = 0.0;
        for q in &index_queries {
            acc += big_idx.brute_top_k(q, INDEX_K)[0].1;
        }
        acc
    });
    let (index_total_ns, index_v) = time_ns_best(4, || {
        let mut acc = 0.0;
        for q in &index_queries {
            acc += big_idx.query(q, INDEX_K)[0].1;
        }
        acc
    });
    assert_eq!(
        brute_v.to_bits(),
        index_v.to_bits(),
        "index top-1 scores diverged from brute force on the timed queries"
    );
    let brute_query_ns = brute_total_ns / index_queries.len() as f64;
    let index_query_ns = index_total_ns / index_queries.len() as f64;
    let index_speedup = brute_query_ns / index_query_ns;
    println!(
        "# index: {CORPUS_ROWS} rows dim {CORPUS_DIM}, nlist {} nprobe {}, top-{INDEX_K} \
         {:.0} ns/query brute -> {:.0} ns/query indexed, {index_speedup:.2}x \
         (bar: >= 5x on SIMD hosts), recall@{{1,10,50}} = [{:.2}, {:.2}, {:.2}]",
        big_idx.nlist(),
        big_idx.default_nprobe(),
        brute_query_ns,
        index_query_ns,
        index_recalls[0],
        index_recalls[1],
        index_recalls[2]
    );
    if available.contains(&KernelKind::Avx2) {
        assert!(
            index_speedup >= 5.0,
            "index tier regression: only {index_speedup:.2}x over the brute-force scan \
             at {CORPUS_ROWS} rows on a SIMD host (bar: >= 5x)"
        );
    }

    // Bit-identity on the fig10 pair: an index over the obfuscated
    // binary's embeddings must reproduce the exact ranking bit for bit
    // (the pair corpus is small enough that the default nprobe covers
    // every cell — the certified-shortlist contract then guarantees
    // equality, not approximation).
    let pair_meta: Vec<RowMeta> = (0..te.len())
        .map(|j| RowMeta {
            binary: obf_bin.fingerprint(),
            function: j as u32,
            name: obf_bin.functions[j].name.clone().unwrap_or_default(),
        })
        .collect();
    let pair_idx = IvfIndex::build(
        a2v.name(),
        a2v.config_fingerprint(),
        Arc::clone(&te),
        pair_meta,
        &IndexParams::default(),
    );
    let mut pair_bits_equal = true;
    for qi in 0..qe.len() {
        for &k in &KS {
            let exact = pair_idx.brute_top_k(qe.row(qi), k);
            let indexed = pair_idx.query(qe.row(qi), k);
            pair_bits_equal &= indexed.len() == exact.len()
                && indexed
                    .iter()
                    .zip(&exact)
                    .all(|(&(ja, sa), &(jb, sb))| ja == jb && sa.to_bits() == sb.to_bits());
        }
    }
    assert!(
        pair_bits_equal,
        "fig10-pair index ranking diverged from the brute-force scan"
    );

    // escape@k as a client of the index: identical escape fractions to
    // the streaming protocol, bit for bit.
    let vuln_rows: Vec<usize> = base_bin
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
        .map(|(i, _)| i)
        .collect();
    let index_escape = pair_idx.escape_profile(&qe, &vuln_rows, &KS, 0, &|qi, meta| {
        khaos_diff::origins_match(
            &base_bin.functions[qi].provenance,
            &obf_bin.functions[meta.function as usize].provenance,
        )
    });
    let stream_escape =
        khaos_diff::escape_profile_streaming(&a2v, &base_bin, &obf_bin, &KS, &stream_cache);
    let escape_via_index_equal = index_escape
        .iter()
        .zip(&stream_escape)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        escape_via_index_equal,
        "escape@k through the index ({index_escape:?}) diverged from the streaming \
         protocol ({stream_escape:?})"
    );
    println!(
        "# index: fig10 pair ranking bit-equal: {pair_bits_equal}, escape@{{1,10,50}} via \
         index == streaming: {escape_via_index_equal} ({index_escape:?})"
    );
    let index_json = format!(
        "  \"index\": {{\"what\": \"IVF coarse quantizer + certified int8 shortlist + exact \
         re-rank vs brute-force scan, {CORPUS_ROWS}-row corpus, top-{INDEX_K} per query\", \
         \"rows\": {CORPUS_ROWS}, \"dim\": {CORPUS_DIM}, \"nlist\": {}, \"nprobe\": {}, \
         \"brute_ns_per_query\": {brute_query_ns:.0}, \"index_ns_per_query\": {index_query_ns:.0}, \
         \"speedup\": {index_speedup:.2}, \
         \"recall_at_1\": {:.2}, \"recall_at_10\": {:.2}, \"recall_at_50\": {:.2}, \
         \"fig10_pair_bits_equal\": {pair_bits_equal}, \
         \"escape_via_index_equals_streaming\": {escape_via_index_equal}}}",
        big_idx.nlist(),
        big_idx.default_nprobe(),
        index_recalls[0],
        index_recalls[1],
        index_recalls[2],
    );

    // -----------------------------------------------------------------
    // Semantic-audit overhead on the fig10 build path: the same
    // baseline + FuFiAll builds that produced the bench pair, run with
    // structural verification only (`AfterEach`, the pre-auditor
    // policy) vs verification + behavior audit (`AuditAfterEach`, what
    // `run_spec` now uses). The acceptance bar is < 15% wall-clock
    // added by the audit.
    // -----------------------------------------------------------------
    let audit_src = generate(&ProgramProfile {
        name: "bench_sim".into(),
        functions: 460,
        constructs: 3,
        ..ProgramProfile::default()
    });
    let build_with = |policy: VerifyPolicy| {
        let mut m = audit_src.clone();
        let mut ctx = PassCtx::new(SEED).with_verify(policy);
        Pipeline::parse("O2+lto")
            .expect("baseline spec")
            .run(&mut m, &mut ctx)
            .expect("baseline build");
        let mut ctx = PassCtx::new(SEED).with_verify(policy);
        Pipeline::parse("fufi_all | O2+lto")
            .expect("obfuscation spec")
            .run(&mut m, &mut ctx)
            .expect("obfuscated build");
        m.inst_count() as f64
    };
    // Interleaved best-of-rounds: on a shared host the scheduler
    // drifts on a timescale comparable to one build, so timing every
    // verify-only round before every audit round turns that drift
    // into a systematic bias on the overhead ratio. Alternating the
    // two policies makes both sides sample the same conditions; each
    // side then keeps its own best round, like the index ratio above.
    let mut verify_ns = f64::INFINITY;
    let mut audit_ns = f64::INFINITY;
    let mut verify_v = 0.0;
    let mut audit_v = 0.0;
    for _ in 0..4 {
        let (v_ns, v) = time_ns_best(1, || build_with(VerifyPolicy::AfterEach));
        let (a_ns, a) = time_ns_best(1, || build_with(VerifyPolicy::AuditAfterEach));
        verify_ns = verify_ns.min(v_ns);
        audit_ns = audit_ns.min(a_ns);
        verify_v = v;
        audit_v = a;
    }
    assert_eq!(
        verify_v.to_bits(),
        audit_v.to_bits(),
        "the audit policy must not change what gets built"
    );
    let audit_overhead_pct = (audit_ns / verify_ns - 1.0) * 100.0;
    println!(
        "# audit: fig10 build path {:.2} ms (verify only) -> {:.2} ms (verify + audit), \
         {audit_overhead_pct:.1}% overhead (bar: < 15%)",
        verify_ns / 1e6,
        audit_ns / 1e6
    );
    assert!(
        audit_overhead_pct < 15.0,
        "semantic audit overhead regression: AuditAfterEach adds {audit_overhead_pct:.1}% \
         to the fig10 build path (bar: < 15%)"
    );
    let audit_json = format!(
        "  \"audit\": {{\"what\": \"fig10 build path (O2+lto baseline + fufi_all | O2+lto), \
         VerifyPolicy::AfterEach vs VerifyPolicy::AuditAfterEach\", \
         \"verify_only_ns\": {verify_ns:.0}, \"verify_plus_audit_ns\": {audit_ns:.0}, \
         \"overhead_pct\": {audit_overhead_pct:.1}, \"bar_pct\": 15.0}}"
    );

    // -----------------------------------------------------------------
    // Observability overhead on the fig10 build+query path: one round
    // = the verify-only fig10 build plus the 64 indexed top-50 corpus
    // queries, the same workloads timed above. The traced side is
    // measured end-to-end with a real span tree exported to a scratch
    // sink. The compiled-in-but-disabled cost is far too small to
    // resolve end-to-end, so it is bounded from above instead: ns per
    // disabled span site (microbenched) x span sites per round, as a
    // fraction of the untraced round. Bars: < 2% disabled, < 10%
    // tracing — and tracing must not change a single ranked bit.
    // -----------------------------------------------------------------
    let was_tracing = khaos_obs::trace::enabled();
    khaos_obs::trace::set_enabled(false);

    // Per-site cost of a disabled span: create + drop, nothing else.
    const SPAN_SPINS: u32 = 200_000;
    let (disabled_spin_ns, _) = time_ns_best(4, || {
        for _ in 0..SPAN_SPINS {
            criterion::black_box(khaos_obs::span("probe"));
        }
        0.0
    });
    let disabled_span_ns = disabled_spin_ns / SPAN_SPINS as f64;

    // One fig10 round. Non-move closure over shared refs: Copy, so
    // the same closure times both the untraced and the traced side.
    let fig10_round = || {
        let mut acc = build_with(VerifyPolicy::AfterEach);
        for q in &index_queries {
            acc += big_idx.query(q, INDEX_K)[0].1;
        }
        acc
    };
    let trace_path =
        std::env::temp_dir().join(format!("khaos-bench-obs-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&trace_path);
    khaos_obs::trace::install(&trace_path).expect("install bench trace sink");
    // One warm traced round pins the (deterministic) span count.
    let _ = criterion::black_box(fig10_round());
    let spans_per_round = std::fs::read_to_string(&trace_path)
        .expect("bench trace file")
        .lines()
        .count() as f64;
    assert!(
        spans_per_round > 0.0,
        "the fig10 build+query round must produce spans when tracing is on"
    );

    // Interleaved best-of-rounds, same reasoning as the audit ratio
    // above: alternating the tracer state per round makes both sides
    // sample the same scheduler conditions, so drift on the timescale
    // of one round cannot masquerade as tracing overhead.
    let mut untraced_ns = f64::INFINITY;
    let mut traced_ns = f64::INFINITY;
    let mut untraced_v = 0.0;
    let mut traced_v = 0.0;
    for _ in 0..4 {
        khaos_obs::trace::set_enabled(false);
        let (u_ns, u) = time_ns_best(1, fig10_round);
        khaos_obs::trace::set_enabled(true);
        let (t_ns, t) = time_ns_best(1, fig10_round);
        untraced_ns = untraced_ns.min(u_ns);
        traced_ns = traced_ns.min(t_ns);
        untraced_v = u;
        traced_v = t;
    }
    khaos_obs::trace::set_enabled(false);

    let obs_bits_equal = untraced_v.to_bits() == traced_v.to_bits();
    assert!(
        obs_bits_equal,
        "tracing changed the fig10 build+query result bits: {untraced_v} vs {traced_v}"
    );
    let disabled_overhead_pct = disabled_span_ns * spans_per_round / untraced_ns * 100.0;
    let traced_overhead_pct = (traced_ns / untraced_ns - 1.0) * 100.0;
    println!(
        "# obs: fig10 build+query round {:.2} ms untraced -> {:.2} ms traced \
         ({} spans/round), {traced_overhead_pct:.1}% traced overhead (bar: < 10%); \
         disabled span {disabled_span_ns:.1} ns -> {disabled_overhead_pct:.4}% bound \
         (bar: < 2%)",
        untraced_ns / 1e6,
        traced_ns / 1e6,
        spans_per_round as u64
    );
    assert!(
        disabled_overhead_pct < 2.0,
        "disabled-tracer overhead regression: {disabled_span_ns:.1} ns/span x \
         {spans_per_round} spans = {disabled_overhead_pct:.4}% of the fig10 round \
         (bar: < 2%)"
    );
    assert!(
        traced_overhead_pct < 10.0,
        "tracing overhead regression: exporting the span tree adds \
         {traced_overhead_pct:.1}% to the fig10 build+query round (bar: < 10%)"
    );
    let obs_json = format!(
        "  \"obs\": {{\"what\": \"tracing overhead on the fig10 build+query path (verify-only \
         build + {} indexed top-{INDEX_K} queries); disabled cost is a per-span microbench \
         upper bound\", \"untraced_round_ns\": {untraced_ns:.0}, \
         \"traced_round_ns\": {traced_ns:.0}, \"spans_per_round\": {spans_per_round:.0}, \
         \"disabled_span_ns\": {disabled_span_ns:.2}, \
         \"disabled_overhead_pct\": {disabled_overhead_pct:.4}, \"disabled_bar_pct\": 2.0, \
         \"traced_overhead_pct\": {traced_overhead_pct:.1}, \"traced_bar_pct\": 10.0, \
         \"bits_equal_traced_vs_untraced\": {obs_bits_equal}}}",
        index_queries.len(),
    );
    // Restore the ambient tracer state. The scratch sink stays
    // installed (the original env sink cannot be re-pointed), but the
    // bench opens no further spans; the scratch file is removed.
    khaos_obs::trace::set_enabled(was_tracing);
    let _ = std::fs::remove_file(&trace_path);

    let kernels_json = format!(
        "  \"kernels\": {{\"what\": \"runtime-dispatched f64 dot on real {}-dim embedding rows, \
         {} dots per pass\", \"active\": \"{}\", \"available\": [{}], \
         \"dot_scalar_ns\": {naive_dot_ns:.1}, \"per_kernel\": [\n{}\n    ], \
         \"ranked_bits_equal_scalar_vs_dispatched\": {kernel_bits_equal}}}",
        qe.dim(),
        n_dots as u64,
        active.name(),
        available
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", "),
        kernel_entries.join(",\n"),
    );
    let quant_json = format!(
        "  \"quantized\": {{\"what\": \"int8 shortlist scan vs exact f64 scan, per candidate, \
         + recall of shortlist factor {QUANT_SHORTLIST_FACTOR} after exact re-rank\", \
         \"approx_scan_ns_per_candidate\": {approx_ns:.1}, \
         \"f64_scalar_scan_ns_per_candidate\": {naive_dot_ns:.1}, \
         \"f64_dispatched_scan_ns_per_candidate\": {disp_ns:.1}, \
         \"speedup_vs_scalar_scan\": {quant_speedup_scalar:.2}, \
         \"speedup_vs_dispatched_scan\": {quant_speedup_disp:.2}, \
         \"bytes_per_function\": {}, \"f64_bytes_per_function\": {}, \
         \"recall_at_1\": {:.2}, \"recall_at_10\": {:.2}, \"recall_at_50\": {:.2}, \
         \"rerank_bits_equal\": {rerank_bits_equal}}}",
        qq.bytes_per_function(),
        qe.dim() * 8,
        recalls[0],
        recalls[1],
        recalls[2],
    );

    let json = format!(
        "{{\n  \"bench\": \"escape_profile_fig10\",\n  \"functions\": {},\n  \"vulnerable\": {},\n  \
         \"ks\": [1, 10, 50],\n  \"worst_speedup\": {:.2},\n  \"tools\": [\n{}\n  ],\n  \
         \"layout\": {{\"what\": \"cold fingerprint+embed (Asm2Vec+SAFE), both binaries\", \
         \"seed_nested_ns\": {:.0}, \"pooled_flat_ns\": {:.0}, \"speedup\": {:.2}, \
         \"digests_equal\": {digests_equal}, \"embeddings_equal\": {embeddings_equal}}},\n  \
         \"streaming\": {{\"what\": \"rank-only escape@{{1,10,50}}, warm embeddings, no matrix\", \
         \"escape_ns\": {:.0}, \"matrix_entries_after\": {stream_matrices}}},\n  \
         \"parallel_streaming\": {{\"what\": \"row-parallel rank-only escape@{{1,10,50}}, all {} \
         functions vulnerable, multi-thread vs KHAOS_THREADS=1\", \"threads\": {threads}, \
         \"single_thread_ns\": {:.0}, \"multi_thread_ns\": {:.0}, \"speedup\": {par_speedup:.2}, \
         \"ranked_bits_equal\": {ranked_bits_equal}}},\n{kernels_json},\n{quant_json},\n{index_json},\n{audit_json},\n{obs_json}\n}}\n",
        base_bin.functions.len(),
        base_bin
            .functions
            .iter()
            .filter(|f| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
            .count(),
        worst_speedup,
        entries.join(",\n"),
        layout_seed_ns,
        layout_pooled_ns,
        layout_speedup,
        streaming_ns,
        queries.len(),
        par_seq_ns,
        par_mt_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_similarity.json");
    std::fs::write(path, json).expect("write BENCH_similarity.json");
    println!("# wrote {path}");
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
