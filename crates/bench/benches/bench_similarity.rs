//! Criterion bench for the batched similarity engine: the seed
//! (per-pair cosine, matrix-per-query) `escape@k` path against the
//! batched path (cached normalized embeddings, one flat matrix, `O(T)`
//! rank queries) on a 200-function binary pair.
//!
//! Writes `BENCH_similarity.json` at the repository root with the
//! baseline-vs-batched timings so future PRs can track the perf
//! trajectory. The acceptance bar for this engine is a ≥10× speedup on
//! `escape@k`; the JSON records the measured factor per tool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use khaos_bench::{build_baseline, khaos_apply, SEED};
use khaos_binary::{lower_module, Binary};
use khaos_core::KhaosMode;
use khaos_diff::{
    escape_at_k, escape_profile_with, Asm2Vec, BinDiff, DataFlowDiff, Differ, EmbeddingCache, Safe,
    VulSeeker,
};
use khaos_workloads::{generate, ProgramProfile};
use std::time::Instant;

/// A 200-function baseline/obfuscated pair with every tenth function
/// annotated vulnerable (the Figure-10 shape at T-I scale). The
/// generator profile is oversized because `O2+LTO` inlines and strips a
/// large share of the generated workers; the assert pins the scale the
/// speedup claim is made at.
fn build_pair() -> (Binary, Binary) {
    let profile = ProgramProfile {
        name: "bench_sim".into(),
        functions: 460,
        constructs: 3,
        ..ProgramProfile::default()
    };
    let src = generate(&profile);
    let base = build_baseline(&src);
    let (obf, _) = khaos_apply(&base, KhaosMode::FuFiAll, SEED);
    let mut base_bin = lower_module(&base);
    assert!(
        base_bin.functions.len() >= 200,
        "bench pair must be >= 200 functions, got {}",
        base_bin.functions.len()
    );
    for f in base_bin.functions.iter_mut().step_by(10) {
        f.provenance.annotations.push("vulnerable".into());
    }
    (base_bin, lower_module(&obf))
}

// The measured baseline is `khaos_diff::reference` — the frozen seed
// implementation (full matrix rebuild per vulnerable query), shared
// with the equivalence suite so bench and tests pin the same
// semantics.
use khaos_diff::reference::reference_escape_at_k as seed_escape_at_k;

fn time_ns<F: FnMut() -> f64>(iters: u32, mut f: F) -> (f64, f64) {
    let mut value = 0.0;
    let start = Instant::now();
    for _ in 0..iters {
        value = criterion::black_box(f());
    }
    (start.elapsed().as_nanos() as f64 / iters as f64, value)
}

fn json_escape_entry(tool: &str, seed_ns: f64, cold_ns: f64, warm_ns: f64, equal: bool) -> String {
    format!(
        "    {{\"tool\": \"{tool}\", \"seed_escape_ns\": {seed_ns:.0}, \
         \"batched_cold_ns\": {cold_ns:.0}, \"batched_warm_ns\": {warm_ns:.0}, \
         \"speedup\": {:.2}, \"values_equal\": {equal}}}",
        seed_ns / cold_ns
    )
}

fn bench_similarity(c: &mut Criterion) {
    let (base_bin, obf_bin) = build_pair();
    let tools: Vec<Box<dyn Differ>> = vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
        Box::new(DataFlowDiff::default()),
    ];

    // Criterion-style per-tool comparison of one full matrix build.
    {
        let mut group = c.benchmark_group("similarity_matrix_200fn");
        group.sample_size(5);
        for tool in &tools {
            group.bench_with_input(BenchmarkId::new("per_pair", tool.name()), tool, |b, t| {
                b.iter(|| t.similarity_matrix(&base_bin, &obf_bin))
            });
            group.bench_with_input(
                BenchmarkId::new("batched_cold", tool.name()),
                tool,
                |b, t| {
                    b.iter(|| {
                        // Fresh cache: embeds both sides, then one flat build.
                        let cache = EmbeddingCache::new(4);
                        t.batched_similarity(&base_bin, &obf_bin, &cache)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("batched_warm", tool.name()),
                tool,
                |b, t| {
                    b.iter(|| t.batched_similarity(&base_bin, &obf_bin, EmbeddingCache::global()))
                },
            );
        }
        group.finish();
    }

    // The acceptance measurement: the Figure-10 escape protocol —
    // escape@{1,10,50} over ~20 vulnerable functions — seed path vs
    // batched path, per tool. The seed fig10 driver called
    // `escape_at_k` once per threshold, each call rebuilding the
    // matrix per vulnerable query; the engine's `escape_profile`
    // answers all three thresholds from one matrix. The headline
    // "cold" number uses a **fresh cache per call** — every iteration
    // pays embedding + fingerprinting + matrix + ranking in full, so
    // the speedup reflects the engine itself, not process-global cache
    // hits. The warm number (shared global cache, the wrapper default,
    // i.e. what fig10 actually pays beyond its first call) is
    // reported alongside.
    const KS: [usize; 3] = [1, 10, 50];
    let mut entries = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    println!(
        "\n# escape@{{1,10,50}}, 200-function pair, {} tools",
        tools.len()
    );
    println!(
        "{:<14} {:>16} {:>15} {:>15} {:>9} {:>7}",
        "tool", "seed", "batched/cold", "batched/warm", "speedup", "equal"
    );
    for tool in &tools {
        let (cold_ns, cold_v) = time_ns(3, || {
            let cache = EmbeddingCache::new(4);
            escape_profile_with(tool.as_ref(), &base_bin, &obf_bin, &KS, &cache)
                .iter()
                .sum()
        });
        let (warm_ns, warm_v) = time_ns(5, || {
            KS.iter()
                .map(|&k| escape_at_k(tool.as_ref(), &base_bin, &obf_bin, k))
                .sum()
        });
        let (seed_ns, seed_v) = time_ns(1, || {
            KS.iter()
                .map(|&k| seed_escape_at_k(tool.as_ref(), &base_bin, &obf_bin, k))
                .sum()
        });
        let equal = (seed_v - cold_v).abs() < 1e-12 && (seed_v - warm_v).abs() < 1e-12;
        let speedup = seed_ns / cold_ns;
        worst_speedup = worst_speedup.min(speedup);
        println!(
            "{:<14} {:>13.2} ms {:>12.2} ms {:>12.2} ms {:>8.1}x {:>7}",
            tool.name(),
            seed_ns / 1e6,
            cold_ns / 1e6,
            warm_ns / 1e6,
            speedup,
            equal
        );
        assert!(
            equal,
            "{}: batched escape@{{1,10,50}} diverged from seed path",
            tool.name()
        );
        entries.push(json_escape_entry(
            tool.name(),
            seed_ns,
            cold_ns,
            warm_ns,
            equal,
        ));
    }
    println!("# worst cold speedup: {worst_speedup:.1}x (acceptance bar: >= 10x)");

    let json = format!(
        "{{\n  \"bench\": \"escape_profile_fig10\",\n  \"functions\": {},\n  \"vulnerable\": {},\n  \
         \"ks\": [1, 10, 50],\n  \"worst_speedup\": {:.2},\n  \"tools\": [\n{}\n  ]\n}}\n",
        base_bin.functions.len(),
        base_bin
            .functions
            .iter()
            .filter(|f| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
            .count(),
        worst_speedup,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_similarity.json");
    std::fs::write(path, json).expect("write BENCH_similarity.json");
    println!("# wrote {path}");
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
