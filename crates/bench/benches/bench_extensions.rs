//! Criterion bench for the extension features: the N-way fusion arity
//! sweep (runtime cost of higher-arity fused binaries) and the
//! data-flow differ's matching throughput against the paper tools.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use khaos_bench::{build_baseline, khaos_apply_nway, measure_cycles, SEED};
use khaos_binary::lower_module;
use khaos_diff::{Asm2Vec, DataFlowDiff, Differ, Safe};
use khaos_workloads::spec2006;

/// Simulated runtime of arity-2/3/4 fused builds (extension E10: the
/// overhead side of the paper's §3.3 arity trade-off).
fn bench_nway_overhead(c: &mut Criterion) {
    let src = spec2006().swap_remove(3); // 429.mcf
    let base = build_baseline(&src);
    let mut group = c.benchmark_group("nway_overhead_mcf");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("run", "baseline"), &base, |b, m| {
        b.iter(|| measure_cycles(m))
    });
    for arity in 2..=4usize {
        let (obf, _) = khaos_apply_nway(&base, arity, SEED);
        group.bench_with_input(
            BenchmarkId::new("run", format!("arity{arity}")),
            &obf,
            |b, m| b.iter(|| measure_cycles(m)),
        );
    }
    group.finish();
}

/// Transform cost of the N-way driver itself (obfuscation is a build
/// step; it must stay cheap).
fn bench_nway_transform(c: &mut Criterion) {
    let src = spec2006().swap_remove(3);
    let base = build_baseline(&src);
    let mut group = c.benchmark_group("nway_transform_mcf");
    group.sample_size(10);
    for arity in 2..=4usize {
        group.bench_with_input(
            BenchmarkId::new("fuse", format!("arity{arity}")),
            &base,
            |b, m| b.iter(|| khaos_apply_nway(m, arity, SEED)),
        );
    }
    group.finish();
}

/// Matching throughput of the data-flow differ vs the learned-model
/// stand-ins (extension E11; §5 notes smaller granularity costs more —
/// the data-flow representation must stay tractable to be useful).
fn bench_dataflow_matching(c: &mut Criterion) {
    let src = spec2006().swap_remove(3);
    let base = build_baseline(&src);
    let bin = lower_module(&base);
    let mut group = c.benchmark_group("differ_matching_mcf");
    group.sample_size(10);
    let tools: Vec<(&str, Box<dyn Differ>)> = vec![
        ("asm2vec", Box::new(Asm2Vec::default())),
        ("safe", Box::new(Safe::default())),
        ("dataflow_intra", Box::new(DataFlowDiff::intra_only())),
        ("dataflow", Box::new(DataFlowDiff::default())),
    ];
    for (name, tool) in tools {
        group.bench_with_input(BenchmarkId::new("match", name), &bin, |b, bin| {
            b.iter(|| tool.similarity_matrix(bin, bin))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_nway_overhead,
    bench_nway_transform,
    bench_dataflow_matching
);
criterion_main!(benches);
