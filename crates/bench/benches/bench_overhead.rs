//! Criterion bench behind Figures 6/7: obfuscation + simulated execution
//! cost of each build configuration on a representative program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use khaos_bench::{build_baseline, build_config, measure_cycles, BuildConfig, SEED};
use khaos_core::KhaosMode;
use khaos_ollvm::OllvmMode;
use khaos_workloads::spec2006;

fn bench_overhead(c: &mut Criterion) {
    let src = spec2006().swap_remove(3); // 429.mcf
    let base = build_baseline(&src);
    let mut group = c.benchmark_group("overhead_mcf");
    group.sample_size(10);

    group.bench_function("baseline_run", |b| b.iter(|| measure_cycles(&base)));
    for cfg in [
        BuildConfig::Ollvm(OllvmMode::Sub(1.0)),
        BuildConfig::Ollvm(OllvmMode::Fla(0.1)),
        BuildConfig::Khaos(KhaosMode::Fission),
        BuildConfig::Khaos(KhaosMode::Fusion),
        BuildConfig::Khaos(KhaosMode::FuFiAll),
    ] {
        let obf = build_config(&base, cfg);
        group.bench_with_input(BenchmarkId::new("run", cfg.name()), &obf, |b, m| {
            b.iter(|| measure_cycles(m))
        });
        group.bench_with_input(BenchmarkId::new("obfuscate", cfg.name()), &base, |b, m| {
            b.iter(|| build_config(m, cfg))
        });
    }
    group.finish();
    let _ = SEED;
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
