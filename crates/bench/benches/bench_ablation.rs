//! Criterion bench for the design-choice ablations DESIGN.md calls out:
//! data-flow reduction, region selection policy, parameter compression
//! and deep fusion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use khaos_bench::{build_baseline, khaos_atom, measure_cycles, SEED};
use khaos_core::{KhaosMode, KhaosOptions};
use khaos_pass::{PassCtx, Pipeline};
use khaos_workloads::spec2006;

fn apply_with(base: &khaos_ir::Module, mode: KhaosMode, options: KhaosOptions) -> khaos_ir::Module {
    let mut m = base.clone();
    let mut ctx = PassCtx::with_options(SEED, options);
    Pipeline::parse(khaos_atom(mode))
        .expect("ablation spec")
        .run(&mut m, &mut ctx)
        .expect("ablation build");
    m
}

fn bench_ablation(c: &mut Criterion) {
    let src = spec2006().swap_remove(3);
    let base = build_baseline(&src);
    let mut group = c.benchmark_group("ablation_mcf");
    group.sample_size(10);

    let variants: Vec<(&str, KhaosMode, KhaosOptions)> = vec![
        (
            "fission_default",
            KhaosMode::Fission,
            KhaosOptions::default(),
        ),
        (
            "fission_no_dfr",
            KhaosMode::Fission,
            KhaosOptions {
                data_flow_reduction: false,
                ..Default::default()
            },
        ),
        (
            "fission_naive_regions",
            KhaosMode::Fission,
            KhaosOptions {
                fission_min_value: 0.0,
                fission_max_regions: 64,
                ..Default::default()
            },
        ),
        ("fusion_default", KhaosMode::Fusion, KhaosOptions::default()),
        (
            "fusion_no_compress",
            KhaosMode::Fusion,
            KhaosOptions {
                parameter_compression: false,
                ..Default::default()
            },
        ),
        (
            "fusion_no_deep",
            KhaosMode::Fusion,
            KhaosOptions {
                deep_fusion: false,
                ..Default::default()
            },
        ),
    ];
    for (name, mode, options) in variants {
        let obf = apply_with(&base, mode, options);
        group.bench_with_input(BenchmarkId::new("run", name), &obf, |b, m| {
            b.iter(|| measure_cycles(m))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
