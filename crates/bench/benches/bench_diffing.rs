//! Criterion bench behind Figure 8: diffing-tool cost and the accuracy
//! computation on an obfuscated-vs-baseline pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use khaos_bench::{build_baseline, khaos_apply, SEED};
use khaos_binary::lower_module;
use khaos_core::KhaosMode;
use khaos_diff::{
    deepbindiff_precision_at_1, precision_at_1, Asm2Vec, BinDiff, DeepBinDiff, Differ, Safe,
    VulSeeker,
};
use khaos_workloads::spec2006;

fn bench_diffing(c: &mut Criterion) {
    let src = spec2006().swap_remove(3);
    let base = build_baseline(&src);
    let base_bin = lower_module(&base);
    let (obf, _) = khaos_apply(&base, KhaosMode::FuFiAll, SEED);
    let obf_bin = lower_module(&obf);

    let mut group = c.benchmark_group("diffing_mcf");
    group.sample_size(10);
    let tools: Vec<Box<dyn Differ>> = vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
    ];
    for tool in tools {
        group.bench_with_input(
            BenchmarkId::new("precision_at_1", tool.name()),
            &tool,
            |b, t| b.iter(|| precision_at_1(t.as_ref(), &base_bin, &obf_bin)),
        );
    }
    group.bench_function("precision_at_1/DeepBinDiff", |b| {
        b.iter(|| deepbindiff_precision_at_1(&DeepBinDiff::default(), &base_bin, &obf_bin))
    });
    group.finish();
}

criterion_group!(benches, bench_diffing);
criterion_main!(benches);
