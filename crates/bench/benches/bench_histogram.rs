//! Criterion bench behind Figure 11: lowering + opcode histogram
//! distance computation.

use criterion::{criterion_group, criterion_main, Criterion};
use khaos_bench::{build_baseline, khaos_apply, SEED};
use khaos_binary::{histogram_distance, lower_module, opcode_histogram};
use khaos_core::KhaosMode;
use khaos_workloads::spec2006;

fn bench_histogram(c: &mut Criterion) {
    let src = spec2006().swap_remove(3);
    let base = build_baseline(&src);
    let (obf, _) = khaos_apply(&base, KhaosMode::FuFiAll, SEED);

    let mut group = c.benchmark_group("histogram_mcf");
    group.sample_size(10);
    group.bench_function("lower_module", |b| b.iter(|| lower_module(&obf)));
    let h1 = opcode_histogram(&lower_module(&base));
    let h2 = opcode_histogram(&lower_module(&obf));
    group.bench_function("opcode_histogram", |b| {
        let bin = lower_module(&obf);
        b.iter(|| opcode_histogram(&bin))
    });
    group.bench_function("distance", |b| b.iter(|| histogram_distance(&h1, &h2)));
    group.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
