//! Recall gates for the IVF index tier.
//!
//! Two layers, both required by the index's contract (crate docs):
//!
//! 1. **Hard recall pins** — on every workload suite × every differ,
//!    recall@{1,10,50} at the **default** `nprobe` must be exactly 1.0
//!    against the brute-force exact scan, and the ranked output must be
//!    bit-identical to `stream_top_k` when the shortlist covers. The
//!    index contract is defined over embeddings/`EmbedScorer` (BinDiff
//!    overrides its *matrix* to symbol names; its embedding rows index
//!    like any other tool's).
//! 2. **Monotonicity** — the shortlist is certified (crate docs), so
//!    recall is non-decreasing in `nprobe` and reaches exactly 1.0 at
//!    `nprobe = nlist` (property-tested over synthetic corpora).

use khaos_diff::engine::{stream_top_k, FunctionEmbeddings};
use khaos_diff::{extended_differs, Differ};
use khaos_index::{IndexParams, IvfIndex, RowMeta, DEFAULT_SEED};
use khaos_ir::Module;
use khaos_pass::{PassCtx, Pipeline, VerifyPolicy};
use proptest::prelude::*;
use std::sync::Arc;

/// Suite name, modules, and the obfuscation pipeline that builds the
/// query binary. tiii uses `fufi_ori` — its first module trips a
/// latent optimizer bug under `fufi_sep`-flavored pipelines at this
/// seed (tracked in ROADMAP), and the recall gate only needs *an*
/// obfuscated query set, not a specific atom.
fn suites() -> Vec<(&'static str, Vec<Module>, &'static str)> {
    vec![
        ("spec2006", khaos_workloads::spec2006(), "fufi_all | O2+lto"),
        ("spec2017", khaos_workloads::spec2017(), "fufi_all | O2+lto"),
        (
            "coreutils",
            khaos_workloads::coreutils(),
            "fufi_all | O2+lto",
        ),
        ("tiii", khaos_workloads::tiii(), "fufi_ori | O2+lto"),
    ]
}

fn build(m: &Module, spec: &str) -> khaos_binary::Binary {
    let pipeline = Pipeline::parse(spec).unwrap_or_else(|e| panic!("spec `{spec}`: {e}"));
    let mut work = m.clone();
    let mut ctx = PassCtx::new(DEFAULT_SEED).with_verify(VerifyPolicy::Never);
    pipeline
        .run(&mut work, &mut ctx)
        .unwrap_or_else(|e| panic!("`{spec}` on {}: {e}", m.name));
    khaos_binary::lower_module(&work)
}

/// Embeds every function of every binary into one corpus (rows
/// normalized exactly as the engine normalizes them) plus per-row
/// provenance.
fn corpus_of(
    differ: &dyn Differ,
    bins: &[khaos_binary::Binary],
) -> (Arc<FunctionEmbeddings>, Vec<RowMeta>) {
    let mut rows = Vec::new();
    let mut meta = Vec::new();
    for bin in bins {
        let fp = bin.fingerprint();
        for (i, raw) in differ.embed(bin).into_iter().enumerate() {
            rows.push(raw);
            meta.push(RowMeta {
                binary: fp,
                function: i as u32,
                name: bin.functions[i].name.clone().unwrap_or_default(),
            });
        }
    }
    (Arc::new(FunctionEmbeddings::from_rows(rows)), meta)
}

/// The battery: corpus = baseline builds of the whole suite, queries =
/// an obfuscated build of the suite's first module. Queries are capped
/// per suite to keep the 4×5 grid inside tier-1 time.
const QUERY_CAP: usize = 24;
const KS: [usize; 3] = [1, 10, 50];

#[test]
fn recall_is_one_on_every_suite_and_differ_at_default_nprobe() {
    for (suite, mods, obf) in suites() {
        let corpus_bins: Vec<_> = mods.iter().map(|m| build(m, "O2+lto")).collect();
        let query_bin = build(&mods[0], obf);
        for differ in extended_differs() {
            let differ = &*differ;
            let (emb, meta) = corpus_of(differ, &corpus_bins);
            assert!(
                !emb.is_empty(),
                "{suite}/{}: suite lowered to an empty corpus",
                differ.name()
            );
            let idx = IvfIndex::build(
                differ.name(),
                differ.config_fingerprint(),
                Arc::clone(&emb),
                meta,
                &IndexParams::default(),
            );
            let queries = FunctionEmbeddings::from_rows(differ.embed(&query_bin));
            let rows: Vec<usize> = (0..queries.len().min(QUERY_CAP)).collect();
            assert!(
                !rows.is_empty(),
                "{suite}: obfuscated build has no functions"
            );
            for k in KS {
                let r = idx.recall_at(&queries, &rows, k, 0);
                assert_eq!(
                    r,
                    1.0,
                    "{suite}/{}: recall@{k} = {r} at default nprobe {} (nlist {})",
                    differ.name(),
                    idx.default_nprobe(),
                    idx.nlist()
                );
            }
        }
    }
}

/// With every cell probed, the ranked output (indices *and* score
/// bits) must equal `stream_top_k` over the same corpus — the
/// bit-identity half of the contract, on real workload embeddings.
#[test]
fn covering_query_is_bit_identical_to_stream_top_k() {
    let mods = khaos_workloads::coreutils();
    let corpus_bins: Vec<_> = mods.iter().map(|m| build(m, "O2+lto")).collect();
    let query_bin = build(&mods[0], "fufi_all | O2+lto");
    for differ in extended_differs() {
        let differ = &*differ;
        let (emb, meta) = corpus_of(differ, &corpus_bins);
        let idx = IvfIndex::build(
            differ.name(),
            differ.config_fingerprint(),
            Arc::clone(&emb),
            meta,
            // The shortlist is certified, so nprobe = nlist ⇒ the
            // exact scan — no covering knob needed.
            &IndexParams::default(),
        );
        let queries = Arc::new(FunctionEmbeddings::from_rows(differ.embed(&query_bin)));
        let scorer = idx.exact_scorer(Arc::clone(&queries));
        for qi in 0..queries.len().min(QUERY_CAP) {
            for k in KS {
                let want = stream_top_k(&scorer, qi, k);
                let got = idx.query_with(queries.row(qi), k, idx.nlist());
                assert_eq!(got.len(), want.len(), "{}: q{qi} k{k}", differ.name());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "{}: q{qi} k{k} index", differ.name());
                    assert_eq!(
                        g.1.to_bits(),
                        w.1.to_bits(),
                        "{}: q{qi} k{k} score bits",
                        differ.name()
                    );
                }
            }
        }
    }
}

/// Deterministic clustered synthetic corpus for the property layer.
fn synth(rows: usize, dim: usize, salt: u64) -> (Arc<FunctionEmbeddings>, Vec<RowMeta>) {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            (0..dim)
                .map(|d| {
                    let cluster = i % 5;
                    let base = ((cluster * 37 + d * 13) as f64).cos();
                    let h = (i as u64 ^ salt)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left((d % 59) as u32);
                    base + ((h as f64 / u64::MAX as f64) - 0.5) * 0.3
                })
                .collect()
        })
        .collect();
    let meta = (0..rows)
        .map(|i| RowMeta {
            binary: i as u64 / 8,
            function: (i % 8) as u32,
            name: String::new(),
        })
        .collect();
    (Arc::new(FunctionEmbeddings::from_rows(data)), meta)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Recall@k is non-decreasing in nprobe and exactly 1.0 once
    /// every cell is probed (the certified shortlist never loses a
    /// probed candidate).
    #[test]
    fn recall_is_monotone_in_nprobe(
        rows in 40usize..220,
        dim in 4usize..24,
        k in 1usize..20,
        salt in any::<u64>(),
    ) {
        let (emb, meta) = synth(rows, dim, salt);
        let idx = IvfIndex::build(
            "prop",
            0,
            Arc::clone(&emb),
            meta,
            &IndexParams::default(),
        );
        // Queries: a deterministic sample of corpus rows (recall over
        // self-queries still exercises cell probing: top-k spreads
        // across cells).
        let rows_q: Vec<usize> = (0..emb.len()).step_by(7).take(8).collect();
        let mut last = 0.0f64;
        for nprobe in 1..=idx.nlist() {
            let r = idx.recall_at(&emb, &rows_q, k, nprobe);
            prop_assert!(
                r >= last,
                "recall regressed {last} -> {r} at nprobe {nprobe}/{}",
                idx.nlist()
            );
            last = r;
        }
        prop_assert_eq!(last, 1.0);
    }
}
