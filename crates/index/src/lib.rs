//! # khaos-index — IVF corpus index over embedding rows
//!
//! The engine answers "rank T targets for Q queries" exactly, one pair
//! at a time. Corpus search — one query function against every indexed
//! function across thousands of binaries — needs an index. This crate
//! builds an IVF (inverted-file) index over the L2-normalized
//! embedding rows the rest of the workspace already produces:
//!
//! 1. **Coarse quantizer** — a deterministic, seeded spherical k-means
//!    partitions the corpus into `nlist` cells (centroids are
//!    L2-normalized, assignment is by maximum dot product, ties break
//!    to the lower centroid index). Same seed, same corpus → the same
//!    cells on every machine, thread count, and SIMD dispatch (every
//!    dot runs through `khaos_diff::kernels`, which is pinned
//!    bit-identical across kernels).
//! 2. **Probe** — a query scores all `nlist` centroids exactly and
//!    probes the `nprobe` best cells (selected by the engine's pinned
//!    `(score desc, index asc)` order via `StreamingTopK`).
//! 3. **Certified quantized shortlist** — the probed cells' members
//!    are scanned in the resident int8 tier (`QuantizedEmbeddings`,
//!    `dim + 16` bytes/row), stored **cell-major**: each cell's rows
//!    are contiguous, so a probe streams memory sequentially instead
//!    of gathering rows from all over the corpus. The shortlist is
//!    *certified*, not a fixed-size cut: the index stores each row's
//!    quantization residual norm `‖x − x̂‖₂`, which bounds the
//!    approximation error of any dot against that row (`|⟨x,y⟩ −
//!    ⟨x̂,ŷ⟩| ≤ ‖Δx‖·‖y‖ + ‖x̂‖·‖Δy‖`; corpus rows are unit-norm), so
//!    every candidate leaves the scan with certified *upper and lower*
//!    bounds on its exact score. Cells are visited in descending
//!    centroid-score order while the k-th best lower bound seen so far
//!    rises; a whole cell whose geometric bound
//!    (`q·t ≤ q·c + ‖q‖·‖t − c‖`, via the stored per-cell max member
//!    radius) cannot reach it is skipped without scanning a row.
//! 4. **Windowed exact re-rank** — every candidate whose upper bound
//!    reaches the k-th best certified lower bound is re-scored with
//!    exact f64 dots (`khaos_diff::kernels::dot`, clamped at zero
//!    exactly like `EmbedScorer`); everything below that bar is
//!    provably outside the top-`k` of the probed set. The window
//!    adapts: corpora with near-duplicate rows (SPEC binaries share
//!    many functions, with score gaps below int8 resolution) re-score
//!    all the near-ties, while well-separated corpora re-score barely
//!    more than `k` rows. Output ranks under the engine's pinned
//!    total order.
//!
//! ## The nprobe/recall contract
//!
//! Because the shortlist is certified, stage 2 is the **only** place a
//! true top-`k` candidate can be lost: recall below 1.0 can only come
//! from unprobed cells. Consequences, pinned by
//! `crates/index/tests/recall.rs`:
//!
//! * at `nprobe = nlist` the ranked output is **bit-identical** to a
//!   brute-force [`khaos_diff::stream_top_k`] over the same corpus —
//!   the re-rank scores with the same kernel, clamps the same way,
//!   and sorts under the same total order;
//! * recall is monotone in `nprobe`: the probed candidate set only
//!   grows (a `StreamingTopK(n+1)` selection contains the
//!   `StreamingTopK(n)` one) and the result is always the exact
//!   top-`k` *of the probed set*.
//!
//! The **default** `nprobe` is scale-aware: below
//! [`SMALL_CORPUS_EXACT`] rows every cell is probed (an index over a
//! few hundred rows cannot beat a brute scan anyway, so the default
//! buys exactness), above it a fixed fraction of cells is probed (the
//! regime where the int8 cell scan wins big; the `index` section of
//! `BENCH_similarity.json` holds the ≥5× bar at ≥10k rows with recall
//! still hard-asserted at 1.0).
//!
//! ## Index segments on disk
//!
//! [`IvfIndex::save`] persists one segment as **three** `khaos-store`
//! records sharing the corpus fingerprint: the f64 table (`emb/`,
//! kind 1, original row order), the int8 tier (`qnt/`, kind 4, stored
//! in the resident cell-major order — the layout is a pure function
//! of the assignments, so the loader re-derives the position↔row map
//! exactly), and the new kind-5 `idx/` record carrying centroids,
//! assignments, per-row provenance and the build parameters. Kind 5 was added to format v2 **without** a
//! version bump (additive; older readers diagnose it by name — see
//! `khaos-store`'s docs). [`IvfIndex::load`] rebuilds the index
//! bit-identically: the store round-trips raw f64/i8 bits and the
//! load path never renormalizes.

use khaos_diff::engine::{EmbedScorer, FunctionEmbeddings, StreamingTopK};
use khaos_diff::kernels;
use khaos_diff::quant::QuantizedEmbeddings;
use khaos_store::{codec::Enc, EmbKey, IndexKey, IndexTable, Store, StoredRowMeta, TableView};
use std::io;
use std::sync::{Arc, OnceLock};

/// Global-registry handles for the probe-path telemetry, resolved once
/// per process. Counters aggregate across every index in the process;
/// per-query batching keeps the hot scan loops free of atomics.
struct IndexObs {
    queries: Arc<khaos_obs::Counter>,
    cells_probed: Arc<khaos_obs::Counter>,
    cells_skipped: Arc<khaos_obs::Counter>,
    candidates_scanned: Arc<khaos_obs::Counter>,
    rerank_scored: Arc<khaos_obs::Counter>,
    rerank_pruned: Arc<khaos_obs::Counter>,
    shortlist_rows: Arc<khaos_obs::Histogram>,
}

fn index_obs() -> &'static IndexObs {
    static OBS: OnceLock<IndexObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = khaos_obs::Registry::global();
        IndexObs {
            queries: r.counter("index.queries"),
            cells_probed: r.counter("index.cells_probed"),
            cells_skipped: r.counter("index.cells_skipped"),
            candidates_scanned: r.counter("index.candidates_scanned"),
            rerank_scored: r.counter("index.rerank_scored"),
            rerank_pruned: r.counter("index.rerank_pruned"),
            shortlist_rows: r.histogram("index.shortlist_rows"),
        }
    })
}

/// Below this corpus size the automatic `nprobe` probes **every**
/// cell: a brute scan over so few rows is already fast, so the default
/// spends nothing and keeps recall exactly 1.0 by construction.
pub const SMALL_CORPUS_EXACT: usize = 4096;

/// Denominator of the large-corpus probe fraction: by default
/// `nprobe = ceil(nlist / AUTO_PROBE_DENOM)` once the corpus clears
/// [`SMALL_CORPUS_EXACT`] rows. An eighth of the cells scans an
/// eighth of the corpus in the int8 tier — the `index` section of
/// `BENCH_similarity.json` holds both the ≥5× bar and recall 1.0
/// there; callers who need a guarantee rather than a measurement pass
/// an explicit `nprobe` (at `nlist`, exactness is certified).
pub const AUTO_PROBE_DENOM: usize = 8;

/// Seed of every index build that does not choose its own (the same
/// experiment seed the bench harness uses).
pub const DEFAULT_SEED: u64 = 0xC60_2023;

/// Hard cap on k-means refinement sweeps; assignment convergence
/// usually stops the loop much earlier.
pub const KMEANS_MAX_ITERS: usize = 25;

/// Where one corpus row came from: enough provenance for a daemon to
/// answer "which function matched" without reloading any binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowMeta {
    /// `Binary::fingerprint` of the source binary.
    pub binary: u64,
    /// Function index inside that binary.
    pub function: u32,
    /// Function symbol name (empty when anonymous).
    pub name: String,
}

/// Build-time knobs of an [`IvfIndex`]. `0` means "choose
/// automatically" for `nlist` and `nprobe`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexParams {
    /// Number of coarse cells; `0` → `ceil(sqrt(rows))`.
    pub nlist: usize,
    /// Default cells probed per query; `0` → scale-aware automatic
    /// (see [`auto_nprobe`]).
    pub nprobe: usize,
    /// k-means seed (determinism: same seed + corpus → same index).
    pub seed: u64,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            nlist: 0,
            nprobe: 0,
            seed: DEFAULT_SEED,
        }
    }
}

/// Automatic cell count: `ceil(sqrt(rows))`, clamped to `[1, rows]`.
pub fn auto_nlist(rows: usize) -> usize {
    if rows == 0 {
        return 0;
    }
    // Integer sqrt via f64 is exact for every corpus size we can hold
    // in memory (rows < 2^52).
    let r = (rows as f64).sqrt().ceil() as usize;
    r.clamp(1, rows)
}

/// Automatic default probe width (see the crate docs): every cell
/// below [`SMALL_CORPUS_EXACT`] rows, `ceil(nlist / AUTO_PROBE_DENOM)`
/// above it.
pub fn auto_nprobe(nlist: usize, rows: usize) -> usize {
    if rows < SMALL_CORPUS_EXACT {
        nlist.max(1)
    } else {
        nlist.div_ceil(AUTO_PROBE_DENOM).max(1)
    }
}

/// Fingerprint of an indexed corpus: FNV-1a over the tool, config,
/// dimensionality and every row's provenance — the `corpus` component
/// of the store key, and the link between an `idx/` segment and its
/// `emb`/`qnt` tables.
pub fn corpus_fingerprint(tool: &str, config: u64, dim: usize, meta: &[RowMeta]) -> u64 {
    let mut e = Enc::new();
    e.str(tool);
    e.u64(config);
    e.u64(dim as u64);
    e.u64(meta.len() as u64);
    for m in meta {
        e.u64(m.binary);
        e.u32(m.function);
        e.str(&m.name);
    }
    khaos_store::fnv1a(&e.into_bytes())
}

/// An IVF index over one embedding corpus: coarse cells + resident
/// int8 tier + the exact f64 rows for re-ranking. Cheap to share
/// behind an `Arc`; queries take `&self`.
pub struct IvfIndex {
    tool: String,
    config: u64,
    corpus: u64,
    seed: u64,
    nprobe: usize,
    /// `nlist × dim` L2-normalized centroid rows.
    centroids: Vec<f64>,
    nlist: usize,
    /// Per-corpus-row winning cell.
    assignments: Vec<u32>,
    /// Resident-order permutation: quant position → original corpus
    /// row. Cells are laid out back to back (ascending cell index,
    /// members ascending), so probing a cell is one contiguous scan.
    perm: Vec<u32>,
    /// Cell `c` occupies `perm[cell_start[c]..cell_start[c + 1]]`.
    cell_start: Vec<usize>,
    /// Exact rows (re-rank tier), original corpus order.
    exact: Arc<FunctionEmbeddings>,
    /// int8 codes in **resident cell-major order** (`perm`): the
    /// shortlist tier streams each probed cell sequentially instead of
    /// gathering rows from all over the corpus.
    quant: QuantizedEmbeddings,
    /// Quantization residual norms `‖x − x̂‖₂` in resident order — the
    /// certified shortlist's error-bound ingredient.
    residuals: Vec<f64>,
    /// Per-cell max member distance `‖t − c‖₂` to the cell centroid:
    /// the geometric ingredient of the certified cell skip
    /// (`q·t ≤ q·c + ‖q‖·radius`). Re-derived from the exact rows on
    /// load, like the layout.
    cell_radii: Vec<f64>,
    meta: Vec<RowMeta>,
}

/// Max member distance `‖t − c‖₂` per cell, fixed-order sums (build
/// and load re-derive identical radii from identical rows). A maximum
/// is order-independent over finite f64s, and embeddings are finite.
fn cell_radii(
    exact: &FunctionEmbeddings,
    centroids: &[f64],
    assignments: &[u32],
    nlist: usize,
) -> Vec<f64> {
    let dim = exact.dim();
    let mut radii = vec![0.0f64; nlist];
    for (row, &cell) in assignments.iter().enumerate() {
        let cell = cell as usize;
        let t = exact.row(row);
        let c = &centroids[cell * dim..(cell + 1) * dim];
        let d2: f64 = t.iter().zip(c).map(|(&a, &b)| (a - b) * (a - b)).sum();
        let r = d2.sqrt();
        if r > radii[cell] {
            radii[cell] = r;
        }
    }
    radii
}

/// `‖x − x̂‖₂` of every quantized row: the exact L2 distance between
/// quant row `p` and exact row `perm[p]` (fixed-order sums, so the
/// same tables give the same residuals everywhere — build and load
/// agree bit for bit). Pass the identity permutation when the tables
/// share an order.
fn residual_norms(
    exact: &FunctionEmbeddings,
    quant: &QuantizedEmbeddings,
    perm: &[u32],
) -> Vec<f64> {
    let dim = exact.dim();
    (0..quant.len())
        .map(|i| {
            let x = exact.row(perm[i] as usize);
            let s = quant.scales()[i];
            let o = quant.offsets()[i];
            let codes = &quant.codes()[i * dim..(i + 1) * dim];
            x.iter()
                .zip(codes)
                .map(|(&v, &q)| {
                    let d = v - (s * q as f64 + o);
                    d * d
                })
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

/// Cell-major resident layout from per-row assignments: `perm`
/// concatenates each cell's members (ascending cell index, members
/// ascending — fully determined by `assignments`, so build and load
/// derive the identical layout), and `cell_start[c]..cell_start[c+1]`
/// is cell `c`'s contiguous slice of it.
fn resident_layout(assignments: &[u32], nlist: usize) -> (Vec<u32>, Vec<usize>) {
    let mut cells = vec![Vec::new(); nlist];
    for (row, &cell) in assignments.iter().enumerate() {
        cells[cell as usize].push(row as u32);
    }
    let mut perm = Vec::with_capacity(assignments.len());
    let mut cell_start = Vec::with_capacity(nlist + 1);
    cell_start.push(0);
    for members in &cells {
        perm.extend_from_slice(members);
        cell_start.push(perm.len());
    }
    (perm, cell_start)
}

/// Quantizes the corpus and reorders the rows into resident order.
/// Quantization is strictly per-row, so reordering the quantized parts
/// equals quantizing a reordered corpus, bit for bit.
fn resident_quant(exact: &FunctionEmbeddings, perm: &[u32]) -> QuantizedEmbeddings {
    let original = QuantizedEmbeddings::from_embeddings(exact);
    let dim = exact.dim();
    let mut data = Vec::with_capacity(perm.len() * dim);
    let mut scales = Vec::with_capacity(perm.len());
    let mut offsets = Vec::with_capacity(perm.len());
    for &r in perm {
        let r = r as usize;
        data.extend_from_slice(&original.codes()[r * dim..(r + 1) * dim]);
        scales.push(original.scales()[r]);
        offsets.push(original.offsets()[r]);
    }
    QuantizedEmbeddings::from_parts(perm.len(), dim, data, scales, offsets)
}

/// Total-order f64 wrapper for the k-th-best-lower-bound min-heap in
/// the windowed re-rank (bounds are finite and non-negative;
/// `total_cmp` keeps the heap deterministic regardless).
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Absolute slack added to every certified margin, covering f64
/// rounding in the hoisted `approx_dot` expression (score magnitudes
/// are ≤ 1, so rounding noise is ~1e-13; 1e-9 dominates it with room).
const MARGIN_SLACK: f64 = 1e-9;

impl IvfIndex {
    /// Builds an index over `exact` (one provenance entry per row).
    /// Deterministic: the same `(corpus, params)` produce the same
    /// cells, centroids and query results on every machine, thread
    /// count and SIMD dispatch.
    ///
    /// # Panics
    /// Panics when `meta.len() != exact.len()`.
    pub fn build(
        tool: &str,
        config: u64,
        exact: Arc<FunctionEmbeddings>,
        meta: Vec<RowMeta>,
        params: &IndexParams,
    ) -> IvfIndex {
        assert_eq!(
            exact.len(),
            meta.len(),
            "one provenance entry per corpus row"
        );
        let rows = exact.len();
        let nlist = match params.nlist {
            0 => auto_nlist(rows),
            n => n.clamp(1, rows.max(1)),
        };
        let nlist = if rows == 0 { 0 } else { nlist };
        let (centroids, assignments) = kmeans(&exact, nlist, params.seed);
        let (perm, cell_start) = resident_layout(&assignments, nlist);
        let quant = resident_quant(&exact, &perm);
        let residuals = residual_norms(&exact, &quant, &perm);
        let cell_radii = cell_radii(&exact, &centroids, &assignments, nlist);
        let nprobe = match params.nprobe {
            0 => auto_nprobe(nlist, rows),
            n => n.clamp(1, nlist.max(1)),
        };
        IvfIndex {
            tool: tool.to_string(),
            config,
            corpus: corpus_fingerprint(tool, config, exact.dim(), &meta),
            seed: params.seed,
            nprobe,
            centroids,
            nlist,
            assignments,
            perm,
            cell_start,
            exact,
            quant,
            residuals,
            cell_radii,
            meta,
        }
    }

    /// Differ name the corpus was embedded with.
    pub fn tool(&self) -> &str {
        &self.tool
    }

    /// Differ configuration fingerprint.
    pub fn config(&self) -> u64 {
        self.config
    }

    /// Corpus fingerprint (the store-key component).
    pub fn corpus(&self) -> u64 {
        self.corpus
    }

    /// Corpus row count.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.exact.dim()
    }

    /// Number of coarse cells.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Default probe width (what [`IvfIndex::query`] uses).
    pub fn default_nprobe(&self) -> usize {
        self.nprobe
    }

    /// Provenance of corpus row `i`.
    pub fn meta(&self, i: usize) -> &RowMeta {
        &self.meta[i]
    }

    /// The exact f64 corpus rows (what brute-force comparisons score).
    pub fn exact_rows(&self) -> &Arc<FunctionEmbeddings> {
        &self.exact
    }

    /// Ranked top-`k` for an L2-normalized query row at the default
    /// probe width. See [`IvfIndex::query_with`].
    pub fn query(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        self.query_with(q, k, self.nprobe)
    }

    /// Ranked top-`k` corpus rows for an L2-normalized query vector,
    /// probing `nprobe` cells (`0` → the index default): exact
    /// centroid scores pick the cells, the int8 tier shortlists their
    /// members, exact f64 dots re-rank the shortlist under the pinned
    /// `(score desc, index asc)` order. Scores are clamped at zero
    /// exactly like `EmbedScorer`, so whenever the shortlist covers
    /// the true top-`k`, the result is **bit-identical** to
    /// `stream_top_k` over the same corpus.
    pub fn query_with(&self, q: &[f64], k: usize, nprobe: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        let nprobe = match nprobe {
            0 => self.nprobe,
            n => n,
        }
        .min(self.nlist);
        let _span = khaos_obs::span("index:query");

        // Stage 1: exact centroid scores → the nprobe best cells.
        let probe_span = khaos_obs::span("index:probe");
        let mut probe = StreamingTopK::new(nprobe);
        for c in 0..self.nlist {
            let row = &self.centroids[c * self.dim()..(c + 1) * self.dim()];
            probe.offer(c, kernels::dot(q, row));
        }
        let probed = probe.into_ranked();
        drop(probe_span);
        let candidates: usize = probed
            .iter()
            .map(|&(c, _)| self.cell_start[c + 1] - self.cell_start[c])
            .sum::<usize>();
        if candidates == 0 {
            return Vec::new();
        }

        // Stage 2: certified int8 shortlist over the probed cells'
        // members. The query row is quantized through the same
        // constructor as the corpus; scores are clamped like the exact
        // scorer. A candidate's exact score lies within ±margin of its
        // approx score (margin = ‖Δq‖·‖t‖ + ‖q̂‖·‖Δt‖ + slack, with
        // ‖t‖ = 1 and ‖q̂‖ ≤ ‖q‖ + ‖Δq‖).
        let scan_span = khaos_obs::span("index:scan");
        let mut cells_skipped: u64 = 0;
        let qe = FunctionEmbeddings::from_flat_normalized(1, self.dim(), q.to_vec());
        let qq = QuantizedEmbeddings::from_embeddings(&qe);
        let e_q = residual_norms(&qe, &qq, &[0])[0];
        // Candidates are resident *positions* — each probed cell is one
        // contiguous slice of the quant tier, and the scan callback
        // does nothing but record `(s, p)` so the int8 scan stays
        // tight. `‖q‖` enters both certificates explicitly, so they
        // hold for any query vector, normalized or not.
        let qnorm = kernels::dot(q, q).max(0.0).sqrt();
        let margin = |p: usize| e_q + (qnorm + e_q) * self.residuals[p] + MARGIN_SLACK;
        let mut cand: Vec<(f64, u32)> = Vec::with_capacity(candidates);
        let mut qdots: Vec<i32> = Vec::new();
        // `low` tracks the k best certified *lower* bounds
        // (`max(0, s - margin)`) over everything scanned so far; `bar`
        // is the k-th best — any candidate (or whole cell) that cannot
        // reach it is outside the top-k. Cells arrive in descending
        // centroid-score order, so `bar` is established by the best
        // cells first and the tail gets skipped wholesale.
        let mut low: std::collections::BinaryHeap<std::cmp::Reverse<OrdF64>> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        let mut bar = f64::NEG_INFINITY;
        for &(c, sc) in &probed {
            // Certified cell skip: every member `t` of cell `c` has
            // `q·t = q·c + q·(t − c) ≤ sc + ‖q‖·radius`, so once `k`
            // lower bounds clear that, no member can enter the top-k
            // and the cell's scan is skipped entirely.
            if low.len() == k && sc + qnorm * self.cell_radii[c] + MARGIN_SLACK < bar {
                cells_skipped += 1;
                continue;
            }
            let seg = cand.len();
            qq.approx_scan_block(
                0,
                &self.quant,
                self.cell_start[c]..self.cell_start[c + 1],
                &mut qdots,
                |p, s| cand.push((s, p as u32)),
            );
            // Most candidates fail the peek test in one comparison.
            for &(s, p) in &cand[seg..] {
                let lower = (s - margin(p as usize)).max(0.0);
                if low.len() < k {
                    low.push(std::cmp::Reverse(OrdF64(lower)));
                } else if lower > low.peek().expect("k > 0").0 .0 {
                    low.push(std::cmp::Reverse(OrdF64(lower)));
                    low.pop();
                }
            }
            if low.len() == k {
                bar = low.peek().expect("k > 0").0 .0;
            }
        }
        drop(scan_span);

        // Stage 3: windowed exact re-rank. `bar` is the k-th largest
        // certified lower bound, so at least `k` candidates have exact
        // scores `>= bar`; a candidate with `upper < bar` has
        // `exact <= upper < bar` — strictly below `k` other exact
        // scores — and provably cannot enter the top-k under any
        // tie-break. Everything else is re-scored against the exact
        // tier in resident-position order (deterministic; no candidate
        // heap, just one branch per candidate) and offered under the
        // engine's pinned total order on *original* row indices, so
        // the ranked output is bit-identical to the brute-force scan
        // whenever the shortlist covers the true top-k.
        let rerank_span = khaos_obs::span("index:rerank");
        let table = kernels::active_table();
        let mut top = StreamingTopK::new(k);
        let mut scored: u64 = 0;
        for &(s, p) in &cand {
            let p = p as usize;
            if s.max(0.0) + margin(p) < bar {
                continue;
            }
            scored += 1;
            let j = self.perm[p] as usize;
            top.offer(j, table.dot(q, self.exact.row(j)).max(0.0));
        }
        let ranked = top.into_ranked();
        drop(rerank_span);

        let obs = index_obs();
        obs.queries.inc();
        obs.cells_probed.add(probed.len() as u64);
        obs.cells_skipped.add(cells_skipped);
        obs.candidates_scanned.add(cand.len() as u64);
        obs.rerank_scored.add(scored);
        obs.rerank_pruned.add(cand.len() as u64 - scored);
        obs.shortlist_rows.record(cand.len() as u64);
        ranked
    }

    /// Batch query: ranks the given rows of `queries` concurrently via
    /// `khaos-par` (one blocked scan per batch — the daemon's path).
    /// Output is in input order and bit-identical to calling
    /// [`IvfIndex::query_with`] sequentially per row at any
    /// `KHAOS_THREADS`.
    pub fn query_rows(
        &self,
        queries: &FunctionEmbeddings,
        rows: &[usize],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<(usize, f64)>> {
        khaos_par::par_map(rows.len(), |i| {
            self.query_with(queries.row(rows[i]), k, nprobe)
        })
    }

    /// Brute-force exact comparator: the true top-`k` by sequential
    /// scan over every corpus row — the same scores, clamp and total
    /// order as `stream_top_k` with an `EmbedScorer` over this corpus
    /// (bit-identical at any corpus size; the tests pin it).
    pub fn brute_top_k(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        let mut top = StreamingTopK::new(k);
        for j in 0..self.len() {
            top.offer(j, kernels::dot(q, self.exact.row(j)).max(0.0));
        }
        top.into_ranked()
    }

    /// Mean recall@`k` of the index against the exact scan over the
    /// given query rows at probe width `nprobe` (`0` → default):
    /// `|index ∩ exact| / |exact|`, averaged. `1.0` when there are no
    /// queries.
    pub fn recall_at(
        &self,
        queries: &FunctionEmbeddings,
        rows: &[usize],
        k: usize,
        nprobe: usize,
    ) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let per_row = khaos_par::par_map(rows.len(), |i| {
            let q = queries.row(rows[i]);
            let exact = self.brute_top_k(q, k);
            if exact.is_empty() {
                return 1.0;
            }
            let approx = self.query_with(q, k, nprobe);
            let hit = exact
                .iter()
                .filter(|(j, _)| approx.iter().any(|(a, _)| a == j))
                .count();
            hit as f64 / exact.len() as f64
        });
        per_row.iter().sum::<f64>() / rows.len() as f64
    }

    /// `escape@k` as a client of the index: for each query row, rank
    /// the top `max(ks)` corpus rows and take the 1-based position of
    /// the first row accepted by `is_match`; a query whose match is
    /// absent from the ranking (or has no match at all) escapes at
    /// every threshold. Whenever the ranked lists are the true top-`K`
    /// (the bit-identity contract), the profile equals the streaming
    /// escape protocol's on the same corpus — pinned by the tests and
    /// the bench.
    pub fn escape_profile(
        &self,
        queries: &FunctionEmbeddings,
        rows: &[usize],
        ks: &[usize],
        nprobe: usize,
        is_match: &(dyn Fn(usize, &RowMeta) -> bool + Sync),
    ) -> Vec<f64> {
        if rows.is_empty() {
            return vec![0.0; ks.len()];
        }
        let cap = ks.iter().copied().max().unwrap_or(1).max(1);
        let ranks: Vec<Option<usize>> = khaos_par::par_map(rows.len(), |i| {
            let ranked = self.query_with(queries.row(rows[i]), cap, nprobe);
            ranked
                .iter()
                .position(|&(j, _)| is_match(rows[i], &self.meta[j]))
                .map(|p| p + 1)
        });
        ks.iter()
            .map(|&k| {
                let escaped = ranks
                    .iter()
                    .filter(|r| match r {
                        Some(r) => *r > k,
                        None => true,
                    })
                    .count();
                escaped as f64 / ranks.len() as f64
            })
            .collect()
    }

    /// The persistent form of the coarse structure (centroids,
    /// assignments, provenance, parameters) — the kind-5 payload.
    pub fn to_table(&self) -> IndexTable {
        IndexTable {
            rows: self.len() as u64,
            dim: self.dim() as u64,
            nlist: self.nlist as u64,
            nprobe: self.nprobe as u32,
            seed: self.seed,
            centroids: self.centroids.clone(),
            assignments: self.assignments.clone(),
            meta: self
                .meta
                .iter()
                .map(|m| StoredRowMeta {
                    binary: m.binary,
                    function: m.function,
                    name: m.name.clone(),
                })
                .collect(),
        }
    }

    /// Persists the full segment: the exact f64 table (`emb/`), the
    /// int8 tier (`qnt/`) — both keyed by the corpus fingerprint in
    /// the `binary` slot — and the kind-5 `idx/` record.
    pub fn save(&self, store: &Store) -> io::Result<()> {
        let key = EmbKey {
            tool: &self.tool,
            config: self.config,
            binary: self.corpus,
        };
        store.put_embeddings(
            &key,
            TableView::new(self.len(), self.dim(), self.exact.as_flat()),
        )?;
        store.put_quantized(
            &key,
            khaos_store::QuantView::new(
                self.len(),
                self.dim(),
                self.quant.scales(),
                self.quant.offsets(),
                self.quant.codes(),
            ),
        )?;
        store.put_index(
            &IndexKey {
                tool: &self.tool,
                config: self.config,
                corpus: self.corpus,
            },
            &self.to_table(),
        )
    }

    /// Loads one segment back (`Ok(None)` when any of its three
    /// records is missing; `InvalidData` when they disagree with each
    /// other — unlike a plain cache miss, a *torn* segment must be
    /// named). The rebuilt index is bit-identical to the saved one:
    /// f64 and i8 payloads round-trip raw bits and nothing is
    /// renormalized on load.
    pub fn load(
        store: &Store,
        tool: &str,
        config: u64,
        corpus: u64,
    ) -> io::Result<Option<IvfIndex>> {
        let Some(table) = store.get_index(&IndexKey {
            tool,
            config,
            corpus,
        })?
        else {
            return Ok(None);
        };
        Self::load_with_table(store, tool, config, corpus, table).map(Some)
    }

    /// Every segment in the store, sorted by `(tool, config, corpus)`
    /// — what a daemon loads at startup. Torn segments are errors
    /// (same policy as [`IvfIndex::load`]).
    pub fn load_all(store: &Store) -> io::Result<Vec<IvfIndex>> {
        let mut out = Vec::new();
        for (tool, config, corpus, table) in store.index_records()? {
            out.push(Self::load_with_table(store, &tool, config, corpus, table)?);
        }
        Ok(out)
    }

    fn load_with_table(
        store: &Store,
        tool: &str,
        config: u64,
        corpus: u64,
        table: IndexTable,
    ) -> io::Result<IvfIndex> {
        let torn = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "index segment {tool} cfg={config:016x} corpus={corpus:016x}: {what} \
                     (torn segment: idx/emb/qnt records disagree)"
                ),
            )
        };
        let key = EmbKey {
            tool,
            config,
            binary: corpus,
        };
        let flat = store
            .get_embeddings(&key)?
            .ok_or_else(|| torn("exact f64 table missing"))?;
        let qt = store
            .get_quantized(&key)?
            .ok_or_else(|| torn("quantized table missing"))?;
        if (flat.rows, flat.dim) != (table.rows, table.dim)
            || (qt.rows, qt.dim) != (table.rows, table.dim)
        {
            return Err(torn("table shapes disagree"));
        }
        let rows = table.rows as usize;
        let dim = table.dim as usize;
        let nlist = table.nlist as usize;
        if table.centroids.len() != nlist * dim || table.assignments.len() != rows {
            return Err(torn("centroid/assignment shapes disagree"));
        }
        let exact = Arc::new(FunctionEmbeddings::from_flat_normalized(
            rows, dim, flat.data,
        ));
        // The qnt record is stored in resident cell-major order; the
        // layout is re-derived from the assignments, so positions line
        // up with the saved rows exactly.
        let (perm, cell_start) = resident_layout(&table.assignments, nlist);
        let quant = QuantizedEmbeddings::from_parts(rows, dim, qt.data, qt.scales, qt.offsets);
        let residuals = residual_norms(&exact, &quant, &perm);
        let cell_radii = cell_radii(&exact, &table.centroids, &table.assignments, nlist);
        Ok(IvfIndex {
            tool: tool.to_string(),
            config,
            corpus,
            seed: table.seed,
            nprobe: (table.nprobe as usize).clamp(1, nlist.max(1)),
            centroids: table.centroids,
            nlist,
            assignments: table.assignments,
            perm,
            cell_start,
            exact,
            quant,
            residuals,
            cell_radii,
            meta: table
                .meta
                .into_iter()
                .map(|m| RowMeta {
                    binary: m.binary,
                    function: m.function,
                    name: m.name,
                })
                .collect(),
        })
    }

    /// An [`EmbedScorer`] ranking the given queries against this
    /// corpus — the brute-force side of every recall/bit-identity
    /// comparison (`stream_top_k(&index.exact_scorer(qe), qi, k)`).
    pub fn exact_scorer(&self, queries: Arc<FunctionEmbeddings>) -> EmbedScorer {
        EmbedScorer::new(queries, Arc::clone(&self.exact), true)
    }
}

/// Deterministic seeded spherical k-means over L2-normalized rows.
/// Returns `(nlist × dim centroids, per-row assignments)`.
///
/// Determinism, in order of appearance: initial centroids are a
/// seed-rotated stride sample of the corpus (distinct rows, no RNG
/// stream to drift); assignment maximizes `kernels::dot` with ties to
/// the lower centroid index and parallelizes per row (order-preserving
/// `par_map`, each row independent); centroid updates accumulate
/// member rows in ascending row order on one thread and re-normalize
/// with a sequential sum of squares. Every float op is fixed-order, so
/// the same seed and corpus give the same index everywhere.
fn kmeans(e: &FunctionEmbeddings, nlist: usize, seed: u64) -> (Vec<f64>, Vec<u32>) {
    let rows = e.len();
    let dim = e.dim();
    if rows == 0 || nlist == 0 {
        return (Vec::new(), Vec::new());
    }
    // Seed-rotated stride init: distinct row indices spread across the
    // corpus. floor(i·rows/nlist) is strictly increasing for
    // nlist ≤ rows, and the rotation keeps distinctness mod rows.
    let offset = (seed as usize) % rows;
    let mut centroids = Vec::with_capacity(nlist * dim);
    for i in 0..nlist {
        let row = (offset + i * rows / nlist) % rows;
        centroids.extend_from_slice(e.row(row));
    }
    let mut assignments = vec![0u32; rows];
    for _ in 0..KMEANS_MAX_ITERS {
        // Assignment: best centroid by dot, ties to the lower index.
        let next: Vec<u32> = khaos_par::par_map(rows, |r| {
            let q = e.row(r);
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for c in 0..nlist {
                let s = kernels::dot(q, &centroids[c * dim..(c + 1) * dim]);
                if s > best_score {
                    best = c;
                    best_score = s;
                }
            }
            best as u32
        });
        let converged = next == assignments;
        assignments = next;
        if converged {
            break;
        }
        // Update: mean of members (ascending row order), re-normalized
        // onto the sphere. Empty cells keep their previous centroid.
        let mut sums = vec![0.0f64; nlist * dim];
        let mut counts = vec![0u64; nlist];
        for (r, &cell) in assignments.iter().enumerate() {
            let c = cell as usize;
            counts[c] += 1;
            let row = e.row(r);
            let sum = &mut sums[c * dim..(c + 1) * dim];
            for (s, v) in sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..nlist {
            if counts[c] == 0 {
                continue;
            }
            let sum = &mut sums[c * dim..(c + 1) * dim];
            let inv = 1.0 / counts[c] as f64;
            for s in sum.iter_mut() {
                *s *= inv;
            }
            let norm = sum.iter().map(|v| v * v).sum::<f64>().sqrt();
            let dst = &mut centroids[c * dim..(c + 1) * dim];
            if norm > 0.0 {
                for (d, s) in dst.iter_mut().zip(sum.iter()) {
                    *d = s / norm;
                }
            } else {
                dst.copy_from_slice(sum);
            }
        }
    }
    (centroids, assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic synthetic corpus: `n` unit rows of
    /// dimension `dim`, loosely clustered so k-means has structure.
    fn synth(n: usize, dim: usize, salt: u64) -> (Arc<FunctionEmbeddings>, Vec<RowMeta>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let cluster = i % 7;
                (0..dim)
                    .map(|d| {
                        let base = ((cluster * 31 + d) as f64).sin();
                        let jitter = (((i as u64 ^ salt).wrapping_mul(0x9E3779B97F4A7C15)
                            >> (d % 23)) as f64
                            / u64::MAX as f64
                            - 0.5)
                            * 0.2;
                        base + jitter
                    })
                    .collect()
            })
            .collect();
        let meta = (0..n)
            .map(|i| RowMeta {
                binary: 0xB0 + (i / 16) as u64,
                function: (i % 16) as u32,
                name: format!("f{i}"),
            })
            .collect();
        (Arc::new(FunctionEmbeddings::from_rows(rows)), meta)
    }

    #[test]
    fn build_is_deterministic() {
        let (e, meta) = synth(300, 24, 1);
        let a = IvfIndex::build(
            "t",
            1,
            Arc::clone(&e),
            meta.clone(),
            &IndexParams::default(),
        );
        let b = IvfIndex::build("t", 1, e, meta, &IndexParams::default());
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(
            a.centroids.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.centroids.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.corpus(), b.corpus());
    }

    #[test]
    fn full_probe_is_bit_identical_to_brute_force() {
        let (e, meta) = synth(257, 24, 2);
        let idx = IvfIndex::build("t", 1, Arc::clone(&e), meta, &IndexParams::default());
        // Default nprobe on a small corpus probes every cell; with a
        // covering shortlist the ranked output must equal the exact
        // scan bit for bit.
        for qi in [0usize, 13, 101, 256] {
            let q = e.row(qi);
            let got = idx.query_with(q, 10, idx.nlist());
            let want = idx.brute_top_k(q, 10);
            assert_eq!(got.len(), want.len());
            for ((gj, gs), (wj, ws)) in got.iter().zip(&want) {
                assert_eq!(gj, wj, "query {qi}");
                assert_eq!(gs.to_bits(), ws.to_bits(), "query {qi}");
            }
        }
    }

    #[test]
    fn empty_and_degenerate_corpora() {
        let (e, meta) = (
            Arc::new(FunctionEmbeddings::from_rows(Vec::new())),
            Vec::new(),
        );
        let idx = IvfIndex::build("t", 1, e, meta, &IndexParams::default());
        assert!(idx.is_empty());
        assert_eq!(idx.nlist(), 0);
        let (e1, m1) = synth(1, 8, 3);
        let one = IvfIndex::build("t", 1, Arc::clone(&e1), m1, &IndexParams::default());
        assert_eq!(one.nlist(), 1);
        assert_eq!(one.query(e1.row(0), 5), one.brute_top_k(e1.row(0), 5));
    }

    #[test]
    fn store_round_trip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("khaos-index-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let (e, meta) = synth(120, 16, 4);
        let idx = IvfIndex::build(
            "VulSeeker",
            7,
            Arc::clone(&e),
            meta,
            &IndexParams::default(),
        );
        idx.save(&store).unwrap();
        let back = IvfIndex::load(&store, "VulSeeker", 7, idx.corpus())
            .unwrap()
            .expect("segment present");
        assert_eq!(back.assignments, idx.assignments);
        assert_eq!(back.nlist(), idx.nlist());
        assert_eq!(back.default_nprobe(), idx.default_nprobe());
        for qi in 0..e.len() {
            let a = idx.query(e.row(qi), 10);
            let b = back.query(e.row(qi), 10);
            assert_eq!(a.len(), b.len());
            for ((aj, as_), (bj, bs)) in a.iter().zip(&b) {
                assert_eq!(aj, bj);
                assert_eq!(as_.to_bits(), bs.to_bits());
            }
        }
        let all = IvfIndex::load_all(&store).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].corpus(), idx.corpus());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
