//! Repo-invariant lint: no fused multiply-add in the SIMD kernels.
//!
//! The dispatch contract in `kernels.rs` is that every SIMD tier
//! returns **bit-identical** results to the scalar reference, so the
//! runtime-selected tier is unobservable in scores. A float FMA
//! (`vfmadd*`, `_mm*_fmadd_*`) contracts the intermediate rounding
//! step and breaks that equivalence between machines with and without
//! FMA units — so those intrinsics are banned from the kernel sources.
//! Integer multiply-add (`_mm*_madd_epi16` / `vpmaddwd`) is exact and
//! stays allowed; the lint keys on the `fmadd` substring, which covers
//! both the intrinsic names and the instruction mnemonics without
//! matching the integer form.

use std::path::Path;

const BANNED: &str = "fmadd";

fn scan(path: &Path) -> Vec<(usize, String)> {
    let src =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    src.lines()
        .enumerate()
        .filter(|(_, line)| line.to_ascii_lowercase().contains(BANNED))
        .map(|(i, line)| (i + 1, line.trim().to_string()))
        .collect()
}

#[test]
fn kernels_and_quant_are_fma_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut hits = Vec::new();
    for file in ["kernels.rs", "quant.rs"] {
        let path = root.join(file);
        for (line, text) in scan(&path) {
            hits.push(format!("{file}:{line}: {text}"));
        }
    }
    assert!(
        hits.is_empty(),
        "fused multiply-add intrinsics are banned from the SIMD kernels \
         (they break bit-identical dispatch tiers):\n{}",
        hits.join("\n")
    );
}

/// The lint itself must fire on the patterns it claims to ban — guard
/// against a silently broken matcher.
#[test]
fn lint_matches_banned_spellings() {
    for spelling in [
        "_mm256_fmadd_ps(a, b, acc)",
        "_mm512_fmadd_pd(a, b, acc)",
        "vfmadd231ps",
        "x.mul_add(y, acc) // FMADD",
    ] {
        assert!(
            spelling.to_ascii_lowercase().contains(BANNED),
            "matcher misses `{spelling}`"
        );
    }
    // …and must not flag the exact integer multiply-add.
    assert!(!"_mm256_madd_epi16(a0, b0)".contains(BANNED));
}
