//! A DeepBinDiff-like differ.
//!
//! DeepBinDiff matches at **basic-block** granularity: block token
//! features are fused with inter-procedural CFG context (the ICFG: CFG
//! edges plus call edges) through unsupervised graph embedding. The
//! deterministic stand-in embeds each block from its own tokens plus
//! decaying contributions of its 1- and 2-hop ICFG neighbourhood — so,
//! as the paper observes, the embedding *encodes the control-flow graph
//! and the call graph*, both of which Khaos rewrites.

use crate::engine::{EmbeddingCache, FunctionEmbeddings, SimilarityMatrix};
use crate::tokens::block_tokens;
use crate::vector::{add_token, EMB_DIM};
use khaos_binary::{Binary, SymRef};

/// DeepBinDiff stand-in. See the module docs.
#[derive(Clone, Debug)]
pub struct DeepBinDiff {
    /// Neighbourhood decay per hop.
    pub decay: f64,
}

impl Default for DeepBinDiff {
    fn default() -> Self {
        DeepBinDiff { decay: 0.5 }
    }
}

/// Identifies a block globally: (function index, block index).
pub type BlockId = (usize, usize);

impl DeepBinDiff {
    /// Embeds every block of the binary over the ICFG.
    pub fn embed_blocks(&self, bin: &Binary) -> Vec<(BlockId, Vec<f64>)> {
        // Global block numbering.
        let mut ids: Vec<BlockId> = Vec::new();
        let mut index_of = std::collections::HashMap::new();
        for (fi, f) in bin.functions.iter().enumerate() {
            for bi in 0..f.blocks.len() {
                index_of.insert((fi, bi), ids.len());
                ids.push((fi, bi));
            }
        }
        // ICFG adjacency: CFG successors + call edges to callee entries
        // (and back, making it symmetric for propagation).
        let n = ids.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let push_edge = |a: usize, b: usize, adj: &mut Vec<Vec<usize>>| {
            if a != b {
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                }
                if !adj[b].contains(&a) {
                    adj[b].push(a);
                }
            }
        };
        for (fi, f) in bin.functions.iter().enumerate() {
            for (bi, blk) in f.blocks.iter().enumerate() {
                let me = index_of[&(fi, bi)];
                for s in &blk.succs {
                    if let Some(&t) = index_of.get(&(fi, *s as usize)) {
                        push_edge(me, t, &mut adj);
                    }
                }
                for c in &blk.calls {
                    if let SymRef::Func(tf) = c {
                        if let Some(&t) = index_of.get(&(*tf as usize, 0)) {
                            push_edge(me, t, &mut adj);
                        }
                    }
                }
            }
        }
        // Own token features.
        let mut own: Vec<Vec<f64>> = Vec::with_capacity(n);
        for &(fi, bi) in &ids {
            let f = &bin.functions[fi];
            let mut v = vec![0.0; EMB_DIM];
            for t in block_tokens(&f.blocks[bi], &f.operand_pool) {
                add_token(&mut v, &t, 1.0);
            }
            own.push(v);
        }
        // Two propagation hops with decay.
        let mut state = own.clone();
        for _ in 0..2 {
            let mut next = state.clone();
            for (i, neigh) in adj.iter().enumerate() {
                if neigh.is_empty() {
                    continue;
                }
                for &j in neigh {
                    for k in 0..EMB_DIM {
                        next[i][k] += self.decay * state[j][k] / neigh.len() as f64;
                    }
                }
            }
            state = next;
        }
        for v in &mut state {
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in v.iter_mut() {
                    *x /= norm;
                }
            }
        }
        ids.into_iter().zip(state).collect()
    }

    /// Tool name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        "DeepBinDiff"
    }

    /// Configuration fingerprint for the embedding cache.
    pub fn config_fingerprint(&self) -> u64 {
        self.decay.to_bits()
    }

    /// Global block ids in the order [`DeepBinDiff::embed_blocks`]
    /// emits them (function-major, then block index).
    pub fn block_ids(bin: &Binary) -> Vec<BlockId> {
        let mut ids = Vec::new();
        for (fi, f) in bin.functions.iter().enumerate() {
            for bi in 0..f.blocks.len() {
                ids.push((fi, bi));
            }
        }
        ids
    }

    /// Block embeddings as a cached, normalized flat table (rows in
    /// [`DeepBinDiff::block_ids`] order).
    pub fn cached_block_embeddings(
        &self,
        bin: &Binary,
        cache: &EmbeddingCache,
    ) -> std::sync::Arc<FunctionEmbeddings> {
        cache.get_or_embed(
            EmbeddingCache::key("DeepBinDiff", self.config_fingerprint(), bin),
            || self.embed_blocks(bin).into_iter().map(|(_, v)| v).collect(),
        )
    }
}

/// The paper's §4.2 judgment for DeepBinDiff: each *query block's* top-1
/// match counts as successful when the functions the two blocks belong to
/// correspond under the provenance ground truth — even if the blocks
/// themselves are not truly corresponding.
pub fn deepbindiff_precision_at_1(tool: &DeepBinDiff, baseline: &Binary, obf: &Binary) -> f64 {
    let cache = EmbeddingCache::global();
    let qe = tool.cached_block_embeddings(baseline, cache);
    let te = tool.cached_block_embeddings(obf, cache);
    if qe.is_empty() || te.is_empty() {
        return 0.0;
    }
    let q_ids = DeepBinDiff::block_ids(baseline);
    let t_ids = DeepBinDiff::block_ids(obf);
    // Raw (unclamped) cosine, as the legacy per-pair loop used; the
    // first maximum wins on ties, matching the `s > best` scan.
    let matrix = SimilarityMatrix::from_embeddings_signed(&qe, &te);
    let mut success = 0usize;
    for (qi, qid) in q_ids.iter().enumerate() {
        let best = matrix.argmax_row(qi).expect("non-empty target");
        let (tfi, _) = t_ids[best];
        let qf = &baseline.functions[qid.0];
        let tf = &obf.functions[tfi];
        if crate::metrics::origins_match(&qf.provenance, &tf.provenance) {
            success += 1;
        }
    }
    success as f64 / q_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::vector::cosine;

    #[test]
    fn self_diff_is_perfect() {
        let b = small_binary("d");
        let tool = DeepBinDiff::default();
        let p = deepbindiff_precision_at_1(&tool, &b, &b);
        assert!(p > 0.99, "self diffing precision {p}");
    }

    #[test]
    fn block_embeddings_cover_all_blocks() {
        let b = small_binary("d");
        let tool = DeepBinDiff::default();
        let e = tool.embed_blocks(&b);
        let total: usize = b.functions.iter().map(|f| f.blocks.len()).sum();
        assert_eq!(e.len(), total);
    }

    #[test]
    fn context_matters() {
        // The same block content embedded in different graph contexts
        // produces different vectors.
        let b = small_binary("d");
        let tool = DeepBinDiff::default();
        let e = tool.embed_blocks(&b);
        let mut cut = b.clone();
        for f in &mut cut.functions {
            for blk in &mut f.blocks {
                blk.calls.clear();
                blk.succs.clear();
            }
        }
        let e2 = tool.embed_blocks(&cut);
        let drift: f64 = e
            .iter()
            .zip(&e2)
            .map(|((_, a), (_, b))| cosine(a, b))
            .sum::<f64>()
            / e.len() as f64;
        assert!(drift < 0.9999, "removing ICFG edges must move embeddings");
    }
}
