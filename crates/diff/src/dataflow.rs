//! `DataFlowDiff` — a data-flow-representation diffing tool.
//!
//! This tool does not appear in the paper's evaluation; it implements the
//! *prediction* of the paper's §5 discussion:
//!
//! > "Previous works pay much more attention to control flow rather than
//! > data flow. From the diffing perspective, data flow is harder to
//! > capture and encode. But from the obfuscation perspective, data flow
//! > is harder to change, too. Therefore, we predict the potential of
//! > data flow representation can be further tapped."
//!
//! Khaos moves code across function boundaries, which redraws control
//! flow (block counts, CFG edges, calls, the call graph) wholesale — but
//! the *computation* itself survives: an address calculation feeding a
//! load feeding an add is the same def-use chain whether it lives in the
//! `oriFunc`, a `sepFunc` or one arm of a `fusFunc`. `DataFlowDiff`
//! therefore embeds a function as a **bag of def-use edges** between
//! operation classes, plus chain-shape statistics, and ignores control
//! flow entirely.
//!
//! The extraction is a classic two-level reaching-definition sketch over
//! machine registers:
//!
//! * **intra-block**: exact last-writer tracking per register;
//! * **inter-block**: one-hop block summaries (`live-out` definition
//!   classes joined against successors' `upward-exposed` uses), which
//!   captures loop-carried and straight-line cross-block flow without a
//!   full fixpoint — enough signal, deterministic, and cheap;
//! * **through memory**: a store to `[base+off]` reaching a later load
//!   of the same slot in the same block is a data-flow edge too (spills
//!   and stack locals would otherwise hide chains).
//!
//! The experiment `experiments ext-dataflow` compares this tool's
//! Precision@1 under every obfuscation configuration against the five
//! paper tools (see `EXPERIMENTS.md`, extension E11).

use crate::tokens::opcode_class;
use crate::vector::{add_token, EMB_DIM};
use crate::Differ;
use khaos_binary::{BinBlock, BinFunction, Binary, MOperand, Opcode};
use std::collections::HashMap;

/// The data-flow-representation tool of the paper's §5 outlook.
///
/// Embeds a function as a bag of def-use edges between operation classes
/// (exact within blocks, one-hop summaries across blocks, store→load
/// slot dependences) plus chain-depth statistics, L2-normalized so
/// sub-functions of a fissioned body keep pointing the way the original
/// did. Carries no symbol, CFG-shape or call-graph features.
#[derive(Clone, Debug)]
pub struct DataFlowDiff {
    /// Weight of the one-round callee-bag propagation (`0.0` disables
    /// it). Fission cuts def-use chains at region boundaries and re-joins
    /// them with calls; following the data *through* those calls — the
    /// inter-procedural analysis the paper's §5 calls for — re-assembles
    /// the chain signature. Default `0.6`.
    pub callee_weight: f64,
}

impl Default for DataFlowDiff {
    fn default() -> Self {
        DataFlowDiff { callee_weight: 0.6 }
    }
}

impl DataFlowDiff {
    /// Creates the tool with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// A variant without the inter-procedural propagation round (the
    /// intra-procedural ablation).
    pub fn intra_only() -> Self {
        DataFlowDiff { callee_weight: 0.0 }
    }
}

/// Whether this opcode writes its first operand (when it is a register).
fn writes_dest(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::Store
            | Opcode::Cmp
            | Opcode::Test
            | Opcode::Ucomisd
            | Opcode::Jmp
            | Opcode::Jcc
            | Opcode::Call
            | Opcode::CallInd
            | Opcode::Ret
            | Opcode::Push
            | Opcode::Nop
    )
}

/// Register slots: integer and float registers get disjoint keys.
fn reg_key(o: &MOperand) -> Option<u16> {
    match o {
        MOperand::Reg(r) => Some(*r as u16),
        MOperand::FReg(r) => Some(0x100 + *r as u16),
        _ => None,
    }
}

/// The registers an instruction reads (destination excluded where the
/// opcode overwrites it; two-address ALU ops read their destination too).
fn reads_of(inst: &khaos_binary::MInst, pool: &[MOperand]) -> Vec<u16> {
    let mut rs = Vec::new();
    let dest_written = writes_dest(inst.opcode);
    for (i, o) in inst.operands(pool).iter().enumerate() {
        match o {
            MOperand::Reg(_) | MOperand::FReg(_) => {
                // Two-address semantics: ALU destinations are read-modify-
                // write; plain moves/loads overwrite without reading.
                let overwrites = dest_written
                    && i == 0
                    && matches!(
                        inst.opcode,
                        Opcode::Mov
                            | Opcode::MovImm
                            | Opcode::Load
                            | Opcode::Movsx
                            | Opcode::Movzx
                            | Opcode::Lea
                            | Opcode::Movsd
                            | Opcode::Setcc
                            | Opcode::Pop
                            | Opcode::Cvtsi2sd
                            | Opcode::Cvttsd2si
                            | Opcode::Cvtss2sd
                            | Opcode::Cvtsd2ss
                    );
                if !overwrites {
                    rs.push(reg_key(o).expect("register operand"));
                }
            }
            MOperand::Mem { base, .. } => rs.push(*base as u16),
            _ => {}
        }
    }
    rs
}

/// The register an instruction defines, if any. Calls clobber the return
/// register (`r0` in our ABI).
fn def_of(inst: &khaos_binary::MInst, pool: &[MOperand]) -> Option<u16> {
    if matches!(inst.opcode, Opcode::Call | Opcode::CallInd) {
        return Some(0);
    }
    if !writes_dest(inst.opcode) {
        return None;
    }
    inst.operands(pool).first().and_then(reg_key)
}

/// Per-block data-flow summary for the one-hop inter-block join.
struct BlockSummary {
    /// class of the last write to each register still live at block end.
    out_defs: HashMap<u16, &'static str>,
    /// class of the first read of each register before any write to it.
    exposed_uses: HashMap<u16, &'static str>,
}

/// Emits this block's intra-block edges into `vec` and returns its summary.
fn scan_block(
    b: &BinBlock,
    pool: &[MOperand],
    vec: &mut [f64],
    chain_lens: &mut Vec<u32>,
) -> BlockSummary {
    // reg -> (class of def, chain length so far)
    let mut last_def: HashMap<u16, (&'static str, u32)> = HashMap::new();
    let mut exposed: HashMap<u16, &'static str> = HashMap::new();

    for inst in &b.insts {
        let uclass = opcode_class(inst.opcode);
        let mut depth_in: u32 = 0;
        for r in reads_of(inst, pool) {
            match last_def.get(&r) {
                Some((dclass, depth)) => {
                    add_token(vec, &format!("df:{dclass}->{uclass}"), 1.0);
                    depth_in = depth_in.max(*depth);
                }
                None => {
                    exposed.entry(r).or_insert(uclass);
                }
            }
        }
        // Memory dependence: a store and a later load of the same slot.
        if inst.opcode == Opcode::Load {
            add_token(vec, "df:memread", 0.25);
        }
        if inst.opcode == Opcode::Store {
            add_token(vec, "df:memwrite", 0.25);
        }
        if let Some(d) = def_of(inst, pool) {
            let depth = depth_in + 1;
            if inst.opcode == Opcode::Ret {
                continue;
            }
            last_def.insert(d, (uclass, depth));
            chain_lens.push(depth);
        }
    }

    // Store→load same-slot edges (exact within the block).
    let mut stores: HashMap<(u8, i32), &'static str> = HashMap::new();
    for inst in &b.insts {
        match inst.opcode {
            Opcode::Store => {
                if let Some(MOperand::Mem { base, offset }) = inst.operands(pool).first() {
                    stores.insert((*base, *offset), "store");
                }
            }
            Opcode::Load => {
                if let Some(MOperand::Mem { base, offset }) = inst.operands(pool).get(1) {
                    if stores.contains_key(&(*base, *offset)) {
                        add_token(vec, "df:st->ld", 1.0);
                    }
                }
            }
            _ => {}
        }
    }

    BlockSummary {
        out_defs: last_def.into_iter().map(|(r, (c, _))| (r, c)).collect(),
        exposed_uses: exposed,
    }
}

/// Embeds one function as its data-flow signature.
fn embed_function(f: &BinFunction) -> Vec<f64> {
    let mut vec = vec![0.0; EMB_DIM];
    let mut chain_lens: Vec<u32> = Vec::new();
    let summaries: Vec<BlockSummary> = f
        .blocks
        .iter()
        .map(|b| scan_block(b, &f.operand_pool, &mut vec, &mut chain_lens))
        .collect();

    // One-hop inter-block join: defs flowing into successors' exposed uses.
    for (bi, b) in f.blocks.iter().enumerate() {
        for &s in &b.succs {
            let Some(succ) = summaries.get(s as usize) else {
                continue;
            };
            for (r, dclass) in &summaries[bi].out_defs {
                if let Some(uclass) = succ.exposed_uses.get(r) {
                    add_token(&mut vec, &format!("xdf:{dclass}->{uclass}"), 0.5);
                }
            }
        }
    }

    // Chain-shape statistics: bucketed def-use chain depths. These survive
    // code motion (the chain moves wholesale) but distinguish functions
    // with different computation depth.
    for d in &chain_lens {
        let bucket = match d {
            1 => "d1",
            2 => "d2",
            3..=4 => "d3",
            _ => "d5",
        };
        add_token(&mut vec, &format!("chain:{bucket}"), 0.5);
    }

    // L2-normalize so function size cancels: a sepFunc holding half the
    // chains of its oriFunc must still point in the same direction.
    let norm: f64 = vec.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut vec {
            *x /= norm;
        }
    }
    vec
}

/// One propagation round along direct call edges: each function's
/// data-flow signature absorbs its callees' (mean, dampened by `weight`),
/// re-normalized. This follows chains across the call boundaries fission
/// introduces.
fn propagate(bin: &Binary, raw: &[Vec<f64>], weight: f64) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(raw.len());
    for (i, f) in bin.functions.iter().enumerate() {
        let callees: Vec<usize> = f
            .blocks
            .iter()
            .flat_map(|b| &b.calls)
            .filter_map(|c| match c {
                khaos_binary::SymRef::Func(j) => Some(*j as usize),
                _ => None,
            })
            .filter(|&j| j != i && j < raw.len())
            .collect();
        let mut v = raw[i].clone();
        if !callees.is_empty() {
            let w = weight / callees.len() as f64;
            for &j in &callees {
                for (x, y) in v.iter_mut().zip(&raw[j]) {
                    *x += w * y;
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            }
        }
        out.push(v);
    }
    out
}

impl DataFlowDiff {
    /// The callee-propagated target view, derived from the (already
    /// normalized) raw target rows and cached under its own tool name.
    /// The single source of the `"DataFlowDiff#prop"` cache entry —
    /// both the batched matrix and the streaming scorer fetch through
    /// here, so the two paths can never diverge on what the key holds.
    fn propagated_target(
        &self,
        cache: &crate::EmbeddingCache,
        te: &crate::FunctionEmbeddings,
        target: &Binary,
        target_fingerprint: u64,
    ) -> std::sync::Arc<crate::FunctionEmbeddings> {
        let cfg = self.config_fingerprint();
        cache.get_or_embed(("DataFlowDiff#prop", cfg, target_fingerprint), || {
            let t_raw: Vec<Vec<f64>> = (0..te.len()).map(|i| te.row(i).to_vec()).collect();
            propagate(target, &t_raw, self.callee_weight)
        })
    }
}

impl Differ for DataFlowDiff {
    fn name(&self) -> &'static str {
        "DataFlowDiff"
    }

    fn config_fingerprint(&self) -> u64 {
        self.callee_weight.to_bits()
    }

    fn embed(&self, bin: &Binary) -> Vec<Vec<f64>> {
        bin.functions.iter().map(embed_function).collect()
    }

    /// Asymmetric matching. The query side (the analyst's reference
    /// build) keeps its complete intra-procedural signature. The target
    /// side is matched under **both** views — raw, and with one round of
    /// callee propagation — and the better one wins. When fission has
    /// moved half a body into `sepFunc`s, the propagated view of the
    /// `remFunc` re-assembles the original chain signature; on untouched
    /// functions the raw view dominates, so the propagation can only
    /// help, never pollute.
    fn similarity_matrix(&self, query: &Binary, target: &Binary) -> Vec<Vec<f64>> {
        use crate::vector::cosine;
        let q = self.embed(query);
        let t_raw = self.embed(target);
        if self.callee_weight == 0.0 {
            return q
                .iter()
                .map(|qi| t_raw.iter().map(|tj| cosine(qi, tj).max(0.0)).collect())
                .collect();
        }
        let t_prop = propagate(target, &t_raw, self.callee_weight);
        q.iter()
            .map(|qi| {
                t_raw
                    .iter()
                    .zip(&t_prop)
                    .map(|(tr, tp)| cosine(qi, tr).max(cosine(qi, tp)).max(0.0))
                    .collect()
            })
            .collect()
    }

    /// Batched form of the asymmetric two-view matching above: one
    /// matrix per target view (raw, callee-propagated) from cached
    /// normalized embeddings, merged elementwise. Clamping commutes
    /// with the elementwise max, so this matches the legacy path.
    fn batched_similarity_keyed(
        &self,
        query: &khaos_binary::Binary,
        target: &khaos_binary::Binary,
        cache: &crate::EmbeddingCache,
        query_fingerprint: u64,
        target_fingerprint: u64,
    ) -> crate::SimilarityMatrix {
        use crate::SimilarityMatrix;
        let cfg = self.config_fingerprint();
        let qe = cache.get_or_embed((self.name(), cfg, query_fingerprint), || self.embed(query));
        let te = cache.get_or_embed((self.name(), cfg, target_fingerprint), || {
            self.embed(target)
        });
        let mut m = SimilarityMatrix::from_embeddings(&qe, &te);
        if self.callee_weight != 0.0 {
            let tp = self.propagated_target(cache, &te, target, target_fingerprint);
            m.merge_max(&SimilarityMatrix::from_embeddings(&qe, &tp));
        }
        m
    }

    /// Streaming form of the two-view matching: per cell, the max of
    /// the raw and callee-propagated clamped dot products — exactly the
    /// `merge_max` of the two matrices the batched path builds.
    fn row_scorer_keyed<'a>(
        &'a self,
        query: &'a khaos_binary::Binary,
        target: &'a khaos_binary::Binary,
        cache: &crate::EmbeddingCache,
        query_fingerprint: u64,
        target_fingerprint: u64,
    ) -> Box<dyn crate::engine::RowScore + 'a> {
        use crate::engine::EmbedScorer;
        let cfg = self.config_fingerprint();
        let qe = cache.get_or_embed((self.name(), cfg, query_fingerprint), || self.embed(query));
        let te = cache.get_or_embed((self.name(), cfg, target_fingerprint), || {
            self.embed(target)
        });
        if self.callee_weight == 0.0 {
            return Box::new(EmbedScorer::new(qe, te, true));
        }
        let tp = self.propagated_target(cache, &te, target, target_fingerprint);
        Box::new(TwoViewScorer {
            raw: EmbedScorer::new(std::sync::Arc::clone(&qe), te, true),
            propagated: EmbedScorer::new(qe, tp, true),
        })
    }
}

/// Best-of-two-views [`crate::engine::RowScore`]: raw vs
/// callee-propagated target embeddings.
struct TwoViewScorer {
    raw: crate::engine::EmbedScorer,
    propagated: crate::engine::EmbedScorer,
}

impl crate::engine::RowScore for TwoViewScorer {
    fn rows(&self) -> usize {
        crate::engine::RowScore::rows(&self.raw)
    }
    fn cols(&self) -> usize {
        crate::engine::RowScore::cols(&self.raw)
    }
    fn score(&self, qi: usize, j: usize) -> f64 {
        crate::engine::RowScore::score(&self.raw, qi, j).max(crate::engine::RowScore::score(
            &self.propagated,
            qi,
            j,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::vector::cosine;
    use khaos_binary::{MInst, SymRef};

    #[test]
    fn def_use_roles() {
        let mut pool = Vec::new();
        let add = MInst::alloc(
            &mut pool,
            Opcode::Add,
            &[MOperand::Reg(1), MOperand::Reg(2)],
        );
        assert_eq!(def_of(&add, &pool), Some(1));
        assert_eq!(
            reads_of(&add, &pool),
            vec![1, 2],
            "two-address add reads its dest"
        );

        let mv = MInst::alloc(
            &mut pool,
            Opcode::Mov,
            &[MOperand::Reg(1), MOperand::Reg(2)],
        );
        assert_eq!(def_of(&mv, &pool), Some(1));
        assert_eq!(
            reads_of(&mv, &pool),
            vec![2],
            "mov overwrites without reading"
        );

        let st = MInst::alloc(
            &mut pool,
            Opcode::Store,
            &[
                MOperand::Mem {
                    base: 5,
                    offset: -8,
                },
                MOperand::Reg(3),
            ],
        );
        assert_eq!(def_of(&st, &pool), None);
        assert_eq!(
            reads_of(&st, &pool),
            vec![5, 3],
            "store reads base and value"
        );

        let call = MInst::alloc(&mut pool, Opcode::Call, &[MOperand::Sym(SymRef::Func(0))]);
        assert_eq!(
            def_of(&call, &pool),
            Some(0),
            "call clobbers the return register"
        );
    }

    #[test]
    fn float_registers_are_distinct_slots() {
        let mut pool = Vec::new();
        let a = MInst::alloc(
            &mut pool,
            Opcode::Addsd,
            &[MOperand::FReg(1), MOperand::FReg(2)],
        );
        assert_eq!(def_of(&a, &pool), Some(0x101));
        assert_eq!(reads_of(&a, &pool), vec![0x101, 0x102]);
    }

    #[test]
    fn self_similarity_is_one() {
        let b = small_binary("x");
        let t = DataFlowDiff::new();
        let m = t.similarity_matrix(&b, &b);
        for (i, row) in m.iter().enumerate() {
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            assert_eq!(best.0, i, "function {i} matches itself");
            assert!(*best.1 > 0.999);
        }
    }

    #[test]
    fn distinguishes_different_computations() {
        let b = small_binary("x");
        let t = DataFlowDiff::new();
        let e = t.embed(&b);
        // alpha (loopy accumulator) vs beta (branchy bit-twiddler) must not
        // be confusable.
        let sim = cosine(&e[0], &e[1]);
        assert!(sim < 0.98, "distinct functions stay distinguishable: {sim}");
    }

    #[test]
    fn embedding_is_size_invariant_in_direction() {
        // A function and "the same function twice" (duplicated block) point
        // the same way: the L2 normalization makes sub-function matching
        // possible after fission.
        let b = small_binary("x");
        let mut doubled = b.clone();
        let extra = doubled.functions[0].blocks.clone();
        doubled.functions[0].blocks.extend(extra);
        // Fix up successor indices of the copied tail so they stay in range
        // (shape only matters for the one-hop join; clamp).
        let n = doubled.functions[0].blocks.len() as u32;
        for blk in &mut doubled.functions[0].blocks {
            for s in &mut blk.succs {
                *s %= n;
            }
        }
        let t = DataFlowDiff::new();
        let e1 = t.embed(&b);
        let e2 = t.embed(&doubled);
        let sim = cosine(&e1[0], &e2[0]);
        assert!(
            sim > 0.95,
            "doubling the body barely moves the direction: {sim}"
        );
    }

    #[test]
    fn store_load_dependence_detected() {
        use khaos_binary::{BinBlock, BinFunction, BinProvenance};
        let mk = |with_reload: bool| {
            let mut pool = Vec::new();
            let mut blk = BinBlock::default();
            blk.push_inst(
                &mut pool,
                Opcode::Store,
                &[
                    MOperand::Mem {
                        base: 5,
                        offset: -16,
                    },
                    MOperand::Reg(1),
                ],
            );
            if with_reload {
                blk.push_inst(
                    &mut pool,
                    Opcode::Load,
                    &[
                        MOperand::Reg(2),
                        MOperand::Mem {
                            base: 5,
                            offset: -16,
                        },
                    ],
                );
            }
            blk.push_inst(&mut pool, Opcode::Ret, &[]);
            Binary {
                build_provenance: 0,
                name: "t".into(),
                functions: vec![BinFunction {
                    name: Some("f".into()),
                    provenance: BinProvenance {
                        origins: vec!["f".into()],
                        annotations: vec![],
                    },
                    exported: false,
                    blocks: vec![blk],
                    operand_pool: pool,
                }],
                relocations: vec![],
                externals: vec![],
                stripped: false,
            }
        };
        let t = DataFlowDiff::new();
        let with = t.embed(&mk(true));
        let without = t.embed(&mk(false));
        assert!(
            cosine(&with[0], &without[0]) < 1.0 - 1e-9,
            "the st->ld edge must contribute"
        );
    }
}
