//! Instruction tokenization shared by the embedding tools.
//!
//! Operands are normalized to classes — the standard preprocessing of
//! Asm2Vec/SAFE/DeepBinDiff (concrete registers and addresses carry no
//! cross-binary signal; immediates are bucketed).
//!
//! Instructions store their operands as ranges into the owning
//! function's flat [`khaos_binary::BinFunction::operand_pool`], so the
//! per-instruction tokenizers take the pool alongside the instruction;
//! the function-level streams resolve it themselves.

use khaos_binary::{BinBlock, BinFunction, MInst, MOperand, Opcode, SymRef};

/// Coarse semantic class of an opcode. The learned models (Asm2Vec, SAFE)
/// embed *semantics*, which makes them robust against instruction
/// substitution — `add` and the `sub`-chains O-LLVM replaces it with live
/// in the same class.
pub fn opcode_class(op: Opcode) -> &'static str {
    match op {
        Opcode::Mov | Opcode::MovImm | Opcode::Movsx | Opcode::Movzx | Opcode::Movsd => "mov",
        Opcode::Load => "load",
        Opcode::Store => "store",
        Opcode::Lea => "lea",
        // One class for simple integer ALU work: `add` and the
        // `sub/xor/and` chains O-LLVM's Sub rewrites it into are
        // semantically interchangeable to a learned model.
        Opcode::Add
        | Opcode::Sub
        | Opcode::Neg
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Not
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::Sar => "alu",
        Opcode::Imul | Opcode::Idiv | Opcode::Div => "muldiv",
        Opcode::Cmp | Opcode::Test | Opcode::Ucomisd => "cmp",
        Opcode::Setcc | Opcode::Cmov => "cc",
        Opcode::Jmp | Opcode::Jcc => "jump",
        Opcode::Call | Opcode::CallInd => "call",
        Opcode::Ret => "ret",
        Opcode::Push | Opcode::Pop => "stack",
        Opcode::Addsd | Opcode::Subsd | Opcode::Mulsd | Opcode::Divsd | Opcode::Xorps => "fparith",
        Opcode::Cvtsi2sd | Opcode::Cvttsd2si | Opcode::Cvtss2sd | Opcode::Cvtsd2ss => "cvt",
        Opcode::Nop => "nop",
    }
}

/// Shared body of [`inst_token`]/[`inst_class_token`]: head word plus
/// comma-joined operand classes.
fn token_with_head(head: &str, i: &MInst, pool: &[MOperand]) -> String {
    let ops = i.operands(pool);
    let mut s = String::with_capacity(head.len() + 7 * ops.len());
    s.push_str(head);
    for (k, o) in ops.iter().enumerate() {
        s.push(if k == 0 { ' ' } else { ',' });
        s.push_str(operand_class(o));
    }
    s
}

/// Semantic-class token of an instruction, e.g. `"arith reg,imm8"`.
pub fn inst_class_token(i: &MInst, pool: &[MOperand]) -> String {
    token_with_head(opcode_class(i.opcode), i, pool)
}

/// Class tokens of one block (used by the learned-model stand-ins).
pub fn block_class_tokens(b: &BinBlock, pool: &[MOperand]) -> Vec<String> {
    b.insts.iter().map(|i| inst_class_token(i, pool)).collect()
}

/// The linear class-token stream of a function.
pub fn function_class_stream(f: &BinFunction) -> Vec<String> {
    f.blocks
        .iter()
        .flat_map(|b| block_class_tokens(b, &f.operand_pool))
        .collect()
}

/// Normalizes one operand to a token fragment.
pub fn operand_class(o: &MOperand) -> &'static str {
    match o {
        MOperand::Reg(_) => "reg",
        MOperand::FReg(_) => "xmm",
        MOperand::Imm(v) => {
            // Bucketed immediates, as Asm2Vec does.
            if *v == 0 {
                "imm0"
            } else if (-128..=127).contains(v) {
                "imm8"
            } else {
                "imm32"
            }
        }
        MOperand::Mem { .. } => "mem",
        MOperand::Sym(SymRef::Func(_)) => "fnsym",
        MOperand::Sym(SymRef::Global(_)) => "glsym",
        MOperand::Sym(SymRef::Ext(_)) => "extsym",
        MOperand::Label(_) => "loc",
    }
}

/// Normalized token of a whole instruction, e.g. `"add reg,imm8"`.
pub fn inst_token(i: &MInst, pool: &[MOperand]) -> String {
    token_with_head(i.opcode.mnemonic(), i, pool)
}

/// Tokens of one block.
pub fn block_tokens(b: &BinBlock, pool: &[MOperand]) -> Vec<String> {
    b.insts.iter().map(|i| inst_token(i, pool)).collect()
}

/// The linear token stream of a function (layout order).
pub fn function_token_stream(f: &BinFunction) -> Vec<String> {
    f.blocks
        .iter()
        .flat_map(|b| block_tokens(b, &f.operand_pool))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_binary::{MInst, Opcode};

    #[test]
    fn tokens_normalize_operands() {
        let mut pool = Vec::new();
        let i = MInst::alloc(
            &mut pool,
            Opcode::Add,
            &[MOperand::Reg(3), MOperand::Imm(5)],
        );
        assert_eq!(inst_token(&i, &pool), "add reg,imm8");
        let j = MInst::alloc(
            &mut pool,
            Opcode::Add,
            &[MOperand::Reg(9), MOperand::Imm(77)],
        );
        assert_eq!(
            inst_token(&i, &pool),
            inst_token(&j, &pool),
            "register ids are abstracted"
        );
    }

    #[test]
    fn immediates_bucketed() {
        let mut pool = Vec::new();
        let z = MInst::alloc(
            &mut pool,
            Opcode::MovImm,
            &[MOperand::Reg(0), MOperand::Imm(0)],
        );
        let small = MInst::alloc(
            &mut pool,
            Opcode::MovImm,
            &[MOperand::Reg(0), MOperand::Imm(-5)],
        );
        let big = MInst::alloc(
            &mut pool,
            Opcode::MovImm,
            &[MOperand::Reg(0), MOperand::Imm(100000)],
        );
        assert_eq!(inst_token(&z, &pool), "mov reg,imm0");
        assert_eq!(inst_token(&small, &pool), "mov reg,imm8");
        assert_eq!(inst_token(&big, &pool), "mov reg,imm32");
    }

    #[test]
    fn symbol_classes_differ() {
        let mut pool = Vec::new();
        let c1 = MInst::alloc(&mut pool, Opcode::Call, &[MOperand::Sym(SymRef::Func(4))]);
        let c2 = MInst::alloc(&mut pool, Opcode::Call, &[MOperand::Sym(SymRef::Ext(0))]);
        assert_ne!(inst_token(&c1, &pool), inst_token(&c2, &pool));
    }
}
