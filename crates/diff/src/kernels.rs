//! Runtime-dispatched SIMD dot-product kernels.
//!
//! Every §4.2 metric bottoms out in a dot product over normalized
//! embedding rows. This module replaces "hope the autovectorizer shows
//! up" with explicit `std::arch` kernels behind **one-time runtime
//! CPU-feature detection**, wasmtime-ISA-flag style:
//!
//! * [`dot`] — the single *checked* dispatch entry point for `f64`
//!   rows (the length `debug_assert` that used to be duplicated across
//!   `dot_scalar`/`dot_blocked` lives here, and those entry points now
//!   delegate to the same raw kernels).
//! * [`dot_i8`] — its integer sibling for the quantized tier: an
//!   `i32`-accumulating `i8` dot with its own per-ISA kernels.
//! * [`KernelKind`] — `Scalar` (the 8-wide blocked kernel, always
//!   available), `Avx2`, `Avx512` — selected once per process via
//!   [`is_x86_feature_detected!`] and cached in a [`OnceLock`], with
//!   the **`KHAOS_SIMD={auto,scalar,avx2,avx512}`** environment
//!   variable overriding detection so every variant is testable on one
//!   host. An unknown or unavailable request warns once and falls back
//!   to `auto`.
//!
//! # Bit-exactness (and why there is no FMA here)
//!
//! The repo's standing invariant is that **ranked artifacts are
//! bit-identical** across thread counts, shard splits, cache tiers —
//! and now dispatch choices. Ranked artifacts carry raw score bits, so
//! the f64 kernels must agree *bitwise*, not just to 1e-12. Every
//! variant therefore computes the exact same reduction as the scalar
//! blocked kernel: eight independent accumulators fed by
//! round-after-multiply, round-after-add (`a*b` then `+=`, two IEEE
//! roundings), combined in the fixed tree
//! `((acc0+acc4)+(acc2+acc6)) + ((acc1+acc5)+(acc3+acc7)) + tail`,
//! with the tail accumulated sequentially in index order. AVX2 holds
//! `acc0..3`/`acc4..7` in two 4-lane registers, AVX-512 holds all
//! eight in one — same values, same rounding, same bits. A fused
//! multiply-add would skip the intermediate rounding and change the
//! low bits per-ISA, which is exactly the divergence the invariant
//! forbids; the ~2× FLOP win is deliberately left on the table and the
//! speedup comes from width + the broken accumulator dependency chain.
//! (Equivalence to the *naive* [`crate::engine::dot_scalar`] stays
//! 1e-12, as before — reassociation vs. one accumulator.)
//!
//! The `i8` kernels accumulate in integers, where every summation
//! order is exact, so they are trivially bit-identical across ISAs;
//! the accumulator is an `i32`, exact while `dim · 127² < 2³¹`
//! (dim ≲ 133k — embedding rows here are 128-dimensional).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A dot-product kernel implementation, selected at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// The portable 8-accumulator blocked kernel. Always available.
    Scalar,
    /// 256-bit AVX2 lanes (four f64 / sixteen i8-pairs per op).
    Avx2,
    /// 512-bit AVX-512 lanes. Requires `avx512f` for the f64 kernel
    /// and `avx512bw` for the i8 kernel, so availability is gated on
    /// **both**.
    Avx512,
}

impl KernelKind {
    /// The spelling `KHAOS_SIMD` uses for this kernel.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2 => "avx2",
            KernelKind::Avx512 => "avx512",
        }
    }

    fn index(self) -> u8 {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Avx2 => 1,
            KernelKind::Avx512 => 2,
        }
    }

    fn from_index(i: u8) -> KernelKind {
        match i {
            1 => KernelKind::Avx2,
            2 => KernelKind::Avx512,
            _ => KernelKind::Scalar,
        }
    }
}

/// The kernel function pointers of one [`KernelKind`]. The pointers
/// wrap `#[target_feature]` functions in safe `fn`s; installing a
/// table is only done after the matching CPU features were detected,
/// which is what makes the wrappers sound.
#[derive(Clone, Copy)]
pub struct KernelTable {
    /// Which kernel this table dispatches to.
    pub kind: KernelKind,
    dot_raw: fn(&[f64], &[f64]) -> f64,
    dot_i8_raw: fn(&[i8], &[i8]) -> i32,
    scan_i8_raw: fn(&[i8], &[i8], &mut [i32]),
}

impl KernelTable {
    /// `f64` dot product through this table, with the consolidated
    /// length check (`zip` would silently truncate otherwise).
    #[inline]
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "dot over mismatched dimensions");
        (self.dot_raw)(a, b)
    }

    /// `i8` dot product with `i32` accumulation through this table.
    #[inline]
    pub fn dot_i8(&self, a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len(), "dot over mismatched dimensions");
        (self.dot_i8_raw)(a, b)
    }

    /// Row-batched i8 scan: `out[r]` becomes the [`Self::dot_i8`] of
    /// `q` against the `r`-th row of the packed block `rows`
    /// (`dim = q.len()`, `out.len()` consecutive rows) — one dispatch
    /// call for a whole block instead of one per row. Integer adds
    /// are exact, so every `out[r]` equals the per-row call.
    #[inline]
    pub fn scan_i8(&self, q: &[i8], rows: &[i8], out: &mut [i32]) {
        debug_assert_eq!(
            rows.len(),
            q.len() * out.len(),
            "scan over a mismatched row block"
        );
        (self.scan_i8_raw)(q, rows, out)
    }
}

static SCALAR_TABLE: KernelTable = KernelTable {
    kind: KernelKind::Scalar,
    dot_raw: raw::dot_blocked,
    dot_i8_raw: raw::dot_i8,
    scan_i8_raw: raw::scan_i8,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    kind: KernelKind::Avx2,
    dot_raw: x86::dot_avx2_safe,
    dot_i8_raw: x86::dot_i8_avx2_safe,
    scan_i8_raw: x86::scan_i8_avx2_safe,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    kind: KernelKind::Avx512,
    dot_raw: x86::dot_avx512_safe,
    dot_i8_raw: x86::dot_i8_avx512_safe,
    scan_i8_raw: x86::scan_i8_avx512_safe,
};

/// The table for `kind`, or `None` when this host lacks the features.
/// Tests and benches use this to exercise every variant directly
/// without touching the process-global dispatch.
pub fn table_for(kind: KernelKind) -> Option<&'static KernelTable> {
    match kind {
        KernelKind::Scalar => Some(&SCALAR_TABLE),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 if is_x86_feature_detected!("avx2") => Some(&AVX2_TABLE),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx512
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") =>
        {
            Some(&AVX512_TABLE)
        }
        _ => None,
    }
}

/// Every kernel this host can run, `Scalar` first.
pub fn available() -> Vec<KernelKind> {
    [KernelKind::Scalar, KernelKind::Avx2, KernelKind::Avx512]
        .into_iter()
        .filter(|&k| table_for(k).is_some())
        .collect()
}

/// The best kernel the CPU supports, ignoring the env override.
fn detect_best() -> KernelKind {
    *[KernelKind::Avx512, KernelKind::Avx2]
        .iter()
        .find(|&&k| table_for(k).is_some())
        .unwrap_or(&KernelKind::Scalar)
}

/// Resolves `KHAOS_SIMD` once: `auto`/unset → best detected; a named
/// kernel → that kernel when available, else warn once and fall back
/// to `auto` (matching `khaos-par`'s `KHAOS_THREADS` discipline: a bad
/// value must not abort a long sweep, but it must not pass silently
/// either).
fn resolved_from_env() -> KernelKind {
    static RESOLVED: OnceLock<KernelKind> = OnceLock::new();
    *RESOLVED.get_or_init(|| {
        let raw = std::env::var("KHAOS_SIMD").unwrap_or_default();
        let want = raw.trim().to_ascii_lowercase();
        match want.as_str() {
            "" | "auto" => detect_best(),
            "scalar" => KernelKind::Scalar,
            "avx2" | "avx512" => {
                let kind = if want == "avx2" {
                    KernelKind::Avx2
                } else {
                    KernelKind::Avx512
                };
                if table_for(kind).is_some() {
                    kind
                } else {
                    eprintln!(
                        "khaos-diff: KHAOS_SIMD={want} is not available on this CPU; \
                         falling back to {}",
                        detect_best().name()
                    );
                    detect_best()
                }
            }
            other => {
                eprintln!(
                    "khaos-diff: ignoring unrecognized KHAOS_SIMD=`{other}` \
                     (expected auto, scalar, avx2 or avx512); using {}",
                    detect_best().name()
                );
                detect_best()
            }
        }
    })
}

/// The active dispatch choice: `UNRESOLVED` until first use (or a
/// [`force_kernel`] call), then a [`KernelKind::index`]. Relaxed
/// ordering is fine — every kernel returns bit-identical results, so
/// a racing resolve can only redundantly store the same decision.
const UNRESOLVED: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// The dispatch table of the active kernel — resolve once, then call
/// through it in a hot loop without re-paying the atomic load per dot
/// (the quantized shortlist scan does exactly this).
#[inline]
pub fn active_table() -> &'static KernelTable {
    let idx = ACTIVE.load(Ordering::Relaxed);
    let kind = if idx == UNRESOLVED {
        let k = resolved_from_env();
        ACTIVE.store(k.index(), Ordering::Relaxed);
        k
    } else {
        KernelKind::from_index(idx)
    };
    table_for(kind).unwrap_or(&SCALAR_TABLE)
}

/// The kernel the dispatched entry points currently run.
pub fn active() -> KernelKind {
    active_table().kind
}

/// Overrides the active dispatch: `Some(kind)` forces a specific
/// kernel (panicking when the host cannot run it — this is a bench /
/// test instrument, not a production path), `None` restores the
/// `KHAOS_SIMD`/auto resolution. Returns the now-active kind. Safe to
/// call with tests running concurrently because every kernel is
/// bit-identical; the observable effect is timing only.
pub fn force_kernel(kind: Option<KernelKind>) -> KernelKind {
    match kind {
        Some(k) => {
            assert!(
                table_for(k).is_some(),
                "KHAOS_SIMD kernel {} is not available on this host",
                k.name()
            );
            ACTIVE.store(k.index(), Ordering::Relaxed);
            k
        }
        None => {
            let k = resolved_from_env();
            ACTIVE.store(k.index(), Ordering::Relaxed);
            k
        }
    }
}

/// The dispatched `f64` dot product — the one checked entry point the
/// matrix build, every [`crate::engine::RowScore`] scorer and the
/// streaming top-k path run on.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    active_table().dot(a, b)
}

/// The dispatched `i8` dot product (`i32` accumulation) under the
/// quantized tier's shortlist scan.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    active_table().dot_i8(a, b)
}

/// The portable kernels: the 8-accumulator blocked f64 reduction every
/// SIMD variant replicates bit-for-bit, and the index-order i8 sum.
pub(crate) mod raw {
    /// 8-wide blocked dot product with a scalar tail (unchecked; the
    /// length check lives in the dispatch entry points).
    pub fn dot_blocked(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = [0.0f64; 8];
        let mut ca = a.chunks_exact(8);
        let mut cb = b.chunks_exact(8);
        for (xa, xb) in (&mut ca).zip(&mut cb) {
            for k in 0..8 {
                acc[k] += xa[k] * xb[k];
            }
        }
        let tail = tail_dot(ca.remainder(), cb.remainder());
        ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7])) + tail
    }

    /// The shared sequential tail: every variant must accumulate the
    /// sub-8 remainder in index order for the bits to agree.
    #[inline]
    pub fn tail_dot(a: &[f64], b: &[f64]) -> f64 {
        let mut tail = 0.0;
        for (x, y) in a.iter().zip(b) {
            tail += x * y;
        }
        tail
    }

    /// Index-order i8 dot with i32 accumulation. Integer adds are
    /// exact, so any reassociation in the SIMD variants is free.
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (x, y) in a.iter().zip(b) {
            acc += *x as i32 * *y as i32;
        }
        acc
    }

    /// The i8 tail shared by the SIMD variants.
    #[inline]
    pub fn tail_dot_i8(a: &[i8], b: &[i8]) -> i32 {
        dot_i8(a, b)
    }

    /// Row-batched i8 scan over a packed row block (`dim = q.len()`):
    /// one [`dot_i8`] per row, in row order.
    pub fn scan_i8(q: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = q.len();
        if dim == 0 {
            out.fill(0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
            *o = dot_i8(q, row);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::raw;
    use std::arch::x86_64::*;

    // Safe wrappers: sound because the dispatch layer only hands out
    // these tables after `is_x86_feature_detected!` confirmed the
    // features (see `table_for`).
    pub fn dot_avx2_safe(a: &[f64], b: &[f64]) -> f64 {
        unsafe { dot_avx2(a, b) }
    }
    pub fn dot_avx512_safe(a: &[f64], b: &[f64]) -> f64 {
        unsafe { dot_avx512(a, b) }
    }
    pub fn dot_i8_avx2_safe(a: &[i8], b: &[i8]) -> i32 {
        unsafe { dot_i8_avx2(a, b) }
    }
    pub fn dot_i8_avx512_safe(a: &[i8], b: &[i8]) -> i32 {
        unsafe { dot_i8_avx512(a, b) }
    }
    pub fn scan_i8_avx2_safe(q: &[i8], rows: &[i8], out: &mut [i32]) {
        unsafe { scan_i8_avx2(q, rows, out) }
    }
    pub fn scan_i8_avx512_safe(q: &[i8], rows: &[i8], out: &mut [i32]) {
        unsafe { scan_i8_avx512(q, rows, out) }
    }

    /// AVX2 replica of the blocked reduction: `acc0..3` / `acc4..7`
    /// live in two 4-lane registers; `mul` then `add` keeps both IEEE
    /// roundings (no FMA — see the module docs), and the final tree
    /// `(l0+l2)+(l1+l3)` over `l = lo+hi` expands to exactly
    /// `((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7))`.
    ///
    /// # Safety
    /// Caller must have verified `avx2` is available.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for blk in 0..blocks {
            let i = blk * 8;
            let a0 = _mm256_loadu_pd(ap.add(i));
            let b0 = _mm256_loadu_pd(bp.add(i));
            let a1 = _mm256_loadu_pd(ap.add(i + 4));
            let b1 = _mm256_loadu_pd(bp.add(i + 4));
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(a0, b0));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(a1, b1));
        }
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), _mm256_add_pd(acc_lo, acc_hi));
        let head = (l[0] + l[2]) + (l[1] + l[3]);
        head + raw::tail_dot(&a[blocks * 8..n], &b[blocks * 8..n])
    }

    /// AVX-512 replica: all eight accumulators in one 512-bit
    /// register; the reduction tree is spelled out lane-by-lane so it
    /// stays the scalar kernel's exact association.
    ///
    /// # Safety
    /// Caller must have verified `avx512f` is available.
    #[target_feature(enable = "avx512f")]
    unsafe fn dot_avx512(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let blocks = n / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm512_setzero_pd();
        for blk in 0..blocks {
            let i = blk * 8;
            let va = _mm512_loadu_pd(ap.add(i));
            let vb = _mm512_loadu_pd(bp.add(i));
            acc = _mm512_add_pd(acc, _mm512_mul_pd(va, vb));
        }
        let mut l = [0.0f64; 8];
        _mm512_storeu_pd(l.as_mut_ptr(), acc);
        let head = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
        head + raw::tail_dot(&a[blocks * 8..n], &b[blocks * 8..n])
    }

    /// AVX2 i8 dot: sign-extend 16 bytes to 16×i16, `madd` adjacent
    /// pairs into 8×i32, accumulate. Two accumulators break the (one
    /// cycle, but real) add dependency chain. Integer arithmetic is
    /// exact, so the horizontal sum order is free.
    ///
    /// # Safety
    /// Caller must have verified `avx2` is available.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let blocks = n / 32;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        for blk in 0..blocks {
            let i = blk * 32;
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i) as *const __m128i));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i) as *const __m128i));
            let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(i + 16) as *const __m128i));
            let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(i + 16) as *const __m128i));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, b0));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a1, b1));
        }
        let mut l = [0i32; 8];
        _mm256_storeu_si256(l.as_mut_ptr() as *mut __m256i, _mm256_add_epi32(acc0, acc1));
        let head: i32 = l.iter().sum();
        head + raw::tail_dot_i8(&a[blocks * 32..n], &b[blocks * 32..n])
    }

    /// AVX-512 i8 dot: 32 bytes per step through `vpmaddwd`
    /// (`avx512bw`), reduced with the `avx512f` horizontal add.
    ///
    /// # Safety
    /// Caller must have verified `avx512f` **and** `avx512bw`.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn dot_i8_avx512(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let blocks = n / 32;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm512_setzero_si512();
        for blk in 0..blocks {
            let i = blk * 32;
            let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(ap.add(i) as *const __m256i));
            let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(bp.add(i) as *const __m256i));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
        }
        let head = _mm512_reduce_add_epi32(acc);
        head + raw::tail_dot_i8(&a[blocks * 32..n], &b[blocks * 32..n])
    }

    /// Row-batched AVX2 i8 scan: the whole block loops inside one
    /// `target_feature` context, so the per-row dot inlines and the
    /// dispatch call is paid once per block instead of once per row.
    ///
    /// # Safety
    /// Caller must have verified `avx2` is available.
    #[target_feature(enable = "avx2")]
    unsafe fn scan_i8_avx2(q: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = q.len();
        if dim == 0 {
            out.fill(0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
            *o = unsafe { dot_i8_avx2(q, row) };
        }
    }

    /// Row-batched AVX-512 i8 scan (same shape as the AVX2 one).
    ///
    /// # Safety
    /// Caller must have verified `avx512f` **and** `avx512bw`.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn scan_i8_avx512(q: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = q.len();
        if dim == 0 {
            out.fill(0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
            *o = unsafe { dot_i8_avx512(q, row) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::dot_scalar;

    /// The remainder-length sweep the satellite task names: every
    /// block/tail split the kernels distinguish, plus a long row.
    const LENGTHS: [usize; 9] = [0, 1, 7, 8, 9, 63, 64, 65, 1000];

    /// Deterministic pseudo-random f64s in [-1, 1) (xorshift; no
    /// `rand` in this offline environment).
    fn rand_vec(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    /// Plants IEEE edge cases — NaN, ±0.0, a subnormal, ±inf-adjacent
    /// magnitudes — in both the blocked head and the scalar tail.
    fn hostile_vec(seed: u64, len: usize) -> Vec<f64> {
        let mut v = rand_vec(seed, len);
        let specials = [
            f64::NAN,
            0.0,
            -0.0,
            f64::MIN_POSITIVE / 4.0,
            -f64::MIN_POSITIVE / 4.0,
            1e300,
            -1e300,
        ];
        for (i, x) in v.iter_mut().enumerate() {
            if i % 5 == 3 {
                *x = specials[i % specials.len()];
            }
        }
        v
    }

    #[test]
    fn every_variant_matches_scalar_bitwise_on_all_remainder_lengths() {
        for kind in available() {
            let table = table_for(kind).expect("listed as available");
            for &n in &LENGTHS {
                for seed in 0..4u64 {
                    let a = rand_vec(seed * 2 + 1, n);
                    let b = rand_vec(seed * 2 + 2, n);
                    let want = SCALAR_TABLE.dot(&a, &b);
                    let got = table.dot(&a, &b);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{} vs scalar at n={n} seed={seed}: {got} vs {want}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn hostile_inputs_are_bit_identical_across_variants() {
        for kind in available() {
            let table = table_for(kind).expect("listed as available");
            for &n in &LENGTHS {
                let a = hostile_vec(0xA5, n);
                let b = hostile_vec(0x5A, n);
                let want = SCALAR_TABLE.dot(&a, &b);
                let got = table.dot(&a, &b);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{} at n={n}: NaN/±0.0/subnormal row must not diverge",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn dispatched_dot_stays_within_1e12_of_naive_scalar() {
        // The historical pin: blocked (and therefore every SIMD
        // variant, which is bit-identical to blocked) reassociates
        // relative to the one-accumulator naive sum.
        for &n in &LENGTHS {
            let a = rand_vec(7, n);
            let b = rand_vec(11, n);
            let naive = dot_scalar(&a, &b);
            assert!(
                (dot(&a, &b) - naive).abs() <= 1e-12,
                "n={n}: dispatched vs naive"
            );
        }
    }

    #[test]
    fn i8_kernels_agree_exactly_across_variants() {
        for kind in available() {
            let table = table_for(kind).expect("listed as available");
            for &n in &LENGTHS {
                for seed in 0..4u64 {
                    // Full i8 range including -128 and saturating
                    // extremes; products fit i32 at these lengths.
                    let a: Vec<i8> = rand_vec(seed + 21, n)
                        .iter()
                        .map(|x| (x * 128.0).floor().clamp(-128.0, 127.0) as i8)
                        .collect();
                    let b: Vec<i8> = (0..n)
                        .map(|i| match i % 7 {
                            0 => i8::MIN,
                            1 => i8::MAX,
                            2 => 0,
                            k => (k as i8) * 17 - 34,
                        })
                        .collect();
                    let want = SCALAR_TABLE.dot_i8(&a, &b);
                    assert_eq!(
                        table.dot_i8(&a, &b),
                        want,
                        "{} i8 at n={n} seed={seed}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn i8_scan_matches_per_row_dots_across_variants() {
        for kind in available() {
            let table = table_for(kind).expect("listed as available");
            for &dim in &[0usize, 1, 7, 31, 32, 33, 64, 65] {
                let nrows = 5;
                let q: Vec<i8> = rand_vec(97, dim)
                    .iter()
                    .map(|x| (x * 128.0).floor().clamp(-128.0, 127.0) as i8)
                    .collect();
                let rows: Vec<i8> = rand_vec(131, dim * nrows)
                    .iter()
                    .map(|x| (x * 128.0).floor().clamp(-128.0, 127.0) as i8)
                    .collect();
                let mut got = vec![0i32; nrows];
                table.scan_i8(&q, &rows, &mut got);
                for r in 0..nrows {
                    assert_eq!(
                        got[r],
                        SCALAR_TABLE.dot_i8(&q, &rows[r * dim..(r + 1) * dim]),
                        "{} scan row {r} at dim={dim}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn forcing_each_available_kernel_flips_active_and_keeps_bits() {
        let a = rand_vec(3, 128);
        let b = rand_vec(4, 128);
        let want = SCALAR_TABLE.dot(&a, &b).to_bits();
        for kind in available() {
            assert_eq!(force_kernel(Some(kind)), kind);
            assert_eq!(active(), kind);
            assert_eq!(dot(&a, &b).to_bits(), want, "{}", kind.name());
        }
        // Restore the env/auto resolution for the rest of the suite.
        let restored = force_kernel(None);
        assert_eq!(active(), restored);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dot over mismatched dimensions")]
    fn dispatched_dot_asserts_equal_lengths() {
        dot(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dot over mismatched dimensions")]
    fn dispatched_dot_i8_asserts_equal_lengths() {
        dot_i8(&[1, 2], &[1]);
    }
}
