//! An Asm2Vec-like differ.
//!
//! Asm2Vec learns PV-DM embeddings over random walks of the CFG with
//! operands normalized. We reproduce the pipeline deterministically:
//! seeded random walks over block successors generate token sequences;
//! unigrams, bigrams and trigrams are feature-hashed into a dense vector
//! (the stand-in for the learned paragraph vector); similarity is cosine.
//!
//! The design point the paper exploits: walks never leave the function,
//! so intra-procedural rewrites barely move the vector, while moving code
//! across functions (fission/fusion) changes the token distribution
//! wholesale.

use crate::tokens::block_class_tokens;
use crate::vector::{TokenHasher, EMB_DIM};
use crate::Differ;
use khaos_binary::{BinFunction, Binary};

/// Asm2Vec stand-in. See the module docs.
#[derive(Clone, Debug)]
pub struct Asm2Vec {
    /// Number of random walks per function.
    pub walks: u32,
    /// Maximum walk length in blocks.
    pub walk_len: u32,
    /// Walk RNG seed (deterministic embeddings).
    pub seed: u64,
}

impl Default for Asm2Vec {
    fn default() -> Self {
        Asm2Vec {
            walks: 8,
            walk_len: 16,
            seed: 0xA52,
        }
    }
}

/// Tiny xorshift so the crate does not need a rand dependency here.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn embed_function(f: &BinFunction, walks: u32, walk_len: u32, seed: u64) -> Vec<f64> {
    let mut v = vec![0.0; EMB_DIM];
    if f.blocks.is_empty() {
        return v;
    }
    // Tokens are hashed once per block into resumable states: the
    // unigram contribution is a table lookup, and each n-gram resumes
    // from its prefix's state, hashing only the `"|" + next-token`
    // suffix — identical, bit for bit, to hashing the seed path's
    // `format!("{a}|{b}")` strings, minus both the heap allocation and
    // the re-hash of the shared prefix.
    let per_block: Vec<Vec<(String, TokenHasher)>> = f
        .blocks
        .iter()
        .map(|b| {
            block_class_tokens(b, &f.operand_pool)
                .into_iter()
                .map(|t| {
                    let h = TokenHasher::new().feed(&t);
                    (t, h)
                })
                .collect()
        })
        .collect();
    let mut rng = seed ^ 0x9e3779b97f4a7c15;
    for w in 0..walks {
        // Walks start at the entry (like Asm2Vec's edge-sampled sequences)
        // and at rotating offsets for coverage.
        let mut cur = if f.blocks.len() > 1 {
            (w as usize) % f.blocks.len()
        } else {
            0
        };
        let mut sequence: Vec<&(String, TokenHasher)> = Vec::new();
        for _ in 0..walk_len {
            for t in &per_block[cur] {
                sequence.push(t);
            }
            let succs = &f.blocks[cur].succs;
            if succs.is_empty() {
                break;
            }
            cur = succs[(xorshift(&mut rng) % succs.len() as u64) as usize] as usize;
            if cur >= f.blocks.len() {
                break;
            }
        }
        // n-gram accumulation (PV-DM context windows).
        for i in 0..sequence.len() {
            let (_, ha) = sequence[i];
            ha.add_to(&mut v, 1.0);
            if i + 1 < sequence.len() {
                let bigram = ha.feed("|").feed(&sequence[i + 1].0);
                bigram.add_to(&mut v, 0.5);
                if i + 2 < sequence.len() {
                    bigram
                        .feed("|")
                        .feed(&sequence[i + 2].0)
                        .add_to(&mut v, 0.25);
                }
            }
        }
    }
    // Length normalization so big functions do not dominate.
    let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in &mut v {
            *x /= n;
        }
    }
    v
}

impl Differ for Asm2Vec {
    fn name(&self) -> &'static str {
        "Asm2Vec"
    }

    fn config_fingerprint(&self) -> u64 {
        (self.walks as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(self.walk_len as u64)
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(self.seed)
    }

    fn embed(&self, bin: &Binary) -> Vec<Vec<f64>> {
        bin.functions
            .iter()
            .map(|f| embed_function(f, self.walks, self.walk_len, self.seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::vector::cosine;

    #[test]
    fn embeddings_are_deterministic() {
        let b = small_binary("a");
        let tool = Asm2Vec::default();
        assert_eq!(tool.embed(&b), tool.embed(&b));
    }

    #[test]
    fn distinct_functions_distinct_embeddings() {
        let b = small_binary("a");
        let tool = Asm2Vec::default();
        let e = tool.embed(&b);
        assert!(cosine(&e[0], &e[1]) < 0.999, "alpha and beta differ");
    }

    #[test]
    fn register_renaming_is_invisible() {
        // Token normalization abstracts register ids: bump every register
        // number and the embedding must not move.
        let b = small_binary("a");
        let mut renamed = b.clone();
        for f in &mut renamed.functions {
            for o in &mut f.operand_pool {
                if let khaos_binary::MOperand::Reg(r) = o {
                    *o = khaos_binary::MOperand::Reg(r.wrapping_add(1));
                }
            }
        }
        let tool = Asm2Vec::default();
        let e1 = tool.embed(&b);
        let e2 = tool.embed(&renamed);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((cosine(a, b) - 1.0).abs() < 1e-9);
        }
    }
}
