//! # khaos-diff — binary diffing techniques and evaluation metrics
//!
//! From-scratch reproductions of the five binary diffing techniques the
//! paper evaluates Khaos against (Table 1), each capturing the feature
//! family and granularity of the original:
//!
//! | tool | granularity | distinguishing reliance |
//! |------|-------------|--------------------------|
//! | [`BinDiff`]      | function | symbol names + CFG fingerprints |
//! | [`VulSeeker`]    | function | numeric semantic features + **call graph** propagation |
//! | [`Asm2Vec`]      | function | token embeddings over CFG random walks |
//! | [`Safe`]         | function | position-weighted instruction-sequence embedding |
//! | [`DeepBinDiff`]  | basic block | block tokens + ICFG (CFG ∪ call graph) context |
//!
//! The evaluation metrics implement the paper's §4.2 protocol: relaxed
//! pairing success through provenance ground truth ([`origins_match`]),
//! `Precision@1` ([`precision_at_1`]), whole-binary BinDiff similarity
//! ([`binary_similarity`]) and `escape@k` ([`escape_at_k`]).
//!
//! ## The batched similarity engine
//!
//! All metric entry points run on the [`engine`]'s batched path:
//!
//! * the tools walk `khaos-binary`'s **flat operand-pool layout**
//!   (instruction operands live in one contiguous
//!   `BinFunction::operand_pool` slice per function, reached through
//!   [`khaos_binary::MInst::operands`]) — cold fingerprint+embed is
//!   bandwidth-bound, not allocator-bound, and the n-gram embedders
//!   hash token fragments through resumable [`TokenHasher`] states
//!   instead of `format!`-ing every n-gram;
//! * embeddings live in [`FunctionEmbeddings`] — one flat row-major
//!   buffer, **L2-normalized once at construction**, so cosine is a
//!   pure dot product in the inner loop (no per-pair `sqrt`/norms),
//!   computed through the [`kernels`] dispatch layer — explicit
//!   AVX-512/AVX2 `std::arch` kernels selected once at runtime
//!   (`KHAOS_SIMD` overrides), every variant **bit-identical** to the
//!   portable 8-wide [`dot_blocked`] kernel (naive-scalar-reference
//!   equivalence pinned at 1e-12);
//! * an **int8 quantized tier** ([`QuantizedEmbeddings`], ~7× smaller
//!   rows, integer-exact `dot_i8` kernels) generates shortlists that
//!   [`stream_top_k_quantized`] re-ranks exactly, bit-identical to the
//!   f64 streaming path at recall 1.0;
//! * each binary pair yields one [`SimilarityMatrix`] (flat storage,
//!   parallel row construction via `khaos-par`, `top_k` by partial
//!   selection, `O(T)` rank queries) shared by every metric that needs
//!   it;
//! * **rank-only queries never materialize that matrix**: `escape@k`
//!   and the `*_streaming` rank metrics run on a per-tool [`RowScore`]
//!   scorer — one `O(T)` row of similarities at a time (or `O(k)` via
//!   [`StreamingTopK`] for ranked retrieval), off the same cached
//!   embeddings, so 1000+-function binaries rank memory-flat;
//! * embeddings are memoized in the process-wide [`EmbeddingCache`],
//!   keyed by `(tool name, tool config fingerprint,`
//!   [`khaos_binary::Binary::fingerprint`]`)`, so a sweep scoring many
//!   metrics over the same pair embeds each side exactly once.
//!
//! **When to use which API:** existing `Differ`-taking signatures
//! ([`precision_at_1`], [`escape_at_k`], [`rank_of_true_match`],
//! [`binary_similarity`]) are thin wrappers over the batched engine and
//! remain the convenient entry points; [`escape_profile`] answers
//! `escape@k` at several `k` from one rank pass, reusing a cached
//! matrix when some other metric already built one and streaming
//! otherwise. Reach for [`Differ::batched_similarity`] plus the matrix
//! accessors when several metrics need one pair, and for
//! [`Differ::row_scorer`] / [`engine::stream_top_k`] /
//! [`escape_profile_streaming`] / [`rank_of_true_match_streaming`] when
//! ranks are all you need and the matrix should never be allocated. The
//! legacy per-pair [`Differ::similarity_matrix`] default is kept
//! unchanged as the *reference implementation*; the equivalence of all
//! paths — per-pair vs batched matrix vs streaming — to 1e-12 is
//! pinned by `engine` unit tests and the `batched_engine` integration
//! suite.

mod asm2vec;
mod bindiff;
mod dataflow;
mod deepbindiff;
pub mod engine;
pub mod kernels;
mod metrics;
pub mod quant;
pub mod reference;
mod safe;
mod tokens;
mod vector;
mod vulseeker;

pub use asm2vec::Asm2Vec;
pub use bindiff::{binary_similarity, binary_similarity_with, BinDiff};
pub use dataflow::DataFlowDiff;
pub use deepbindiff::{deepbindiff_precision_at_1, DeepBinDiff};
pub use engine::{
    dot_blocked, par_stream_ranks, par_stream_top_k_rows, stream_top_k, stream_top_k_blocks,
    CacheStats, EmbeddingCache, FunctionEmbeddings, RowScore, SimilarityMatrix, StreamingTopK,
};
pub use kernels::{dot, dot_i8, KernelKind};
pub use metrics::{
    escape_at_k, escape_profile, escape_profile_streaming, escape_profile_with, origins_match,
    precision_at_1, precision_at_1_with, rank_of_true_match, rank_of_true_match_in,
    rank_of_true_match_streaming, ranks_of_true_match_streaming,
};
pub use quant::{
    stream_top_k_quantized, QuantizedEmbeddings, QUANT_SHORTLIST_FACTOR, QUANT_SHORTLIST_MIN,
};
pub use safe::Safe;
pub use tokens::{
    block_class_tokens, block_tokens, function_class_stream, function_token_stream, opcode_class,
    operand_class,
};
pub use vector::{
    add_token, add_token_parts, cosine, hash_sign, hash_sign_parts, hash_token, hash_token_parts,
    Dim, TokenHasher, EMB_DIM,
};
pub use vulseeker::VulSeeker;

use khaos_binary::Binary;

/// A function-granularity binary diffing technique.
///
/// Implementations compute a per-function embedding; similarity defaults
/// to cosine. [`BinDiff`] overrides the matrix to use symbol names, as the
/// real tool does on un-stripped binaries.
///
/// [`Differ::similarity_matrix`] is the legacy per-pair reference path;
/// the metrics layer runs on [`Differ::batched_similarity`], which
/// normalizes embeddings once, caches them per binary, and builds the
/// flat matrix with parallel rows.
pub trait Differ {
    /// Tool name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Per-function embeddings for a binary.
    fn embed(&self, bin: &Binary) -> Vec<Vec<f64>>;

    /// Fingerprint of the tool's configuration, distinguishing cache
    /// entries of differently-parameterized instances of the same tool.
    /// Tools with knobs must override this to hash every knob.
    fn config_fingerprint(&self) -> u64 {
        0
    }

    /// Similarity matrix: `matrix[i][j]` is the similarity in `[0, 1]`
    /// between function `i` of `query` and function `j` of `target`.
    ///
    /// This is the legacy per-pair reference path (quadratic in
    /// redundant norm work); use [`Differ::batched_similarity`] in
    /// anything performance-sensitive.
    fn similarity_matrix(&self, query: &Binary, target: &Binary) -> Vec<Vec<f64>> {
        let qa = self.embed(query);
        let tb = self.embed(target);
        qa.iter()
            .map(|q| tb.iter().map(|t| cosine(q, t).max(0.0)).collect())
            .collect()
    }

    /// Batched similarity matrix: embeddings are fetched through
    /// `cache` (embedding each side at most once per process for
    /// deterministic tools), normalized once, and combined with
    /// parallel dot-product rows. Matches
    /// [`Differ::similarity_matrix`] to 1e-12.
    fn batched_similarity(
        &self,
        query: &Binary,
        target: &Binary,
        cache: &EmbeddingCache,
    ) -> SimilarityMatrix {
        self.batched_similarity_keyed(
            query,
            target,
            cache,
            query.fingerprint(),
            target.fingerprint(),
        )
    }

    /// As [`Differ::batched_similarity`], with the two binaries'
    /// fingerprints supplied by the caller. [`EmbeddingCache::matrix_for`]
    /// already fingerprints both sides for its own key and passes the
    /// values through here — fingerprinting is a whole-binary pass,
    /// expensive enough that paying it twice per lookup is measurable.
    /// Tools overriding the batched path should override **this**
    /// method (and ignore the fingerprints if they don't use `cache`).
    fn batched_similarity_keyed(
        &self,
        query: &Binary,
        target: &Binary,
        cache: &EmbeddingCache,
        query_fingerprint: u64,
        target_fingerprint: u64,
    ) -> SimilarityMatrix {
        let cfg = self.config_fingerprint();
        let qe = cache.get_or_embed((self.name(), cfg, query_fingerprint), || self.embed(query));
        let te = cache.get_or_embed((self.name(), cfg, target_fingerprint), || {
            self.embed(target)
        });
        SimilarityMatrix::from_embeddings(&qe, &te)
    }

    /// A streaming row scorer for the pair: scores any `(qi, j)` cell
    /// on demand, holding `O(1)` state beyond the cached embeddings —
    /// the rank-only metrics ([`escape_profile`],
    /// [`rank_of_true_match_streaming`], [`engine::stream_top_k`]) run
    /// on this instead of materializing the `Q×T`
    /// [`SimilarityMatrix`]. Must score exactly what
    /// [`Differ::batched_similarity_keyed`]'s matrix holds (pinned by
    /// `tests/batched_engine.rs`); tools overriding the batched matrix
    /// must override this too.
    fn row_scorer_keyed<'a>(
        &'a self,
        query: &'a Binary,
        target: &'a Binary,
        cache: &EmbeddingCache,
        query_fingerprint: u64,
        target_fingerprint: u64,
    ) -> Box<dyn engine::RowScore + 'a> {
        let cfg = self.config_fingerprint();
        let qe = cache.get_or_embed((self.name(), cfg, query_fingerprint), || self.embed(query));
        let te = cache.get_or_embed((self.name(), cfg, target_fingerprint), || {
            self.embed(target)
        });
        let _ = (query, target);
        Box::new(engine::EmbedScorer::new(qe, te, true))
    }

    /// As [`Differ::row_scorer_keyed`], fingerprinting both sides
    /// itself.
    fn row_scorer<'a>(
        &'a self,
        query: &'a Binary,
        target: &'a Binary,
        cache: &EmbeddingCache,
    ) -> Box<dyn engine::RowScore + 'a> {
        self.row_scorer_keyed(
            query,
            target,
            cache,
            query.fingerprint(),
            target.fingerprint(),
        )
    }
}

/// All five tools boxed, in the paper's presentation order.
pub fn all_differs() -> Vec<Box<dyn Differ>> {
    vec![
        Box::new(BinDiff::default()),
        Box::new(VulSeeker::default()),
        Box::new(Asm2Vec::default()),
        Box::new(Safe::default()),
    ]
}

/// The paper's function-granularity tools plus [`DataFlowDiff`], the
/// data-flow-representation tool the paper's §5 outlook predicts.
pub fn extended_differs() -> Vec<Box<dyn Differ>> {
    let mut v = all_differs();
    v.push(Box::new(DataFlowDiff::default()));
    v
}

#[cfg(test)]
pub(crate) mod testutil {
    use khaos_binary::lower_module;
    use khaos_binary::Binary;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, CmpPred, Module, Operand, Type};

    /// A small module with three distinguishable functions.
    pub fn small_module(name: &str) -> Module {
        let mut m = Module::new(name);
        // alpha: loopy accumulator
        let mut a = FunctionBuilder::new("alpha", Type::I64);
        let p = a.add_param(Type::I64);
        let i = a.new_local(Type::I64);
        let acc = a.new_local(Type::I64);
        let h = a.new_block();
        let body = a.new_block();
        let exit = a.new_block();
        a.copy_to(i, Operand::const_int(Type::I64, 0));
        a.copy_to(acc, Operand::const_int(Type::I64, 0));
        a.jump(h);
        a.switch_to(h);
        let c = a.cmp(
            CmpPred::Slt,
            Type::I64,
            Operand::local(i),
            Operand::local(p),
        );
        a.branch(Operand::local(c), body, exit);
        a.switch_to(body);
        let na = a.bin(
            BinOp::Add,
            Type::I64,
            Operand::local(acc),
            Operand::local(i),
        );
        a.copy_to(acc, Operand::local(na));
        let ni = a.bin(
            BinOp::Add,
            Type::I64,
            Operand::local(i),
            Operand::const_int(Type::I64, 1),
        );
        a.copy_to(i, Operand::local(ni));
        a.jump(h);
        a.switch_to(exit);
        a.ret(Some(Operand::local(acc)));
        let alpha = m.push_function(a.finish());

        // beta: branchy bit-twiddler
        let mut b = FunctionBuilder::new("beta", Type::I64);
        let q = b.add_param(Type::I64);
        let t = b.new_block();
        let e = b.new_block();
        let x = b.bin(
            BinOp::Xor,
            Type::I64,
            Operand::local(q),
            Operand::const_int(Type::I64, 0xff),
        );
        let c2 = b.cmp(
            CmpPred::Sgt,
            Type::I64,
            Operand::local(x),
            Operand::const_int(Type::I64, 64),
        );
        b.branch(Operand::local(c2), t, e);
        b.switch_to(t);
        let s = b.bin(
            BinOp::Shl,
            Type::I64,
            Operand::local(x),
            Operand::const_int(Type::I64, 2),
        );
        b.ret(Some(Operand::local(s)));
        b.switch_to(e);
        let r = b.bin(
            BinOp::And,
            Type::I64,
            Operand::local(x),
            Operand::const_int(Type::I64, 31),
        );
        b.ret(Some(Operand::local(r)));
        let beta = m.push_function(b.finish());

        // main calls both.
        let mut mn = FunctionBuilder::new("main", Type::I64);
        let r1 = mn
            .call(alpha, Type::I64, vec![Operand::const_int(Type::I64, 9)])
            .unwrap();
        let r2 = mn.call(beta, Type::I64, vec![Operand::local(r1)]).unwrap();
        mn.ret(Some(Operand::local(r2)));
        m.push_function(mn.finish());
        khaos_ir::verify::assert_valid(&m);
        m
    }

    pub fn small_binary(name: &str) -> Binary {
        lower_module(&small_module(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::small_binary;

    #[test]
    fn self_similarity_is_maximal_for_all_tools() {
        let b = small_binary("x");
        for tool in all_differs() {
            let m = tool.similarity_matrix(&b, &b);
            for (i, row) in m.iter().enumerate() {
                let best = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap();
                assert_eq!(
                    best.0,
                    i,
                    "{}: function {i} should match itself",
                    tool.name()
                );
                assert!(*best.1 > 0.99, "{}: self-similarity ~1.0", tool.name());
            }
        }
    }
}
