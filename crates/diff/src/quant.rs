//! The int8 scalar-quantized embedding tier.
//!
//! A normalized embedding row costs `dim × 8` bytes in f64. Production
//! vector search (the corpus-index scenario in ROADMAP item 1) keeps a
//! quantized copy instead: [`QuantizedEmbeddings`] stores each row as
//! `dim` i8 codes plus a per-row `(scale, offset)` affine pair —
//! `x̂ = q · scale + offset` — so a function costs `dim + 16` bytes
//! (~7.1× smaller at the 128-dim rows used here, the "8× more
//! functions per GB" layout).
//!
//! The quantized tier is a *candidate generator*, never a scorer of
//! record: [`stream_top_k_quantized`] scans approximate dots over the
//! i8 codes (via the dispatched [`crate::kernels::dot_i8`]) to
//! shortlist `max(c·k, QUANT_SHORTLIST_MIN)` candidates, then
//! re-ranks the shortlist with the
//! exact f64 scorer and the pinned `(score desc, index asc)` order.
//! Whenever the shortlist contains the true top-k (the recall gates
//! pin `recall@{1,10,50} = 1.0` on the fig10 workload), the ranked
//! output is **bit-identical** to the exact streaming path — same
//! scores, same tie-breaks, same bits.
//!
//! Quantization is deterministic (round-to-nearest on finite inputs,
//! exact for constant rows) and the i8 dot is integer-exact, so the
//! approximate scan itself is bit-identical across SIMD dispatch
//! choices, thread counts and cache tiers — the same invariant the
//! f64 path keeps.

use crate::engine::{cmp_scores_desc, FunctionEmbeddings, RowScore, StreamingTopK};
use crate::kernels;

/// Default shortlist factor `c`: [`stream_top_k_quantized`] scans for
/// `c·k` candidates before the exact re-rank.
pub const QUANT_SHORTLIST_FACTOR: usize = 4;

/// Shortlist floor: the shortlist never holds fewer than this many
/// candidates (capped at the column count). At small `k` the `c·k`
/// budget is tighter than the quantization error — on the
/// 200-function bench pair a 4-candidate shortlist at `k = 1` loses
/// the true top-1 behind near-ties — so small queries widen to the
/// floor while large `k` keeps the linear `c·k` budget.
pub const QUANT_SHORTLIST_MIN: usize = 32;

/// Per-function embeddings quantized to one i8 code per dimension
/// with a per-row affine `(scale, offset)` pair.
///
/// Codes live in `[-127, 127]` (the symmetric range; `-128` is never
/// emitted so negation is always exact), with
/// `scale = (max - min) / 254` and `offset = min + 127 · scale` per
/// row. Degenerate rows (`max == min`, including all-zero rows) store
/// `scale = 0` and decode exactly. The per-row code sums are cached so
/// an approximate dot needs only the integer code dot:
///
/// `dot̂(i, j) = sᵢsⱼ · Σqᵢqⱼ + sᵢoⱼ · Σqᵢ + sⱼoᵢ · Σqⱼ + d·oᵢoⱼ`
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedEmbeddings {
    n: usize,
    dim: usize,
    data: Vec<i8>,
    scales: Vec<f64>,
    offsets: Vec<f64>,
    /// Per-row Σq, cached for the offset-correction terms.
    qsums: Vec<i64>,
}

impl QuantizedEmbeddings {
    /// Quantizes normalized embeddings row by row.
    pub fn from_embeddings(e: &FunctionEmbeddings) -> Self {
        let (n, dim) = (e.len(), e.dim());
        let mut data = Vec::with_capacity(n * dim);
        let mut scales = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        for i in 0..n {
            let row = e.row(i);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &x in row {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            // `lo`/`hi` are never NaN (f64::min/max skip NaN inputs),
            // so `hi <= lo` covers constant, empty and all-NaN rows.
            if hi <= lo {
                // Constant (or empty) row: decode is exactly `offset`.
                let offset = if dim == 0 || !lo.is_finite() { 0.0 } else { lo };
                scales.push(0.0);
                offsets.push(offset);
                data.extend(std::iter::repeat_n(0i8, dim));
                continue;
            }
            let scale = (hi - lo) / 254.0;
            let offset = lo + 127.0 * scale;
            scales.push(scale);
            offsets.push(offset);
            for &x in row {
                let q = ((x - lo) / scale).round() - 127.0;
                data.push(q.clamp(-127.0, 127.0) as i8);
            }
        }
        Self::from_parts(n, dim, data, scales, offsets)
    }

    /// Rewraps raw quantized parts — the disk-tier load path. Code
    /// sums are integer-derived, so recomputing them here cannot
    /// perturb anything: a store round trip is bit-identical.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn from_parts(
        n: usize,
        dim: usize,
        data: Vec<i8>,
        scales: Vec<f64>,
        offsets: Vec<f64>,
    ) -> Self {
        assert_eq!(data.len(), n * dim, "quantized code shape mismatch");
        assert_eq!(scales.len(), n, "one scale per row");
        assert_eq!(offsets.len(), n, "one offset per row");
        let qsums = data
            .chunks(dim.max(1))
            .map(|row| row.iter().map(|&q| q as i64).sum())
            .take(n)
            .collect::<Vec<i64>>();
        let qsums = if dim == 0 { vec![0; n] } else { qsums };
        QuantizedEmbeddings {
            n,
            dim,
            data,
            scales,
            offsets,
            qsums,
        }
    }

    /// Number of functions (rows).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The i8 codes of row `i`.
    pub fn row_codes(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat code buffer (store I/O).
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Per-row scales (store I/O).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Per-row offsets (store I/O).
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// Bytes one function costs in this tier (codes + scale + offset),
    /// vs. `dim × 8` for the f64 row.
    pub fn bytes_per_function(&self) -> usize {
        self.dim + 16
    }

    /// Decodes row `i` back to f64 — lossy by at most `scale/2` per
    /// element (the proptest gate in `tests/batched_engine.rs`).
    pub fn decode_row(&self, i: usize) -> Vec<f64> {
        let (s, o) = (self.scales[i], self.offsets[i]);
        self.row_codes(i)
            .iter()
            .map(|&q| q as f64 * s + o)
            .collect()
    }

    /// Approximate dot between row `i` of `self` and row `j` of
    /// `other`, expanded from the integer code dot plus the cached
    /// code sums. Deterministic and dispatch-independent: the code dot
    /// is integer-exact and the f64 correction is a fixed expression.
    #[inline]
    pub fn approx_dot(&self, i: usize, other: &QuantizedEmbeddings, j: usize) -> f64 {
        debug_assert_eq!(self.dim, other.dim, "dot over mismatched dimensions");
        let qdot = kernels::dot_i8(self.row_codes(i), other.row_codes(j)) as f64;
        let (si, oi, sum_i) = (self.scales[i], self.offsets[i], self.qsums[i] as f64);
        let (sj, oj, sum_j) = (other.scales[j], other.offsets[j], other.qsums[j] as f64);
        si * sj * qdot + si * oj * sum_i + sj * oi * sum_j + self.dim as f64 * oi * oj
    }

    /// Calls `f(j, score)` with the approximate score of query row `i`
    /// against **every** row of `other`, in index order — the
    /// shortlist scan, with the kernel table and the row-`i` affine
    /// terms hoisted out of the inner loop. Scores are bit-identical
    /// to per-call [`Self::approx_dot`] (same expression, same order;
    /// only the dispatch lookup is amortized).
    #[inline]
    pub fn approx_scan(
        &self,
        i: usize,
        other: &QuantizedEmbeddings,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert_eq!(self.dim, other.dim, "dot over mismatched dimensions");
        let table = kernels::active_table();
        let qi = self.row_codes(i);
        let (si, oi, sum_i) = (self.scales[i], self.offsets[i], self.qsums[i] as f64);
        let dim_f = self.dim as f64;
        for j in 0..other.len() {
            let qdot = table.dot_i8(qi, other.row_codes(j)) as f64;
            let (sj, oj, sum_j) = (other.scales[j], other.offsets[j], other.qsums[j] as f64);
            f(
                j,
                si * sj * qdot + si * oj * sum_i + sj * oi * sum_j + dim_f * oi * oj,
            );
        }
    }

    /// [`Self::approx_scan`] restricted to the given candidate rows of
    /// `other` — the IVF cell scan (`khaos-index` probes a subset of
    /// cells, not the whole corpus). Scores are the same fixed
    /// expression as [`Self::approx_dot`], so a subset scan over all
    /// rows is bit-identical to the full scan.
    #[inline]
    pub fn approx_scan_subset(
        &self,
        i: usize,
        other: &QuantizedEmbeddings,
        candidates: impl IntoIterator<Item = usize>,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert_eq!(self.dim, other.dim, "dot over mismatched dimensions");
        let table = kernels::active_table();
        let qi = self.row_codes(i);
        let (si, oi, sum_i) = (self.scales[i], self.offsets[i], self.qsums[i] as f64);
        let dim_f = self.dim as f64;
        for j in candidates {
            let qdot = table.dot_i8(qi, other.row_codes(j)) as f64;
            let (sj, oj, sum_j) = (other.scales[j], other.offsets[j], other.qsums[j] as f64);
            f(
                j,
                si * sj * qdot + si * oj * sum_i + sj * oi * sum_j + dim_f * oi * oj,
            );
        }
    }

    /// [`Self::approx_scan_subset`] specialized to one **contiguous**
    /// row block of `other` — the IVF cell scan, where every probed
    /// cell is one packed slice of the quant tier. All the block's
    /// integer dots go through a single dispatched
    /// [`kernels::KernelTable::scan_i8`] call (`qdots` is caller
    /// scratch, cleared and resized here so repeated cell scans reuse
    /// one allocation), and each score is then the same fixed
    /// expression as [`Self::approx_dot`] in the same order — the
    /// block scan is bit-identical to the per-row scans.
    pub fn approx_scan_block(
        &self,
        i: usize,
        other: &QuantizedEmbeddings,
        rows: std::ops::Range<usize>,
        qdots: &mut Vec<i32>,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert_eq!(self.dim, other.dim, "dot over mismatched dimensions");
        let table = kernels::active_table();
        let qi = self.row_codes(i);
        let (si, oi, sum_i) = (self.scales[i], self.offsets[i], self.qsums[i] as f64);
        let dim_f = self.dim as f64;
        qdots.clear();
        qdots.resize(rows.len(), 0);
        table.scan_i8(
            qi,
            &other.data[rows.start * self.dim..rows.end * self.dim],
            qdots,
        );
        for (off, &qdot) in qdots.iter().enumerate() {
            let j = rows.start + off;
            let qdot = qdot as f64;
            let (sj, oj, sum_j) = (other.scales[j], other.offsets[j], other.qsums[j] as f64);
            f(
                j,
                si * sj * qdot + si * oj * sum_i + sj * oi * sum_j + dim_f * oi * oj,
            );
        }
    }
}

/// Ranked top-`k` for query row `qi`: shortlist
/// `max(factor·k, QUANT_SHORTLIST_MIN)` candidates by quantized
/// approximate score, then score **only the shortlist** with the
/// exact f64 scorer and re-rank under the pinned
/// `(score desc, index asc)` order.
///
/// `clamp` must mirror the exact scorer's clamp-at-zero so approximate
/// and exact scores tie the same way (a clamped exact path breaks
/// zero-score ties by index; the approximate scan must shortlist those
/// same lowest indices, not the "least negative" raw dots).
///
/// Whenever the shortlist covers the true top-k — guaranteed when
/// `factor·k ≥ cols`, and pinned at recall 1.0 on the fig10 workload —
/// the result is bit-identical to [`crate::engine::stream_top_k`].
pub fn stream_top_k_quantized(
    qq: &QuantizedEmbeddings,
    tq: &QuantizedEmbeddings,
    exact: &dyn RowScore,
    qi: usize,
    k: usize,
    factor: usize,
    clamp: bool,
) -> Vec<(usize, f64)> {
    assert_eq!(exact.rows(), qq.len(), "query shape mismatch");
    assert_eq!(exact.cols(), tq.len(), "target shape mismatch");
    let cols = tq.len();
    if k == 0 || cols == 0 {
        return Vec::new();
    }
    let cap = k
        .saturating_mul(factor.max(1))
        .max(QUANT_SHORTLIST_MIN)
        .min(cols);
    let mut shortlist = StreamingTopK::new(cap);
    qq.approx_scan(qi, tq, |j, s| {
        shortlist.offer(j, if clamp { s.max(0.0) } else { s });
    });
    let mut out: Vec<(usize, f64)> = shortlist
        .into_ranked()
        .into_iter()
        .map(|(j, _)| (j, exact.score(qi, j)))
        .collect();
    out.sort_unstable_by(|x, y| cmp_scores_desc(x.1, y.1).then(x.0.cmp(&y.0)));
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{stream_top_k, EmbedScorer};
    use std::sync::Arc;

    fn rand_rows(seed: u64, n: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        (s >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn round_trip_error_stays_within_half_scale() {
        let e = FunctionEmbeddings::from_rows(rand_rows(5, 13, 37));
        let q = QuantizedEmbeddings::from_embeddings(&e);
        for i in 0..e.len() {
            let back = q.decode_row(i);
            let bound = q.scales()[i] * 0.5 * (1.0 + 1e-9) + 1e-15;
            for (x, y) in e.row(i).iter().zip(&back) {
                assert!(
                    (x - y).abs() <= bound,
                    "row {i}: |{x} - {y}| > scale/2 = {bound}"
                );
            }
        }
    }

    #[test]
    fn constant_and_empty_rows_decode_exactly() {
        let e = FunctionEmbeddings::from_rows(vec![vec![0.0; 16], vec![3.0; 16]]);
        let q = QuantizedEmbeddings::from_embeddings(&e);
        for i in 0..2 {
            assert_eq!(q.scales()[i], 0.0);
            assert_eq!(q.decode_row(i), e.row(i), "row {i} must be lossless");
        }
        let empty = QuantizedEmbeddings::from_embeddings(&FunctionEmbeddings::from_rows(vec![]));
        assert!(empty.is_empty());
        assert_eq!(empty.bytes_per_function(), 16);
    }

    #[test]
    fn approx_dot_is_bit_identical_across_kernel_variants() {
        let e = FunctionEmbeddings::from_rows(rand_rows(9, 6, 128));
        let q = QuantizedEmbeddings::from_embeddings(&e);
        // The integer code dot is exact under any kernel, and the f64
        // correction terms don't depend on dispatch — pin it directly
        // against every available table.
        for kind in crate::kernels::available() {
            let table = crate::kernels::table_for(kind).unwrap();
            for i in 0..q.len() {
                for j in 0..q.len() {
                    let qdot = table.dot_i8(q.row_codes(i), q.row_codes(j));
                    let reference = crate::kernels::table_for(crate::kernels::KernelKind::Scalar)
                        .unwrap()
                        .dot_i8(q.row_codes(i), q.row_codes(j));
                    assert_eq!(qdot, reference, "{} ({i},{j})", kind.name());
                }
            }
        }
    }

    #[test]
    fn full_shortlist_reproduces_exact_stream_bitwise() {
        let qe = Arc::new(FunctionEmbeddings::from_rows(rand_rows(31, 9, 64)));
        let te = Arc::new(FunctionEmbeddings::from_rows(rand_rows(32, 23, 64)));
        let qq = QuantizedEmbeddings::from_embeddings(&qe);
        let tq = QuantizedEmbeddings::from_embeddings(&te);
        let scorer = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te), true);
        for qi in 0..qe.len() {
            for k in [1usize, 3, 23, 100] {
                // factor·k ≥ cols ⇒ the shortlist is the whole row and
                // bit-identity is unconditional.
                let got = stream_top_k_quantized(&qq, &tq, &scorer, qi, k, 30, true);
                let want = stream_top_k(&scorer, qi, k);
                assert_eq!(got.len(), want.len(), "qi={qi} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "qi={qi} k={k}: index order");
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "qi={qi} k={k}: score bits");
                }
            }
        }
    }

    #[test]
    fn ties_and_degenerate_shapes_match_exact_path() {
        // Identical rows everywhere: every score ties, so ranking is
        // pure index tie-breaking — the hardest case for a shortlist.
        let row = vec![1.0; 32];
        let qe = Arc::new(FunctionEmbeddings::from_rows(vec![row.clone(); 2]));
        let te = Arc::new(FunctionEmbeddings::from_rows(vec![row; 7]));
        let qq = QuantizedEmbeddings::from_embeddings(&qe);
        let tq = QuantizedEmbeddings::from_embeddings(&te);
        let scorer = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te), true);
        for k in [1usize, 5, 7, 50] {
            let got = stream_top_k_quantized(&qq, &tq, &scorer, 0, k, 1, true);
            let want = stream_top_k(&scorer, 0, k);
            assert_eq!(got, want, "k={k}: tied scores break by lowest index");
        }
        // Single-function target and k > T.
        let te1 = Arc::new(FunctionEmbeddings::from_rows(rand_rows(77, 1, 32)));
        let tq1 = QuantizedEmbeddings::from_embeddings(&te1);
        let s1 = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te1), true);
        assert_eq!(
            stream_top_k_quantized(&qq, &tq1, &s1, 1, 50, 4, true),
            stream_top_k(&s1, 1, 50)
        );
        // k = 0 and empty target are empty.
        assert!(stream_top_k_quantized(&qq, &tq, &scorer, 0, 0, 4, true).is_empty());
        let te0 = Arc::new(FunctionEmbeddings::from_rows(vec![]));
        let tq0 = QuantizedEmbeddings::from_embeddings(&te0);
        let s0 = EmbedScorer::new(Arc::clone(&qe), Arc::clone(&te0), true);
        assert!(stream_top_k_quantized(&qq, &tq0, &s0, 0, 5, 4, true).is_empty());
    }

    #[test]
    fn store_shaped_parts_round_trip_identically() {
        let e = FunctionEmbeddings::from_rows(rand_rows(41, 5, 48));
        let q = QuantizedEmbeddings::from_embeddings(&e);
        let back = QuantizedEmbeddings::from_parts(
            q.len(),
            q.dim(),
            q.codes().to_vec(),
            q.scales().to_vec(),
            q.offsets().to_vec(),
        );
        assert_eq!(q, back, "parts round trip rebuilds the same tier");
    }
}
