//! Evaluation metrics — the paper's §4.2 protocol.
//!
//! Every metric runs on the batched similarity engine
//! ([`crate::engine`]): the similarity matrix for a binary pair is
//! computed **once** (with cached, pre-normalized embeddings) and all
//! rank queries are answered against it. The seed implementation
//! rebuilt the full matrix per call — `escape@k` even rebuilt it per
//! vulnerable query function — which made the §4.2 inner loop
//! quadratic in redundant work.

use crate::engine::{par_stream_ranks, stream_rank_of_first_match, EmbeddingCache};
use crate::{Differ, SimilarityMatrix};
use khaos_binary::{BinProvenance, Binary};

/// Indices of the query binary's `vulnerable`-annotated functions —
/// the Figure-10 query set.
fn vulnerable_indices(bin: &Binary) -> Vec<usize> {
    bin.functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
        .map(|(i, _)| i)
        .collect()
}

/// The relaxed pairing-success judgment: a query (pre-obfuscation)
/// function pairs successfully with a candidate when their origin sets
/// intersect — an `oriFunc` matches any of its `sepFunc`s, its `remFunc`,
/// or any `fusFunc` it participates in.
pub fn origins_match(query: &BinProvenance, candidate: &BinProvenance) -> bool {
    query
        .origins
        .iter()
        .any(|o| candidate.origins.iter().any(|c| c == o))
}

/// `Precision@1`: the ratio of query functions whose top-ranked candidate
/// is a true (relaxed) match.
pub fn precision_at_1(tool: &dyn Differ, baseline: &Binary, obf: &Binary) -> f64 {
    precision_at_1_with(tool, baseline, obf, EmbeddingCache::global())
}

/// [`precision_at_1`] against an explicit embedding cache.
pub fn precision_at_1_with(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    cache: &EmbeddingCache,
) -> f64 {
    if baseline.functions.is_empty() || obf.functions.is_empty() {
        return 0.0;
    }
    let matrix = cache.matrix_for(tool, baseline, obf);
    let mut hits = 0usize;
    for i in 0..matrix.rows() {
        let best = matrix
            .argmax_row(i)
            .expect("non-empty target checked above");
        if origins_match(
            &baseline.functions[i].provenance,
            &obf.functions[best].provenance,
        ) {
            hits += 1;
        }
    }
    hits as f64 / baseline.functions.len() as f64
}

/// 1-based rank of the first true match for query `qi` in `matrix`'s
/// candidate ranking (descending similarity, ties by lower index), or
/// `None` when no candidate matches at all.
pub fn rank_of_true_match_in(
    matrix: &SimilarityMatrix,
    baseline: &Binary,
    obf: &Binary,
    qi: usize,
) -> Option<usize> {
    let qprov = &baseline.functions[qi].provenance;
    matrix.rank_of_first_match(qi, |j| origins_match(qprov, &obf.functions[j].provenance))
}

/// 1-based rank of the first true match for query function `qi` in the
/// candidate ranking, or `None` when no candidate matches at all.
///
/// Convenience wrapper that builds (or fetches from cache) the matrix
/// for one query; rank many queries via [`rank_of_true_match_in`] on a
/// shared [`SimilarityMatrix`] instead, or via
/// [`rank_of_true_match_streaming`] when no matrix should be built at
/// all.
pub fn rank_of_true_match(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    qi: usize,
) -> Option<usize> {
    let matrix = EmbeddingCache::global().matrix_for(tool, baseline, obf);
    rank_of_true_match_in(&matrix, baseline, obf, qi)
}

/// [`rank_of_true_match`] on the streaming path: scores query `qi`
/// against the candidates row-wise off cached embeddings and ranks in
/// that single `O(T)` row — the full `Q×T` [`SimilarityMatrix`] is
/// never allocated. Equivalent to the matrix path (pinned by
/// `tests/batched_engine.rs`).
pub fn rank_of_true_match_streaming(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    qi: usize,
    cache: &EmbeddingCache,
) -> Option<usize> {
    let scorer = tool.row_scorer(baseline, obf, cache);
    let qprov = &baseline.functions[qi].provenance;
    let mut scratch = Vec::new();
    stream_rank_of_first_match(scorer.as_ref(), qi, &mut scratch, |j| {
        origins_match(qprov, &obf.functions[j].provenance)
    })
}

/// [`rank_of_true_match_streaming`] for many query functions at once,
/// parallelized across query rows (each row is an independent `O(T)`
/// scan — the embarrassingly parallel axis of the §4.2 protocol).
/// Returns one rank per entry of `queries`, in input order,
/// bit-identical to per-query sequential calls at any `KHAOS_THREADS`
/// (pinned by `tests/batched_engine.rs`). Memory stays
/// `O(threads × T)`: each worker reuses one scratch row.
pub fn ranks_of_true_match_streaming(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    queries: &[usize],
    cache: &EmbeddingCache,
) -> Vec<Option<usize>> {
    let scorer = tool.row_scorer(baseline, obf, cache);
    par_stream_ranks(scorer.as_ref(), queries, |qi, j| {
        origins_match(
            &baseline.functions[qi].provenance,
            &obf.functions[j].provenance,
        )
    })
}

/// `escape@k` over the vulnerable functions of the baseline binary: the
/// fraction whose true match ranks *worse* than `k` (higher = better
/// hiding). Functions are "vulnerable" when annotated as such.
pub fn escape_at_k(tool: &dyn Differ, baseline: &Binary, obf: &Binary, k: usize) -> f64 {
    escape_profile(tool, baseline, obf, &[k])[0]
}

/// `escape@k` at several `k` thresholds from **one** similarity matrix
/// and one rank pass per vulnerable query — the batched form of
/// [`escape_at_k`] (the seed implementation rebuilt the full matrix for
/// every vulnerable query of every threshold).
pub fn escape_profile(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    ks: &[usize],
) -> Vec<f64> {
    escape_profile_with(tool, baseline, obf, ks, EmbeddingCache::global())
}

/// [`escape_profile`] against an explicit embedding cache.
///
/// Rank-only: when the pair's similarity matrix is already resident
/// (some earlier metric paid for it), ranks are answered from it; when
/// it is not, the ranks stream off the tool's [`crate::RowScore`] —
/// one `O(T)` row per vulnerable query, cached embeddings, and **no
/// `Q×T` matrix allocation ever** (on large binaries with few
/// vulnerable functions this is also far less dot-product work than a
/// matrix build). The streaming rank pass runs **in parallel across
/// vulnerable query rows** ([`par_stream_ranks`]), bit-identical to the
/// sequential scan at any `KHAOS_THREADS`.
pub fn escape_profile_with(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    ks: &[usize],
    cache: &EmbeddingCache,
) -> Vec<f64> {
    let vulnerable = vulnerable_indices(baseline);
    if vulnerable.is_empty() {
        return vec![0.0; ks.len()];
    }
    let qfp = baseline.fingerprint();
    let tfp = obf.fingerprint();
    let ranks: Vec<Option<usize>> = match cache.peek_matrix(tool, qfp, tfp) {
        Some(matrix) => vulnerable
            .iter()
            .map(|&qi| rank_of_true_match_in(&matrix, baseline, obf, qi))
            .collect(),
        None => {
            let scorer = tool.row_scorer_keyed(baseline, obf, cache, qfp, tfp);
            par_stream_ranks(scorer.as_ref(), &vulnerable, |qi, j| {
                origins_match(
                    &baseline.functions[qi].provenance,
                    &obf.functions[j].provenance,
                )
            })
        }
    };
    escape_from_ranks(&ranks, ks)
}

/// [`escape_profile`] forced onto the streaming path: never touches a
/// cached matrix, never builds one. The memory guarantee is
/// unconditional (`O(threads × T)` scratch regardless of how many
/// thresholds or queries), at the cost of re-scoring even when a matrix
/// is resident. Vulnerable query rows rank **in parallel**
/// ([`par_stream_ranks`]; each worker reuses one scratch row),
/// bit-identical to the sequential scan at any `KHAOS_THREADS` (pinned
/// by `tests/batched_engine.rs`).
pub fn escape_profile_streaming(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    ks: &[usize],
    cache: &EmbeddingCache,
) -> Vec<f64> {
    let vulnerable = vulnerable_indices(baseline);
    if vulnerable.is_empty() {
        return vec![0.0; ks.len()];
    }
    let ranks = ranks_of_true_match_streaming(tool, baseline, obf, &vulnerable, cache);
    escape_from_ranks(&ranks, ks)
}

/// Escape fractions at each threshold from per-query ranks (`None` =
/// the query has no true match anywhere, which always escapes).
fn escape_from_ranks(ranks: &[Option<usize>], ks: &[usize]) -> Vec<f64> {
    ks.iter()
        .map(|&k| {
            let escaped = ranks
                .iter()
                .filter(|r| match r {
                    Some(r) => *r > k,
                    None => true,
                })
                .count();
            escaped as f64 / ranks.len() as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::{Asm2Vec, BinDiff, Safe, VulSeeker};
    use khaos_binary::BinProvenance;

    fn prov(origins: &[&str]) -> BinProvenance {
        BinProvenance {
            origins: origins.iter().map(|s| s.to_string()).collect(),
            annotations: vec![],
        }
    }

    #[test]
    fn relaxed_matching_rules() {
        let ori = prov(&["cal_file"]);
        let sep = prov(&["cal_file"]); // sepFunc keeps the origin
        let fused = prov(&["log", "cal_file"]);
        let other = prov(&["memcpy"]);
        assert!(origins_match(&ori, &sep));
        assert!(
            origins_match(&ori, &fused),
            "fusFunc matches either constituent"
        );
        assert!(!origins_match(&ori, &other));
    }

    #[test]
    fn identity_diff_gives_perfect_precision() {
        let b = small_binary("m");
        for tool in [
            Box::new(BinDiff::default()) as Box<dyn Differ>,
            Box::new(VulSeeker::default()),
            Box::new(Asm2Vec::default()),
            Box::new(Safe::default()),
        ] {
            let p = precision_at_1(tool.as_ref(), &b, &b);
            assert!(p > 0.99, "{}: {p}", tool.name());
        }
    }

    #[test]
    fn rank_of_true_match_is_one_on_identity() {
        let b = small_binary("m");
        let tool = Asm2Vec::default();
        for qi in 0..b.functions.len() {
            assert_eq!(rank_of_true_match(&tool, &b, &b, qi), Some(1));
        }
    }

    #[test]
    fn escape_requires_vulnerable_annotations() {
        let b = small_binary("m");
        let tool = Asm2Vec::default();
        // No annotations: degenerate 0.0.
        assert_eq!(escape_at_k(&tool, &b, &b, 1), 0.0);
        // Mark alpha vulnerable: identity diff ranks it first => no escape.
        let mut marked = b.clone();
        marked.functions[0]
            .provenance
            .annotations
            .push("vulnerable".into());
        assert_eq!(escape_at_k(&tool, &marked, &b, 1), 0.0);
    }

    #[test]
    fn escape_when_function_disappears() {
        let b = small_binary("m");
        let mut marked = b.clone();
        marked.functions[0]
            .provenance
            .annotations
            .push("vulnerable".into());
        // Obfuscated binary whose provenance no longer mentions alpha.
        let mut hidden = b.clone();
        for f in &mut hidden.functions {
            f.provenance.origins = vec!["unrelated".into()];
        }
        let tool = Asm2Vec::default();
        assert_eq!(escape_at_k(&tool, &marked, &hidden, 50), 1.0);
    }
}
