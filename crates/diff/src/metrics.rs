//! Evaluation metrics — the paper's §4.2 protocol.

use crate::Differ;
use khaos_binary::{BinProvenance, Binary};

/// The relaxed pairing-success judgment: a query (pre-obfuscation)
/// function pairs successfully with a candidate when their origin sets
/// intersect — an `oriFunc` matches any of its `sepFunc`s, its `remFunc`,
/// or any `fusFunc` it participates in.
pub fn origins_match(query: &BinProvenance, candidate: &BinProvenance) -> bool {
    query.origins.iter().any(|o| candidate.origins.iter().any(|c| c == o))
}

/// `Precision@1`: the ratio of query functions whose top-ranked candidate
/// is a true (relaxed) match.
pub fn precision_at_1(tool: &dyn Differ, baseline: &Binary, obf: &Binary) -> f64 {
    if baseline.functions.is_empty() || obf.functions.is_empty() {
        return 0.0;
    }
    let matrix = tool.similarity_matrix(baseline, obf);
    let mut hits = 0usize;
    for (i, row) in matrix.iter().enumerate() {
        let mut best = 0usize;
        let mut best_s = f64::MIN;
        for (j, s) in row.iter().enumerate() {
            if *s > best_s {
                best_s = *s;
                best = j;
            }
        }
        if origins_match(
            &baseline.functions[i].provenance,
            &obf.functions[best].provenance,
        ) {
            hits += 1;
        }
    }
    hits as f64 / baseline.functions.len() as f64
}

/// 1-based rank of the first true match for query function `qi` in the
/// candidate ranking, or `None` when no candidate matches at all.
pub fn rank_of_true_match(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    qi: usize,
) -> Option<usize> {
    let matrix = tool.similarity_matrix(baseline, obf);
    let row = &matrix[qi];
    let mut order: Vec<usize> = (0..row.len()).collect();
    order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite sims").then(a.cmp(&b)));
    let qprov = &baseline.functions[qi].provenance;
    order
        .iter()
        .position(|&j| origins_match(qprov, &obf.functions[j].provenance))
        .map(|p| p + 1)
}

/// `escape@k` over the vulnerable functions of the baseline binary: the
/// fraction whose true match ranks *worse* than `k` (higher = better
/// hiding). Functions are "vulnerable" when annotated as such.
pub fn escape_at_k(tool: &dyn Differ, baseline: &Binary, obf: &Binary, k: usize) -> f64 {
    let vulnerable: Vec<usize> = baseline
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
        .map(|(i, _)| i)
        .collect();
    if vulnerable.is_empty() {
        return 0.0;
    }
    let escaped = vulnerable
        .iter()
        .filter(|&&qi| match rank_of_true_match(tool, baseline, obf, qi) {
            Some(r) => r > k,
            None => true,
        })
        .count();
    escaped as f64 / vulnerable.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::{Asm2Vec, BinDiff, Safe, VulSeeker};
    use khaos_binary::BinProvenance;

    fn prov(origins: &[&str]) -> BinProvenance {
        BinProvenance {
            origins: origins.iter().map(|s| s.to_string()).collect(),
            annotations: vec![],
        }
    }

    #[test]
    fn relaxed_matching_rules() {
        let ori = prov(&["cal_file"]);
        let sep = prov(&["cal_file"]); // sepFunc keeps the origin
        let fused = prov(&["log", "cal_file"]);
        let other = prov(&["memcpy"]);
        assert!(origins_match(&ori, &sep));
        assert!(origins_match(&ori, &fused), "fusFunc matches either constituent");
        assert!(!origins_match(&ori, &other));
    }

    #[test]
    fn identity_diff_gives_perfect_precision() {
        let b = small_binary("m");
        for tool in [
            Box::new(BinDiff::default()) as Box<dyn Differ>,
            Box::new(VulSeeker::default()),
            Box::new(Asm2Vec::default()),
            Box::new(Safe::default()),
        ] {
            let p = precision_at_1(tool.as_ref(), &b, &b);
            assert!(p > 0.99, "{}: {p}", tool.name());
        }
    }

    #[test]
    fn rank_of_true_match_is_one_on_identity() {
        let b = small_binary("m");
        let tool = Asm2Vec::default();
        for qi in 0..b.functions.len() {
            assert_eq!(rank_of_true_match(&tool, &b, &b, qi), Some(1));
        }
    }

    #[test]
    fn escape_requires_vulnerable_annotations() {
        let b = small_binary("m");
        let tool = Asm2Vec::default();
        // No annotations: degenerate 0.0.
        assert_eq!(escape_at_k(&tool, &b, &b, 1), 0.0);
        // Mark alpha vulnerable: identity diff ranks it first => no escape.
        let mut marked = b.clone();
        marked.functions[0].provenance.annotations.push("vulnerable".into());
        assert_eq!(escape_at_k(&tool, &marked, &b, 1), 0.0);
    }

    #[test]
    fn escape_when_function_disappears() {
        let b = small_binary("m");
        let mut marked = b.clone();
        marked.functions[0].provenance.annotations.push("vulnerable".into());
        // Obfuscated binary whose provenance no longer mentions alpha.
        let mut hidden = b.clone();
        for f in &mut hidden.functions {
            f.provenance.origins = vec!["unrelated".into()];
        }
        let tool = Asm2Vec::default();
        assert_eq!(escape_at_k(&tool, &marked, &hidden, 50), 1.0);
    }
}
