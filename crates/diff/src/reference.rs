//! The **frozen seed implementations** of the ranking metrics, kept
//! verbatim as the reference the batched engine is verified and
//! benchmarked against.
//!
//! These deliberately reproduce the original (pre-engine) cost model:
//! [`reference_rank_of_true_match`] rebuilds the full per-pair cosine
//! matrix and sorts every candidate for each query, and
//! [`reference_escape_at_k`] calls it once per vulnerable function.
//! Do **not** optimize them — `tests/batched_engine.rs` pins the
//! batched path's equivalence (to 1e-12) against exactly these
//! semantics, and `benches/bench_similarity.rs` measures its speedup
//! against exactly this cost.

use crate::metrics::origins_match;
use crate::Differ;
use khaos_binary::Binary;

/// Seed `rank_of_true_match`: full matrix per call, full sort per
/// query (descending similarity, ties by lower index).
pub fn reference_rank_of_true_match(
    tool: &dyn Differ,
    baseline: &Binary,
    obf: &Binary,
    qi: usize,
) -> Option<usize> {
    let matrix = tool.similarity_matrix(baseline, obf);
    let row = &matrix[qi];
    let mut order: Vec<usize> = (0..row.len()).collect();
    order.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .expect("finite sims")
            .then(a.cmp(&b))
    });
    let qprov = &baseline.functions[qi].provenance;
    order
        .iter()
        .position(|&j| origins_match(qprov, &obf.functions[j].provenance))
        .map(|p| p + 1)
}

/// Seed `escape@k`: one [`reference_rank_of_true_match`] call — and
/// therefore one full matrix rebuild — per vulnerable query function.
pub fn reference_escape_at_k(tool: &dyn Differ, baseline: &Binary, obf: &Binary, k: usize) -> f64 {
    let vulnerable: Vec<usize> = baseline
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.provenance.annotations.iter().any(|a| a == "vulnerable"))
        .map(|(i, _)| i)
        .collect();
    if vulnerable.is_empty() {
        return 0.0;
    }
    let escaped = vulnerable
        .iter()
        .filter(
            |&&qi| match reference_rank_of_true_match(tool, baseline, obf, qi) {
                Some(r) => r > k,
                None => true,
            },
        )
        .count();
    escaped as f64 / vulnerable.len() as f64
}
