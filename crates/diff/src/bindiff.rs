//! A BinDiff-like matcher.
//!
//! Mirrors the industry tool's documented behaviour: on un-stripped
//! binaries, symbol names anchor matches (the paper notes BinDiff's
//! scores stay high for exactly this reason); structural fingerprints —
//! basic-block count, edge count, call-site count, degree in the call
//! graph — refine the rest.

use crate::engine::EmbeddingCache;
use crate::{Differ, SimilarityMatrix};
use khaos_binary::{BinFunction, Binary};

/// BinDiff stand-in. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct BinDiff {
    /// Ignore symbol names even when present (stripped-mode diffing).
    pub ignore_names: bool,
}

fn fingerprint(f: &BinFunction) -> [f64; 4] {
    [
        f.blocks.len() as f64,
        f.edge_count() as f64,
        f.call_count() as f64,
        f.inst_count() as f64,
    ]
}

fn structural_similarity(a: &[f64; 4], b: &[f64; 4]) -> f64 {
    // Ratio-based closeness per feature, averaged.
    let mut s = 0.0;
    for k in 0..4 {
        let (x, y) = (a[k], b[k]);
        let m = x.max(y);
        s += if m == 0.0 { 1.0 } else { x.min(y) / m };
    }
    s / 4.0
}

/// Name similarity: exact match, or shared long prefix (BinDiff's
/// name-hash matching collapses to this for C symbols).
fn name_similarity(a: &BinFunction, b: &BinFunction) -> Option<f64> {
    let (na, nb) = (a.name.as_deref()?, b.name.as_deref()?);
    if na == nb {
        return Some(1.0);
    }
    let common = na
        .bytes()
        .zip(nb.bytes())
        .take_while(|(x, y)| x == y)
        .count();
    let denom = na.len().max(nb.len());
    if common >= 5 && denom > 0 {
        Some(common as f64 / denom as f64)
    } else {
        Some(0.0)
    }
}

impl BinDiff {
    /// One similarity cell: structural closeness fused with name
    /// similarity when names are available and honoured.
    fn pair_similarity(
        &self,
        fa: &BinFunction,
        qf: &[f64; 4],
        fb: &BinFunction,
        tf: &[f64; 4],
    ) -> f64 {
        let structural = structural_similarity(qf, tf);
        match (self.ignore_names, name_similarity(fa, fb)) {
            (false, Some(ns)) => 0.5 * ns + 0.5 * structural,
            _ => structural * 0.8, // name info unavailable
        }
    }
}

impl Differ for BinDiff {
    fn name(&self) -> &'static str {
        "BinDiff"
    }

    fn config_fingerprint(&self) -> u64 {
        self.ignore_names as u64
    }

    fn embed(&self, bin: &Binary) -> Vec<Vec<f64>> {
        bin.functions
            .iter()
            .map(|f| fingerprint(f).to_vec())
            .collect()
    }

    fn similarity_matrix(&self, query: &Binary, target: &Binary) -> Vec<Vec<f64>> {
        let qf: Vec<[f64; 4]> = query.functions.iter().map(fingerprint).collect();
        let tf: Vec<[f64; 4]> = target.functions.iter().map(fingerprint).collect();
        query
            .functions
            .iter()
            .enumerate()
            .map(|(i, fa)| {
                target
                    .functions
                    .iter()
                    .enumerate()
                    .map(|(j, fb)| self.pair_similarity(fa, &qf[i], fb, &tf[j]))
                    .collect()
            })
            .collect()
    }

    /// BinDiff's similarity is symbol + structural-fingerprint matching,
    /// not an embedding dot product, so the batched path computes the
    /// flat matrix directly (parallel rows) rather than going through
    /// the embedding cache; the per-function fingerprints it needs are
    /// four counters — cheaper to recompute than to cache.
    fn batched_similarity_keyed(
        &self,
        query: &Binary,
        target: &Binary,
        _cache: &EmbeddingCache,
        _query_fingerprint: u64,
        _target_fingerprint: u64,
    ) -> SimilarityMatrix {
        let qf: Vec<[f64; 4]> = query.functions.iter().map(fingerprint).collect();
        let tf: Vec<[f64; 4]> = target.functions.iter().map(fingerprint).collect();
        let (q, t) = (query.functions.len(), target.functions.len());
        let mut data = vec![0.0f64; q * t];
        if t > 0 {
            khaos_par::par_chunks_mut(&mut data, t, |i, row| {
                let fa = &query.functions[i];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = self.pair_similarity(fa, &qf[i], &target.functions[j], &tf[j]);
                }
            });
        }
        SimilarityMatrix::from_flat(q, t, data)
    }

    /// Streaming scorer matching the batched matrix cell for cell: one
    /// `pair_similarity` evaluation per query/candidate, over the same
    /// precomputed four-counter fingerprints.
    fn row_scorer_keyed<'a>(
        &'a self,
        query: &'a Binary,
        target: &'a Binary,
        _cache: &EmbeddingCache,
        _query_fingerprint: u64,
        _target_fingerprint: u64,
    ) -> Box<dyn crate::engine::RowScore + 'a> {
        Box::new(BinDiffScorer {
            tool: self,
            query,
            target,
            qf: query.functions.iter().map(fingerprint).collect(),
            tf: target.functions.iter().map(fingerprint).collect(),
        })
    }
}

/// [`crate::engine::RowScore`] over BinDiff's symbol + structural
/// matching.
struct BinDiffScorer<'a> {
    tool: &'a BinDiff,
    query: &'a Binary,
    target: &'a Binary,
    qf: Vec<[f64; 4]>,
    tf: Vec<[f64; 4]>,
}

impl crate::engine::RowScore for BinDiffScorer<'_> {
    fn rows(&self) -> usize {
        self.query.functions.len()
    }
    fn cols(&self) -> usize {
        self.target.functions.len()
    }
    fn score(&self, qi: usize, j: usize) -> f64 {
        self.tool.pair_similarity(
            &self.query.functions[qi],
            &self.qf[qi],
            &self.target.functions[j],
            &self.tf[j],
        )
    }
}

/// The whole-binary similarity score in `[0, 1]` that Figure 9 plots.
///
/// As in the real tool, functions are matched **one-to-one** (greedy on
/// descending similarity) and the score is the similarity-weighted
/// fraction of *matched code* over the larger binary — so code that only
/// exists on one side (`sepFunc`s after fission, dead originals after
/// fusion) pulls the score down.
pub fn binary_similarity(tool: &dyn Differ, query: &Binary, target: &Binary) -> f64 {
    binary_similarity_with(tool, query, target, EmbeddingCache::global())
}

/// [`binary_similarity`] against an explicit embedding cache.
pub fn binary_similarity_with(
    tool: &dyn Differ,
    query: &Binary,
    target: &Binary,
    cache: &EmbeddingCache,
) -> f64 {
    if query.functions.is_empty() || target.functions.is_empty() {
        return 0.0;
    }
    let matrix = cache.matrix_for(tool, query, target);
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..matrix.rows() {
        for (j, s) in matrix.row(i).iter().enumerate() {
            if *s > 0.0 {
                edges.push((*s, i, j));
            }
        }
    }
    edges.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("finite")
            .then((a.1, a.2).cmp(&(b.1, b.2)))
    });
    let mut q_used = vec![false; query.functions.len()];
    let mut t_used = vec![false; target.functions.len()];
    let mut matched = 0.0;
    for (s, i, j) in edges {
        if q_used[i] || t_used[j] {
            continue;
        }
        q_used[i] = true;
        t_used[j] = true;
        let wq = query.functions[i].inst_count() as f64;
        let wt = target.functions[j].inst_count() as f64;
        matched += s * wq.min(wt);
    }
    let total_q: usize = query.functions.iter().map(|f| f.inst_count()).sum();
    let total_t: usize = target.functions.iter().map(|f| f.inst_count()).sum();
    matched / (total_q.max(total_t).max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;

    #[test]
    fn names_dominate_when_present() {
        let a = small_binary("a");
        let b = a.clone();
        let tool = BinDiff::default();
        let m = tool.similarity_matrix(&a, &b);
        // alpha vs alpha has name 1.0 + identical structure.
        assert!(m[0][0] > 0.99);
        // alpha vs beta differs.
        assert!(m[0][1] < m[0][0]);
    }

    #[test]
    fn stripped_mode_falls_back_to_structure() {
        let a = small_binary("a");
        let mut b = a.clone();
        b.strip();
        let tool = BinDiff::default();
        let m = tool.similarity_matrix(&a, &b);
        // Still matches structurally, but capped below 1.
        assert!(m[0][0] > 0.7);
        assert!(m[0][0] <= 0.8 + 1e-9);
    }

    #[test]
    fn whole_binary_score_self_is_high() {
        let a = small_binary("a");
        let tool = BinDiff::default();
        let s = binary_similarity(&tool, &a, &a);
        assert!(s > 0.99, "self-similarity ~1, got {s}");
    }

    #[test]
    fn structural_similarity_ratios() {
        let x = [4.0, 6.0, 1.0, 40.0];
        let y = [8.0, 6.0, 1.0, 40.0];
        let s = structural_similarity(&x, &y);
        assert!((s - (0.5 + 1.0 + 1.0 + 1.0) / 4.0).abs() < 1e-12);
    }
}
