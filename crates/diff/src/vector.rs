//! Small dense-vector utilities shared by the embedding-based tools.

/// Embedding dimensionality used by the learned-model stand-ins.
pub const EMB_DIM: usize = 128;

/// Type alias for readability.
pub type Dim = usize;

/// FNV-1a hash of a token string, reduced to an embedding dimension.
pub fn hash_token(token: &str) -> Dim {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in token.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % EMB_DIM as u64) as usize
}

/// A second independent hash, used to pick the sign of a token's
/// contribution (feature hashing with signs reduces collisions' bias).
pub fn hash_sign(token: &str) -> f64 {
    let mut h: u64 = 0x9e3779b97f4a7c15;
    for b in token.as_bytes() {
        h = h.rotate_left(9) ^ (*b as u64);
        h = h.wrapping_mul(0xff51afd7ed558ccd);
    }
    if h & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Adds `weight` at the hashed position of `token` (signed hashing).
pub fn add_token(vec: &mut [f64], token: &str, weight: f64) {
    let d = hash_token(token);
    vec[d] += weight * hash_sign(token);
}

/// [`hash_token`] of the concatenation of `parts`, streamed through a
/// [`TokenHasher`] — no intermediate `String`.
/// `hash_token_parts(&[a, "|", b]) == hash_token(&format!("{a}|{b}"))`,
/// bit for bit.
pub fn hash_token_parts(parts: &[&str]) -> Dim {
    parts
        .iter()
        .fold(TokenHasher::new(), |h, p| h.feed(p))
        .dim()
}

/// [`hash_sign`] of the concatenation of `parts` (streamed, identical
/// to hashing the concatenated string).
pub fn hash_sign_parts(parts: &[&str]) -> f64 {
    parts
        .iter()
        .fold(TokenHasher::new(), |h, p| h.feed(p))
        .sign()
}

/// [`add_token`] for a token given as concatenated fragments.
pub fn add_token_parts(vec: &mut [f64], parts: &[&str], weight: f64) {
    parts
        .iter()
        .fold(TokenHasher::new(), |h, p| h.feed(p))
        .add_to(vec, weight);
}

/// Resumable token-hash state: both the position ([`hash_token`]) and
/// sign ([`hash_sign`]) chains are byte-streaming, so the state after a
/// prefix can be cloned and extended with a suffix. The n-gram
/// embedders exploit this twice: per-token states are computed once per
/// block (unigram adds become table lookups), and a trigram resumes
/// from the bigram's state — only the `"|" + next` suffix is hashed.
/// `TokenHasher::new().feed(a).feed(b)` is bit-identical to hashing the
/// concatenated string.
#[derive(Clone, Copy, Debug)]
pub struct TokenHasher {
    fnv: u64,
    sign: u64,
}

impl Default for TokenHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenHasher {
    /// The state of the empty token.
    pub fn new() -> Self {
        TokenHasher {
            fnv: 0xcbf29ce484222325,
            sign: 0x9e3779b97f4a7c15,
        }
    }

    /// Extends the state with a fragment (builder style).
    pub fn feed(mut self, fragment: &str) -> Self {
        for b in fragment.as_bytes() {
            self.fnv ^= *b as u64;
            self.fnv = self.fnv.wrapping_mul(0x100000001b3);
            self.sign = self.sign.rotate_left(9) ^ (*b as u64);
            self.sign = self.sign.wrapping_mul(0xff51afd7ed558ccd);
        }
        self
    }

    /// The embedding dimension of the bytes fed so far.
    pub fn dim(&self) -> Dim {
        (self.fnv % EMB_DIM as u64) as usize
    }

    /// The sign of the bytes fed so far.
    pub fn sign(&self) -> f64 {
        if self.sign & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Adds `weight` at this state's dimension with its sign —
    /// [`add_token`] of the accumulated fragments.
    pub fn add_to(&self, vec: &mut [f64], weight: f64) {
        vec[self.dim()] += weight * self.sign();
    }
}

/// Cosine similarity; 0.0 when either vector is all-zero.
///
/// Both vectors must have the same length — `zip` would otherwise
/// silently truncate to the shorter one and quietly skew every
/// similarity built on top.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "cosine over mismatched dimensions");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_in_range() {
        let d1 = hash_token("mov r1, r2");
        let d2 = hash_token("mov r1, r2");
        assert_eq!(d1, d2);
        assert!(d1 < EMB_DIM);
        assert!(hash_sign("x") == 1.0 || hash_sign("x") == -1.0);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12, "colinear = 1");
        let c = [0.0, 0.0, 0.0];
        assert_eq!(cosine(&a, &c), 0.0, "zero vector = 0");
        let d = [-1.0, -2.0, -3.0];
        assert!((cosine(&a, &d) + 1.0).abs() < 1e-12, "opposite = -1");
    }

    #[test]
    fn streamed_parts_match_concatenated_string() {
        let cases: [&[&str]; 4] = [
            &["mov reg,imm8"],
            &["alu reg,reg", "|", "jump loc"],
            &["a", "|", "b", "|", "c"],
            &["call fnsym", "#p3"],
        ];
        for parts in cases {
            let joined = parts.concat();
            assert_eq!(hash_token_parts(parts), hash_token(&joined), "{joined}");
            assert_eq!(hash_sign_parts(parts), hash_sign(&joined), "{joined}");
            let mut a = vec![0.0; EMB_DIM];
            let mut b = vec![0.0; EMB_DIM];
            add_token_parts(&mut a, parts, 0.5);
            add_token(&mut b, &joined, 0.5);
            assert_eq!(a, b, "{joined}");
            // The resumable state agrees fragment-by-fragment too.
            let h = parts.iter().fold(TokenHasher::new(), |h, p| h.feed(p));
            assert_eq!(h.dim(), hash_token(&joined), "{joined}");
            assert_eq!(h.sign(), hash_sign(&joined), "{joined}");
        }
    }

    #[test]
    fn add_token_accumulates() {
        let mut v = vec![0.0; EMB_DIM];
        add_token(&mut v, "add r1, r2", 2.0);
        add_token(&mut v, "add r1, r2", 3.0);
        let d = hash_token("add r1, r2");
        assert!((v[d].abs() - 5.0).abs() < 1e-12);
    }
}
