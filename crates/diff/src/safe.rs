//! A SAFE-like differ.
//!
//! SAFE embeds the *linear instruction sequence* with a self-attentive
//! RNN. The deterministic stand-in keeps the two properties that matter:
//! order sensitivity (positional weighting of token contributions) and
//! attention-style emphasis (rarer tokens weigh more than filler moves).

use crate::tokens::function_class_stream;
use crate::vector::{TokenHasher, EMB_DIM};
use crate::Differ;
use khaos_binary::Binary;
use std::collections::HashMap;

/// SAFE stand-in. See the module docs.
#[derive(Clone, Debug)]
pub struct Safe {
    /// Positional encoding period (tokens per phase bucket).
    pub position_period: usize,
}

impl Default for Safe {
    fn default() -> Self {
        Safe {
            position_period: 24,
        }
    }
}

impl Differ for Safe {
    fn name(&self) -> &'static str {
        "SAFE"
    }

    fn config_fingerprint(&self) -> u64 {
        self.position_period as u64
    }

    fn embed(&self, bin: &Binary) -> Vec<Vec<f64>> {
        // Corpus-level token frequencies give the attention weights
        // (inverse-frequency emphasis, as learned attention tends to).
        // Each distinct token is hashed once into a resumable state;
        // per-occurrence work is then a lookup plus the 3-byte phase
        // suffix — identical, bit for bit, to the seed's
        // `format!("{t}#p{phase}")` hashing.
        let streams: Vec<Vec<String>> = bin.functions.iter().map(function_class_stream).collect();
        let mut df: HashMap<&str, (f64, TokenHasher)> = HashMap::new();
        for s in &streams {
            for t in s {
                df.entry(t.as_str())
                    .or_insert_with(|| (0.0, TokenHasher::new().feed(t)))
                    .0 += 1.0;
            }
        }
        let total: f64 = df.values().map(|(c, _)| c).sum::<f64>().max(1.0);

        streams
            .iter()
            .map(|s| {
                let mut v = vec![0.0; EMB_DIM];
                let n = s.len().max(1) as f64;
                for (i, t) in s.iter().enumerate() {
                    let (count, h) = df[t.as_str()];
                    let attention = (total / (1.0 + count)).ln().max(0.1);
                    // Position bucket: early/mid/late phases of the body.
                    const PHASES: [&str; 4] = ["#p0", "#p1", "#p2", "#p3"];
                    let phase = (i / self.position_period) % 4;
                    h.add_to(&mut v, attention / n);
                    h.feed(PHASES[phase]).add_to(&mut v, 0.5 * attention / n);
                }
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for x in &mut v {
                        *x /= norm;
                    }
                }
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::vector::cosine;

    #[test]
    fn deterministic_and_self_similar() {
        let b = small_binary("s");
        let tool = Safe::default();
        let e1 = tool.embed(&b);
        let e2 = tool.embed(&b);
        assert_eq!(e1, e2);
        assert!((cosine(&e1[0], &e1[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn order_matters() {
        let b = small_binary("s");
        let tool = Safe::default();
        let e = tool.embed(&b);
        // Reverse the blocks of alpha: the positional phases shift.
        let mut rev = b.clone();
        rev.functions[0].blocks.reverse();
        let er = tool.embed(&rev);
        assert!(
            cosine(&e[0], &er[0]) < 1.0 - 1e-6,
            "sequence order must influence the embedding"
        );
    }

    #[test]
    fn attention_emphasizes_rare_tokens() {
        let b = small_binary("s");
        let tool = Safe::default();
        let e = tool.embed(&b);
        // beta (bit-twiddling, rare shl/and mix) should not be confused
        // with alpha (loop adds).
        assert!(cosine(&e[0], &e[1]) < 0.99);
    }
}
