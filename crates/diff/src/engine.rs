//! The batched similarity engine.
//!
//! The paper's §4.2 protocol (`Precision@1`, `escape@k`, whole-binary
//! similarity) is the hot loop of every figure this repo reproduces,
//! and it is a textbook one-to-many function-search workload: embed
//! both binaries once, then answer many ranked queries against the same
//! candidate pool. This module provides the batched primitives the
//! metrics layer runs on:
//!
//! * [`FunctionEmbeddings`] — per-function embeddings in a single flat
//!   row-major buffer, **L2-normalized at construction**. The
//!   normalization invariant makes cosine similarity a pure dot
//!   product: no per-pair norms, no per-pair `sqrt`.
//! * [`SimilarityMatrix`] — the full query×target similarity matrix in
//!   flat storage, built once per binary pair with parallel rows
//!   (`khaos-par`), with `O(T)` ranked retrieval ([`SimilarityMatrix::top_k`]
//!   via partial selection, [`SimilarityMatrix::argmax_row`]) instead
//!   of full sorts.
//! * [`EmbeddingCache`] — a bounded, thread-safe cache keyed by
//!   `(tool name, tool configuration, binary fingerprint)` so
//!   `precision_at_1`, `rank_of_true_match`, `escape_at_k` and
//!   `binary_similarity` share embeddings instead of each re-embedding
//!   the same binaries from scratch. With a persistent `khaos-store`
//!   attached (the `KHAOS_STORE` environment variable for the global
//!   instance), lookups tier **memory → disk → compute** and artifacts
//!   survive the process — cross-process sweeps and CI runs warm-start,
//!   served bit-identical to a fresh computation.
//! * the **streaming rank layer** — [`RowScore`] (per-tool cell
//!   scorers over cached embeddings), [`StreamingTopK`]
//!   (`O(k)`-memory ranked selection) and the
//!   [`stream_top_k`]/[`stream_rank_of_first_match`] drivers. Rank-only
//!   metrics use these to answer `top_k`, `rank_of_true_match` and
//!   `escape_profile` without ever allocating the `Q×T` matrix.
//!
//! # Dot-product dispatch
//!
//! Every dot in this module — the matrix build, [`EmbedScorer`], the
//! streaming top-k scans — goes through **one checked entry point**,
//! [`crate::kernels::dot`], which dispatches to an explicit
//! `std::arch` kernel chosen once per process: AVX-512, AVX2 or the
//! portable 8-wide blocked kernel ([`dot_blocked`] delegates to the
//! same implementation). The choice comes from
//! `is_x86_feature_detected!` cached in a `OnceLock`, and the
//! **`KHAOS_SIMD={auto,scalar,avx2,avx512}`** environment variable
//! overrides it so every variant runs on one host (CI runs tier-1
//! under `scalar` and `auto`). All f64 variants are **bit-identical**
//! — they compute the same blocked reduction, deliberately without
//! FMA — so ranked artifacts never depend on the dispatch choice; see
//! [`crate::kernels`] for the full contract. The int8 quantized tier
//! ([`crate::quant::QuantizedEmbeddings`],
//! [`crate::quant::stream_top_k_quantized`]) sits on the same
//! dispatch via its integer-exact `dot_i8` kernels, and
//! [`EmbeddingCache::get_or_quantize`] gives it the same
//! memory → disk → compute tiering (counted separately by the
//! `quant_*` fields of [`CacheStats`]).
//!
//! The legacy per-pair path ([`crate::Differ::similarity_matrix`],
//! [`crate::cosine`]) is kept intact as the reference implementation;
//! equivalence of every path — per-pair, batched matrix, streaming —
//! to 1e-12 is asserted by this module's tests and
//! `tests/batched_engine.rs` at the workspace root.

use khaos_binary::Binary;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Per-function embeddings in flat row-major storage, each row
/// L2-normalized at construction (all-zero rows stay all-zero).
///
/// With every row unit-length, `cosine(a, b) == dot(a, b)` — the
/// per-pair square roots and norm recomputations of the legacy
/// [`crate::cosine`] path disappear from the inner loop.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionEmbeddings {
    n: usize,
    dim: usize,
    data: Vec<f64>,
}

impl FunctionEmbeddings {
    /// Flattens and normalizes per-function embedding rows.
    ///
    /// # Panics
    /// Panics when rows have inconsistent dimensionality.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let dim = rows.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(n * dim);
        for row in &rows {
            assert_eq!(row.len(), dim, "ragged embedding rows");
            data.extend_from_slice(row);
        }
        let mut e = FunctionEmbeddings { n, dim, data };
        e.normalize_rows();
        e
    }

    fn normalize_rows(&mut self) {
        if self.dim == 0 {
            return;
        }
        for row in self.data.chunks_mut(self.dim) {
            let norm: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// Number of functions (rows).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The normalized embedding of function `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat row-major buffer — the exact bytes the disk tier
    /// persists (`khaos-store` round-trips raw f64 bits).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Rewraps a flat buffer of **already normalized** rows without
    /// renormalizing — the disk-tier load path. Renormalizing here
    /// would divide by a norm of ~1.0 and could perturb low bits, which
    /// would break the pinned guarantee that disk-served embeddings are
    /// bit-identical to freshly computed ones.
    ///
    /// # Panics
    /// Panics when `data.len() != n * dim`.
    pub fn from_flat_normalized(n: usize, dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * dim, "flat embedding shape mismatch");
        FunctionEmbeddings { n, dim, data }
    }
}

/// Descending score comparison for ranked selection: standard IEEE
/// comparison when the pair is ordered — so `-0.0` ties `+0.0` and
/// falls through to the lower-index tie-break, exactly the seed's
/// `partial_cmp` semantics — with a [`f64::total_cmp`] fallback when a
/// NaN is involved, so a NaN produced by a buggy scorer degrades to a
/// deterministic rank (positive NaN above `+inf`, negative NaN below
/// `-inf`) instead of panicking mid-rank. This is a valid total
/// ordering: the only pairs `total_cmp` would order differently are
/// `±0.0`, and those are already handled as equal by the ordered arm.
#[inline]
pub(crate) fn cmp_scores_desc(a: f64, b: f64) -> std::cmp::Ordering {
    b.partial_cmp(&a).unwrap_or_else(|| b.total_cmp(&a))
}

/// Naive scalar dot product: the reference semantics the blocked
/// kernel is pinned against (1e-12) by `tests/batched_engine.rs`.
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot over mismatched dimensions");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// 8-wide blocked dot product with a scalar tail — the portable
/// kernel, now shared with the SIMD dispatch layer (this is exactly
/// [`crate::kernels`]' `Scalar` variant, and the AVX2/AVX-512 kernels
/// replicate its reduction bit-for-bit).
///
/// Eight independent accumulators let the CPU overlap the FP adds
/// (the scalar loop serializes on one accumulator's add latency);
/// rows come from the flat row-major [`FunctionEmbeddings`] buffer, so
/// the loads stream. Reassociation changes the rounding order, which is
/// why equivalence to [`dot_scalar`] is pinned at 1e-12, not bitwise.
///
/// Like [`crate::cosine`], the blocked entry point debug-asserts equal
/// lengths — `zip` would otherwise silently truncate to the shorter
/// side and quietly skew every similarity built on top.
#[inline]
pub fn dot_blocked(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot over mismatched dimensions");
    crate::kernels::raw::dot_blocked(a, b)
}

/// A query×target similarity matrix in flat row-major storage, built
/// once per binary pair.
#[derive(Clone, Debug, PartialEq)]
pub struct SimilarityMatrix {
    q: usize,
    t: usize,
    data: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds the matrix from normalized embeddings; similarities are
    /// clamped into `[0, 1]`, mirroring the legacy
    /// [`crate::Differ::similarity_matrix`] default. Rows are computed
    /// in parallel.
    pub fn from_embeddings(qe: &FunctionEmbeddings, te: &FunctionEmbeddings) -> Self {
        Self::build(qe, te, true)
    }

    /// As [`SimilarityMatrix::from_embeddings`] but without the clamp
    /// at zero — raw cosine in `[-1, 1]`, used by the block-granularity
    /// DeepBinDiff judgment whose legacy path never clamped.
    pub fn from_embeddings_signed(qe: &FunctionEmbeddings, te: &FunctionEmbeddings) -> Self {
        Self::build(qe, te, false)
    }

    fn build(qe: &FunctionEmbeddings, te: &FunctionEmbeddings, clamp: bool) -> Self {
        // An empty side has dimensionality 0 by construction; the
        // matrix is then a degenerate q×0 / 0×t shape (rank queries
        // return `None`, exactly as the legacy path behaved), so the
        // dimension invariant only binds when both sides have rows.
        if !qe.is_empty() && !te.is_empty() {
            assert_eq!(
                qe.dim(),
                te.dim(),
                "query and target embeddings must share a dimensionality"
            );
        }
        let (q, t) = (qe.len(), te.len());
        let mut data = vec![0.0f64; q * t];
        if t > 0 && q > 0 {
            khaos_par::par_chunks_mut(&mut data, t, |i, row| {
                let qr = qe.row(i);
                for (j, slot) in row.iter_mut().enumerate() {
                    let s = crate::kernels::dot(qr, te.row(j));
                    *slot = if clamp { s.max(0.0) } else { s };
                }
            });
        }
        SimilarityMatrix { q, t, data }
    }

    /// Wraps an already-computed flat matrix (used by tools whose
    /// similarity is not an embedding dot product, e.g. BinDiff's
    /// symbol matching).
    ///
    /// # Panics
    /// Panics when `data.len() != q * t`.
    pub fn from_flat(q: usize, t: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), q * t, "flat matrix shape mismatch");
        SimilarityMatrix { q, t, data }
    }

    /// Number of query rows.
    pub fn rows(&self) -> usize {
        self.q
    }

    /// Number of target columns.
    pub fn cols(&self) -> usize {
        self.t
    }

    /// Row view for query function `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.t..(i + 1) * self.t]
    }

    /// Similarity between query `i` and target `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.t + j]
    }

    /// Index of the best candidate for query `i`; the **first** maximum
    /// wins on ties (lowest index), matching the legacy argmax loops.
    /// `None` when there are no candidates.
    pub fn argmax_row(&self, i: usize) -> Option<usize> {
        let row = self.row(i);
        let mut best = 0usize;
        let mut best_s = f64::MIN;
        if row.is_empty() {
            return None;
        }
        for (j, &s) in row.iter().enumerate() {
            if s > best_s {
                best_s = s;
                best = j;
            }
        }
        Some(best)
    }

    /// The `k` best candidates for query `i` in ranked order
    /// (descending similarity, ties broken by lower index — the exact
    /// order [`crate::rank_of_true_match`] ranks in), found by partial
    /// selection instead of a full sort: `O(T + k log k)` rather than
    /// `O(T log T)`.
    ///
    /// Scores are ordered by the NaN-total [`cmp_scores_desc`]
    /// ordering, so a NaN produced by a buggy scorer degrades
    /// deterministically (positive NaN ranks above `+inf`, negative NaN
    /// below `-inf`) instead of panicking mid-rank, while ordered
    /// scores keep the seed's exact tie-break (`-0.0` ties `+0.0`).
    pub fn top_k(&self, i: usize, k: usize) -> Vec<(usize, f64)> {
        let row = self.row(i);
        let k = k.min(row.len());
        if k == 0 {
            return Vec::new();
        }
        let rank_order = |&a: &usize, &b: &usize| cmp_scores_desc(row[a], row[b]).then(a.cmp(&b));
        let mut idx: Vec<usize> = (0..row.len()).collect();
        if k < idx.len() {
            idx.select_nth_unstable_by(k - 1, rank_order);
            idx.truncate(k);
        }
        idx.sort_unstable_by(rank_order);
        idx.into_iter().map(|j| (j, row[j])).collect()
    }

    /// 1-based rank of the best-ranked target accepted by `is_match`,
    /// under the same ordering as [`SimilarityMatrix::top_k`], or
    /// `None` when no target matches. Runs in `O(T)` — no sort.
    pub fn rank_of_first_match(
        &self,
        i: usize,
        is_match: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        rank_of_first_match_in_row(self.row(i), is_match)
    }

    /// Elementwise maximum with a same-shaped matrix (the best-of-two-
    /// views matching of `DataFlowDiff`).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge_max(&mut self, other: &SimilarityMatrix) {
        assert_eq!(
            (self.q, self.t),
            (other.q, other.t),
            "matrix shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Copies into the legacy nested-`Vec` representation.
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        (0..self.q).map(|i| self.row(i).to_vec()).collect()
    }

    /// The whole flat row-major buffer — what the disk tier persists.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }
}

/// 1-based rank of the best-ranked candidate accepted by `is_match`
/// in one similarity row (descending similarity, ties broken by lower
/// index), or `None` when nothing matches. Shared by the matrix path
/// ([`SimilarityMatrix::rank_of_first_match`]) and the streaming path
/// ([`stream_rank_of_first_match`]), so both rank under one pinned
/// tie-break.
pub fn rank_of_first_match_in_row(
    row: &[f64],
    mut is_match: impl FnMut(usize) -> bool,
) -> Option<usize> {
    // The matching candidate that sorts earliest: maximum
    // similarity, ties broken by lower index (first win).
    let mut best: Option<(f64, usize)> = None;
    for (j, &s) in row.iter().enumerate() {
        if is_match(j) && best.map(|(bs, _)| s > bs).unwrap_or(true) {
            best = Some((s, j));
        }
    }
    let (ms, mj) = best?;
    let ahead = row
        .iter()
        .enumerate()
        .filter(|&(j, &s)| s > ms || (s == ms && j < mj))
        .count();
    Some(ahead + 1)
}

/// Bounded top-`k` selection over a stream of `(index, score)`
/// candidates, keeping the same ranked order as
/// [`SimilarityMatrix::top_k`] (descending score, ties broken by lower
/// index) in `O(k)` memory — the selection half of the rank-only path
/// that never materializes a similarity matrix.
///
/// Internally a binary min-heap under the rank order: the root is the
/// *worst* retained candidate, so each offer is `O(1)` when it does not
/// make the cut and `O(log k)` when it does.
#[derive(Clone, Debug)]
pub struct StreamingTopK {
    k: usize,
    heap: Vec<(f64, usize)>,
}

/// `a` ranks strictly worse than `b`: lower score, or equal score with
/// higher index — under the same NaN-total [`cmp_scores_desc`] order
/// the ranked sorts use, so the candidates [`StreamingTopK`] *retains*
/// under capacity pressure match [`SimilarityMatrix::top_k`] even when
/// a buggy scorer emits NaN.
#[inline]
fn ranks_worse(a: (f64, usize), b: (f64, usize)) -> bool {
    cmp_scores_desc(a.0, b.0).then(a.1.cmp(&b.1)) == std::cmp::Ordering::Greater
}

impl StreamingTopK {
    /// A selector retaining the `k` best candidates.
    pub fn new(k: usize) -> Self {
        StreamingTopK {
            k,
            heap: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Number of candidates currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained (also when `k == 0`).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers one candidate.
    pub fn offer(&mut self, index: usize, score: f64) {
        if self.k == 0 {
            return;
        }
        let cand = (score, index);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            // Sift up.
            let mut i = self.heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if ranks_worse(self.heap[i], self.heap[parent]) {
                    self.heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
            return;
        }
        if !ranks_worse(cand, self.heap[0]) {
            // Strictly better than the worst retained: replace + sift down.
            self.heap[0] = cand;
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut worst = i;
                if l < self.heap.len() && ranks_worse(self.heap[l], self.heap[worst]) {
                    worst = l;
                }
                if r < self.heap.len() && ranks_worse(self.heap[r], self.heap[worst]) {
                    worst = r;
                }
                if worst == i {
                    break;
                }
                self.heap.swap(i, worst);
                i = worst;
            }
        }
    }

    /// The retained candidates in ranked order (descending score, ties
    /// by lower index) — exactly the order [`SimilarityMatrix::top_k`]
    /// returns. NaN scores sort under the same NaN-total ordering as
    /// `top_k` ([`cmp_scores_desc`]): deterministic, never a panic.
    pub fn into_ranked(self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.heap.into_iter().map(|(s, j)| (j, s)).collect();
        v.sort_unstable_by(|a, b| cmp_scores_desc(a.1, b.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Absorbs every candidate retained by `other`, keeping this
    /// selector's capacity `k` — the combining step of the parallel
    /// streaming path, where each worker selects over a disjoint block
    /// of candidate indices and the blocks are merged afterwards.
    ///
    /// The retained *set* is offer-order-independent: retention
    /// decisions compare candidates under the total
    /// `(score descending, index ascending)` order ([`cmp_scores_desc`]
    /// then index), so the survivors of any merge sequence are exactly
    /// the true top `k` of the union — including the documented
    /// tie-breaks (`-0.0` ties `+0.0` and falls to the lower index; NaN
    /// ranks deterministically). [`StreamingTopK::into_ranked`] then
    /// sorts the survivors, so merged output is bit-identical to a
    /// single sequential scan (pinned by this module's tests and the
    /// `batched_engine` suite).
    pub fn merge(&mut self, other: StreamingTopK) {
        for (s, j) in other.heap {
            self.offer(j, s);
        }
    }
}

/// One side of the rank-only streaming path: similarity of a query
/// function against target candidates, computed cell by cell instead of
/// as a materialized `Q×T` matrix. Implementations must score exactly
/// what the tool's batched [`SimilarityMatrix`] would hold at `(qi, j)`
/// (the streaming/matrix equivalence is pinned by
/// `tests/batched_engine.rs`).
///
/// Scorers are `Sync`: scoring is a pure read of the pair's cached
/// embeddings/fingerprints, and the parallel rank drivers
/// ([`par_stream_top_k_rows`], [`par_stream_ranks`]) share one scorer
/// across `khaos-par` workers — each query row is independent, so the
/// streaming metrics parallelize across rows without any per-row setup.
pub trait RowScore: Sync {
    /// Number of query functions.
    fn rows(&self) -> usize;
    /// Number of target candidates.
    fn cols(&self) -> usize;
    /// Similarity of query `qi` vs target `j`.
    fn score(&self, qi: usize, j: usize) -> f64;

    /// Writes query `qi`'s full similarity row into `out` (reused
    /// scratch, `O(T)` — the only buffer the rank path ever allocates).
    fn fill_row(&self, qi: usize, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.cols());
        for j in 0..self.cols() {
            out.push(self.score(qi, j));
        }
    }
}

/// The default [`RowScore`]: blocked dot products over two normalized
/// embedding tables, clamped at zero exactly like
/// [`SimilarityMatrix::from_embeddings`].
pub struct EmbedScorer {
    qe: Arc<FunctionEmbeddings>,
    te: Arc<FunctionEmbeddings>,
    clamp: bool,
}

impl EmbedScorer {
    /// Builds the scorer; panics when both sides are non-empty with
    /// mismatched dimensionalities (mirroring the matrix constructor).
    pub fn new(qe: Arc<FunctionEmbeddings>, te: Arc<FunctionEmbeddings>, clamp: bool) -> Self {
        if !qe.is_empty() && !te.is_empty() {
            assert_eq!(
                qe.dim(),
                te.dim(),
                "query and target embeddings must share a dimensionality"
            );
        }
        EmbedScorer { qe, te, clamp }
    }
}

impl RowScore for EmbedScorer {
    fn rows(&self) -> usize {
        self.qe.len()
    }
    fn cols(&self) -> usize {
        self.te.len()
    }
    #[inline]
    fn score(&self, qi: usize, j: usize) -> f64 {
        let s = crate::kernels::dot(self.qe.row(qi), self.te.row(j));
        if self.clamp {
            s.max(0.0)
        } else {
            s
        }
    }
}

/// Candidate-count threshold below which [`stream_top_k`] scans
/// sequentially: a few thousand dot products finish faster than a
/// thread spawn, and the blocked path's result is identical anyway.
const STREAM_PAR_MIN_COLS: usize = 8192;

/// Streaming [`SimilarityMatrix::top_k`]: the `k` best candidates for
/// query `qi` in ranked order, computed in `O(k)` extra memory per
/// worker from a [`RowScore`] — no matrix, no full row.
///
/// On wide candidate pools the scan parallelizes over contiguous
/// column blocks ([`stream_top_k_blocks`]); output is bit-identical to
/// the sequential scan at any `KHAOS_THREADS` (and inside a `khaos-par`
/// worker — the row-parallel drivers — the nested fan-out degrades to
/// sequential).
pub fn stream_top_k(scorer: &dyn RowScore, qi: usize, k: usize) -> Vec<(usize, f64)> {
    let _span = khaos_obs::span("stream_top_k");
    let cols = scorer.cols();
    if cols < STREAM_PAR_MIN_COLS {
        let mut sel = StreamingTopK::new(k);
        for j in 0..cols {
            sel.offer(j, scorer.score(qi, j));
        }
        return sel.into_ranked();
    }
    stream_top_k_blocks(
        scorer,
        qi,
        k,
        cols.div_ceil(khaos_par::max_threads() * 4).max(1),
    )
}

/// [`stream_top_k`] with an explicit column block size: workers select
/// each block's top `k` independently ([`StreamingTopK`] per block) and
/// the per-block selectors are merged ([`StreamingTopK::merge`]) —
/// the retained set equals the true top `k` of the whole row under the
/// pinned total order, so the ranked result is **bit-identical** to the
/// sequential scan for every block size and thread count (pinned by
/// this module's tests and `tests/batched_engine.rs`).
pub fn stream_top_k_blocks(
    scorer: &dyn RowScore,
    qi: usize,
    k: usize,
    block: usize,
) -> Vec<(usize, f64)> {
    assert!(block > 0, "block size must be positive");
    let cols = scorer.cols();
    let n_blocks = cols.div_ceil(block);
    let mut sel = StreamingTopK::new(k);
    for part in khaos_par::par_map(n_blocks, |b| {
        let mut part = StreamingTopK::new(k);
        for j in b * block..((b + 1) * block).min(cols) {
            part.offer(j, scorer.score(qi, j));
        }
        part
    }) {
        sel.merge(part);
    }
    sel.into_ranked()
}

/// Row-parallel [`stream_top_k`]: ranks many query rows concurrently
/// (each row is an independent scan — the §4.2 fan-out axis the paper's
/// protocol exposes), returning one ranked candidate list per entry of
/// `rows`, in input order. Bit-identical to calling [`stream_top_k`]
/// sequentially per row at any `KHAOS_THREADS`.
pub fn par_stream_top_k_rows(
    scorer: &dyn RowScore,
    rows: &[usize],
    k: usize,
) -> Vec<Vec<(usize, f64)>> {
    khaos_par::par_map(rows.len(), |i| stream_top_k(scorer, rows[i], k))
}

/// Row-parallel [`stream_rank_of_first_match`]: computes the 1-based
/// rank of the first `is_match(qi, j)`-accepted candidate for every
/// query in `rows`, in input order. Each `khaos-par` worker reuses one
/// `O(T)` scratch row ([`khaos_par::par_map_with`]), so memory stays
/// `O(threads × T)` for arbitrarily many queries. Bit-identical to the
/// sequential loop at any `KHAOS_THREADS` (pinned by
/// `tests/batched_engine.rs`).
pub fn par_stream_ranks(
    scorer: &dyn RowScore,
    rows: &[usize],
    is_match: impl Fn(usize, usize) -> bool + Sync,
) -> Vec<Option<usize>> {
    khaos_par::par_map_with(rows.len(), Vec::new, |scratch, i| {
        let qi = rows[i];
        stream_rank_of_first_match(scorer, qi, scratch, |j| is_match(qi, j))
    })
}

/// Streaming [`SimilarityMatrix::rank_of_first_match`]: computes one
/// similarity row into `scratch` (reused across queries) and ranks in
/// it — `O(T)` memory for arbitrarily many queries, instead of the
/// `O(Q×T)` matrix.
pub fn stream_rank_of_first_match(
    scorer: &dyn RowScore,
    qi: usize,
    scratch: &mut Vec<f64>,
    is_match: impl FnMut(usize) -> bool,
) -> Option<usize> {
    scorer.fill_row(qi, scratch);
    rank_of_first_match_in_row(scratch, is_match)
}

/// Cache key: tool identity (name + configuration fingerprint) and
/// binary fingerprint.
type CacheKey = (&'static str, u64, u64);

/// Hit/miss counters of an [`EmbeddingCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory tier.
    pub hits: u64,
    /// Lookups the memory tier could not answer (served by disk or
    /// computed).
    pub misses: u64,
    /// Embedding tables currently resident.
    pub entries: usize,
    /// Similarity matrices currently resident. The rank-only metric
    /// path (`escape_profile` on an unseen pair, the streaming rank
    /// helpers) must never grow this — asserted by
    /// `tests/batched_engine.rs`.
    pub matrix_entries: usize,
    /// Memory misses answered by the disk tier (an attached
    /// `khaos-store`). Disk-served artifacts are bit-identical to
    /// freshly computed ones — pinned by `crates/store` tests and
    /// `tests/store_e2e.rs`.
    pub disk_hits: u64,
    /// Memory misses the disk tier could not answer either (the
    /// artifact was then computed). Zero when no store is attached.
    pub disk_misses: u64,
    /// Records successfully written to the disk tier.
    pub disk_writes: u64,
    /// Embedding tables actually computed by calling the tool's
    /// `embed` — the recomputation counter a warm-start sweep asserts
    /// to be zero on its second run.
    pub embeds_computed: u64,
    /// Quantized tables currently resident (the int8 tier's own FIFO
    /// map, bounded by the same capacity).
    pub quant_entries: usize,
    /// Quantized-tier lookups answered from memory. Quantized traffic
    /// is counted separately from the f64 counters above so a
    /// shortlist-heavy workload can't masquerade as f64 cache health.
    pub quant_hits: u64,
    /// Quantized-tier memory misses (served by disk, derived from the
    /// f64 tier, or quantized fresh).
    pub quant_misses: u64,
    /// Quantized records successfully written to the disk tier.
    pub quant_writes: u64,
}

/// Matrix cache key: tool identity plus both binaries' fingerprints.
type MatrixKey = (&'static str, u64, u64, u64);

/// Pre-resolved `khaos-obs` global-registry handles mirroring
/// [`CacheStats`]: every cache instance increments these alongside its
/// internal counters (one relaxed atomic add per event), so the
/// process-wide registry — and the daemon's metrics frame — exports
/// cache-tier effectiveness live, aggregated across instances, without
/// any extra lock traffic. The per-instance [`EmbeddingCache::stats`]
/// numbers remain the exact source of truth for one cache.
struct CacheObs {
    hits: Arc<khaos_obs::Counter>,
    misses: Arc<khaos_obs::Counter>,
    disk_hits: Arc<khaos_obs::Counter>,
    disk_misses: Arc<khaos_obs::Counter>,
    disk_writes: Arc<khaos_obs::Counter>,
    embeds_computed: Arc<khaos_obs::Counter>,
    quant_hits: Arc<khaos_obs::Counter>,
    quant_misses: Arc<khaos_obs::Counter>,
    quant_writes: Arc<khaos_obs::Counter>,
    entries: Arc<khaos_obs::Gauge>,
    matrix_entries: Arc<khaos_obs::Gauge>,
    quant_entries: Arc<khaos_obs::Gauge>,
}

fn cache_obs() -> &'static CacheObs {
    static OBS: OnceLock<CacheObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = khaos_obs::Registry::global();
        CacheObs {
            hits: r.counter("diff.cache.hits"),
            misses: r.counter("diff.cache.misses"),
            disk_hits: r.counter("diff.cache.disk_hits"),
            disk_misses: r.counter("diff.cache.disk_misses"),
            disk_writes: r.counter("diff.cache.disk_writes"),
            embeds_computed: r.counter("diff.cache.embeds_computed"),
            quant_hits: r.counter("diff.cache.quant_hits"),
            quant_misses: r.counter("diff.cache.quant_misses"),
            quant_writes: r.counter("diff.cache.quant_writes"),
            entries: r.gauge("diff.cache.entries"),
            matrix_entries: r.gauge("diff.cache.matrix_entries"),
            quant_entries: r.gauge("diff.cache.quant_entries"),
        }
    })
}

/// Shared FIFO insert-with-eviction for the cache's two bounded maps.
/// Re-inserting an existing key replaces the value without touching
/// the eviction order.
fn insert_bounded<K: std::hash::Hash + Eq + Copy, V>(
    map: &mut HashMap<K, Arc<V>>,
    order: &mut std::collections::VecDeque<K>,
    capacity: usize,
    key: K,
    value: Arc<V>,
) {
    if !map.contains_key(&key) {
        while map.len() >= capacity {
            match order.pop_front() {
                Some(old) => {
                    map.remove(&old);
                }
                None => break,
            }
        }
        order.push_back(key);
    }
    map.insert(key, value);
}

struct CacheInner {
    map: HashMap<CacheKey, Arc<FunctionEmbeddings>>,
    /// Insertion order for FIFO eviction.
    order: std::collections::VecDeque<CacheKey>,
    matrices: HashMap<MatrixKey, Arc<SimilarityMatrix>>,
    matrix_order: std::collections::VecDeque<MatrixKey>,
    quant: HashMap<CacheKey, Arc<crate::quant::QuantizedEmbeddings>>,
    quant_order: std::collections::VecDeque<CacheKey>,
    /// The disk tier, when attached (memory → disk → compute).
    store: Option<Arc<khaos_store::Store>>,
    hits: u64,
    misses: u64,
    disk_hits: u64,
    disk_misses: u64,
    disk_writes: u64,
    embeds_computed: u64,
    quant_hits: u64,
    quant_misses: u64,
    quant_writes: u64,
}

/// A bounded, thread-safe embedding cache keyed by
/// `(tool name, tool configuration fingerprint, binary fingerprint)`.
///
/// All metric entry points share one process-wide instance
/// ([`EmbeddingCache::global`]), so a Figure-8 sweep that scores five
/// tools × four metrics over the same binary pair embeds each
/// `(tool, binary)` combination exactly once. Entries are evicted FIFO
/// past the capacity bound.
///
/// ## The disk tier
///
/// With a `khaos-store` attached ([`EmbeddingCache::attach_store`], or
/// the `KHAOS_STORE` environment variable for the global instance),
/// lookups go **memory → disk → compute**: a memory miss first tries
/// the persistent store, and freshly computed artifacts are written
/// back, so sweeps warm-start across processes and CI runs. The tier an
/// artifact is served from is unobservable in the values: disk records
/// round-trip raw f64 bits and the load path never renormalizes, so
/// memory-served, disk-served and recomputed results are
/// **bit-identical** (pinned by `crates/store/tests/roundtrip.rs` and
/// `tests/store_e2e.rs`). Disk I/O errors degrade to cache misses —
/// a broken disk never fails a metric call.
pub struct EmbeddingCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` embedding tables (and the
    /// same number of similarity matrices).
    pub fn new(capacity: usize) -> Self {
        EmbeddingCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
                matrices: HashMap::new(),
                matrix_order: std::collections::VecDeque::new(),
                quant: HashMap::new(),
                quant_order: std::collections::VecDeque::new(),
                store: None,
                hits: 0,
                misses: 0,
                disk_hits: 0,
                disk_misses: 0,
                disk_writes: 0,
                embeds_computed: 0,
                quant_hits: 0,
                quant_misses: 0,
                quant_writes: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide cache the metric wrappers use. When the
    /// `KHAOS_STORE` environment variable names a directory, the
    /// persistent store there is attached as the disk tier.
    pub fn global() -> &'static EmbeddingCache {
        static GLOBAL: OnceLock<EmbeddingCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = EmbeddingCache::new(256);
            if let Some(store) = khaos_store::Store::from_env() {
                cache.attach_store(store);
            }
            cache
        })
    }

    /// Attaches a persistent store as the disk tier (replacing any
    /// previous one). Existing in-memory entries are kept; they will be
    /// written through lazily as they are recomputed, not eagerly.
    pub fn attach_store(&self, store: Arc<khaos_store::Store>) {
        self.inner.lock().expect("embedding cache poisoned").store = Some(store);
    }

    /// The attached disk tier, if any.
    pub fn store(&self) -> Option<Arc<khaos_store::Store>> {
        self.inner
            .lock()
            .expect("embedding cache poisoned")
            .store
            .clone()
    }

    /// Looks up the embeddings for `key`: memory, then the attached
    /// disk store, then `embed`.
    ///
    /// The disk probe and the embedding both run outside the lock:
    /// concurrent metric calls on different binaries never serialize on
    /// each other's embedding work (a racing duplicate insert is
    /// tolerated — last write wins, both values are identical by
    /// determinism of the tools).
    pub fn get_or_embed(
        &self,
        key: CacheKey,
        embed: impl FnOnce() -> Vec<Vec<f64>>,
    ) -> Arc<FunctionEmbeddings> {
        let store;
        {
            let mut inner = self.inner.lock().expect("embedding cache poisoned");
            if let Some(hit) = inner.map.get(&key) {
                let hit = Arc::clone(hit);
                inner.hits += 1;
                cache_obs().hits.inc();
                return hit;
            }
            inner.misses += 1;
            cache_obs().misses.inc();
            store = inner.store.clone();
        }
        let disk_key = khaos_store::EmbKey {
            tool: key.0,
            config: key.1,
            binary: key.2,
        };
        if let Some(store) = &store {
            if let Ok(Some(table)) = store.get_embeddings(&disk_key) {
                let value = Arc::new(FunctionEmbeddings::from_flat_normalized(
                    table.rows as usize,
                    table.dim as usize,
                    table.data,
                ));
                let mut inner = self.inner.lock().expect("embedding cache poisoned");
                inner.disk_hits += 1;
                cache_obs().disk_hits.inc();
                let CacheInner { map, order, .. } = &mut *inner;
                insert_bounded(map, order, self.capacity, key, Arc::clone(&value));
                cache_obs().entries.set(map.len() as i64);
                return value;
            }
        }
        let value = {
            let _span = khaos_obs::span_with(|| format!("embed:{}", key.0));
            Arc::new(FunctionEmbeddings::from_rows(embed()))
        };
        let wrote = store.as_ref().is_some_and(|store| {
            store
                .put_embeddings(
                    &disk_key,
                    khaos_store::TableView::new(value.len(), value.dim(), value.as_flat()),
                )
                .is_ok()
        });
        let mut inner = self.inner.lock().expect("embedding cache poisoned");
        inner.embeds_computed += 1;
        cache_obs().embeds_computed.inc();
        if store.is_some() {
            inner.disk_misses += 1;
            inner.disk_writes += wrote as u64;
            cache_obs().disk_misses.inc();
            cache_obs().disk_writes.add(wrote as u64);
        }
        let CacheInner { map, order, .. } = &mut *inner;
        insert_bounded(map, order, self.capacity, key, Arc::clone(&value));
        cache_obs().entries.set(map.len() as i64);
        value
    }

    /// Looks up the **int8 quantized** embeddings for `key`: memory,
    /// then the attached disk store's quantized records, then derived
    /// from the f64 tier (which itself tiers memory → disk →
    /// `embed`). Freshly derived tables are written through to disk.
    ///
    /// Quantized traffic is counted separately
    /// (`quant_hits`/`quant_misses`/`quant_writes` in [`CacheStats`];
    /// a disk-served quantized record also counts one `disk_hits`).
    /// Quantization is deterministic and the store round-trips the i8
    /// codes and per-row scales bit-exactly, so — as with the f64
    /// tier — the tier a table came from is unobservable.
    pub fn get_or_quantize(
        &self,
        key: CacheKey,
        embed: impl FnOnce() -> Vec<Vec<f64>>,
    ) -> Arc<crate::quant::QuantizedEmbeddings> {
        let store;
        {
            let mut inner = self.inner.lock().expect("embedding cache poisoned");
            if let Some(hit) = inner.quant.get(&key) {
                let hit = Arc::clone(hit);
                inner.quant_hits += 1;
                cache_obs().quant_hits.inc();
                return hit;
            }
            inner.quant_misses += 1;
            cache_obs().quant_misses.inc();
            store = inner.store.clone();
        }
        let disk_key = khaos_store::EmbKey {
            tool: key.0,
            config: key.1,
            binary: key.2,
        };
        if let Some(store) = &store {
            if let Ok(Some(table)) = store.get_quantized(&disk_key) {
                let value = Arc::new(crate::quant::QuantizedEmbeddings::from_parts(
                    table.rows as usize,
                    table.dim as usize,
                    table.data,
                    table.scales,
                    table.offsets,
                ));
                let mut inner = self.inner.lock().expect("embedding cache poisoned");
                inner.disk_hits += 1;
                cache_obs().disk_hits.inc();
                let CacheInner {
                    quant, quant_order, ..
                } = &mut *inner;
                insert_bounded(quant, quant_order, self.capacity, key, Arc::clone(&value));
                cache_obs().quant_entries.set(quant.len() as i64);
                return value;
            }
        }
        // Derive from the f64 tier (shares its memory/disk/compute
        // path and counters), then write the quantized table through.
        let base = self.get_or_embed(key, embed);
        let value = {
            let _span = khaos_obs::span_with(|| format!("quantize:{}", key.0));
            Arc::new(crate::quant::QuantizedEmbeddings::from_embeddings(&base))
        };
        let wrote = store.as_ref().is_some_and(|store| {
            store
                .put_quantized(
                    &disk_key,
                    khaos_store::QuantView::new(
                        value.len(),
                        value.dim(),
                        value.scales(),
                        value.offsets(),
                        value.codes(),
                    ),
                )
                .is_ok()
        });
        let mut inner = self.inner.lock().expect("embedding cache poisoned");
        inner.quant_writes += wrote as u64;
        cache_obs().quant_writes.add(wrote as u64);
        let CacheInner {
            quant, quant_order, ..
        } = &mut *inner;
        insert_bounded(quant, quant_order, self.capacity, key, Arc::clone(&value));
        cache_obs().quant_entries.set(quant.len() as i64);
        value
    }

    /// The similarity matrix for a `(tool, query, target)` triple,
    /// computed at most once per cache residency — the "matrix produced
    /// once per binary pair" half of the engine. All metric wrappers
    /// route through this, so `precision_at_1` + `escape@k` +
    /// `binary_similarity` over the same pair share one matrix. With a
    /// disk tier attached, matrices persist and reload across processes
    /// exactly like embedding tables (bit-identical, flat buffer in and
    /// out).
    pub fn matrix_for(
        &self,
        tool: &dyn crate::Differ,
        query: &Binary,
        target: &Binary,
    ) -> Arc<SimilarityMatrix> {
        let key: MatrixKey = (
            tool.name(),
            tool.config_fingerprint(),
            query.fingerprint(),
            target.fingerprint(),
        );
        let store;
        {
            let mut inner = self.inner.lock().expect("embedding cache poisoned");
            if let Some(hit) = inner.matrices.get(&key) {
                let hit = Arc::clone(hit);
                inner.hits += 1;
                cache_obs().hits.inc();
                return hit;
            }
            inner.misses += 1;
            cache_obs().misses.inc();
            store = inner.store.clone();
        }
        let disk_key = khaos_store::MatKey {
            tool: key.0,
            config: key.1,
            query: key.2,
            target: key.3,
        };
        if let Some(store) = &store {
            if let Ok(Some(table)) = store.get_matrix(&disk_key) {
                let value = Arc::new(SimilarityMatrix::from_flat(
                    table.rows as usize,
                    table.dim as usize,
                    table.data,
                ));
                let mut inner = self.inner.lock().expect("embedding cache poisoned");
                inner.disk_hits += 1;
                cache_obs().disk_hits.inc();
                let CacheInner {
                    matrices,
                    matrix_order,
                    ..
                } = &mut *inner;
                insert_bounded(
                    matrices,
                    matrix_order,
                    self.capacity,
                    key,
                    Arc::clone(&value),
                );
                cache_obs().matrix_entries.set(matrices.len() as i64);
                return value;
            }
        }
        // Built outside the lock; embeddings come from this same cache,
        // reusing the fingerprints already computed for the matrix key.
        let value = {
            let _span = khaos_obs::span_with(|| format!("matrix:{}", key.0));
            Arc::new(tool.batched_similarity_keyed(query, target, self, key.2, key.3))
        };
        let wrote = store.as_ref().is_some_and(|store| {
            store
                .put_matrix(
                    &disk_key,
                    khaos_store::TableView::new(value.rows(), value.cols(), value.as_flat()),
                )
                .is_ok()
        });
        let mut inner = self.inner.lock().expect("embedding cache poisoned");
        if store.is_some() {
            inner.disk_misses += 1;
            inner.disk_writes += wrote as u64;
            cache_obs().disk_misses.inc();
            cache_obs().disk_writes.add(wrote as u64);
        }
        let CacheInner {
            matrices,
            matrix_order,
            ..
        } = &mut *inner;
        insert_bounded(
            matrices,
            matrix_order,
            self.capacity,
            key,
            Arc::clone(&value),
        );
        cache_obs().matrix_entries.set(matrices.len() as i64);
        value
    }

    /// The similarity matrix for a `(tool, query, target)` triple **if
    /// it is already resident in memory** — never builds one and never
    /// probes the disk tier (the rank-only path must stay free of both
    /// `Q×T` allocation and disk I/O; streaming off cached embeddings
    /// is cheaper than deserializing a full matrix it would use once).
    /// The rank-only metric path uses this to reuse a matrix some
    /// earlier metric already paid for, falling back to the streaming
    /// scorer (which never allocates `Q×T`) when nothing is cached. A
    /// hit counts in [`EmbeddingCache::stats`]; a miss is not charged
    /// (nothing is embedded or built on this path).
    pub fn peek_matrix(
        &self,
        tool: &dyn crate::Differ,
        query_fingerprint: u64,
        target_fingerprint: u64,
    ) -> Option<Arc<SimilarityMatrix>> {
        let key: MatrixKey = (
            tool.name(),
            tool.config_fingerprint(),
            query_fingerprint,
            target_fingerprint,
        );
        let mut inner = self.inner.lock().expect("embedding cache poisoned");
        let hit = inner.matrices.get(&key).map(Arc::clone);
        if hit.is_some() {
            inner.hits += 1;
            cache_obs().hits.inc();
        }
        hit
    }

    /// Cache effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("embedding cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
            matrix_entries: inner.matrices.len(),
            disk_hits: inner.disk_hits,
            disk_misses: inner.disk_misses,
            disk_writes: inner.disk_writes,
            embeds_computed: inner.embeds_computed,
            quant_entries: inner.quant.len(),
            quant_hits: inner.quant_hits,
            quant_misses: inner.quant_misses,
            quant_writes: inner.quant_writes,
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("embedding cache poisoned");
        inner.map.clear();
        inner.order.clear();
        inner.matrices.clear();
        inner.matrix_order.clear();
        inner.quant.clear();
        inner.quant_order.clear();
    }

    /// The cache key for a differ/binary combination.
    pub fn key(name: &'static str, config_fingerprint: u64, bin: &Binary) -> CacheKey {
        (name, config_fingerprint, bin.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;
    use crate::vector::cosine;
    use crate::Differ;

    #[test]
    fn rows_are_unit_or_zero() {
        let e =
            FunctionEmbeddings::from_rows(vec![vec![3.0, 4.0], vec![0.0, 0.0], vec![-2.0, 0.0]]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.dim(), 2);
        let norm = |r: &[f64]| r.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm(e.row(0)) - 1.0).abs() < 1e-15);
        assert_eq!(norm(e.row(1)), 0.0);
        assert!((norm(e.row(2)) - 1.0).abs() < 1e-15);
        assert_eq!(e.row(2), &[-1.0, 0.0]);
    }

    /// The length debug-assert of [`crate::cosine`] fires in the
    /// blocked kernel entry point too — mismatched dimensions must not
    /// silently truncate in either path.
    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "dot over mismatched dimensions")
    )]
    fn blocked_dot_asserts_equal_lengths() {
        if !cfg!(debug_assertions) {
            // Release builds compile the assert out; nothing to check.
            return;
        }
        let _ = dot_blocked(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
    }

    /// Same guard on the scalar reference kernel.
    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "dot over mismatched dimensions")
    )]
    fn scalar_dot_asserts_equal_lengths() {
        if !cfg!(debug_assertions) {
            return;
        }
        let _ = dot_scalar(&[1.0; 9], &[1.0; 8]);
    }

    #[test]
    fn streaming_top_k_is_deterministic_on_ties() {
        // Pinned tie-break: equal scores rank by lower index, exactly
        // like SimilarityMatrix::top_k.
        let row = [0.5, 0.9, 0.5, 0.9, 0.1, 0.9, 0.0];
        let mut sel = StreamingTopK::new(4);
        for (j, &s) in row.iter().enumerate() {
            sel.offer(j, s);
        }
        let got: Vec<usize> = sel.into_ranked().into_iter().map(|(j, _)| j).collect();
        assert_eq!(got, vec![1, 3, 5, 0]);
        // k = 0 retains nothing.
        let mut empty = StreamingTopK::new(0);
        empty.offer(0, 1.0);
        assert!(empty.is_empty());
        assert!(empty.into_ranked().is_empty());
    }

    /// Satellite regression for the parallel path's combining step:
    /// merging per-block heaps must preserve the documented tie-break —
    /// `-0.0` ties `+0.0`, equal scores rank by lower index — even when
    /// the duplicates straddle the merge boundary, and must equal a
    /// single sequential scan bit for bit.
    #[test]
    fn streaming_top_k_merge_preserves_tie_break_across_boundaries() {
        // Duplicate scores placed so every tie spans the block split:
        // 0.9 at {1, 6}, 0.5 at {2, 5}, and a -0.0/+0.0 pair at {3, 4}.
        let row = [0.1, 0.9, 0.5, -0.0, 0.0, 0.5, 0.9, -1.0];
        for split in 0..=row.len() {
            for k in 0..=row.len() + 1 {
                // Sequential reference.
                let mut seq = StreamingTopK::new(k);
                for (j, &s) in row.iter().enumerate() {
                    seq.offer(j, s);
                }
                let want = seq.into_ranked();
                // Two per-block selectors merged at `split`.
                let mut left = StreamingTopK::new(k);
                for (j, &s) in row.iter().enumerate().take(split) {
                    left.offer(j, s);
                }
                let mut right = StreamingTopK::new(k);
                for (j, &s) in row.iter().enumerate().skip(split) {
                    right.offer(j, s);
                }
                left.merge(right);
                let got = left.into_ranked();
                assert_eq!(got.len(), want.len(), "split={split} k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "split={split} k={k}: index order diverged");
                    assert_eq!(
                        g.1.to_bits(),
                        w.1.to_bits(),
                        "split={split} k={k}: score bits diverged (±0.0 must survive merge)"
                    );
                }
            }
        }
        // The ±0.0 tie itself: +0.0 at index 4 must NOT outrank -0.0 at
        // index 3 (they compare equal; the lower index wins), and each
        // keeps its own sign bit through the merge.
        let mut a = StreamingTopK::new(2);
        a.offer(3, -0.0);
        let mut b = StreamingTopK::new(2);
        b.offer(4, 0.0);
        a.merge(b);
        let ranked = a.into_ranked();
        assert_eq!(ranked[0].0, 3);
        assert_eq!(ranked[0].1.to_bits(), (-0.0f64).to_bits());
        assert_eq!(ranked[1].0, 4);
        assert_eq!(ranked[1].1.to_bits(), 0.0f64.to_bits());
    }

    /// The block-parallel scan is bit-identical to the sequential one
    /// for every block size, including NaN rows (the NaN-total order
    /// governs retention in every block).
    #[test]
    fn stream_top_k_blocks_matches_sequential_for_all_block_sizes() {
        let row = vec![0.5, f64::NAN, 0.9, 0.5, -0.0, 0.0, -f64::NAN, 0.7, 0.9];
        let m = SimilarityMatrix::from_flat(1, row.len(), row.clone());
        struct MatScorer(SimilarityMatrix);
        impl RowScore for MatScorer {
            fn rows(&self) -> usize {
                self.0.rows()
            }
            fn cols(&self) -> usize {
                self.0.cols()
            }
            fn score(&self, qi: usize, j: usize) -> f64 {
                self.0.get(qi, j)
            }
        }
        let scorer = MatScorer(m.clone());
        for k in 0..=row.len() + 1 {
            let want = stream_top_k(&scorer, 0, k);
            for block in 1..=row.len() + 1 {
                let got = stream_top_k_blocks(&scorer, 0, k, block);
                assert_eq!(got.len(), want.len(), "k={k} block={block}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(
                        (g.0, g.1.to_bits()),
                        (w.0, w.1.to_bits()),
                        "k={k} block={block}"
                    );
                }
            }
            // And both agree with the matrix's partial selection.
            let matrix: Vec<usize> = m.top_k(0, k).into_iter().map(|(j, _)| j).collect();
            let streamed: Vec<usize> = want.iter().map(|&(j, _)| j).collect();
            assert_eq!(streamed, matrix, "k={k}");
        }
    }

    #[test]
    fn matrix_matches_per_pair_cosine() {
        let rows_a = vec![
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.0, 0.0],
            vec![-1.0, 0.5, 2.0],
        ];
        let rows_b = vec![vec![2.0, 4.0, 6.0], vec![1.0, -1.0, 0.0]];
        let qe = FunctionEmbeddings::from_rows(rows_a.clone());
        let te = FunctionEmbeddings::from_rows(rows_b.clone());
        let m = SimilarityMatrix::from_embeddings(&qe, &te);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        for (i, ra) in rows_a.iter().enumerate() {
            for (j, rb) in rows_b.iter().enumerate() {
                let want = cosine(ra, rb).max(0.0);
                assert!(
                    (m.get(i, j) - want).abs() <= 1e-12,
                    "({i},{j}): {} vs {}",
                    m.get(i, j),
                    want
                );
            }
        }
    }

    #[test]
    fn signed_matrix_keeps_negative_cosines() {
        let qe = FunctionEmbeddings::from_rows(vec![vec![1.0, 0.0]]);
        let te = FunctionEmbeddings::from_rows(vec![vec![-1.0, 0.0]]);
        assert_eq!(SimilarityMatrix::from_embeddings(&qe, &te).get(0, 0), 0.0);
        assert!((SimilarityMatrix::from_embeddings_signed(&qe, &te).get(0, 0) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn top_k_agrees_with_full_sort_including_ties() {
        // Row engineered with duplicates: ties must break by lower index.
        let row = vec![0.5, 0.9, 0.5, 0.9, 0.1, 0.9, 0.0];
        let m = SimilarityMatrix::from_flat(1, row.len(), row.clone());
        let mut full: Vec<usize> = (0..row.len()).collect();
        full.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap().then(a.cmp(&b)));
        for k in 0..=row.len() + 2 {
            let got: Vec<usize> = m.top_k(0, k).into_iter().map(|(j, _)| j).collect();
            let want: Vec<usize> = full.iter().copied().take(k).collect();
            assert_eq!(got, want, "k={k}");
        }
        // Sanity on the tie order itself.
        assert_eq!(
            m.top_k(0, 4)
                .into_iter()
                .map(|(j, _)| j)
                .collect::<Vec<_>>(),
            vec![1, 3, 5, 0]
        );
    }

    #[test]
    fn rank_of_first_match_equals_sorted_position() {
        let row = vec![0.5, 0.9, 0.5, 0.9, 0.1, 0.9, 0.0];
        let m = SimilarityMatrix::from_flat(1, row.len(), row.clone());
        let mut order: Vec<usize> = (0..row.len()).collect();
        order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap().then(a.cmp(&b)));
        // For every single-candidate predicate, the O(T) rank must equal
        // the full-sort position.
        for target in 0..row.len() {
            let want = order.iter().position(|&j| j == target).unwrap() + 1;
            assert_eq!(
                m.rank_of_first_match(0, |j| j == target),
                Some(want),
                "target {target}"
            );
        }
        // Multi-candidate predicate: the earliest-sorted match counts.
        assert_eq!(m.rank_of_first_match(0, |j| j == 0 || j == 3), Some(2));
        assert_eq!(m.rank_of_first_match(0, |_| false), None);
    }

    #[test]
    fn empty_sides_yield_degenerate_matrices_not_panics() {
        let some = FunctionEmbeddings::from_rows(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        let none = FunctionEmbeddings::from_rows(vec![]);
        let m = SimilarityMatrix::from_embeddings(&some, &none);
        assert_eq!((m.rows(), m.cols()), (2, 0));
        assert_eq!(m.rank_of_first_match(0, |_| true), None);
        assert!(m.top_k(0, 5).is_empty());
        let m = SimilarityMatrix::from_embeddings(&none, &some);
        assert_eq!((m.rows(), m.cols()), (0, 2));
    }

    #[test]
    fn escape_is_total_when_target_binary_is_empty() {
        // The legacy path returned rank None -> escape 1.0 for an
        // empty candidate pool; the batched path must not panic.
        let mut marked = small_binary("e");
        marked.functions[0]
            .provenance
            .annotations
            .push("vulnerable".into());
        let mut empty = small_binary("e2");
        empty.functions.clear();
        let tool = crate::Safe::default();
        assert_eq!(crate::escape_at_k(&tool, &marked, &empty, 10), 1.0);
        assert_eq!(crate::rank_of_true_match(&tool, &marked, &empty, 0), None);
    }

    #[test]
    fn argmax_first_max_wins() {
        let m = SimilarityMatrix::from_flat(1, 4, vec![0.3, 0.7, 0.7, 0.2]);
        assert_eq!(m.argmax_row(0), Some(1));
        let empty = SimilarityMatrix::from_flat(1, 0, vec![]);
        assert_eq!(empty.argmax_row(0), None);
    }

    #[test]
    fn cache_hits_and_evicts() {
        let cache = EmbeddingCache::new(2);
        let bin = small_binary("c");
        let tool = crate::Safe::default();
        let k1 = EmbeddingCache::key(tool.name(), tool.config_fingerprint(), &bin);
        let a = cache.get_or_embed(k1, || tool.embed(&bin));
        let b = cache.get_or_embed(k1, || panic!("must be cached"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        // Two more keys evict the first (capacity 2, FIFO).
        cache.get_or_embed(("x", 0, 1), || vec![vec![1.0]]);
        cache.get_or_embed(("x", 0, 2), || vec![vec![1.0]]);
        assert_eq!(cache.stats().entries, 2);
        cache.get_or_embed(k1, || tool.embed(&bin));
        assert_eq!(
            cache.stats().misses,
            4,
            "first key was evicted and re-embedded"
        );
    }

    #[test]
    fn top_k_and_streaming_degrade_deterministically_on_nan() {
        // A NaN score must not panic mid-rank; under the NaN-total
        // order a positive NaN ranks above +inf, deterministically,
        // and a negative NaN below -inf.
        let row = vec![0.5, f64::NAN, 0.9, 0.5, -f64::NAN, 0.7];
        let m = SimilarityMatrix::from_flat(1, row.len(), row.clone());
        let want = vec![1usize, 2, 5, 0, 3, 4];
        let got: Vec<usize> = m.top_k(0, row.len()).into_iter().map(|(j, _)| j).collect();
        assert_eq!(got, want);
        // StreamingTopK matches the matrix ranking at every k —
        // including under capacity pressure (k < len), where the
        // retention decision itself must honour the NaN-total order,
        // not just the final sort.
        for k in 0..=row.len() {
            let mut sel = StreamingTopK::new(k);
            for (j, &s) in row.iter().enumerate() {
                sel.offer(j, s);
            }
            let ranked: Vec<usize> = sel.into_ranked().into_iter().map(|(j, _)| j).collect();
            let matrix: Vec<usize> = m.top_k(0, k).into_iter().map(|(j, _)| j).collect();
            assert_eq!(ranked, matrix, "k={k}");
            assert_eq!(ranked, want[..k], "k={k}");
        }
    }

    #[test]
    fn fifo_eviction_order_under_capacity_pressure() {
        // Capacity 2; keys arrive 1, 2, 3, so 1 must be the evictee
        // (oldest insertion), then touching 2 must NOT save it from
        // being evicted by 4 — the order is insertion, not recency.
        let cache = EmbeddingCache::new(2);
        let (k1, k2, k3, k4) = (("t", 0, 1), ("t", 0, 2), ("t", 0, 3), ("t", 0, 4));
        let embed = || vec![vec![1.0, 2.0]];
        cache.get_or_embed(k1, embed);
        cache.get_or_embed(k2, embed);
        cache.get_or_embed(k3, embed); // evicts k1
        cache.get_or_embed(k2, || panic!("k2 must still be resident"));
        cache.get_or_embed(k4, embed); // evicts k2 despite the recent hit
        cache.get_or_embed(k3, || panic!("k3 must still be resident"));
        cache.get_or_embed(k4, || panic!("k4 must still be resident"));
        let mut evicted = false;
        cache.get_or_embed(k2, || {
            evicted = true;
            vec![vec![1.0, 2.0]]
        });
        assert!(evicted, "k2 was evicted FIFO despite being hit after k3");
    }

    #[test]
    fn cache_stats_stay_consistent_across_evictions() {
        let cache = EmbeddingCache::new(2);
        let embed = || vec![vec![3.0, 4.0]];
        for round in 0..3u64 {
            for b in 0..4u64 {
                cache.get_or_embed(("t", 0, b), embed);
            }
            let s = cache.stats();
            assert!(s.entries <= 2, "entries bounded by capacity: {s:?}");
            assert_eq!(
                s.hits + s.misses,
                (round + 1) * 4,
                "every lookup is either a hit or a miss: {s:?}"
            );
            // No disk tier attached: disk counters must stay zero and
            // every miss must have computed.
            assert_eq!((s.disk_hits, s.disk_misses, s.disk_writes), (0, 0, 0));
            assert_eq!(s.embeds_computed, s.misses, "{s:?}");
            // Quantized traffic is counted separately: none yet.
            assert_eq!((s.quant_hits, s.quant_misses, s.quant_writes), (0, 0, 0));
            assert_eq!(s.quant_entries, 0, "{s:?}");
        }
        // Capacity 2 over a 4-key working set, FIFO: every lookup
        // misses (the working set never fits).
        assert_eq!(cache.stats().misses, 12);
        // Re-inserting a resident key must not inflate `entries`.
        cache.get_or_embed(("t", 0, 3), || panic!("resident"));
        assert_eq!(cache.stats().entries, 2);

        // The quantized tier keeps its own FIFO map and counters under
        // the same capacity bound, and never perturbs the f64 side's
        // hit/miss totals.
        let f64_lookups = cache.stats().hits + cache.stats().misses;
        for round in 0..3u64 {
            for b in 0..4u64 {
                cache.get_or_quantize(("t", 0, b), embed);
            }
            let s = cache.stats();
            assert!(s.quant_entries <= 2, "quant FIFO bounded: {s:?}");
            assert_eq!(
                s.quant_hits + s.quant_misses,
                (round + 1) * 4,
                "every quant lookup is either a hit or a miss: {s:?}"
            );
            assert_eq!(s.quant_writes, 0, "no disk tier, no quant writes: {s:?}");
        }
        // Every quant miss derived through the f64 tier (one
        // get_or_embed each), so the f64 counters moved by exactly the
        // quant-miss count — quantized traffic is visible there only
        // as the derivations it caused, never double-counted.
        let s = cache.stats();
        assert_eq!(s.quant_misses, 12, "{s:?}");
        assert_eq!(s.hits + s.misses, f64_lookups + s.quant_misses, "{s:?}");
        // A resident quant key hits without touching the f64 tier.
        let before = cache.stats();
        cache.get_or_quantize(("t", 0, 3), || panic!("quant-resident"));
        let after = cache.stats();
        assert_eq!(after.quant_hits, before.quant_hits + 1);
        assert_eq!(after.hits + after.misses, before.hits + before.misses);
        assert_eq!(after.quant_entries, 2);
    }

    #[test]
    fn disk_tier_round_trips_bit_identical_and_counts() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "khaos-engine-disk-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(khaos_store::Store::open(&dir).expect("store opens"));

        let bin = small_binary("disk");
        let tool = crate::Safe::default();
        let key = EmbeddingCache::key(tool.name(), tool.config_fingerprint(), &bin);

        // Process 1: cold — computes and writes through.
        let first = EmbeddingCache::new(8);
        first.attach_store(Arc::clone(&store));
        let computed = first.get_or_embed(key, || tool.embed(&bin));
        let s = first.stats();
        assert_eq!((s.disk_hits, s.disk_misses, s.disk_writes), (0, 1, 1));
        assert_eq!(s.embeds_computed, 1);

        // "Process 2": a fresh cache over the same store — disk hit,
        // nothing recomputed, bits identical.
        let second = EmbeddingCache::new(8);
        second.attach_store(Arc::clone(&store));
        let loaded = second.get_or_embed(key, || panic!("must come from disk"));
        let s = second.stats();
        assert_eq!((s.disk_hits, s.disk_misses), (1, 0));
        assert_eq!(s.embeds_computed, 0);
        assert_eq!(
            (loaded.len(), loaded.dim()),
            (computed.len(), computed.dim())
        );
        for (a, b) in loaded.as_flat().iter().zip(computed.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits(), "disk round trip is bit-exact");
        }

        // Matrices take the same tiered path.
        let m1 = first.matrix_for(&tool, &bin, &bin);
        let third = EmbeddingCache::new(8);
        third.attach_store(Arc::clone(&store));
        let m2 = third.matrix_for(&tool, &bin, &bin);
        assert_eq!(third.stats().disk_hits, 1, "matrix served from disk");
        assert_eq!(third.stats().embeds_computed, 0);
        for (a, b) in m2.as_flat().iter().zip(m1.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // The quantized tier rides the same store: derive + write
        // through once, then a fresh cache serves the table from disk
        // — i8 codes and per-row scales bit-exact, nothing recomputed.
        let q1 = first.get_or_quantize(key, || panic!("f64 table is resident"));
        let s = first.stats();
        assert_eq!((s.quant_hits, s.quant_misses, s.quant_writes), (0, 1, 1));
        let fourth = EmbeddingCache::new(8);
        fourth.attach_store(Arc::clone(&store));
        let q2 = fourth.get_or_quantize(key, || panic!("must come from disk"));
        let s = fourth.stats();
        assert_eq!((s.quant_hits, s.quant_misses, s.quant_writes), (0, 1, 0));
        assert_eq!(s.embeds_computed, 0, "disk-served, not re-derived: {s:?}");
        assert!(s.disk_hits >= 1, "{s:?}");
        assert_eq!(q2.codes(), q1.codes(), "i8 payload round trip");
        for (a, b) in q2.scales().iter().zip(q1.scales()) {
            assert_eq!(a.to_bits(), b.to_bits(), "scales round trip bit-exactly");
        }
        for (a, b) in q2.offsets().iter().zip(q1.offsets()) {
            assert_eq!(a.to_bits(), b.to_bits(), "offsets round trip bit-exactly");
        }
        assert_eq!(*q1, *q2, "derived qsums and shape agree");
        std::fs::remove_dir_all(&dir).expect("scratch dir removed");
    }

    #[test]
    fn fingerprint_distinguishes_observable_changes_only() {
        let a = small_binary("f");
        let mut renamed = a.clone();
        renamed.functions[0].name = Some("other".into());
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let mut annotated = a.clone();
        annotated.functions[0]
            .provenance
            .annotations
            .push("vulnerable".into());
        assert_eq!(
            a.fingerprint(),
            annotated.fingerprint(),
            "ground truth is invisible to tools"
        );
    }
}
