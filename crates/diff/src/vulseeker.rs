//! A VulSeeker-like differ.
//!
//! VulSeeker extracts per-function numeric semantic features and fuses
//! them through a structure2vec network over the **call graph**. We keep
//! both ingredients: an 8-dimensional feature block (stack, arithmetic,
//! logic, transfer, call, conditional, constant and total counts — the
//! feature set of the original) concatenated with propagated neighbour
//! features over caller/callee edges. Because the call graph is part of
//! the embedding, inter-procedural obfuscation poisons it — the property
//! the paper's Table 1 calls out ("call-graph lacking": N).

use crate::Differ;
use khaos_binary::{BinFunction, Binary, Opcode, SymRef};

/// VulSeeker stand-in. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct VulSeeker {
    /// Number of propagation rounds (structure2vec depth).
    pub hops: Option<u32>,
}

const FEAT: usize = 8;

fn features(f: &BinFunction) -> [f64; FEAT] {
    let mut stack = 0.0;
    let mut arith = 0.0;
    let mut logic = 0.0;
    let mut transfer = 0.0;
    let mut calls = 0.0;
    let mut cond = 0.0;
    let mut consts = 0.0;
    let mut total = 0.0;
    let pool = f.operand_pool.as_slice();
    for b in &f.blocks {
        for i in &b.insts {
            total += 1.0;
            match i.opcode {
                Opcode::Push | Opcode::Pop => stack += 1.0,
                Opcode::Add
                | Opcode::Sub
                | Opcode::Imul
                | Opcode::Idiv
                | Opcode::Div
                | Opcode::Neg
                | Opcode::Addsd
                | Opcode::Subsd
                | Opcode::Mulsd
                | Opcode::Divsd => arith += 1.0,
                Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Not
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Sar
                | Opcode::Xorps => logic += 1.0,
                Opcode::Mov
                | Opcode::MovImm
                | Opcode::Load
                | Opcode::Store
                | Opcode::Movsd
                | Opcode::Movsx
                | Opcode::Movzx
                | Opcode::Lea => transfer += 1.0,
                Opcode::Call | Opcode::CallInd => calls += 1.0,
                Opcode::Jcc | Opcode::Cmp | Opcode::Test | Opcode::Ucomisd => cond += 1.0,
                _ => {}
            }
            for o in i.operands(pool) {
                if matches!(o, khaos_binary::MOperand::Imm(_)) {
                    consts += 1.0;
                }
            }
        }
    }
    [stack, arith, logic, transfer, calls, cond, consts, total]
}

fn normalize(v: &mut [f64]) {
    let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

impl Differ for VulSeeker {
    fn name(&self) -> &'static str {
        "VulSeeker"
    }

    fn config_fingerprint(&self) -> u64 {
        match self.hops {
            Some(h) => 1 + h as u64,
            None => 0,
        }
    }

    fn embed(&self, bin: &Binary) -> Vec<Vec<f64>> {
        let n = bin.functions.len();
        let own: Vec<[f64; FEAT]> = bin.functions.iter().map(features).collect();

        // Call-graph adjacency (callers ∪ callees, function-level).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in bin.functions.iter().enumerate() {
            for b in &f.blocks {
                for c in &b.calls {
                    if let SymRef::Func(j) = c {
                        let j = *j as usize;
                        if j < n && j != i {
                            if !adj[i].contains(&j) {
                                adj[i].push(j);
                            }
                            if !adj[j].contains(&i) {
                                adj[j].push(i);
                            }
                        }
                    }
                }
            }
        }

        // structure2vec-style mean aggregation.
        let hops = self.hops.unwrap_or(2);
        let mut state: Vec<Vec<f64>> = own.iter().map(|x| x.to_vec()).collect();
        for _ in 0..hops {
            let mut next = state.clone();
            for (i, neigh) in adj.iter().enumerate() {
                if neigh.is_empty() {
                    continue;
                }
                let mut agg = [0.0; FEAT];
                for &j in neigh {
                    for k in 0..FEAT {
                        agg[k] += state[j][k];
                    }
                }
                for k in 0..FEAT {
                    next[i][k] = 0.6 * state[i][k] + 0.4 * agg[k] / neigh.len() as f64;
                }
            }
            state = next;
        }

        // Embedding = own features ++ propagated state, normalized.
        state
            .into_iter()
            .zip(own)
            .map(|(prop, own)| {
                let mut v: Vec<f64> = own.to_vec();
                v.extend(prop);
                normalize(&mut v);
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::small_binary;

    #[test]
    fn self_match() {
        let b = small_binary("v");
        let tool = VulSeeker::default();
        let m = tool.similarity_matrix(&b, &b);
        for (i, row) in m.iter().enumerate() {
            let best = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            assert_eq!(best.0, i);
        }
    }

    #[test]
    fn call_graph_changes_move_the_embedding() {
        let b = small_binary("v");
        let tool = VulSeeker { hops: Some(2) };
        let base = tool.embed(&b);
        // Remove main's call edges (as if the callee were fused away).
        let mut cut = b.clone();
        for blk in &mut cut.functions[2].blocks {
            blk.calls.clear();
        }
        let moved = tool.embed(&cut);
        // alpha's embedding changes because its caller edge vanished.
        let drift = crate::cosine(&base[0], &moved[0]);
        assert!(
            drift < 0.999999,
            "call-graph dependence must be visible, got {drift}"
        );
    }

    #[test]
    fn feature_extraction_counts() {
        let b = small_binary("v");
        let f = features(&b.functions[2]); // main has two calls
        assert!(f[4] >= 2.0, "call feature sees both calls");
        assert!(f[7] > 0.0);
    }
}
