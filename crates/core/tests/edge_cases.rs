//! Edge cases of the primitives: switch exits, multi-region fission,
//! fusion of recursive / pointer-parameter functions, combination with
//! disabled options.

use khaos_core::{fission, fusion, KhaosContext, KhaosOptions};
use khaos_ir::builder::FunctionBuilder;
use khaos_ir::{BinOp, CmpPred, ExtFunc, FuncId, Module, Operand, ProvKind, Type};
use khaos_vm::run_to_completion;

fn print_ext(m: &mut Module) -> khaos_ir::ExtId {
    m.declare_external(ExtFunc {
        name: "print_i64".into(),
        params: vec![Type::I64],
        ret_ty: Type::Void,
        variadic: false,
    })
}

/// A function whose cold region exits through a switch with three
/// distinct outside targets — exercising the exit-code dispatch.
#[test]
fn fission_multi_exit_region_dispatch() {
    let mut m = Module::new("t");
    let p = print_ext(&mut m);
    let mut fb = FunctionBuilder::new("multi", Type::I64);
    let x = fb.add_param(Type::I64);
    let cold1 = fb.new_block();
    let cold2 = fb.new_block();
    let out_a = fb.new_block();
    let out_b = fb.new_block();
    let out_c = fb.new_block();
    let big = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 100));
    fb.branch(Operand::local(big), cold1, out_a);
    // Region {cold1, cold2}: switch exits to three outside blocks.
    fb.switch_to(cold1);
    let y = fb.bin(BinOp::And, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 3));
    fb.jump(cold2);
    fb.switch_to(cold2);
    fb.switch(Type::I64, Operand::local(y), vec![(0, out_a), (1, out_b)], out_c);
    fb.switch_to(out_a);
    fb.ret(Some(Operand::const_int(Type::I64, 10)));
    fb.switch_to(out_b);
    fb.ret(Some(Operand::const_int(Type::I64, 20)));
    fb.switch_to(out_c);
    fb.ret(Some(Operand::const_int(Type::I64, 30)));
    let f = m.push_function(fb.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let mut acc = main.iconst(Type::I64, 0);
    for arg in [5i64, 104, 101, 102, 103] {
        let r = main.call(f, Type::I64, vec![Operand::const_int(Type::I64, arg)]).unwrap();
        main.call_ext(p, Type::Void, vec![Operand::local(r)]);
        acc = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
    }
    main.ret(Some(Operand::local(acc)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    let want = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::with_options(
        1,
        KhaosOptions { fission_min_value: 0.0, ..KhaosOptions::default() },
    );
    fission(&mut m, &mut ctx).unwrap();
    assert!(ctx.fission_stats.sep_funcs >= 1);
    let got = run_to_completion(&m, &[]).unwrap();
    assert_eq!(want.output, got.output);
    assert_eq!(want.exit_code, got.exit_code);
}

/// Several disjoint regions in one function extract independently.
#[test]
fn fission_multiple_regions_per_function() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("wide", Type::I64);
    let x = fb.add_param(Type::I64);
    // Three parallel cold diamonds off a switch.
    let arms: Vec<_> = (0..3).map(|_| (fb.new_block(), fb.new_block())).collect();
    let join = fb.new_block();
    let sel = fb.bin(BinOp::And, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 3));
    let out = fb.new_local(Type::I64);
    fb.switch(
        Type::I64,
        Operand::local(sel),
        vec![(0, arms[0].0), (1, arms[1].0)],
        arms[2].0,
    );
    for (k, (a, b)) in arms.iter().enumerate() {
        fb.switch_to(*a);
        let v = fb.bin(
            BinOp::Mul,
            Type::I64,
            Operand::local(x),
            Operand::const_int(Type::I64, (k + 2) as i64),
        );
        fb.jump(*b);
        fb.switch_to(*b);
        let w = fb.bin(BinOp::Xor, Type::I64, Operand::local(v), Operand::const_int(Type::I64, 0x1f));
        fb.copy_to(out, Operand::local(w));
        fb.jump(join);
    }
    fb.switch_to(join);
    fb.ret(Some(Operand::local(out)));
    let f = m.push_function(fb.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let mut acc = main.iconst(Type::I64, 0);
    for arg in [0i64, 1, 2, 3, 7] {
        let r = main.call(f, Type::I64, vec![Operand::const_int(Type::I64, arg)]).unwrap();
        acc = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
    }
    main.ret(Some(Operand::local(acc)));
    m.push_function(main.finish());
    let want = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::with_options(
        2,
        KhaosOptions { fission_min_value: 0.0, fission_max_regions: 8, ..KhaosOptions::default() },
    );
    fission(&mut m, &mut ctx).unwrap();
    assert!(
        ctx.fission_stats.sep_funcs >= 2,
        "expected several regions, got {}",
        ctx.fission_stats.sep_funcs
    );
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, want.exit_code);
}

/// Fusion must handle self-recursive constituents: the recursive call is
/// redirected to the fusFunc with the right ctrl value.
#[test]
fn fusion_of_recursive_function() {
    let mut m = Module::new("t");
    let mut rec = FunctionBuilder::new("sum_to", Type::I64);
    let n = rec.add_param(Type::I64);
    let base = rec.new_block();
    let step = rec.new_block();
    let c = rec.cmp(CmpPred::Sle, Type::I64, Operand::local(n), Operand::const_int(Type::I64, 0));
    rec.branch(Operand::local(c), base, step);
    rec.switch_to(base);
    rec.ret(Some(Operand::const_int(Type::I64, 0)));
    rec.switch_to(step);
    let nm1 = rec.bin(BinOp::Sub, Type::I64, Operand::local(n), Operand::const_int(Type::I64, 1));
    let inner = rec.call(FuncId(0), Type::I64, vec![Operand::local(nm1)]).unwrap();
    let s = rec.bin(BinOp::Add, Type::I64, Operand::local(inner), Operand::local(n));
    rec.ret(Some(Operand::local(s)));
    let rid = m.push_function(rec.finish());
    assert_eq!(rid, FuncId(0));

    let mut other = FunctionBuilder::new("shift", Type::I64);
    let v = other.add_param(Type::I64);
    let r = other.bin(BinOp::Shl, Type::I64, Operand::local(v), Operand::const_int(Type::I64, 1));
    other.ret(Some(Operand::local(r)));
    let oid = m.push_function(other.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let a = main.call(rid, Type::I64, vec![Operand::const_int(Type::I64, 10)]).unwrap();
    let b = main.call(oid, Type::I64, vec![Operand::local(a)]).unwrap();
    main.ret(Some(Operand::local(b)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, 110);

    let mut ctx = KhaosContext::new(3);
    fusion(&mut m, &mut ctx).unwrap();
    assert_eq!(ctx.fusion_stats.fus_funcs, 1);
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, 110, "recursion survives fusion");
    // The fused function calls itself (recursive fusFunc, as the paper
    // notes for 502.gcc_r).
    let fus = m.functions.iter().find(|f| f.provenance.kind == ProvKind::Fused).unwrap();
    assert!(fus.provenance.has_origin("sum_to") && fus.provenance.has_origin("shift"));
}

/// Pointer-typed parameters compress with each other.
#[test]
fn fusion_compresses_pointer_params() {
    let mut m = Module::new("t");
    let g = m.push_global(khaos_ir::Global::zeroed("buf", 16));

    let mk = |m: &mut Module, name: &str, off: i64| -> FuncId {
        let mut f = FunctionBuilder::new(name, Type::I64);
        let p = f.add_param(Type::Ptr);
        let q = f.ptradd(Operand::local(p), Operand::const_int(Type::I64, off));
        let v = f.load(Type::I64, Operand::local(q));
        f.ret(Some(Operand::local(v)));
        m.push_function(f.finish())
    };
    let f1 = mk(&mut m, "load_lo", 0);
    let f2 = mk(&mut m, "load_hi", 8);

    let mut main = FunctionBuilder::new("main", Type::I64);
    let ga = main.globaladdr(g);
    main.store(Type::I64, Operand::const_int(Type::I64, 7), Operand::local(ga));
    let hi = main.ptradd(Operand::local(ga), Operand::const_int(Type::I64, 8));
    main.store(Type::I64, Operand::const_int(Type::I64, 35), Operand::local(hi));
    let a = main.call(f1, Type::I64, vec![Operand::local(ga)]).unwrap();
    let b = main.call(f2, Type::I64, vec![Operand::local(ga)]).unwrap();
    let s = main.bin(BinOp::Add, Type::I64, Operand::local(a), Operand::local(b));
    main.ret(Some(Operand::local(s)));
    m.push_function(main.finish());
    let mut ctx = KhaosContext::new(4);
    fusion(&mut m, &mut ctx).unwrap();
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, 42);
    assert_eq!(ctx.fusion_stats.params_removed, 1, "ptr params share a slot");
    let fus = m.functions.iter().find(|f| f.provenance.kind == ProvKind::Fused).unwrap();
    assert_eq!(fus.param_count, 2, "ctrl + one compressed ptr");
}

/// With compression disabled, address-taken constituents are routed
/// through trampolines so indirect calls stay correct.
#[test]
fn fusion_without_compression_uses_trampolines_for_pointers() {
    let mut m = Module::new("t");
    let mk = |m: &mut Module, name: &str, k: i64| -> FuncId {
        let mut f = FunctionBuilder::new(name, Type::I64);
        let x = f.add_param(Type::I64);
        let r = f.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, k));
        f.ret(Some(Operand::local(r)));
        m.push_function(f.finish())
    };
    let f1 = mk(&mut m, "inc1", 1);
    let f2 = mk(&mut m, "inc2", 2);
    let mut main = FunctionBuilder::new("main", Type::I64);
    let p1 = main.funcaddr(f1);
    let r1 = main
        .call_indirect(Operand::local(p1), Type::I64, vec![Operand::const_int(Type::I64, 10)])
        .unwrap();
    let r2 = main.call(f2, Type::I64, vec![Operand::local(r1)]).unwrap();
    main.ret(Some(Operand::local(r2)));
    m.push_function(main.finish());
    let mut ctx = KhaosContext::with_options(
        5,
        KhaosOptions { parameter_compression: false, ..KhaosOptions::default() },
    );
    fusion(&mut m, &mut ctx).unwrap();
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, 13);
    assert!(ctx.fusion_stats.trampolines >= 1, "pointer went through a trampoline");
    assert_eq!(ctx.fusion_stats.indirect_sites_rewritten, 0, "no tags => no decode rewrite");
}

/// Functions pinned into global vtables keep working after fusion via
/// relocation addends (tag) or trampolines.
#[test]
fn fusion_handles_global_function_tables() {
    let mut m = Module::new("t");
    let mk = |m: &mut Module, name: &str, k: i64| -> FuncId {
        let mut f = FunctionBuilder::new(name, Type::I64);
        let x = f.add_param(Type::I64);
        let r = f.bin(BinOp::Mul, Type::I64, Operand::local(x), Operand::const_int(Type::I64, k));
        f.ret(Some(Operand::local(r)));
        m.push_function(f.finish())
    };
    let f1 = mk(&mut m, "times3", 3);
    let f2 = mk(&mut m, "times5", 5);
    let tbl = m.push_global(khaos_ir::Global {
        name: "vtable".into(),
        init: vec![
            khaos_ir::GInit::FuncPtr { func: f1, addend: 0 },
            khaos_ir::GInit::FuncPtr { func: f2, addend: 0 },
        ],
        align: 8,
        exported: false,
    });

    let mut main = FunctionBuilder::new("main", Type::I64);
    let ga = main.globaladdr(tbl);
    let mut acc = main.iconst(Type::I64, 0);
    for slot in 0..2i64 {
        let p = main.ptradd(Operand::local(ga), Operand::const_int(Type::I64, slot * 8));
        let fp = main.load(Type::Ptr, Operand::local(p));
        let r = main
            .call_indirect(Operand::local(fp), Type::I64, vec![Operand::const_int(Type::I64, 10)])
            .unwrap();
        acc = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
    }
    main.ret(Some(Operand::local(acc)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, 80);

    let mut ctx = KhaosContext::new(6);
    fusion(&mut m, &mut ctx).unwrap();
    assert_eq!(
        run_to_completion(&m, &[]).unwrap().exit_code,
        80,
        "vtable dispatch survives fusion"
    );
}

/// The region identifier must never select regions containing allocas
/// whose pointers outlive the region.
#[test]
fn fission_leaves_escaping_allocas_alone() {
    let mut m = Module::new("t");
    let mut fb = FunctionBuilder::new("f", Type::I64);
    let x = fb.add_param(Type::I64);
    let cold = fb.new_block();
    let cold2 = fb.new_block();
    let merge = fb.new_block();
    let slot = fb.new_local(Type::Ptr);
    let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 50));
    fb.branch(Operand::local(c), cold, merge);
    // The region allocates and the pointer flows OUT of the region.
    fb.switch_to(cold);
    let buf = fb.alloca(8);
    fb.store(Type::I64, Operand::local(x), Operand::local(buf));
    fb.copy_to(slot, Operand::local(buf));
    fb.jump(cold2);
    fb.switch_to(cold2);
    fb.jump(merge);
    fb.switch_to(merge);
    let z = fb.select(
        Type::Ptr,
        Operand::local(c),
        Operand::local(slot),
        Operand::local(slot),
    );
    let _ = z;
    fb.ret(Some(Operand::local(x)));
    let f = m.push_function(fb.finish());
    let mut main = FunctionBuilder::new("main", Type::I64);
    let r = main.call(f, Type::I64, vec![Operand::const_int(Type::I64, 60)]).unwrap();
    main.ret(Some(Operand::local(r)));
    m.push_function(main.finish());
    let want = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::with_options(
        7,
        KhaosOptions { fission_min_value: 0.0, ..KhaosOptions::default() },
    );
    fission(&mut m, &mut ctx).unwrap();
    // Whatever was or wasn't extracted, behaviour holds (the alloca
    // region must have been rejected).
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, want.exit_code);
}

/// N-way fusion of a group containing an exported function: the export
/// must keep its name and signature via a trampoline while its body moves
/// into the fusFunc.
#[test]
fn nway_fusion_trampolines_exported_constituent() {
    let mut m = Module::new("t");
    let mut api = FunctionBuilder::new("public_api", Type::I64);
    let p = api.add_param(Type::I64);
    let r = api.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 2));
    api.ret(Some(Operand::local(r)));
    api.set_exported();
    let api_id = m.push_function(api.finish());

    for (name, c) in [("inner1", 5i64), ("inner2", 9)] {
        let mut fb = FunctionBuilder::new(name, Type::I64);
        let x = fb.add_param(Type::I64);
        let v = fb.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, c));
        fb.ret(Some(Operand::local(v)));
        m.push_function(fb.finish());
    }
    let (i1, _) = m.function_by_name("inner1").unwrap();
    let (i2, _) = m.function_by_name("inner2").unwrap();

    let mut main = FunctionBuilder::new("main", Type::I64);
    let a = main.call(api_id, Type::I64, vec![Operand::const_int(Type::I64, 10)]).unwrap();
    let b = main.call(i1, Type::I64, vec![Operand::local(a)]).unwrap();
    let c = main.call(i2, Type::I64, vec![Operand::local(b)]).unwrap();
    main.ret(Some(Operand::local(c)));
    m.push_function(main.finish());
    let want = run_to_completion(&m, &[]).unwrap();
    assert_eq!(want.exit_code, 10 * 2 + 5 + 9);

    let mut ctx = KhaosContext::new(0xE1);
    let infos = khaos_core::fusion::nway::run_n(&mut m, &mut ctx, 3, |_| true);
    assert_eq!(infos.len(), 1, "all three fuse into one group");
    khaos_ir::verify::assert_valid(&m);

    // The export survives as a trampoline under its public name.
    let (_, api) = m.function_by_name("public_api").expect("export kept");
    assert_eq!(api.provenance.kind, ProvKind::Trampoline);
    assert_eq!(api.param_count, 1);
    assert!(ctx.fusion_stats.trampolines >= 1);

    let got = run_to_completion(&m, &[]).unwrap();
    assert_eq!(want.exit_code, got.exit_code);
}

/// N-way fusion with a void constituent in the middle of the group: the
/// fusFunc returns the folded non-void type and the void caller ignores it.
#[test]
fn nway_fusion_mixes_void_and_value_returns() {
    let mut m = Module::new("t");
    let g = m.push_global(khaos_ir::Global::zeroed("counter", 8));

    // void bump() { counter += 1; }
    let mut bump = FunctionBuilder::new("bump", Type::Void);
    let addr = bump.globaladdr(g);
    let old = bump.load(Type::I64, Operand::local(addr));
    let new = bump.bin(BinOp::Add, Type::I64, Operand::local(old), Operand::const_int(Type::I64, 1));
    bump.store(Type::I64, Operand::local(new), Operand::local(addr));
    bump.ret(None);
    let bump_id = m.push_function(bump.finish());

    for (name, c) in [("val32", 100i64), ("val64", 1000)] {
        let ty = if name == "val32" { Type::I32 } else { Type::I64 };
        let mut fb = FunctionBuilder::new(name, ty);
        fb.ret(Some(Operand::const_int(ty, c)));
        m.push_function(fb.finish());
    }
    let (v32, _) = m.function_by_name("val32").unwrap();
    let (v64, _) = m.function_by_name("val64").unwrap();

    let mut main = FunctionBuilder::new("main", Type::I64);
    main.call(bump_id, Type::Void, vec![]);
    main.call(bump_id, Type::Void, vec![]);
    let a = main.call(v32, Type::I32, vec![]).unwrap();
    let aw = main.cast(khaos_ir::CastKind::SExt, Operand::local(a), Type::I32, Type::I64);
    let b = main.call(v64, Type::I64, vec![]).unwrap();
    let gaddr = main.globaladdr(g);
    let cnt = main.load(Type::I64, Operand::local(gaddr));
    let s1 = main.bin(BinOp::Add, Type::I64, Operand::local(aw), Operand::local(b));
    let s2 = main.bin(BinOp::Add, Type::I64, Operand::local(s1), Operand::local(cnt));
    main.ret(Some(Operand::local(s2)));
    m.push_function(main.finish());
    let want = run_to_completion(&m, &[]).unwrap();
    assert_eq!(want.exit_code, 100 + 1000 + 2);

    let mut ctx = KhaosContext::new(0xE2);
    let infos = khaos_core::fusion::nway::run_n(&mut m, &mut ctx, 3, |_| true);
    assert_eq!(infos.len(), 1, "void folds with i32/i64 into one group");
    khaos_ir::verify::assert_valid(&m);
    let got = run_to_completion(&m, &[]).unwrap();
    assert_eq!(want.exit_code, got.exit_code);
}

/// N-way fusion when the merged parameter list spills past the six
/// register slots (prefer_register_args off): arguments must still land
/// in the right slots through the stack.
#[test]
fn nway_fusion_handles_stack_passed_parameters() {
    let mut m = Module::new("t");
    for (name, mul) in [("wide1", 1i64), ("wide2", 2), ("wide3", 3)] {
        let mut fb = FunctionBuilder::new(name, Type::I64);
        let params: Vec<_> = (0..4).map(|_| fb.add_param(Type::I64)).collect();
        let mut acc = fb.iconst(Type::I64, 0);
        for (k, p) in params.into_iter().enumerate() {
            let scaled = fb.bin(
                BinOp::Mul,
                Type::I64,
                Operand::local(p),
                Operand::const_int(Type::I64, mul + k as i64),
            );
            let n = fb.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(scaled));
            acc = n;
        }
        fb.ret(Some(Operand::local(acc)));
        m.push_function(fb.finish());
    }
    let ids: Vec<FuncId> = m.iter_functions().map(|(id, _)| id).collect();
    let mut main = FunctionBuilder::new("main", Type::I64);
    let mut total = main.iconst(Type::I64, 0);
    for (j, &f) in ids.iter().enumerate() {
        let args: Vec<Operand> =
            (0..4).map(|k| Operand::const_int(Type::I64, (j as i64 + 1) * 10 + k)).collect();
        let r = main.call(f, Type::I64, args).unwrap();
        let n = main.bin(BinOp::Add, Type::I64, Operand::local(total), Operand::local(r));
        total = n;
    }
    main.ret(Some(Operand::local(total)));
    m.push_function(main.finish());
    let want = run_to_completion(&m, &[]).unwrap();

    // Compression merges the 4-param lists; disabling it forces the
    // worst case of 1 + 12 parameters — deep into the stack area.
    let options = KhaosOptions {
        parameter_compression: false,
        prefer_register_args: false,
        ..KhaosOptions::default()
    };
    let mut ctx = KhaosContext::with_options(0xE3, options);
    let infos = khaos_core::fusion::nway::run_n(&mut m, &mut ctx, 3, |_| true);
    assert_eq!(infos.len(), 1);
    let fus = m.function(infos[0].fus);
    assert_eq!(fus.param_count, 1 + 12, "no compression: every param gets a slot");
    khaos_ir::verify::assert_valid(&m);
    let got = run_to_completion(&m, &[]).unwrap();
    assert_eq!(want.exit_code, got.exit_code);
}
