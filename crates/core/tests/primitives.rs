//! End-to-end tests of the fission and fusion primitives: every transform
//! must preserve observable behaviour (differential execution on the VM)
//! and produce verifiable IR with the expected structure.
//!
//! The `bar`/`foo` pair mirrors the paper's Figure 3 fusion example, hence
//! the placeholder-name lint allowance.
#![allow(clippy::disallowed_names)]

use khaos_core::{fission, fufi_all, fufi_ori, fufi_sep, fusion, KhaosContext, KhaosOptions};
use khaos_ir::builder::FunctionBuilder;
use khaos_ir::{
    BinOp, Callee, CmpPred, ExtFunc, ExtId, FuncId, Module, Operand, ProvKind, Type,
};
use khaos_vm::{run_function, run_to_completion};

fn print_ext(m: &mut Module) -> ExtId {
    m.declare_external(ExtFunc {
        name: "print_i64".into(),
        params: vec![Type::I64],
        ret_ty: Type::Void,
        variadic: false,
    })
}

/// A `cal_file`-like function (paper Figure 1): entry checks, a cold
/// error path, a hot loop, and multiple returns.
fn cal_file_like(m: &mut Module) -> FuncId {
    let p = print_ext(m);
    let mut fb = FunctionBuilder::new("cal_file", Type::I64);
    let arg = fb.add_param(Type::I64);

    let check = fb.current();
    let cold1 = fb.new_block();
    let cold2 = fb.new_block();
    let loop_h = fb.new_block();
    let loop_b = fb.new_block();
    let done = fb.new_block();

    let i = fb.new_local(Type::I64);
    let value = fb.new_local(Type::I64);

    // entry: if (arg < 0) goto cold; i = arg; value = 0;
    let neg = fb.cmp(CmpPred::Slt, Type::I64, Operand::local(arg), Operand::const_int(Type::I64, 0));
    fb.copy_to(i, Operand::local(arg));
    fb.copy_to(value, Operand::const_int(Type::I64, 0));
    fb.branch(Operand::local(neg), cold1, loop_h);
    assert_eq!(check, fb.function().entry());

    // cold path: print twice, return -1
    fb.switch_to(cold1);
    fb.call_ext(p, Type::Void, vec![Operand::local(arg)]);
    fb.jump(cold2);
    fb.switch_to(cold2);
    fb.call_ext(p, Type::Void, vec![Operand::const_int(Type::I64, -99)]);
    fb.ret(Some(Operand::const_int(Type::I64, -1)));

    // loop: value += i--; until i == 0
    fb.switch_to(loop_h);
    let cont = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 0));
    fb.branch(Operand::local(cont), loop_b, done);
    fb.switch_to(loop_b);
    let nv = fb.bin(BinOp::Add, Type::I64, Operand::local(value), Operand::local(i));
    fb.copy_to(value, Operand::local(nv));
    let ni = fb.bin(BinOp::Sub, Type::I64, Operand::local(i), Operand::const_int(Type::I64, 1));
    fb.copy_to(i, Operand::local(ni));
    fb.jump(loop_h);

    fb.switch_to(done);
    fb.ret(Some(Operand::local(value)));
    m.push_function(fb.finish())
}

fn main_calling(m: &mut Module, target: FuncId, args: &[i64]) {
    let p = print_ext(m);
    let mut fb = FunctionBuilder::new("main", Type::I64);
    let mut acc = fb.iconst(Type::I64, 0);
    for &a in args {
        let r = fb.call(target, Type::I64, vec![Operand::const_int(Type::I64, a)]).unwrap();
        fb.call_ext(p, Type::Void, vec![Operand::local(r)]);
        let na = fb.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
        acc = na;
    }
    fb.ret(Some(Operand::local(acc)));
    m.push_function(fb.finish());
}

#[test]
fn fission_preserves_behaviour_and_splits() {
    let mut m = Module::new("t");
    let f = cal_file_like(&mut m);
    main_calling(&mut m, f, &[-3, 0, 5, 10]);
    khaos_ir::verify::assert_valid(&m);
    let before = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::new(1);
    fission(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.output, after.output);
    assert_eq!(before.exit_code, after.exit_code);

    assert!(ctx.fission_stats.sep_funcs >= 1, "at least one region separated");
    let seps: Vec<_> =
        m.functions.iter().filter(|f| f.provenance.kind == ProvKind::Sep).collect();
    assert_eq!(seps.len(), ctx.fission_stats.sep_funcs);
    for s in &seps {
        assert!(s.provenance.has_origin("cal_file"));
        assert!(s.name.starts_with("cal_file_sep_"));
    }
    let rem = m.functions.iter().find(|f| f.name == "cal_file").unwrap();
    assert_eq!(rem.provenance.kind, ProvKind::Rem);
}

#[test]
fn fission_region_with_return_propagates_value() {
    // The cold path (which contains `return -1`) is the classic region.
    let mut m = Module::new("t");
    let f = cal_file_like(&mut m);
    main_calling(&mut m, f, &[-7]);
    let before = run_to_completion(&m, &[]).unwrap();
    let mut ctx = KhaosContext::new(2);
    fission(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.output, after.output, "cold return path must survive");
    assert_eq!(after.exit_code, -1);
}

#[test]
fn fission_respects_disabled_data_flow_reduction() {
    let mut m1 = Module::new("t");
    let f1 = cal_file_like(&mut m1);
    main_calling(&mut m1, f1, &[4]);
    let mut m2 = m1.clone();

    let mut on = KhaosContext::new(3);
    fission(&mut m1, &mut on).unwrap();
    let mut off = KhaosContext::with_options(
        3,
        KhaosOptions { data_flow_reduction: false, ..KhaosOptions::default() },
    );
    fission(&mut m2, &mut off).unwrap();
    assert_eq!(off.fission_stats.params_reduced, 0);
    assert_eq!(
        run_to_completion(&m1, &[]).unwrap().output,
        run_to_completion(&m2, &[]).unwrap().output
    );
}

fn two_fusable_functions(m: &mut Module) -> (FuncId, FuncId) {
    // bar(i32, f32) -> i32  and  foo(i64) -> i64 (paper Figure 3 flavour)
    let mut bar = FunctionBuilder::new("bar", Type::I32);
    let a = bar.add_param(Type::I32);
    let b = bar.add_param(Type::F32);
    let bi = bar.cast(khaos_ir::CastKind::FpToSi, Operand::local(b), Type::F32, Type::I32);
    let s = bar.bin(BinOp::Add, Type::I32, Operand::local(a), Operand::local(bi));
    bar.ret(Some(Operand::local(s)));
    let bar = m.push_function(bar.finish());

    let mut foo = FunctionBuilder::new("foo", Type::I64);
    let x = foo.add_param(Type::I64);
    let t = foo.new_block();
    let e = foo.new_block();
    let c = foo.cmp(CmpPred::Sgt, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 10));
    foo.branch(Operand::local(c), t, e);
    foo.switch_to(t);
    let d = foo.bin(BinOp::Mul, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 3));
    foo.ret(Some(Operand::local(d)));
    foo.switch_to(e);
    foo.ret(Some(Operand::local(x)));
    let foo = m.push_function(foo.finish());
    (bar, foo)
}

#[test]
fn fusion_merges_pair_and_preserves_behaviour() {
    let mut m = Module::new("t");
    let p = print_ext(&mut m);
    let (bar, foo) = two_fusable_functions(&mut m);
    let mut main = FunctionBuilder::new("main", Type::I64);
    let r1 = main
        .call(bar, Type::I32, vec![Operand::const_int(Type::I32, 4), Operand::const_float(Type::F32, 2.0)])
        .unwrap();
    let r1w = main.cast(khaos_ir::CastKind::SExt, Operand::local(r1), Type::I32, Type::I64);
    main.call_ext(p, Type::Void, vec![Operand::local(r1w)]);
    let r2 = main.call(foo, Type::I64, vec![Operand::const_int(Type::I64, 20)]).unwrap();
    main.call_ext(p, Type::Void, vec![Operand::local(r2)]);
    let s = main.bin(BinOp::Add, Type::I64, Operand::local(r1w), Operand::local(r2));
    main.ret(Some(Operand::local(s)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    let before = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::new(4);
    fusion(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.output, after.output);
    assert_eq!(before.exit_code, after.exit_code);

    assert_eq!(ctx.fusion_stats.fus_funcs, 1);
    let fus = m.functions.iter().find(|f| f.provenance.kind == ProvKind::Fused).unwrap();
    assert!(fus.provenance.has_origin("bar") && fus.provenance.has_origin("foo"));
    assert!(fus.name.contains("fusion"));
    // The originals are gone (stubbed + swept).
    assert!(m.function_by_name("bar").is_none());
    assert!(m.function_by_name("foo").is_none());
    // ctrl + compressed params: bar has (i32,f32), foo has (i64) ->
    // slot0 = i64 (i32+i64 merged), slot1 = f32 => 3 params with ctrl.
    assert_eq!(fus.param_count, 3);
    assert_eq!(ctx.fusion_stats.params_removed, 1);
}

#[test]
fn fusion_handles_indirect_calls_with_tagged_pointers() {
    let mut m = Module::new("t");
    let p = print_ext(&mut m);

    // Two functions with identical signatures, called through a pointer.
    let mk = |m: &mut Module, name: &str, k: i64| -> FuncId {
        let mut f = FunctionBuilder::new(name, Type::I64);
        let x = f.add_param(Type::I64);
        let r = f.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, k));
        f.ret(Some(Operand::local(r)));
        m.push_function(f.finish())
    };
    let f1 = mk(&mut m, "inc10", 10);
    let f2 = mk(&mut m, "inc100", 100);

    let mut main = FunctionBuilder::new("main", Type::I64);
    let sel = main.new_local(Type::Ptr);
    let t = main.new_block();
    let e = main.new_block();
    let j = main.new_block();
    // Select a pointer based on a runtime-ish condition (constant here).
    let c = main.cmp(CmpPred::Sgt, Type::I64, Operand::const_int(Type::I64, 1), Operand::const_int(Type::I64, 0));
    main.branch(Operand::local(c), t, e);
    main.switch_to(t);
    let p1 = main.funcaddr(f1);
    main.copy_to(sel, Operand::local(p1));
    main.jump(j);
    main.switch_to(e);
    let p2 = main.funcaddr(f2);
    main.copy_to(sel, Operand::local(p2));
    main.jump(j);
    main.switch_to(j);
    let r = main
        .call_indirect(Operand::local(sel), Type::I64, vec![Operand::const_int(Type::I64, 7)])
        .unwrap();
    main.call_ext(p, Type::Void, vec![Operand::local(r)]);
    // Also call both directly so the pair is exercised both ways.
    let d1 = main.call(f1, Type::I64, vec![Operand::const_int(Type::I64, 1)]).unwrap();
    let d2 = main.call(f2, Type::I64, vec![Operand::local(d1)]).unwrap();
    main.ret(Some(Operand::local(d2)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    let before = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.output, vec![17]);
    assert_eq!(before.exit_code, 111);

    let mut ctx = KhaosContext::new(5);
    fusion(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.output, after.output);
    assert_eq!(before.exit_code, after.exit_code);
    assert_eq!(ctx.fusion_stats.fus_funcs, 1);
    assert!(ctx.fusion_stats.indirect_sites_rewritten >= 1, "decode sequence inserted");
}

#[test]
fn fusion_exported_function_gets_trampoline() {
    let mut m = Module::new("t");
    let mut api = FunctionBuilder::new("api_entry", Type::I64);
    api.set_exported();
    let x = api.add_param(Type::I64);
    let r = api.bin(BinOp::Mul, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 2));
    api.ret(Some(Operand::local(r)));
    let api = m.push_function(api.finish());

    let mut other = FunctionBuilder::new("worker", Type::I64);
    let y = other.add_param(Type::I64);
    let r2 = other.bin(BinOp::Add, Type::I64, Operand::local(y), Operand::const_int(Type::I64, 5));
    other.ret(Some(Operand::local(r2)));
    let worker = m.push_function(other.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    let a = main.call(api, Type::I64, vec![Operand::const_int(Type::I64, 21)]).unwrap();
    let b = main.call(worker, Type::I64, vec![Operand::local(a)]).unwrap();
    main.ret(Some(Operand::local(b)));
    m.push_function(main.finish());
    let before = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::new(6);
    fusion(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.exit_code, after.exit_code);

    // The exported name survives as a trampoline with the same signature.
    let (_, tramp) = m.function_by_name("api_entry").expect("name kept for external callers");
    assert_eq!(tramp.provenance.kind, ProvKind::Trampoline);
    assert_eq!(tramp.linkage, khaos_ir::Linkage::Exported);
    assert_eq!(tramp.param_count, 1);
    assert_eq!(ctx.fusion_stats.trampolines, 1);
    // Calling the trampoline still computes api_entry's function.
    let r = run_function(&m, "api_entry", &[khaos_vm::Value::Int(8)]).unwrap();
    assert_eq!(r.exit_code, 16);
}

#[test]
fn deep_fusion_keeps_behaviour() {
    // Functions with register-arithmetic blocks that qualify as innocuous.
    let mut m = Module::new("t");
    let mk = |m: &mut Module, name: &str, mul: i64| -> FuncId {
        let mut f = FunctionBuilder::new(name, Type::I64);
        let x = f.add_param(Type::I64);
        let work = f.new_block();
        let out = f.new_block();
        f.jump(work);
        f.switch_to(work);
        let a = f.bin(BinOp::Mul, Type::I64, Operand::local(x), Operand::const_int(Type::I64, mul));
        let b = f.bin(BinOp::Xor, Type::I64, Operand::local(a), Operand::const_int(Type::I64, 0x5a));
        let c = f.bin(BinOp::Add, Type::I64, Operand::local(b), Operand::local(x));
        f.jump(out);
        f.switch_to(out);
        f.ret(Some(Operand::local(c)));
        m.push_function(f.finish())
    };
    let f1 = mk(&mut m, "alpha", 3);
    let f2 = mk(&mut m, "beta", 7);
    let mut main = FunctionBuilder::new("main", Type::I64);
    let r1 = main.call(f1, Type::I64, vec![Operand::const_int(Type::I64, 11)]).unwrap();
    let r2 = main.call(f2, Type::I64, vec![Operand::const_int(Type::I64, 13)]).unwrap();
    let s = main.bin(BinOp::Add, Type::I64, Operand::local(r1), Operand::local(r2));
    main.ret(Some(Operand::local(s)));
    m.push_function(main.finish());
    let before = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::new(7);
    fusion(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.exit_code, after.exit_code);
    assert!(ctx.fusion_stats.innocuous_blocks >= 2, "work blocks are innocuous");
    assert!(ctx.fusion_stats.deep_fused_pairs >= 1, "deep fusion merged a pair");
}

#[test]
fn deep_fusion_off_still_works() {
    let mut m = Module::new("t");
    let (bar, foo) = two_fusable_functions(&mut m);
    let mut main = FunctionBuilder::new("main", Type::I64);
    let r1 = main
        .call(bar, Type::I32, vec![Operand::const_int(Type::I32, 1), Operand::const_float(Type::F32, 1.0)])
        .unwrap();
    let w = main.cast(khaos_ir::CastKind::SExt, Operand::local(r1), Type::I32, Type::I64);
    let r2 = main.call(foo, Type::I64, vec![Operand::local(w)]).unwrap();
    main.ret(Some(Operand::local(r2)));
    m.push_function(main.finish());
    let before = run_to_completion(&m, &[]).unwrap();
    let mut ctx = KhaosContext::with_options(
        8,
        KhaosOptions { deep_fusion: false, ..KhaosOptions::default() },
    );
    fusion(&mut m, &mut ctx).unwrap();
    assert_eq!(ctx.fusion_stats.deep_fused_pairs, 0);
    assert_eq!(run_to_completion(&m, &[]).unwrap().exit_code, before.exit_code);
}

fn mixed_module() -> Module {
    let mut m = Module::new("mix");
    let f = cal_file_like(&mut m);
    let (_bar, _foo) = two_fusable_functions(&mut m);
    // A couple of tiny single-block functions that fission skips.
    for (name, k) in [("tiny1", 2i64), ("tiny2", 9)] {
        let mut t = FunctionBuilder::new(name, Type::I64);
        let x = t.add_param(Type::I64);
        let r = t.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, k));
        t.ret(Some(Operand::local(r)));
        m.push_function(t.finish());
    }
    let (t1, _) = m.function_by_name("tiny1").unwrap();
    let (t2, _) = m.function_by_name("tiny2").unwrap();
    let (bar, _) = m.function_by_name("bar").unwrap();
    let (foo, _) = m.function_by_name("foo").unwrap();

    let p = print_ext(&mut m);
    let mut main = FunctionBuilder::new("main", Type::I64);
    let mut acc = main.iconst(Type::I64, 0);
    for (func, arg) in [(f, 6i64), (t1, 1), (t2, 2), (foo, 30)] {
        let r = main.call(func, Type::I64, vec![Operand::const_int(Type::I64, arg)]).unwrap();
        main.call_ext(p, Type::Void, vec![Operand::local(r)]);
        let na = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
        acc = na;
    }
    let br = main
        .call(bar, Type::I32, vec![Operand::const_int(Type::I32, 3), Operand::const_float(Type::F32, 4.0)])
        .unwrap();
    let brw = main.cast(khaos_ir::CastKind::SExt, Operand::local(br), Type::I32, Type::I64);
    let fin = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(brw));
    main.ret(Some(Operand::local(fin)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    m
}

#[test]
fn fufi_modes_preserve_behaviour() {
    let base = mixed_module();
    let expected = run_to_completion(&base, &[]).unwrap();
    for (name, apply) in [
        ("sep", fufi_sep as fn(&mut Module, &mut KhaosContext) -> _),
        ("ori", fufi_ori),
        ("all", fufi_all),
    ] {
        let mut m = base.clone();
        let mut ctx = KhaosContext::new(0xFF + name.len() as u64);
        apply(&mut m, &mut ctx).unwrap_or_else(|e| panic!("FuFi.{name}: {e}"));
        let got = run_to_completion(&m, &[]).unwrap_or_else(|e| panic!("FuFi.{name} run: {e}"));
        assert_eq!(got.output, expected.output, "FuFi.{name} output");
        assert_eq!(got.exit_code, expected.exit_code, "FuFi.{name} exit");
    }
}

#[test]
fn fufi_sep_only_fuses_sepfuncs() {
    let mut m = mixed_module();
    let mut ctx = KhaosContext::new(11);
    fufi_sep(&mut m, &mut ctx).unwrap();
    for f in &m.functions {
        if f.provenance.kind == ProvKind::Fused {
            // Every fused function must descend from sepFuncs only, i.e.
            // its name carries the sep marker for both sides.
            assert!(
                f.name.matches("_sep_").count() >= 2,
                "FuFi.sep fused a non-sepFunc: {}",
                f.name
            );
        }
    }
}

#[test]
fn fission_handles_eh_regions() {
    // invoke + landing pad inside the same cold region.
    let mut m = Module::new("t");
    let throw_ext = m.declare_external(ExtFunc {
        name: "throw_exc".into(),
        params: vec![Type::I64],
        ret_ty: Type::Void,
        variadic: false,
    });
    let p = print_ext(&mut m);

    let mut thrower = FunctionBuilder::new("thrower", Type::Void);
    let tx = thrower.add_param(Type::I64);
    let yes = thrower.new_block();
    let no = thrower.new_block();
    let c = thrower.cmp(CmpPred::Sgt, Type::I64, Operand::local(tx), Operand::const_int(Type::I64, 0));
    thrower.branch(Operand::local(c), yes, no);
    thrower.switch_to(yes);
    thrower.call_ext(throw_ext, Type::Void, vec![Operand::local(tx)]);
    thrower.ret(None);
    thrower.switch_to(no);
    thrower.ret(None);
    let thrower = m.push_function(thrower.finish());

    let mut f = FunctionBuilder::new("guarded", Type::I64);
    let x = f.add_param(Type::I64);
    let cold = f.new_block();
    let normal = f.new_block();
    let exc_local = f.new_local(Type::I64);
    let pad = f.new_pad_block(Some(exc_local));
    let join = f.new_block();
    let out = f.new_local(Type::I64);
    let c2 = f.cmp(CmpPred::Slt, Type::I64, Operand::local(x), Operand::const_int(Type::I64, 0));
    f.copy_to(out, Operand::const_int(Type::I64, 0));
    f.branch(Operand::local(c2), cold, join);
    // cold region: invoke thrower; catch sets out = exc; normal sets out = 1.
    f.switch_to(cold);
    f.invoke(Callee::Direct(thrower), Type::Void, vec![Operand::local(x)], normal, pad);
    f.switch_to(normal);
    f.copy_to(out, Operand::const_int(Type::I64, 1));
    f.jump(join);
    f.switch_to(pad);
    f.copy_to(out, Operand::local(exc_local));
    f.jump(join);
    f.switch_to(join);
    f.ret(Some(Operand::local(out)));
    let f = m.push_function(f.finish());

    let mut main = FunctionBuilder::new("main", Type::I64);
    for arg in [-5i64, 3, -1] {
        let r = main.call(f, Type::I64, vec![Operand::const_int(Type::I64, arg)]).unwrap();
        main.call_ext(p, Type::Void, vec![Operand::local(r)]);
    }
    main.ret(Some(Operand::const_int(Type::I64, 0)));
    m.push_function(main.finish());
    khaos_ir::verify::assert_valid(&m);
    let before = run_to_completion(&m, &[]).unwrap();

    let mut ctx = KhaosContext::new(12);
    fission(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.output, after.output, "EH behaviour preserved across fission");
}

#[test]
fn fusion_of_void_functions() {
    let mut m = Module::new("t");
    let p = print_ext(&mut m);
    let g = m.push_global(khaos_ir::Global::zeroed("counter", 8));

    let mk = |m: &mut Module, name: &str, k: i64| -> FuncId {
        let mut f = FunctionBuilder::new(name, Type::Void);
        let ga = f.globaladdr(g);
        let v = f.load(Type::I64, Operand::local(ga));
        let nv = f.bin(BinOp::Add, Type::I64, Operand::local(v), Operand::const_int(Type::I64, k));
        f.store(Type::I64, Operand::local(nv), Operand::local(ga));
        f.ret(None);
        m.push_function(f.finish())
    };
    let f1 = mk(&mut m, "bump1", 1);
    let f2 = mk(&mut m, "bump10", 10);

    let mut main = FunctionBuilder::new("main", Type::I64);
    main.call(f1, Type::Void, vec![]);
    main.call(f2, Type::Void, vec![]);
    main.call(f1, Type::Void, vec![]);
    let ga = main.globaladdr(g);
    let v = main.load(Type::I64, Operand::local(ga));
    main.call_ext(p, Type::Void, vec![Operand::local(v)]);
    main.ret(Some(Operand::local(v)));
    m.push_function(main.finish());
    let before = run_to_completion(&m, &[]).unwrap();
    assert_eq!(before.exit_code, 12);

    let mut ctx = KhaosContext::new(13);
    fusion(&mut m, &mut ctx).unwrap();
    let after = run_to_completion(&m, &[]).unwrap();
    assert_eq!(after.exit_code, 12);
    assert_eq!(before.output, after.output);
}

#[test]
fn obfuscation_is_deterministic_per_seed() {
    let base = mixed_module();
    let mut m1 = base.clone();
    let mut m2 = base.clone();
    let mut c1 = KhaosContext::new(42);
    let mut c2 = KhaosContext::new(42);
    fufi_all(&mut m1, &mut c1).unwrap();
    fufi_all(&mut m2, &mut c2).unwrap();
    assert_eq!(m1, m2, "same seed, same module");

    let mut m3 = base.clone();
    let mut c3 = KhaosContext::new(43);
    fufi_all(&mut m3, &mut c3).unwrap();
    // Different seeds usually pick different pairings; at minimum the
    // result must still behave identically.
    assert_eq!(
        run_to_completion(&m1, &[]).unwrap().output,
        run_to_completion(&m3, &[]).unwrap().output
    );
}
