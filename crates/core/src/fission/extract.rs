//! Region extraction — the data-flow and control-flow rebuild of §3.2.
//!
//! The chosen region becomes the body of a fresh `sepFunc`:
//!
//! * **inputs** (values flowing in) become value parameters,
//! * **outputs** (values flowing out) become pointer parameters to stack
//!   slots allocated in the `remFunc` (the paper passes pointers for
//!   cross-function define-use chains),
//! * each *exit* of the region gets a code; the `sepFunc` returns the code
//!   and the `remFunc` dispatches on it (paper Figure 1, block `a`),
//! * a `return` inside the region propagates through a dedicated
//!   return-value slot plus its own exit code,
//! * the lazy-allocation **data-flow reduction** moves allocas used only
//!   inside the region into the `sepFunc`, shortening the parameter list.

use super::regions::Region;
use crate::KhaosContext;
use khaos_ir::rewrite::{remap_block, remove_blocks};
use khaos_ir::{
    Block, BlockId, Cfg, FuncId, Function, Inst, Linkage, Liveness, LocalId, Module, Operand,
    ProvKind, Provenance, Term, Type,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What an extraction produced.
#[derive(Debug)]
pub struct ExtractOutcome {
    /// Id of the new `sepFunc`.
    pub sep_func: FuncId,
    /// Block count of the `sepFunc` (for the `#BB` statistic).
    pub sep_blocks: usize,
    /// Parameters avoided by the data-flow reduction.
    pub params_reduced: usize,
    /// Old→new block ids of the surviving `remFunc` blocks.
    pub block_map: HashMap<BlockId, BlockId>,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Exit {
    /// Control leaves to this (outside) block.
    Edge(BlockId),
    /// The original function returns from inside the region.
    Return,
}

/// Extracts `region` out of `func`, appending the new `sepFunc` to `m`.
pub fn extract_region(
    m: &mut Module,
    func: FuncId,
    region: &Region,
    sep_index: usize,
    ctx: &mut KhaosContext,
) -> ExtractOutcome {
    let region_set: BTreeSet<BlockId> = region.blocks.iter().copied().collect();
    let f = m.function(func);
    let cfg = Cfg::compute(f);
    let lv = Liveness::compute(f, &cfg);

    // ---- Data-flow reduction: allocas used only inside the region. ----
    let moved_allocas: Vec<(BlockId, usize)> = if ctx.options.data_flow_reduction {
        find_movable_allocas(f, &region_set, region.root)
    } else {
        Vec::new()
    };
    let moved_locals: BTreeSet<LocalId> = moved_allocas
        .iter()
        .map(|(b, i)| f.block(*b).insts[*i].def().expect("alloca defines"))
        .collect();

    // ---- Classify locals crossing the region boundary. ----
    let mut used_in_region: BTreeSet<LocalId> = BTreeSet::new();
    let mut defined_in_region: BTreeSet<LocalId> = BTreeSet::new();
    for &b in &region_set {
        let block = f.block(b);
        for inst in &block.insts {
            inst.for_each_use(|o| {
                if let Some(l) = o.as_local() {
                    used_in_region.insert(l);
                }
            });
            if let Some(d) = inst.def() {
                defined_in_region.insert(d);
            }
        }
        block.term.for_each_use(|o| {
            if let Some(l) = o.as_local() {
                used_in_region.insert(l);
            }
        });
        if let Some(d) = block.term.def() {
            defined_in_region.insert(d);
        }
        if let Some(pad) = &block.pad {
            if let Some(d) = pad.dst {
                defined_in_region.insert(d);
            }
        }
    }

    // ---- Exits, in deterministic order. ----
    let mut exits: Vec<Exit> = Vec::new();
    let mut has_ret_value = false;
    for &b in &region_set {
        let block = f.block(b);
        match &block.term {
            Term::Ret(v) => {
                if !exits.contains(&Exit::Return) {
                    exits.push(Exit::Return);
                }
                if v.is_some() {
                    has_ret_value = true;
                }
            }
            t => t.for_each_successor(|s| {
                if !region_set.contains(&s) && !exits.contains(&Exit::Edge(s)) {
                    exits.push(Exit::Edge(s));
                }
            }),
        }
    }
    exits.sort();

    // outputs: defined inside, live into some outside exit target.
    let mut outputs: BTreeSet<LocalId> = BTreeSet::new();
    for e in &exits {
        if let Exit::Edge(t) = e {
            for l in lv.live_in(*t).iter() {
                if defined_in_region.contains(&l) && !moved_locals.contains(&l) {
                    outputs.insert(l);
                }
            }
        }
    }
    // inputs: the data-flow reduction (§3.2.2, "lazy allocation") passes
    // only values that actually flow in — locals that are live into the
    // region head. Without it, every local the region merely *mentions*
    // becomes a parameter (the naive CodeExtractor behaviour).
    let minimized: Vec<LocalId> = lv
        .live_in(region.root)
        .iter()
        .filter(|l| {
            used_in_region.contains(l) && !outputs.contains(l) && !moved_locals.contains(l)
        })
        .collect();
    let mut inputs: Vec<LocalId> = if ctx.options.data_flow_reduction {
        let naive_count = used_in_region
            .iter()
            .filter(|l| !outputs.contains(l) && !moved_locals.contains(l))
            .count();
        ctx.fission_stats.params_reduced += naive_count - minimized.len();
        minimized
    } else {
        used_in_region
            .iter()
            .copied()
            .filter(|l| !outputs.contains(l) && !moved_locals.contains(l))
            .collect()
    };
    inputs.sort();
    let outputs: Vec<LocalId> = outputs.into_iter().collect();

    let ret_ty = f.ret_ty;
    let needs_ret_slot = has_ret_value && ret_ty != Type::Void;
    let multi_exit = exits.len() >= 2;
    let sep_ret_ty = if multi_exit { Type::I32 } else { Type::Void };

    // ---- Build the sepFunc. ----
    let orig_name = f.name.clone();
    let origins = f.provenance.origins.clone();
    let mut g = Function::new(format!("{orig_name}_sep_{sep_index}"), sep_ret_ty);
    g.linkage = Linkage::Internal;
    g.provenance = Provenance { kind: ProvKind::Sep, origins };
    // Khaos schedules its passes ahead of the regular pipeline and pins
    // the separated functions so the inliner cannot stitch them back
    // (the remFunc stays inlinable — the paper's negative-overhead cases
    // come from exactly that).
    g.annotations.push("noinline".to_string());

    // Parameters: inputs by value, then output slots, then retval slot.
    let mut lmap: HashMap<LocalId, LocalId> = HashMap::new();
    for &l in &inputs {
        let p = g.new_local(f.local_ty(l));
        lmap.insert(l, p);
    }
    let out_slot_params: Vec<LocalId> = outputs.iter().map(|_| g.new_local(Type::Ptr)).collect();
    let ret_slot_param = if needs_ret_slot { Some(g.new_local(Type::Ptr)) } else { None };
    g.param_count = g.locals.len() as u32;

    // Working locals for outputs; fresh locals for everything else the
    // region touches.
    for &l in &outputs {
        let w = g.new_local(f.local_ty(l));
        lmap.insert(l, w);
    }
    for &l in used_in_region.union(&defined_in_region) {
        lmap.entry(l).or_insert_with(|| {
            let ty = f.local_ty(l);
            g.new_local(ty)
        });
    }

    // Block layout in g: bb0 = prologue, then region blocks (sorted),
    // then one stub per exit.
    let region_sorted: Vec<BlockId> = region_set.iter().copied().collect();
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    for (i, &b) in region_sorted.iter().enumerate() {
        bmap.insert(b, BlockId::new(1 + i));
    }
    let stub_base = 1 + region_sorted.len();
    let exit_code = |e: &Exit| -> i64 {
        exits.iter().position(|x| x == e).expect("exit known") as i64
    };
    let stub_id = |e: &Exit| -> BlockId { BlockId::new(stub_base + exit_code(e) as usize) };

    // Prologue: moved allocas, then loads of output slots.
    let mut prologue = Vec::new();
    for (b, i) in &moved_allocas {
        let inst = f.block(*b).insts[*i].clone();
        if let Inst::Alloca { dst, size, align } = inst {
            prologue.push(Inst::Alloca { dst: lmap[&dst], size, align });
        }
    }
    for (k, &l) in outputs.iter().enumerate() {
        prologue.push(Inst::Load {
            ty: f.local_ty(l),
            dst: lmap[&l],
            addr: Operand::local(out_slot_params[k]),
        });
    }
    g.blocks[0] = Block { insts: prologue, term: Term::Jump(bmap[&region.root]), pad: None };

    // Copy region blocks: remap locals first, then rewrite returns and
    // retarget exit edges (the remapped operands are g-locals, which are
    // absent from `lmap`, so the order avoids double-remapping).
    for &b in &region_sorted {
        let mut nb = f.block(b).clone();
        let id_blocks: HashMap<BlockId, BlockId> = HashMap::new();
        remap_block(&mut nb, &lmap, &id_blocks);
        if let Term::Ret(v) = nb.term.clone() {
            if let (Some(val), Some(slot)) = (v, ret_slot_param) {
                nb.insts.push(Inst::Store { ty: ret_ty, addr: Operand::local(slot), value: val });
            }
            nb.term = if multi_exit {
                Term::Ret(Some(Operand::const_int(Type::I32, exit_code(&Exit::Return))))
            } else {
                Term::Ret(None)
            };
        }
        // Retarget successors: inside region -> mapped, outside -> stub.
        nb.term.for_each_successor_mut(|s| {
            *s = match bmap.get(s) {
                Some(n) => *n,
                None => stub_id(&Exit::Edge(*s)),
            };
        });
        g.blocks.push(nb);
    }
    debug_assert_eq!(g.blocks.len(), stub_base);

    // Exit stubs.
    for e in &exits {
        let mut insts = Vec::new();
        if matches!(e, Exit::Edge(_)) {
            for (k, &l) in outputs.iter().enumerate() {
                insts.push(Inst::Store {
                    ty: f.local_ty(l),
                    addr: Operand::local(out_slot_params[k]),
                    value: Operand::local(lmap[&l]),
                });
            }
        }
        let term = if multi_exit {
            Term::Ret(Some(Operand::const_int(Type::I32, exit_code(e))))
        } else {
            Term::Ret(None)
        };
        g.blocks.push(Block { insts, term, pad: None });
    }

    let sep_blocks = g.blocks.len();
    let sep_func = m.push_function(g);

    // ---- Rewrite the remFunc. ----
    let f = m.function_mut(func);

    // Delete moved allocas (indices within a block shift; delete in
    // descending inst order per block).
    let mut by_block: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
    for (b, i) in &moved_allocas {
        by_block.entry(*b).or_default().push(*i);
    }
    for (b, mut idxs) in by_block {
        idxs.sort_unstable_by(|a, b| b.cmp(a));
        for i in idxs {
            f.block_mut(b).insts.remove(i);
        }
    }

    // Slots live in the remFunc entry block.
    let mut out_slots: Vec<LocalId> = Vec::new();
    let mut entry_prepend = Vec::new();
    for &l in &outputs {
        let slot = f.new_local(Type::Ptr);
        let size = f.local_ty(l).size().max(1);
        entry_prepend.push(Inst::Alloca { dst: slot, size, align: 8 });
        out_slots.push(slot);
    }
    let ret_slot = if needs_ret_slot {
        let slot = f.new_local(Type::Ptr);
        entry_prepend.push(Inst::Alloca { dst: slot, size: ret_ty.size(), align: 8 });
        Some(slot)
    } else {
        None
    };
    let entry = f.entry();
    let old_entry_insts = std::mem::take(&mut f.block_mut(entry).insts);
    f.block_mut(entry).insts = entry_prepend.into_iter().chain(old_entry_insts).collect();

    // A return-continuation block when the region returned.
    let ret_block = if exits.contains(&Exit::Return) {
        let mut insts = Vec::new();
        let term = if let Some(slot) = ret_slot {
            let rv = f.new_local(ret_ty);
            insts.push(Inst::Load { ty: ret_ty, dst: rv, addr: Operand::local(slot) });
            Term::Ret(Some(Operand::local(rv)))
        } else {
            Term::Ret(None)
        };
        Some(f.push_block(Block { insts, term, pad: None }))
    } else {
        None
    };

    // The call block replaces the region root in place, so every edge into
    // the region keeps working.
    let mut insts = Vec::new();
    for (k, &l) in outputs.iter().enumerate() {
        insts.push(Inst::Store {
            ty: f.local_ty(l),
            addr: Operand::local(out_slots[k]),
            value: Operand::local(l),
        });
    }
    let mut args: Vec<Operand> = inputs.iter().map(|l| Operand::local(*l)).collect();
    args.extend(out_slots.iter().map(|s| Operand::local(*s)));
    if let Some(slot) = ret_slot {
        args.push(Operand::local(slot));
    }
    let call_dst = if multi_exit { Some(f.new_local(Type::I32)) } else { None };
    insts.push(Inst::Call {
        dst: call_dst,
        callee: khaos_ir::Callee::Direct(sep_func),
        args,
    });
    for (k, &l) in outputs.iter().enumerate() {
        insts.push(Inst::Load { ty: f.local_ty(l), dst: l, addr: Operand::local(out_slots[k]) });
    }
    let exit_target = |e: &Exit| -> BlockId {
        match e {
            Exit::Edge(t) => *t,
            Exit::Return => ret_block.expect("ret block exists for Return exit"),
        }
    };
    let term = match exits.len() {
        0 => Term::Unreachable, // the region diverges; the call never returns
        1 => Term::Jump(exit_target(&exits[0])),
        _ => {
            let cases: Vec<(i64, BlockId)> =
                exits.iter().map(|e| (exit_code(e), exit_target(e))).collect();
            let default = cases.last().expect("non-empty").1;
            let cases = cases[..cases.len() - 1].to_vec();
            Term::Switch {
                ty: Type::I32,
                value: Operand::local(call_dst.expect("multi-exit call has dst")),
                cases,
                default,
            }
        }
    };
    *f.block_mut(region.root) = Block { insts, term, pad: None };

    // Drop the now-dead region bodies (all except the root).
    let dead: Vec<BlockId> =
        region_sorted.iter().copied().filter(|b| *b != region.root).collect();
    let block_map = remove_blocks(f, &dead);

    ExtractOutcome {
        sep_func,
        sep_blocks,
        params_reduced: moved_allocas.len(), // the alloca part; the
        // register part is counted inline above
        block_map,
    }
}

/// Allocas outside the region whose slot is provably region-private:
/// every use of the pointer sits inside the region, the pointer is never
/// derived from (no `ptradd`/copies), and the region's root block writes
/// the slot before any read (so each entry re-initialises it, making the
/// move to a fresh frame safe).
fn find_movable_allocas(
    f: &Function,
    region: &BTreeSet<BlockId>,
    root: BlockId,
) -> Vec<(BlockId, usize)> {
    let mut out = Vec::new();
    for (b, block) in f.iter_blocks() {
        if region.contains(&b) {
            continue;
        }
        'insts: for (i, inst) in block.insts.iter().enumerate() {
            let Inst::Alloca { dst, .. } = inst else { continue };
            let l = *dst;
            // Scan every use and def of l across the function.
            for (ub, ublock) in f.iter_blocks() {
                for (ui, uinst) in ublock.insts.iter().enumerate() {
                    if ub == b && ui == i {
                        continue; // the alloca itself
                    }
                    if uinst.def() == Some(l) {
                        continue 'insts; // redefinition: too clever, skip
                    }
                    let mut used = false;
                    uinst.for_each_use(|o| {
                        if o.as_local() == Some(l) {
                            used = true;
                        }
                    });
                    if !used {
                        continue;
                    }
                    if !region.contains(&ub) {
                        continue 'insts;
                    }
                    // Only direct load/store addressing is allowed.
                    match uinst {
                        Inst::Load { addr, .. } if addr.as_local() == Some(l) => {}
                        Inst::Store { addr, value, .. }
                            if addr.as_local() == Some(l) && value.as_local() != Some(l) => {}
                        _ => continue 'insts,
                    }
                }
                let mut term_uses = false;
                ublock.term.for_each_use(|o| {
                    if o.as_local() == Some(l) {
                        term_uses = true;
                    }
                });
                if term_uses {
                    continue 'insts;
                }
            }
            // Re-initialisation check: the region root (which dominates
            // every region block) must write the slot before any read, so
            // a fresh frame slot per call observes the same values.
            let mut root_first_is_store = false;
            let mut root_seen_access = false;
            for uinst in &f.block(root).insts {
                let mut touches = false;
                uinst.for_each_use(|o| {
                    if o.as_local() == Some(l) {
                        touches = true;
                    }
                });
                if touches && !root_seen_access {
                    root_seen_access = true;
                    root_first_is_store =
                        matches!(uinst, Inst::Store { addr, .. } if addr.as_local() == Some(l));
                }
            }
            if root_seen_access && root_first_is_store {
                out.push((b, i));
            }
        }
    }
    out
}
