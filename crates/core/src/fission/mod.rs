//! The fission primitive (paper §3.2): separate a function into
//! `sepFunc`s plus a `remFunc`.

mod extract;
mod regions;

pub use extract::extract_region;
pub use regions::{identify_regions, Region};

use crate::KhaosContext;
use khaos_ir::{Callee, FuncId, Inst, Module, ProvKind};

/// Runs fission over every eligible function of `m`.
///
/// Eligibility (paper §3.2.1 plus correctness constraints):
/// * not variadic (no way to forward unnamed arguments to a `sepFunc`),
/// * enough blocks to contain a worthwhile region,
/// * only previously-untouched functions (kind `Original`).
pub fn run(m: &mut Module, ctx: &mut KhaosContext) {
    let candidates: Vec<FuncId> = m
        .iter_functions()
        .filter(|(_, f)| {
            f.provenance.kind == ProvKind::Original
                && !f.variadic
                && f.blocks.len() > ctx.options.fission_min_blocks
        })
        .map(|(id, _)| id)
        .collect();
    ctx.fission_stats.ori_funcs += m.functions.len();

    for func in candidates {
        let regions = identify_regions(m, func, &ctx.options);
        if regions.is_empty() {
            continue;
        }
        let blocks_before = m.function(func).blocks.len();
        let mut moved = 0usize;
        let mut any = false;
        // Extract one region at a time; each extraction compacts block ids
        // and returns a remap that must be applied to the remaining
        // regions (they are block-disjoint, so they survive intact).
        let mut pending = regions;
        while let Some(region) = pending.pop() {
            let sep_index = ctx.fission_stats.sep_funcs;
            let outcome = extract_region(m, func, &region, sep_index, ctx);
            moved += region.blocks.len() - 1; // root survives as the call block
            any = true;
            for r in &mut pending {
                r.apply_block_map(&outcome.block_map);
            }
            ctx.fission_stats.sep_funcs += 1;
            ctx.fission_stats.sep_blocks += outcome.sep_blocks;
            ctx.fission_stats.params_reduced += outcome.params_reduced;
        }
        if any {
            ctx.fission_stats.fissioned_funcs += 1;
            ctx.fission_stats.reduced_ratio_sum += moved as f64 / blocks_before as f64;
            let f = m.function_mut(func);
            f.provenance.kind = ProvKind::Rem;
        }
    }
}

/// True if the block set contains a call to the `setjmp` external —
/// the call-site of `setjmp` must never move into a `sepFunc`
/// (paper §3.2.4: its frame must stay alive for the matching `longjmp`).
pub fn region_calls_setjmp(
    m: &Module,
    f: &khaos_ir::Function,
    blocks: &[khaos_ir::BlockId],
) -> bool {
    blocks.iter().any(|b| {
        f.block(*b).insts.iter().any(|i| match i {
            Inst::Call { callee: Callee::Ext(e), .. } => m.external(*e).name == "setjmp",
            _ => false,
        })
    })
}
