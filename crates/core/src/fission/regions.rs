//! Region identification — Algorithm 1 of the paper.
//!
//! Candidate regions are dominator subtrees (single entry by
//! construction). Each candidate is scored `effect / cost` where `effect`
//! is its block count and `cost` is the execution frequency of its head,
//! multiplied by the innermost loop's trip count when the head sits in a
//! loop. The algorithm repeatedly takes the most cost-effective tree and
//! discards everything that intersects it.

use crate::KhaosOptions;
use khaos_ir::{BlockFreq, BlockId, Callee, Cfg, DomTree, FuncId, Inst, LoopInfo, Module, Term};
use std::collections::HashMap;

/// A selected region: a dominator subtree rooted at `root`.
#[derive(Clone, Debug)]
pub struct Region {
    /// The subtree root — the region's single entry block.
    pub root: BlockId,
    /// All blocks in the region, including `root`.
    pub blocks: Vec<BlockId>,
    /// The score it was selected with (diagnostics).
    pub value: f64,
}

impl Region {
    /// Rewrites block ids after an extraction compacted the function.
    pub fn apply_block_map(&mut self, map: &HashMap<BlockId, BlockId>) {
        self.root = *map.get(&self.root).expect("disjoint region root survives");
        for b in &mut self.blocks {
            *b = *map.get(b).expect("disjoint region blocks survive");
        }
    }

    fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Runs Algorithm 1 on `func`, returning disjoint regions to separate.
pub fn identify_regions(m: &Module, func: FuncId, opts: &KhaosOptions) -> Vec<Region> {
    let f = m.function(func);
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);
    let li = LoopInfo::compute(f, &cfg, &dt);
    let bf = BlockFreq::compute(f, &cfg, &li);

    // Line 2-3: all dominator subtrees except the whole function.
    let mut candidates: Vec<Region> = Vec::new();
    for root in dt.candidate_roots(&cfg) {
        let blocks = dt.subtree(root);
        if blocks.len() < opts.fission_min_blocks {
            continue;
        }
        if blocks.len() >= f.blocks.len() {
            continue; // must leave a remnant
        }
        if !region_is_extractable(m, f, root, &blocks) {
            continue;
        }
        // Lines 7-13: effect / cost.
        let effect = blocks.len() as f64;
        let mut cost = bf.freq(root).max(1e-6);
        if li.in_loop(root) {
            cost *= li.trip_count(root);
        }
        let value = effect / cost;
        if value < opts.fission_min_value {
            continue;
        }
        candidates.push(Region { root, blocks, value });
    }

    // Lines 4-21: iteratively select the best tree, discard intersecting.
    let mut selected: Vec<Region> = Vec::new();
    while !candidates.is_empty() && selected.len() < opts.fission_max_regions {
        let best = candidates
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.value
                    .partial_cmp(&b.1.value)
                    .expect("finite scores")
                    .then(b.1.root.cmp(&a.1.root)) // deterministic tie-break
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let chosen = candidates.swap_remove(best);
        candidates.retain(|c| !intersects(c, &chosen));
        selected.push(chosen);
    }
    selected
}

fn intersects(a: &Region, b: &Region) -> bool {
    // Dominator subtrees intersect iff one contains the other's root.
    a.contains(b.root) || b.contains(a.root)
}

/// Correctness filters on top of Algorithm 1.
fn region_is_extractable(
    m: &Module,
    f: &khaos_ir::Function,
    root: BlockId,
    blocks: &[BlockId],
) -> bool {
    // The region entry is reached by normal edges; landing pads are only
    // reachable through invoke unwind edges, so a pad cannot head a region.
    if f.block(root).is_pad() {
        return false;
    }
    for &b in blocks {
        let block = f.block(b);
        // EH pairing (paper §3.2.4): an invoke and its landing pad must
        // end up in the same function, so reject regions that would tear
        // an unwind edge apart.
        if let Term::Invoke { unwind, .. } = &block.term {
            if !blocks.contains(unwind) {
                return false;
            }
        }
        // setjmp call-sites must stay in the original frame (§3.2.4).
        for inst in &block.insts {
            match inst {
                Inst::Call { callee: Callee::Ext(e), .. }
                    if m.external(*e).name == "setjmp" => {
                        return false;
                    }
                // An alloca whose address could outlive the sepFunc frame
                // must not move; conservatively keep allocas out of regions.
                Inst::Alloca { .. } => return false,
                _ => {}
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KhaosOptions;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{CmpPred, Operand, Type};

    /// entry -> cold (4-block chain) or ret; cold chain rejoins ret.
    fn module_with_cold_region() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", Type::I64);
        let p = fb.add_param(Type::I64);
        let c1 = fb.new_block();
        let c2 = fb.new_block();
        let c3 = fb.new_block();
        let done = fb.new_block();
        let cond = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 100));
        fb.branch(Operand::local(cond), c1, done);
        fb.switch_to(c1);
        fb.jump(c2);
        fb.switch_to(c2);
        fb.jump(c3);
        fb.switch_to(c3);
        fb.jump(done);
        fb.switch_to(done);
        fb.ret(Some(Operand::local(p)));
        let id = m.push_function(fb.finish());
        (m, id)
    }

    #[test]
    fn finds_cold_chain() {
        let (m, id) = module_with_cold_region();
        let regions = identify_regions(&m, id, &KhaosOptions::default());
        assert!(!regions.is_empty());
        let r = &regions[0];
        assert_eq!(r.root, BlockId(1), "chain head is the best region root");
        assert_eq!(r.blocks.len(), 3);
    }

    #[test]
    fn regions_are_disjoint() {
        let (m, id) = module_with_cold_region();
        let regions = identify_regions(&m, id, &KhaosOptions::default());
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                for blk in &a.blocks {
                    assert!(!b.blocks.contains(blk), "regions must not share blocks");
                }
            }
        }
    }

    #[test]
    fn min_blocks_respected() {
        let (m, id) = module_with_cold_region();
        let opts = KhaosOptions { fission_min_blocks: 10, ..KhaosOptions::default() };
        assert!(identify_regions(&m, id, &opts).is_empty());
    }

    #[test]
    fn hot_loop_body_disfavoured() {
        // A 2-block loop body region head inside a loop has cost ~ 10*freq,
        // pushing its value below the default threshold.
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", Type::I64);
        let p = fb.add_param(Type::I64);
        let h = fb.new_block();
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let exit = fb.new_block();
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 0));
        fb.branch(Operand::local(c), b1, exit);
        fb.switch_to(b1);
        fb.jump(b2);
        fb.switch_to(b2);
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(Operand::local(p)));
        let id = m.push_function(fb.finish());
        let regions = identify_regions(&m, id, &KhaosOptions::default());
        assert!(
            regions.iter().all(|r| r.root != BlockId(2)),
            "hot in-loop region should lose to the threshold: {regions:?}"
        );
    }

    #[test]
    fn setjmp_region_rejected() {
        let mut m = Module::new("t");
        let setjmp = m.declare_external(khaos_ir::ExtFunc {
            name: "setjmp".into(),
            params: vec![Type::Ptr],
            ret_ty: Type::I32,
            variadic: false,
        });
        let mut fb = FunctionBuilder::new("f", Type::I64);
        let p = fb.add_param(Type::I64);
        let c1 = fb.new_block();
        let c2 = fb.new_block();
        let done = fb.new_block();
        let buf = fb.alloca(8);
        let cond = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::const_int(Type::I64, 100));
        fb.branch(Operand::local(cond), c1, done);
        fb.switch_to(c1);
        fb.call_ext(setjmp, Type::I32, vec![Operand::local(buf)]);
        fb.jump(c2);
        fb.switch_to(c2);
        fb.jump(done);
        fb.switch_to(done);
        fb.ret(Some(Operand::local(p)));
        let id = m.push_function(fb.finish());
        let regions = identify_regions(&m, id, &KhaosOptions::default());
        assert!(
            regions.iter().all(|r| !r.blocks.contains(&BlockId(1))),
            "setjmp block must stay in the remFunc"
        );
    }
}
