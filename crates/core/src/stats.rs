//! Internal statistics — the counters behind the paper's Table 2.

/// Fission counters.
///
/// * `Ratio` = `sep_funcs / ori_funcs` (can exceed 100%: several regions
///   per function).
/// * `#BB`   = average basic-block count of the `sepFunc`s.
/// * `RR`    = average fraction of an original function's blocks that were
///   moved out ("reduced ratio").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FissionStats {
    /// Functions considered by fission.
    pub ori_funcs: usize,
    /// Functions actually split (became a `remFunc`).
    pub fissioned_funcs: usize,
    /// `sepFunc`s created.
    pub sep_funcs: usize,
    /// Total basic blocks across all `sepFunc`s.
    pub sep_blocks: usize,
    /// Sum over fissioned functions of `blocks_moved / blocks_before`.
    pub reduced_ratio_sum: f64,
    /// Pointer/value parameters avoided by the data-flow reduction
    /// (lazy allocation, §3.2.2).
    pub params_reduced: usize,
}

impl FissionStats {
    /// `#sepFuncs / #oriFuncs` (the paper's "Fission Ratio").
    pub fn ratio(&self) -> f64 {
        if self.ori_funcs == 0 {
            0.0
        } else {
            self.sep_funcs as f64 / self.ori_funcs as f64
        }
    }

    /// Average `#BB` per `sepFunc`.
    pub fn avg_blocks(&self) -> f64 {
        if self.sep_funcs == 0 {
            0.0
        } else {
            self.sep_blocks as f64 / self.sep_funcs as f64
        }
    }

    /// Average reduced ratio (`RR`) over fissioned functions.
    pub fn reduced_ratio(&self) -> f64 {
        if self.fissioned_funcs == 0 {
            0.0
        } else {
            self.reduced_ratio_sum / self.fissioned_funcs as f64
        }
    }

    /// Merges another module's counters into this one (suite-level rows).
    pub fn merge(&mut self, other: &FissionStats) {
        self.ori_funcs += other.ori_funcs;
        self.fissioned_funcs += other.fissioned_funcs;
        self.sep_funcs += other.sep_funcs;
        self.sep_blocks += other.sep_blocks;
        self.reduced_ratio_sum += other.reduced_ratio_sum;
        self.params_reduced += other.params_reduced;
    }
}

/// Fusion counters.
///
/// * `Fusion Ratio` = fraction of eligible functions successfully paired.
/// * `#RP`  = average parameters removed per pair by list compression.
/// * `#HBB` = average innocuous ("harmless") basic blocks found per
///   fused function.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FusionStats {
    /// Functions eligible for fusion.
    pub eligible_funcs: usize,
    /// Functions that ended up inside some `fusFunc`.
    pub fused_funcs: usize,
    /// `fusFunc`s created.
    pub fus_funcs: usize,
    /// Total parameters removed by compression.
    pub params_removed: usize,
    /// Total innocuous blocks identified.
    pub innocuous_blocks: usize,
    /// Innocuous block pairs actually merged by deep fusion.
    pub deep_fused_pairs: usize,
    /// Trampolines generated for exported/escaping functions.
    pub trampolines: usize,
    /// Indirect call sites rewritten with the tag-decode sequence.
    pub indirect_sites_rewritten: usize,
}

impl FusionStats {
    /// Fraction of eligible functions aggregated (the paper's 97–99%).
    pub fn ratio(&self) -> f64 {
        if self.eligible_funcs == 0 {
            0.0
        } else {
            self.fused_funcs as f64 / self.eligible_funcs as f64
        }
    }

    /// Average `#RP` per created `fusFunc`.
    pub fn avg_reduced_params(&self) -> f64 {
        if self.fus_funcs == 0 {
            0.0
        } else {
            self.params_removed as f64 / self.fus_funcs as f64
        }
    }

    /// Average `#HBB` per created `fusFunc`.
    pub fn avg_innocuous(&self) -> f64 {
        if self.fus_funcs == 0 {
            0.0
        } else {
            self.innocuous_blocks as f64 / self.fus_funcs as f64
        }
    }

    /// Merges another module's counters into this one.
    pub fn merge(&mut self, other: &FusionStats) {
        self.eligible_funcs += other.eligible_funcs;
        self.fused_funcs += other.fused_funcs;
        self.fus_funcs += other.fus_funcs;
        self.params_removed += other.params_removed;
        self.innocuous_blocks += other.innocuous_blocks;
        self.deep_fused_pairs += other.deep_fused_pairs;
        self.trampolines += other.trampolines;
        self.indirect_sites_rewritten += other.indirect_sites_rewritten;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fission_ratios() {
        let s = FissionStats {
            ori_funcs: 10,
            fissioned_funcs: 6,
            sep_funcs: 12,
            sep_blocks: 60,
            reduced_ratio_sum: 2.4,
            params_reduced: 5,
        };
        assert!((s.ratio() - 1.2).abs() < 1e-9);
        assert!((s.avg_blocks() - 5.0).abs() < 1e-9);
        assert!((s.reduced_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn fusion_ratios() {
        let s = FusionStats {
            eligible_funcs: 100,
            fused_funcs: 98,
            fus_funcs: 49,
            params_removed: 70,
            innocuous_blocks: 60,
            ..FusionStats::default()
        };
        assert!((s.ratio() - 0.98).abs() < 1e-9);
        assert!((s.avg_reduced_params() - 70.0 / 49.0).abs() < 1e-9);
        assert!((s.avg_innocuous() - 60.0 / 49.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = FissionStats::default();
        assert_eq!(s.ratio(), 0.0);
        assert_eq!(s.avg_blocks(), 0.0);
        let f = FusionStats::default();
        assert_eq!(f.ratio(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FissionStats { ori_funcs: 1, sep_funcs: 2, ..Default::default() };
        let b = FissionStats { ori_funcs: 3, sep_funcs: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.ori_funcs, 4);
        assert_eq!(a.sep_funcs, 6);
    }
}
