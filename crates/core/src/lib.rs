//! # khaos-core — the Khaos inter-procedural obfuscator
//!
//! Reproduction of the CGO 2023 paper *"Khaos: The Impact of
//! Inter-procedural Code Obfuscation on Binary Diffing Techniques"*.
//!
//! Khaos moves code **across** functions and lets ordinary compiler
//! optimization re-shape the result:
//!
//! * [`fission()`] separates a function into `sepFunc`s and a `remFunc`
//!   (paper §3.2): dominator-subtree region identification driven by a
//!   cost/effect ratio, pointer-parameter data-flow rebuild with a
//!   lazy-allocation reduction, and exit-code-encoded control-flow rebuild.
//! * [`fusion()`] aggregates pairs of functions into a `fusFunc`
//!   (paper §3.3): compatible-return selection, parameter-list
//!   compression, a `ctrl` selector, **tagged pointers** on bits 2–3 of
//!   16-byte-aligned function addresses for indirect calls, trampolines
//!   for escaping/exported functions, and **deep fusion** of innocuous
//!   basic blocks.
//! * The combinations [`fufi_sep`], [`fufi_ori`] and [`fufi_all`]
//!   (paper §3.4).
//!
//! All randomness (fusion pairing) flows from the seed in
//! [`KhaosContext`]; obfuscation is fully deterministic.
//!
//! ## Building through pipelines
//!
//! The primary interface to these transforms is the `khaos-pass`
//! pipeline API: each entry point has an adapter pass and a spec atom
//! (`fission`, `fusion(arity=3)`, `fufi_all`, …), so a whole build is
//! one declarative, fingerprinted `Pipeline` — e.g.
//! `"fufi_all | O2+lto"` — sharing a single seeded `PassCtx` RNG
//! stream. The free functions below remain as thin compatibility
//! wrappers and are seed-equivalent to the adapters (byte-identical
//! printed modules for the same seed).
//!
//! ```
//! use khaos_core::{fission, KhaosContext};
//! use khaos_ir::{builder::FunctionBuilder, Module, Operand, Type, CmpPred, BinOp};
//!
//! let mut m = Module::new("demo");
//! // ... build a module (see the examples/ directory for full programs)
//! # let mut fb = FunctionBuilder::new("main", Type::I64);
//! # fb.ret(Some(Operand::const_int(Type::I64, 0)));
//! # m.push_function(fb.finish());
//! let mut ctx = KhaosContext::new(0xC60);
//! fission(&mut m, &mut ctx).unwrap();
//! assert!(khaos_ir::verify::verify_module(&m).is_ok());
//! ```

pub mod fission;
pub mod fusion;
pub mod stats;

use khaos_ir::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

pub use stats::{FissionStats, FusionStats};

/// Failure modes of the obfuscator.
#[derive(Clone, Debug, PartialEq)]
pub enum KhaosError {
    /// The module failed verification after a transformation — a bug in
    /// the obfuscator; the message carries the verifier report.
    InvalidResult(String),
    /// An N-way fusion arity outside the tag-bit budget of `2..=4`
    /// (paper §A.1 leaves three usable pointer bits).
    UnsupportedArity(usize),
}

impl fmt::Display for KhaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KhaosError::InvalidResult(m) => write!(f, "obfuscation produced invalid IR: {m}"),
            KhaosError::UnsupportedArity(k) => {
                write!(f, "fusion arity {k} outside the supported range 2..=4")
            }
        }
    }
}

impl std::error::Error for KhaosError {}

/// Tuning knobs for the two primitives.
#[derive(Clone, Debug)]
pub struct KhaosOptions {
    /// Minimum number of basic blocks a region must contain (the paper's
    /// "effect" floor; tiny regions are not worth a call).
    pub fission_min_blocks: usize,
    /// Minimum cost-effectiveness (`effect / cost`) for a region to be
    /// separated. Lower values separate hotter regions (more overhead).
    pub fission_min_value: f64,
    /// Upper bound on regions separated per function.
    pub fission_max_regions: usize,
    /// The data-flow reduction of §3.2.2 (lazy allocation of locals that
    /// are only used inside a region). Disable for the ablation bench.
    pub data_flow_reduction: bool,
    /// Parameter-list compression of §3.3.2. Disable for the ablation.
    pub parameter_compression: bool,
    /// Deep fusion of innocuous blocks (§3.3.4). Disable for the ablation.
    pub deep_fusion: bool,
    /// Maximum innocuous-block pairs merged per fused function.
    pub deep_fusion_max_pairs: usize,
    /// Prefer fusion pairs whose combined parameter count stays within the
    /// six register slots (§3.3.2).
    pub prefer_register_args: bool,
}

impl Default for KhaosOptions {
    fn default() -> Self {
        KhaosOptions {
            fission_min_blocks: 2,
            fission_min_value: 2.0,
            fission_max_regions: 3,
            data_flow_reduction: true,
            parameter_compression: true,
            deep_fusion: true,
            deep_fusion_max_pairs: 2,
            prefer_register_args: true,
        }
    }
}

/// Seeded context threaded through every transformation; collects the
/// Table-2 statistics as it goes.
#[derive(Debug)]
pub struct KhaosContext {
    pub(crate) rng: StdRng,
    /// Options in effect.
    pub options: KhaosOptions,
    /// Fission counters (paper Table 2, upper half).
    pub fission_stats: FissionStats,
    /// Fusion counters (paper Table 2, lower half).
    pub fusion_stats: FusionStats,
}

impl KhaosContext {
    /// A context with default options.
    pub fn new(seed: u64) -> Self {
        Self::with_options(seed, KhaosOptions::default())
    }

    /// A context with explicit options.
    pub fn with_options(seed: u64, options: KhaosOptions) -> Self {
        Self::from_rng(StdRng::seed_from_u64(seed), options)
    }

    /// A context over an externally-owned RNG stream. This is the hook
    /// the `khaos-pass` pipeline adapters use: a pipeline threads **one**
    /// seeded stream through every pass, lending it to each transform in
    /// turn, so a pass sequence consumes randomness exactly as the
    /// monolithic legacy entry points did.
    pub fn from_rng(rng: StdRng, options: KhaosOptions) -> Self {
        KhaosContext {
            rng,
            options,
            fission_stats: FissionStats::default(),
            fusion_stats: FusionStats::default(),
        }
    }

    /// Decomposes the context into its RNG stream and the collected
    /// statistics — the counterpart of [`KhaosContext::from_rng`] for
    /// handing the stream (and the Table-2 counters) back to a pipeline
    /// context.
    pub fn into_parts(self) -> (StdRng, FissionStats, FusionStats) {
        (self.rng, self.fission_stats, self.fusion_stats)
    }
}

fn check(m: &Module) -> Result<(), KhaosError> {
    khaos_ir::verify::verify_module(m).map_err(|errs| {
        let mut s = String::new();
        for e in errs.iter().take(8) {
            s.push_str(&format!("{e}; "));
        }
        KhaosError::InvalidResult(s)
    })
}

/// Applies the fission primitive to every eligible function in `m`.
///
/// # Errors
/// Returns [`KhaosError::InvalidResult`] if the transformed module fails
/// verification (an internal bug, surfaced rather than hidden).
pub fn fission(m: &mut Module, ctx: &mut KhaosContext) -> Result<(), KhaosError> {
    fission::run(m, ctx);
    check(m)
}

/// Applies the fusion primitive, randomly pairing all eligible functions.
///
/// # Errors
/// Returns [`KhaosError::InvalidResult`] if the transformed module fails
/// verification.
pub fn fusion(m: &mut Module, ctx: &mut KhaosContext) -> Result<(), KhaosError> {
    fusion::run(m, ctx, |f| f.provenance.kind != khaos_ir::ProvKind::Trampoline);
    check(m)
}

/// N-way fusion (extension): aggregates groups of up to `arity`
/// functions into each `fusFunc`.
///
/// The paper fixes the arity at two "to balance the performance overhead
/// and the obfuscation effect" (§3.3) but notes the primitive generalizes;
/// this entry point implements the general form, with the arity ceiling
/// of [`fusion::MAX_ARITY`] dictated by the §A.1 tag-bit budget. The
/// arity-sweep experiment (`experiments ext-arity`) quantifies the
/// trade-off the paper predicts.
///
/// # Errors
/// Returns [`KhaosError::UnsupportedArity`] when `arity` is outside
/// `2..=4`, or [`KhaosError::InvalidResult`] on verifier failure.
pub fn fusion_n(m: &mut Module, ctx: &mut KhaosContext, arity: usize) -> Result<(), KhaosError> {
    if !(2..=fusion::MAX_ARITY).contains(&arity) {
        return Err(KhaosError::UnsupportedArity(arity));
    }
    fusion::nway::run_n(m, ctx, arity, |f| {
        f.provenance.kind != khaos_ir::ProvKind::Trampoline
    });
    check(m)
}

/// FuFi.all at a chosen fusion arity (extension): fission, then N-way
/// fusion over both `sepFunc`s and untouched originals.
///
/// `fufi_n(m, ctx, 2)` is the arity-2 analogue of [`fufi_all`]; higher
/// arities push the obfuscation-effect-first profile of §3.4 further at
/// the overhead cost measured in `experiments ext-arity`.
///
/// # Errors
/// Returns [`KhaosError::UnsupportedArity`] when `arity` is outside
/// `2..=4`, or [`KhaosError::InvalidResult`] on verifier failure.
pub fn fufi_n(m: &mut Module, ctx: &mut KhaosContext, arity: usize) -> Result<(), KhaosError> {
    if !(2..=fusion::MAX_ARITY).contains(&arity) {
        return Err(KhaosError::UnsupportedArity(arity));
    }
    fission::run(m, ctx);
    fusion::nway::run_n(m, ctx, arity, |f| {
        matches!(f.provenance.kind, khaos_ir::ProvKind::Sep | khaos_ir::ProvKind::Original)
    });
    check(m)
}

/// FuFi.sep: fission, then fusion restricted to the generated `sepFunc`s.
/// Indirect-call handling is moot here — `sepFunc`s are never
/// address-taken (paper §3.4).
///
/// # Errors
/// Returns [`KhaosError::InvalidResult`] on verifier failure.
pub fn fufi_sep(m: &mut Module, ctx: &mut KhaosContext) -> Result<(), KhaosError> {
    fission::run(m, ctx);
    fusion::run(m, ctx, |f| f.provenance.kind == khaos_ir::ProvKind::Sep);
    check(m)
}

/// FuFi.ori: fission, then fusion restricted to functions fission left
/// untouched (e.g. single-block functions) — the balanced mode the paper
/// recommends for most real-world software (§3.4).
///
/// # Errors
/// Returns [`KhaosError::InvalidResult`] on verifier failure.
pub fn fufi_ori(m: &mut Module, ctx: &mut KhaosContext) -> Result<(), KhaosError> {
    fission::run(m, ctx);
    fusion::run(m, ctx, |f| f.provenance.kind == khaos_ir::ProvKind::Original);
    check(m)
}

/// FuFi.all: fission, then fusion over both `sepFunc`s and untouched
/// originals, uniformly and randomly — obfuscation effect first (§3.4).
///
/// # Errors
/// Returns [`KhaosError::InvalidResult`] on verifier failure.
pub fn fufi_all(m: &mut Module, ctx: &mut KhaosContext) -> Result<(), KhaosError> {
    fission::run(m, ctx);
    fusion::run(m, ctx, |f| {
        matches!(f.provenance.kind, khaos_ir::ProvKind::Sep | khaos_ir::ProvKind::Original)
    });
    check(m)
}

/// The Khaos build modes evaluated in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KhaosMode {
    /// Fission only.
    Fission,
    /// Fusion only.
    Fusion,
    /// Fission + fusion of sepFuncs.
    FuFiSep,
    /// Fission + fusion of untouched originals.
    FuFiOri,
    /// Fission + fusion of everything.
    FuFiAll,
}

impl KhaosMode {
    /// All modes in the paper's presentation order.
    pub const ALL: [KhaosMode; 5] = [
        KhaosMode::Fission,
        KhaosMode::Fusion,
        KhaosMode::FuFiSep,
        KhaosMode::FuFiOri,
        KhaosMode::FuFiAll,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            KhaosMode::Fission => "Fission",
            KhaosMode::Fusion => "Fusion",
            KhaosMode::FuFiSep => "FuFi.sep",
            KhaosMode::FuFiOri => "FuFi.ori",
            KhaosMode::FuFiAll => "FuFi.all",
        }
    }

    /// Applies this mode to `m`.
    ///
    /// # Errors
    /// Returns [`KhaosError::InvalidResult`] on verifier failure.
    pub fn apply(self, m: &mut Module, ctx: &mut KhaosContext) -> Result<(), KhaosError> {
        match self {
            KhaosMode::Fission => fission(m, ctx),
            KhaosMode::Fusion => fusion(m, ctx),
            KhaosMode::FuFiSep => fufi_sep(m, ctx),
            KhaosMode::FuFiOri => fufi_ori(m, ctx),
            KhaosMode::FuFiAll => fufi_all(m, ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_deterministic() {
        use rand::Rng;
        let mut a = KhaosContext::new(7);
        let mut b = KhaosContext::new(7);
        let xa: u64 = a.rng.gen();
        let xb: u64 = b.rng.gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn mode_names_match_paper() {
        assert_eq!(KhaosMode::FuFiSep.name(), "FuFi.sep");
        assert_eq!(KhaosMode::ALL.len(), 5);
    }
}
