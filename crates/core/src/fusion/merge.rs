//! Pair merging: building the `fusFunc`, rewriting call sites, tagging
//! function pointers and generating trampolines (paper §3.3.2–§3.3.3).

use super::prefix_compatible;
use crate::KhaosContext;
use khaos_ir::rewrite::{import_locals, remap_block};
use khaos_ir::{
    Block, BlockId, Callee, CallGraph, CastKind, CmpPred, FuncId, Function, GInit, Inst, Linkage,
    LocalId, Module, Operand, ProvKind, Provenance, Term, Type,
};
use std::collections::HashMap;
use std::ops::Range;

/// The tag attached to pointers to the first constituent (`ctrl == 0`):
/// bit 2 marks "points to a fusFunc".
pub const TAG_A: i64 = 0b0100;
/// The tag for the second constituent (`ctrl == 1`): bits 2 and 3.
pub const TAG_B: i64 = 0b1100;
/// Mask covering both tag bits.
pub const TAG_MASK: i64 = 0b1100;

/// What a pair fusion produced.
#[derive(Clone, Debug)]
pub struct FusedInfo {
    /// The new function.
    pub fus: FuncId,
    /// Whether tagged pointers were emitted (requires the indirect-call
    /// decode rewrite afterwards).
    pub used_tags: bool,
    /// Block index range of the first constituent's body inside the fus.
    pub a_side: Range<usize>,
    /// Block index range of the second constituent's body.
    pub b_side: Range<usize>,
    /// The `ctrl` parameter local (always `LocalId(0)`).
    pub ctrl: LocalId,
}

/// Where each original parameter landed in the merged list.
struct ParamLayout {
    /// Merged slot types (excluding `ctrl`).
    slots: Vec<Type>,
    /// `a_map[i]` = slot index of a's parameter `i`.
    a_map: Vec<usize>,
    /// `b_map[i]` = slot index of b's parameter `i`.
    b_map: Vec<usize>,
    /// Parameters saved by compression (the `#RP` statistic).
    compressed: usize,
}

fn merge_params(fa: &Function, fb: &Function, compression: bool) -> ParamLayout {
    let pa = fa.param_types();
    let pb = fb.param_types();
    let mut slots = Vec::new();
    let mut a_map = Vec::with_capacity(pa.len());
    let mut b_map = Vec::with_capacity(pb.len());
    let mut compressed = 0;
    if compression {
        let mut deferred_b: Vec<(usize, Type)> = Vec::new();
        for i in 0..pa.len().max(pb.len()) {
            match (pa.get(i), pb.get(i)) {
                (Some(&ta), Some(&tb)) => match ta.merged(tb) {
                    Some(t) => {
                        a_map.push(slots.len());
                        b_map.push(slots.len());
                        slots.push(t);
                        compressed += 1;
                    }
                    None => {
                        a_map.push(slots.len());
                        slots.push(ta);
                        deferred_b.push((i, tb));
                        b_map.push(usize::MAX); // patched below
                    }
                },
                (Some(&ta), None) => {
                    a_map.push(slots.len());
                    slots.push(ta);
                }
                (None, Some(&tb)) => {
                    b_map.push(slots.len());
                    slots.push(tb);
                }
                (None, None) => unreachable!(),
            }
        }
        for (i, tb) in deferred_b {
            b_map[i] = slots.len();
            slots.push(tb);
        }
    } else {
        for &t in pa {
            a_map.push(slots.len());
            slots.push(t);
        }
        for &t in pb {
            b_map.push(slots.len());
            slots.push(t);
        }
    }
    ParamLayout { slots, a_map, b_map, compressed }
}

fn merged_ret(fa: &Function, fb: &Function) -> Type {
    match (fa.ret_ty, fb.ret_ty) {
        (Type::Void, Type::Void) => Type::Void,
        (Type::Void, t) | (t, Type::Void) => t,
        (a, b) => a.merged(b).expect("selection guarantees compatible returns"),
    }
}

pub(super) fn widen_cast(from: Type, to: Type) -> Option<CastKind> {
    if from == to {
        return None;
    }
    Some(if from.is_float() { CastKind::FpExt } else { CastKind::SExt })
}

pub(super) fn narrow_cast(from: Type, to: Type) -> Option<CastKind> {
    if from == to {
        return None;
    }
    Some(if from.is_float() { CastKind::FpTrunc } else { CastKind::Trunc })
}

/// Fuses `a` and `b` into a new `fusFunc`; rewrites every reference in the
/// module; stubs or trampolines the originals.
pub fn fuse_pair(
    m: &mut Module,
    a: FuncId,
    b: FuncId,
    cg: &CallGraph,
    has_indirect_invoke: bool,
    ctx: &mut KhaosContext,
) -> FusedInfo {
    let fa = m.function(a).clone();
    let fb = m.function(b).clone();
    let layout = merge_params(&fa, &fb, ctx.options.parameter_compression);
    let fus_ret = merged_ret(&fa, &fb);
    ctx.fusion_stats.params_removed += layout.compressed;

    // ---- Build the fusFunc skeleton. ----
    let mut fus = Function::new(format!("{}_{}_fusion", fa.name, fb.name), fus_ret);
    fus.provenance = Provenance {
        kind: ProvKind::Fused,
        origins: fa
            .provenance
            .origins
            .iter()
            .chain(fb.provenance.origins.iter())
            .cloned()
            .collect(),
    };
    fus.annotations = fa.annotations.iter().chain(fb.annotations.iter()).cloned().collect();
    if !fus.annotations.iter().any(|a| a == "noinline") {
        // Keep the aggregation intact through later optimization.
        fus.annotations.push("noinline".to_string());
    }
    let ctrl = fus.new_local(Type::I32);
    for &t in &layout.slots {
        fus.new_local(t);
    }
    fus.param_count = 1 + layout.slots.len() as u32;

    // Locals for both bodies.
    let amap = import_locals(&mut fus, &fa);
    let bmap = import_locals(&mut fus, &fb);

    // Block layout: 0 dispatch, 1 adapterA, 2 adapterB, then bodies.
    let a_base = 3usize;
    let b_base = 3 + fa.blocks.len();
    let adapter_a = BlockId::new(1);
    let adapter_b = BlockId::new(2);

    let is_a = fus.new_local(Type::I1);
    fus.blocks[0] = Block {
        insts: vec![Inst::Cmp {
            pred: CmpPred::Eq,
            ty: Type::I32,
            dst: is_a,
            lhs: Operand::local(ctrl),
            rhs: Operand::const_int(Type::I32, 0),
        }],
        term: Term::Branch { cond: Operand::local(is_a), then_bb: adapter_a, else_bb: adapter_b },
        pad: None,
    };

    // Adapters: move (and narrow) the slot values into each body's
    // parameter locals.
    let build_adapter = |_fus: &mut Function,
                         orig: &Function,
                         map: &HashMap<LocalId, LocalId>,
                         slot_of: &[usize],
                         entry_target: BlockId| {
        let mut insts = Vec::new();
        for (i, &ty) in orig.param_types().iter().enumerate() {
            let slot_local = LocalId::new(1 + slot_of[i]);
            let slot_ty = layout.slots[slot_of[i]];
            let dst = map[&LocalId::new(i)];
            match narrow_cast(slot_ty, ty) {
                Some(kind) => insts.push(Inst::Cast {
                    kind,
                    dst,
                    src: Operand::local(slot_local),
                    from: slot_ty,
                    to: ty,
                }),
                None => insts.push(Inst::Copy { ty, dst, src: Operand::local(slot_local) }),
            }
        }
        Block { insts, term: Term::Jump(entry_target), pad: None }
    };
    let adapter_a_block =
        build_adapter(&mut fus, &fa, &amap, &layout.a_map, BlockId::new(a_base));
    let adapter_b_block =
        build_adapter(&mut fus, &fb, &bmap, &layout.b_map, BlockId::new(b_base));
    fus.push_block(adapter_a_block);
    fus.push_block(adapter_b_block);
    debug_assert_eq!(fus.blocks.len(), a_base);

    // Copy the bodies, rewriting returns to the merged type.
    let copy_body = |fus: &mut Function,
                         orig: &Function,
                         map: &HashMap<LocalId, LocalId>,
                         base: usize| {
        let bmap_blocks: HashMap<BlockId, BlockId> = (0..orig.blocks.len())
            .map(|i| (BlockId::new(i), BlockId::new(base + i)))
            .collect();
        for ob in &orig.blocks {
            let mut nb = ob.clone();
            remap_block(&mut nb, map, &bmap_blocks);
            if let Term::Ret(v) = nb.term.clone() {
                nb.term = match (v, fus_ret, orig.ret_ty) {
                    (_, Type::Void, _) => Term::Ret(None),
                    (None, t, Type::Void) => Term::Ret(Some(Operand::zero(t))),
                    (Some(val), want, have) => match widen_cast(have, want) {
                        None => Term::Ret(Some(val)),
                        Some(kind) => {
                            let w = fus.new_local(want);
                            nb.insts.push(Inst::Cast {
                                kind,
                                dst: w,
                                src: val,
                                from: have,
                                to: want,
                            });
                            Term::Ret(Some(Operand::local(w)))
                        }
                    },
                    (None, _, _) => unreachable!("void return in non-void function"),
                };
            }
            fus.push_block(nb);
        }
    };
    copy_body(&mut fus, &fa, &amap, a_base);
    copy_body(&mut fus, &fb, &bmap, b_base);

    let fus_id = m.push_function(fus);

    // ---- Rewrite every direct call/invoke to a or b. ----
    let specs = [
        CallSpec { target: a, ctrl: 0, map: layout.a_map.clone(), orig_ret: fa.ret_ty },
        CallSpec { target: b, ctrl: 1, map: layout.b_map.clone(), orig_ret: fb.ret_ty },
    ];
    let slots = layout.slots.clone();
    for fi in 0..m.functions.len() {
        let fid = FuncId::new(fi);
        if fid == a || fid == b {
            continue; // bodies about to be replaced
        }
        rewrite_calls_in(m, fid, fus_id, fus_ret, &slots, &specs);
    }

    // ---- Pointer references: tags or trampolines. ----
    let can_tag = ctx.options.parameter_compression
        && !has_indirect_invoke
        && prefix_compatible(&fa, &fb);
    let mut used_tags = false;
    for spec in &specs {
        let x = spec.target;
        if !cg.is_address_taken(x) && !cg.escapes(x) {
            stub_function(m, x);
            continue;
        }
        if cg.escapes(x) || !can_tag {
            install_trampoline(m, x, fus_id, fus_ret, &slots, spec);
            ctx.fusion_stats.trampolines += 1;
        } else {
            let tag = if spec.ctrl == 0 { TAG_A } else { TAG_B };
            rewrite_funcaddrs(m, x, fus_id, tag);
            for g in &mut m.globals {
                for init in &mut g.init {
                    if let GInit::FuncPtr { func, addend } = init {
                        if *func == x {
                            *func = fus_id;
                            *addend += tag;
                        }
                    }
                }
            }
            used_tags = true;
            stub_function(m, x);
        }
    }

    FusedInfo {
        fus: fus_id,
        used_tags,
        a_side: a_base..a_base + fa.blocks.len(),
        b_side: b_base..b_base + fb.blocks.len(),
        ctrl,
    }
}

/// How calls to one constituent of a fused function are rewritten: which
/// `ctrl` value selects its body and where its arguments land in the
/// merged slot list. Shared by pair fusion and the N-way extension.
pub(super) struct CallSpec {
    pub(super) target: FuncId,
    pub(super) ctrl: i64,
    pub(super) map: Vec<usize>,
    pub(super) orig_ret: Type,
}

/// Builds the argument vector for a rewritten call, emitting widening
/// casts into `pre` as needed.
pub(super) fn build_fused_args(
    f: &mut Function,
    pre: &mut Vec<Inst>,
    slots: &[Type],
    spec: &CallSpec,
    args: &[Operand],
) -> Vec<Operand> {
    let mut new_args: Vec<Operand> = Vec::with_capacity(1 + slots.len());
    new_args.push(Operand::const_int(Type::I32, spec.ctrl));
    let mut by_slot: Vec<Option<Operand>> = vec![None; slots.len()];
    for (i, arg) in args.iter().enumerate() {
        let slot = spec.map[i];
        let slot_ty = slots[slot];
        // The original argument type is the callee's param type, which is
        // what the slot was merged from.
        let have = arg_type_for_slot(f, arg);
        by_slot[slot] = Some(match widen_cast_checked(have, slot_ty) {
            None => *arg,
            Some(kind) => {
                let w = f.new_local(slot_ty);
                pre.push(Inst::Cast { kind, dst: w, src: *arg, from: have, to: slot_ty });
                Operand::local(w)
            }
        });
    }
    for (k, v) in by_slot.into_iter().enumerate() {
        new_args.push(v.unwrap_or(Operand::zero(slots[k])));
    }
    new_args
}

fn arg_type_for_slot(f: &Function, arg: &Operand) -> Type {
    match arg {
        Operand::Local(l) => f.local_ty(*l),
        Operand::Const(c) => c.ty(),
    }
}

fn widen_cast_checked(from: Type, to: Type) -> Option<CastKind> {
    if from == to {
        None
    } else {
        debug_assert!(from.compatible(to) && from.size() <= to.size());
        widen_cast(from, to)
    }
}

pub(super) fn rewrite_calls_in(
    m: &mut Module,
    fid: FuncId,
    fus_id: FuncId,
    fus_ret: Type,
    slots: &[Type],
    specs: &[CallSpec],
) {
    let nblocks = m.function(fid).blocks.len();
    for bi in 0..nblocks {
        // --- instructions ---
        let old = std::mem::take(&mut m.function_mut(fid).blocks[bi].insts);
        let mut new_insts = Vec::with_capacity(old.len());
        for inst in old {
            let spec = match &inst {
                Inst::Call { callee: Callee::Direct(t), .. } => {
                    specs.iter().find(|s| s.target == *t)
                }
                _ => None,
            };
            let Some(spec) = spec else {
                new_insts.push(inst);
                continue;
            };
            let Inst::Call { dst, args, .. } = inst else { unreachable!() };
            let f = m.function_mut(fid);
            let mut pre = Vec::new();
            let new_args = build_fused_args(f, &mut pre, slots, spec, &args);
            new_insts.extend(pre);
            match (dst, narrow_cast(fus_ret, spec.orig_ret)) {
                (Some(d), Some(kind)) if spec.orig_ret != Type::Void => {
                    let w = f.new_local(fus_ret);
                    new_insts.push(Inst::Call {
                        dst: Some(w),
                        callee: Callee::Direct(fus_id),
                        args: new_args,
                    });
                    new_insts.push(Inst::Cast {
                        kind,
                        dst: d,
                        src: Operand::local(w),
                        from: fus_ret,
                        to: spec.orig_ret,
                    });
                }
                (d, _) => {
                    new_insts.push(Inst::Call { dst: d, callee: Callee::Direct(fus_id), args: new_args });
                }
            }
        }
        m.function_mut(fid).blocks[bi].insts = new_insts;

        // --- invoke terminator ---
        let term = m.function_mut(fid).blocks[bi].term.clone();
        if let Term::Invoke { dst, callee: Callee::Direct(t), args, normal, unwind } = term {
            let Some(spec) = specs.iter().find(|s| s.target == t) else { continue };
            let f = m.function_mut(fid);
            let mut pre = Vec::new();
            let new_args = build_fused_args(f, &mut pre, slots, spec, &args);
            f.blocks[bi].insts.extend(pre);
            let (new_dst, new_normal) = match (dst, narrow_cast(fus_ret, spec.orig_ret)) {
                (Some(d), Some(kind)) if spec.orig_ret != Type::Void => {
                    let w = f.new_local(fus_ret);
                    let shim = f.push_block(Block {
                        insts: vec![Inst::Cast {
                            kind,
                            dst: d,
                            src: Operand::local(w),
                            from: fus_ret,
                            to: spec.orig_ret,
                        }],
                        term: Term::Jump(normal),
                        pad: None,
                    });
                    (Some(w), shim)
                }
                (d, _) => (d, normal),
            };
            f.blocks[bi].term = Term::Invoke {
                dst: new_dst,
                callee: Callee::Direct(fus_id),
                args: new_args,
                normal: new_normal,
                unwind,
            };
        }
    }
}

/// Replaces every `funcaddr @x` with a tagged pointer to the fusFunc.
pub(super) fn rewrite_funcaddrs(m: &mut Module, x: FuncId, fus_id: FuncId, tag: i64) {
    for fi in 0..m.functions.len() {
        let f = m.function_mut(FuncId::new(fi));
        for bi in 0..f.blocks.len() {
            let old = std::mem::take(&mut f.blocks[bi].insts);
            let mut new_insts = Vec::with_capacity(old.len());
            for inst in old {
                match inst {
                    Inst::FuncAddr { dst, func } if func == x => {
                        let raw = LocalId::new(f.locals.len());
                        f.locals.push(Type::Ptr);
                        let as_int = LocalId::new(f.locals.len());
                        f.locals.push(Type::I64);
                        let tagged = LocalId::new(f.locals.len());
                        f.locals.push(Type::I64);
                        new_insts.push(Inst::FuncAddr { dst: raw, func: fus_id });
                        new_insts.push(Inst::Cast {
                            kind: CastKind::PtrToInt,
                            dst: as_int,
                            src: Operand::local(raw),
                            from: Type::Ptr,
                            to: Type::I64,
                        });
                        new_insts.push(Inst::Bin {
                            op: khaos_ir::BinOp::Or,
                            ty: Type::I64,
                            dst: tagged,
                            lhs: Operand::local(as_int),
                            rhs: Operand::const_int(Type::I64, tag),
                        });
                        new_insts.push(Inst::Cast {
                            kind: CastKind::IntToPtr,
                            dst,
                            src: Operand::local(tagged),
                            from: Type::I64,
                            to: Type::Ptr,
                        });
                    }
                    other => new_insts.push(other),
                }
            }
            f.blocks[bi].insts = new_insts;
        }
    }
}

/// Replaces `x`'s body with a forwarding trampoline to the fusFunc
/// (paper §3.3.3, cross-module handling). The name, signature and linkage
/// stay, so external callers and escaped pointers keep working.
pub(super) fn install_trampoline(
    m: &mut Module,
    x: FuncId,
    fus_id: FuncId,
    fus_ret: Type,
    slots: &[Type],
    spec: &CallSpec,
) {
    let f = m.function(x);
    let params: Vec<Type> = f.param_types().to_vec();
    let ret = f.ret_ty;
    let name = f.name.clone();
    let linkage = f.linkage;
    let origins = f.provenance.origins.clone();
    let annotations = f.annotations.clone();

    let mut nf = Function::new(name, ret);
    for &t in &params {
        nf.new_local(t);
    }
    nf.param_count = params.len() as u32;
    nf.linkage = linkage;
    nf.provenance = Provenance { kind: ProvKind::Trampoline, origins };
    nf.annotations = annotations;

    let mut insts = Vec::new();
    let args: Vec<Operand> = (0..params.len()).map(|i| Operand::local(LocalId::new(i))).collect();
    let mut pre = Vec::new();
    let new_args = build_fused_args(&mut nf, &mut pre, slots, spec, &args);
    insts.extend(pre);
    let term = if ret == Type::Void {
        insts.push(Inst::Call { dst: None, callee: Callee::Direct(fus_id), args: new_args });
        Term::Ret(None)
    } else {
        match narrow_cast(fus_ret, ret) {
            None => {
                let r = nf.new_local(ret);
                insts.push(Inst::Call { dst: Some(r), callee: Callee::Direct(fus_id), args: new_args });
                Term::Ret(Some(Operand::local(r)))
            }
            Some(kind) => {
                let w = nf.new_local(fus_ret);
                let r = nf.new_local(ret);
                insts.push(Inst::Call { dst: Some(w), callee: Callee::Direct(fus_id), args: new_args });
                insts.push(Inst::Cast { kind, dst: r, src: Operand::local(w), from: fus_ret, to: ret });
                Term::Ret(Some(Operand::local(r)))
            }
        }
    };
    nf.blocks[0] = Block { insts, term, pad: None };
    *m.function_mut(x) = nf;
}

/// Empties a dead original so LTO-style dead-function elimination sweeps
/// it away.
pub(super) fn stub_function(m: &mut Module, x: FuncId) {
    let f = m.function_mut(x);
    f.linkage = Linkage::Internal;
    let term = match f.ret_ty {
        Type::Void => Term::Ret(None),
        t => Term::Ret(Some(Operand::zero(t))),
    };
    f.blocks = vec![Block { insts: Vec::new(), term, pad: None }];
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;

    fn func_with_params(name: &str, ret: Type, params: &[Type]) -> Function {
        let mut fb = FunctionBuilder::new(name, ret);
        for &p in params {
            fb.add_param(p);
        }
        match ret {
            Type::Void => fb.ret(None),
            t => fb.ret(Some(Operand::zero(t))),
        }
        fb.finish()
    }

    #[test]
    fn tag_constants_match_the_paper_layout() {
        // §A.1 / §3.3.3: flag on bit 2, ctrl on bit 3, bit 0 reserved.
        assert_eq!(TAG_A, 0b0100);
        assert_eq!(TAG_B, 0b1100);
        assert_eq!(TAG_MASK, TAG_A | TAG_B);
        assert_eq!(TAG_A & 1, 0);
        assert_eq!(TAG_B & 1, 0);
        // Both tags are non-zero under the mask (the decode's tag test)
        // and distinguished by bit 3 (the ctrl extraction).
        assert_ne!(TAG_A & TAG_MASK, 0);
        assert_ne!(TAG_B & TAG_MASK, 0);
        assert_eq!((TAG_A >> 3) & 1, 0);
        assert_eq!((TAG_B >> 3) & 1, 1);
    }

    #[test]
    fn param_merge_compresses_compatible_positions() {
        // Paper Figure 3(c): `short a` and `int m` share one slot.
        let bar = func_with_params("bar", Type::Void, &[Type::I16, Type::F32]);
        let foo = func_with_params("foo", Type::I32, &[Type::I32]);
        let l = merge_params(&bar, &foo, true);
        assert_eq!(l.slots, vec![Type::I32, Type::F32]);
        assert_eq!(l.a_map, vec![0, 1]);
        assert_eq!(l.b_map, vec![0]);
        assert_eq!(l.compressed, 1);
    }

    #[test]
    fn param_merge_defers_incompatible_positions() {
        let a = func_with_params("a", Type::Void, &[Type::F64, Type::I64]);
        let b = func_with_params("b", Type::Void, &[Type::I64, Type::I64]);
        let l = merge_params(&a, &b, true);
        // Position 0 cannot merge (f64 vs i64): b's goes to a trailing
        // slot; position 1 merges.
        assert_eq!(l.slots, vec![Type::F64, Type::I64, Type::I64]);
        assert_eq!(l.a_map, vec![0, 1]);
        assert_eq!(l.b_map, vec![2, 1]);
        assert_eq!(l.compressed, 1);
    }

    #[test]
    fn param_merge_without_compression_concatenates() {
        let a = func_with_params("a", Type::Void, &[Type::I32, Type::I32]);
        let b = func_with_params("b", Type::Void, &[Type::I32]);
        let l = merge_params(&a, &b, false);
        assert_eq!(l.slots.len(), 3, "worst case: na + nb slots (paper §3.3.2)");
        assert_eq!(l.compressed, 0);
    }

    #[test]
    fn return_type_determination_rules() {
        // Paper §3.3.2: void defers to the other; both non-void merge.
        let v = func_with_params("v", Type::Void, &[]);
        let i32_ = func_with_params("x", Type::I32, &[]);
        let i64_ = func_with_params("y", Type::I64, &[]);
        assert_eq!(merged_ret(&v, &v), Type::Void);
        assert_eq!(merged_ret(&v, &i32_), Type::I32);
        assert_eq!(merged_ret(&i32_, &v), Type::I32);
        assert_eq!(merged_ret(&i32_, &i64_), Type::I64, "widening merge");
    }

    #[test]
    fn cast_selection_is_lossless() {
        assert_eq!(widen_cast(Type::I32, Type::I32), None);
        assert_eq!(widen_cast(Type::I32, Type::I64), Some(CastKind::SExt));
        assert_eq!(widen_cast(Type::F32, Type::F64), Some(CastKind::FpExt));
        assert_eq!(narrow_cast(Type::I64, Type::I32), Some(CastKind::Trunc));
        assert_eq!(narrow_cast(Type::F64, Type::F32), Some(CastKind::FpTrunc));
        assert_eq!(narrow_cast(Type::F64, Type::F64), None);
    }

    #[test]
    fn stub_reduces_to_one_returning_block() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("victim", Type::I64);
        let p = fb.add_param(Type::I64);
        let t = fb.new_block();
        let e = fb.new_block();
        let c = fb.cmp(CmpPred::Sgt, Type::I64, Operand::local(p), Operand::zero(Type::I64));
        fb.branch(Operand::local(c), t, e);
        fb.switch_to(t);
        fb.ret(Some(Operand::local(p)));
        fb.switch_to(e);
        fb.ret(Some(Operand::zero(Type::I64)));
        let mut f = fb.finish();
        f.linkage = Linkage::Exported;
        let id = m.push_function(f);

        stub_function(&mut m, id);
        let f = m.function(id);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.linkage, Linkage::Internal, "stub is internal so DFE sweeps it");
        assert!(matches!(f.blocks[0].term, Term::Ret(Some(_))));
        khaos_ir::verify::assert_valid(&m);
    }

    #[test]
    fn trampoline_forwards_with_ctrl_and_zero_padding() {
        // A fusFunc f(ctrl: i32, x: i64) stands in for orig(x: i32); the
        // trampoline must widen the argument, pass ctrl = 1, and narrow
        // the result back.
        let mut m = Module::new("t");
        let mut fus = FunctionBuilder::new("fus", Type::I64);
        let ctrl = fus.add_param(Type::I32);
        let x = fus.add_param(Type::I64);
        let c = fus.cast(CastKind::SExt, Operand::local(ctrl), Type::I32, Type::I64);
        let s = fus.bin(khaos_ir::BinOp::Add, Type::I64, Operand::local(x), Operand::local(c));
        fus.ret(Some(Operand::local(s)));
        let fus_id = m.push_function(fus.finish());

        let orig = func_with_params("orig", Type::I32, &[Type::I32]);
        let orig_id = m.push_function(orig);

        let spec = CallSpec {
            target: orig_id,
            ctrl: 1,
            map: vec![0],
            orig_ret: Type::I32,
        };
        install_trampoline(&mut m, orig_id, fus_id, Type::I64, &[Type::I64], &spec);
        khaos_ir::verify::assert_valid(&m);
        let f = m.function(orig_id);
        assert_eq!(f.provenance.kind, ProvKind::Trampoline);
        assert_eq!(f.param_count, 1, "the public signature is unchanged");

        // Calling the trampoline computes fus(1, widen(x)) = x + 1.
        let mut main = FunctionBuilder::new("main", Type::I64);
        let r = main
            .call(orig_id, Type::I32, vec![Operand::const_int(Type::I32, 41)])
            .unwrap();
        let w = main.cast(CastKind::SExt, Operand::local(r), Type::I32, Type::I64);
        main.ret(Some(Operand::local(w)));
        m.push_function(main.finish());
        let got = khaos_vm::run_function(&m, "main", &[]).unwrap();
        assert_eq!(got.exit_code, 42);
    }
}
