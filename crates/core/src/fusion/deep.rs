//! Deep fusion (paper §3.3.4): merging *innocuous* basic blocks from the
//! two constituents so the fused control/data flow cannot simply be
//! separated back.
//!
//! A block is innocuous when executing it on the *other* constituent's
//! path cannot affect the global memory state or trap: register-only
//! arithmetic (no integer division), casts, selects, address computations
//! and loads from directly-addressed globals qualify; stores, calls,
//! allocas and anything that can fault do not.

use super::merge::FusedInfo;
use crate::KhaosContext;
use khaos_ir::rewrite::{remove_blocks, retarget_edges};
use khaos_ir::{Block, BlockId, CmpPred, FuncId, Inst, LocalId, Module, Operand, Term, Type};
use std::collections::HashSet;
use std::ops::Range;

/// Merges up to `deep_fusion_max_pairs` innocuous-block pairs inside the
/// fused function described by `info`.
pub fn run(m: &mut Module, info: &FusedInfo, ctx: &mut KhaosContext) {
    merge_sides(
        m,
        info.fus,
        info.ctrl,
        &[(info.a_side.clone(), info.b_side.clone(), 0)],
        ctx,
    );
}

/// Deep-fuses innocuous blocks between side pairs of a fused function.
///
/// Each entry is `(side_x, side_y, x_ctrl)`: block-index ranges of two
/// constituents' bodies and the `ctrl` value that selects the first one.
/// Pair fusion passes a single `(a, b, 0)`; the N-way extension passes
/// `(side[2j], side[2j+1], 2j)` for each consecutive side pair. All dead
/// blocks are removed in one sweep at the end, so the ranges (which are
/// pre-removal indices) stay valid throughout.
pub(super) fn merge_sides(
    m: &mut Module,
    fus: FuncId,
    ctrl: LocalId,
    side_pairs: &[(Range<usize>, Range<usize>, i64)],
    ctx: &mut KhaosContext,
) {
    let f = m.function(fus);
    let mut pairs: Vec<(BlockId, BlockId, i64)> = Vec::new();
    for (ra, rb, a_ctrl) in side_pairs {
        let a_blocks = innocuous_blocks(f, ra);
        let b_blocks = innocuous_blocks(f, rb);
        ctx.fusion_stats.innocuous_blocks += a_blocks.len() + b_blocks.len();
        pairs.extend(
            a_blocks
                .into_iter()
                .zip(b_blocks)
                .take(ctx.options.deep_fusion_max_pairs)
                .map(|(x, y)| (x, y, *a_ctrl)),
        );
    }
    if pairs.is_empty() {
        return;
    }

    let f = m.function_mut(fus);
    let mut dead: Vec<BlockId> = Vec::new();
    for (alpha, beta, a_ctrl) in pairs {
        let Term::Jump(a_target) = f.block(alpha).term else { unreachable!("checked Jump") };
        let Term::Jump(b_target) = f.block(beta).term else { unreachable!("checked Jump") };
        // The merged block runs BOTH instruction lists, then branches on
        // ctrl back into the correct constituent.
        let mut insts = f.block(alpha).insts.clone();
        insts.extend(f.block(beta).insts.iter().cloned());
        let is_a = f.new_local(Type::I1);
        insts.push(Inst::Cmp {
            pred: CmpPred::Eq,
            ty: Type::I32,
            dst: is_a,
            lhs: Operand::local(ctrl),
            rhs: Operand::const_int(Type::I32, a_ctrl),
        });
        let merged = f.push_block(Block {
            insts,
            term: Term::Branch { cond: Operand::local(is_a), then_bb: a_target, else_bb: b_target },
            pad: None,
        });
        retarget_edges(f, alpha, merged);
        retarget_edges(f, beta, merged);
        dead.push(alpha);
        dead.push(beta);
        ctx.fusion_stats.deep_fused_pairs += 1;
    }
    remove_blocks(f, &dead);
}

/// Finds innocuous blocks within `range` (excluding dispatch/adapters and
/// entries that merged pairs depend on), in ascending block order.
fn innocuous_blocks(f: &khaos_ir::Function, range: &Range<usize>) -> Vec<BlockId> {
    let mut out = Vec::new();
    for i in range.clone() {
        let b = BlockId::new(i);
        let block = f.block(b);
        if block.is_pad() || block.insts.is_empty() {
            continue;
        }
        let Term::Jump(t) = block.term else { continue };
        if t == b {
            continue; // self-loop
        }
        if block_is_innocuous(block) {
            out.push(b);
        }
    }
    out
}

fn block_is_innocuous(block: &Block) -> bool {
    // Locals known to hold directly-computed global addresses (in-block).
    let mut global_ptrs: HashSet<LocalId> = HashSet::new();
    for inst in &block.insts {
        match inst {
            Inst::Bin { op, .. } => {
                if op.can_trap() {
                    return false;
                }
            }
            Inst::Un { .. }
            | Inst::Cmp { .. }
            | Inst::Select { .. }
            | Inst::Copy { .. }
            | Inst::Cast { .. }
            | Inst::FuncAddr { .. } => {}
            Inst::GlobalAddr { dst, .. } => {
                global_ptrs.insert(*dst);
            }
            Inst::PtrAdd { dst, base, offset } => {
                // Constant offsets from a known global stay "known".
                if let (Some(bl), Some(_)) = (base.as_local(), offset.as_const()) {
                    if global_ptrs.contains(&bl) {
                        global_ptrs.insert(*dst);
                    }
                }
            }
            Inst::Load { addr, .. } => {
                // Loads only from in-block global addresses: guaranteed
                // mapped memory regardless of which path executes.
                match addr.as_local() {
                    Some(l) if global_ptrs.contains(&l) => {}
                    _ => return false,
                }
            }
            Inst::Store { .. } | Inst::Alloca { .. } | Inst::Call { .. } => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::{BinOp, Function};

    fn block_of(f: impl FnOnce(&mut FunctionBuilder)) -> Function {
        let mut fb = FunctionBuilder::new("t", Type::Void);
        let next = fb.new_block();
        f(&mut fb);
        fb.jump(next);
        fb.switch_to(next);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn register_arithmetic_is_innocuous() {
        let f = block_of(|fb| {
            let a = fb.iconst(Type::I64, 1);
            let _ = fb.bin(BinOp::Add, Type::I64, Operand::local(a), Operand::const_int(Type::I64, 2));
        });
        assert!(block_is_innocuous(&f.blocks[0]));
    }

    #[test]
    fn division_disqualifies() {
        let f = block_of(|fb| {
            let a = fb.iconst(Type::I64, 1);
            let _ = fb.bin(BinOp::SDiv, Type::I64, Operand::local(a), Operand::local(a));
        });
        assert!(!block_is_innocuous(&f.blocks[0]));
    }

    #[test]
    fn store_disqualifies() {
        let mut m = khaos_ir::Module::new("x");
        let g = m.push_global(khaos_ir::Global::zeroed("g", 8));
        let f = block_of(|fb| {
            let p = fb.globaladdr(g);
            fb.store(Type::I64, Operand::const_int(Type::I64, 1), Operand::local(p));
        });
        assert!(!block_is_innocuous(&f.blocks[0]));
    }

    #[test]
    fn global_load_is_innocuous_but_unknown_load_is_not() {
        let mut m = khaos_ir::Module::new("x");
        let g = m.push_global(khaos_ir::Global::zeroed("g", 16));
        let ok = block_of(|fb| {
            let p = fb.globaladdr(g);
            let q = fb.ptradd(Operand::local(p), Operand::const_int(Type::I64, 8));
            let _ = fb.load(Type::I64, Operand::local(q));
        });
        assert!(block_is_innocuous(&ok.blocks[0]));

        let bad = block_of(|fb| {
            let p = fb.add_param(Type::Ptr);
            let _ = fb.load(Type::I64, Operand::local(p));
        });
        assert!(!block_is_innocuous(&bad.blocks[0]));
    }

    #[test]
    fn call_disqualifies() {
        let mut m = khaos_ir::Module::new("x");
        let e = m.declare_external(khaos_ir::ExtFunc {
            name: "print_i64".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
            variadic: false,
        });
        let f = block_of(|fb| {
            fb.call_ext(e, Type::Void, vec![Operand::const_int(Type::I64, 1)]);
        });
        assert!(!block_is_innocuous(&f.blocks[0]));
    }
}
