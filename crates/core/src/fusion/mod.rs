//! The fusion primitive (paper §3.3): aggregate pairs of functions into
//! `fusFunc`s.

mod callsites;
mod deep;
mod merge;
pub mod nway;

pub use callsites::{TagScheme, NWAY_SCHEME, PAIR_SCHEME};
pub use merge::{fuse_pair, FusedInfo};
pub use nway::{fuse_group, NwayInfo, MAX_ARITY};

use crate::KhaosContext;
use khaos_ir::{Callee, CallGraph, FuncId, Function, Module, ProvKind, Term, Type};
use rand::seq::SliceRandom;

/// Runs fusion over the functions of `m` selected by `filter`.
///
/// Selection constraints (paper §3.3.1):
/// 1. no variadic functions,
/// 2. compatible return types (void pairs with anything),
/// 3. no direct calling relationship between the two,
///    and, as an optimization, pairs whose combined parameter count fits
///    the six register slots are preferred (§3.3.2).
pub fn run(m: &mut Module, ctx: &mut KhaosContext, filter: impl Fn(&Function) -> bool) {
    let cg = CallGraph::compute(m);
    let has_indirect_invoke = module_has_indirect_invoke(m);

    let mut eligible: Vec<FuncId> = m
        .iter_functions()
        .filter(|(_, f)| {
            filter(f)
                && !f.variadic
                && f.name != "main"
                && !matches!(f.provenance.kind, ProvKind::Trampoline | ProvKind::Fused)
        })
        .map(|(id, _)| id)
        .collect();
    ctx.fusion_stats.eligible_funcs += eligible.len();
    eligible.shuffle(&mut ctx.rng);

    // Greedy pairing: two passes when register-args are preferred — first
    // only accept partners keeping params within the register budget, then
    // pair the leftovers arbitrarily.
    let mut pairs: Vec<(FuncId, FuncId)> = Vec::new();
    let mut remaining = eligible;
    let passes: &[bool] =
        if ctx.options.prefer_register_args { &[true, false] } else { &[false] };
    for &require_reg in passes {
        let mut next_remaining = Vec::new();
        while let Some(a) = remaining.first().copied() {
            remaining.remove(0);
            let partner = remaining.iter().position(|&b| {
                compatible_pair(m, &cg, a, b)
                    && (!require_reg || fits_register_budget(m, a, b))
            });
            match partner {
                Some(j) => {
                    let b = remaining.remove(j);
                    pairs.push((a, b));
                }
                None => next_remaining.push(a),
            }
        }
        remaining = next_remaining;
    }

    let mut any_tags = false;
    for (a, b) in pairs {
        let info = fuse_pair(m, a, b, &cg, has_indirect_invoke, ctx);
        any_tags |= info.used_tags;
        if ctx.options.deep_fusion {
            deep::run(m, &info, ctx);
        }
        ctx.fusion_stats.fused_funcs += 2;
        ctx.fusion_stats.fus_funcs += 1;
    }

    if any_tags {
        callsites::rewrite_indirect_sites(m, ctx);
    }

    // Dead originals were stubbed by `fuse_pair`; sweep them.
    khaos_opt::dfe::run_module(m);
}

fn module_has_indirect_invoke(m: &Module) -> bool {
    m.functions.iter().any(|f| {
        f.blocks
            .iter()
            .any(|b| matches!(&b.term, Term::Invoke { callee: Callee::Indirect(_), .. }))
    })
}

/// Return-type and call-graph compatibility (constraints 2 and 3).
fn compatible_pair(m: &Module, cg: &CallGraph, a: FuncId, b: FuncId) -> bool {
    let fa = m.function(a);
    let fb = m.function(b);
    let ret_ok = fa.ret_ty == Type::Void
        || fb.ret_ty == Type::Void
        || fa.ret_ty.compatible(fb.ret_ty);
    ret_ok && !cg.directly_related(a, b)
}

fn fits_register_budget(m: &Module, a: FuncId, b: FuncId) -> bool {
    // ctrl + merged params must fit in 6 register slots; the positional
    // merge needs at most max(na, nb) slots (na+nb when nothing merges).
    let na = m.function(a).param_count as usize;
    let nb = m.function(b).param_count as usize;
    na.max(nb) < 6
}

/// True when the first `min(na, nb)` parameters are pairwise compatible —
/// the precondition for the positional calling convention that tagged
/// indirect calls rely on.
pub(crate) fn prefix_compatible(fa: &Function, fb: &Function) -> bool {
    fa.param_types()
        .iter()
        .zip(fb.param_types())
        .all(|(x, y)| x.compatible(*y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::Operand;

    #[test]
    fn prefix_compatibility() {
        let mut a = FunctionBuilder::new("a", Type::I32);
        a.add_param(Type::I32);
        a.add_param(Type::F32);
        let a = a.finish();
        let mut b = FunctionBuilder::new("b", Type::I32);
        b.add_param(Type::I64);
        let b = b.finish();
        assert!(prefix_compatible(&a, &b), "i32/i64 prefix merges");
        let mut c = FunctionBuilder::new("c", Type::I32);
        c.add_param(Type::F64);
        let c = c.finish();
        assert!(!prefix_compatible(&a, &c), "i32 vs f64 at position 0");
    }

    #[test]
    fn direct_callers_not_paired() {
        let mut m = Module::new("t");
        let mut callee = FunctionBuilder::new("x", Type::Void);
        callee.ret(None);
        let x = m.push_function(callee.finish());
        let mut caller = FunctionBuilder::new("y", Type::Void);
        caller.call(x, Type::Void, vec![]);
        caller.ret(None);
        let y = m.push_function(caller.finish());
        let cg = CallGraph::compute(&m);
        assert!(!compatible_pair(&m, &cg, x, y));
    }

    #[test]
    fn incompatible_returns_not_paired() {
        let mut m = Module::new("t");
        let mut fa = FunctionBuilder::new("x", Type::I32);
        fa.ret(Some(Operand::const_int(Type::I32, 0)));
        let x = m.push_function(fa.finish());
        let mut fb = FunctionBuilder::new("y", Type::F64);
        fb.ret(Some(Operand::const_float(Type::F64, 0.0)));
        let y = m.push_function(fb.finish());
        let cg = CallGraph::compute(&m);
        assert!(!compatible_pair(&m, &cg, x, y), "int/float returns lose precision");
    }

    #[test]
    fn void_pairs_with_anything() {
        let mut m = Module::new("t");
        let mut fa = FunctionBuilder::new("x", Type::Void);
        fa.ret(None);
        let x = m.push_function(fa.finish());
        let mut fb = FunctionBuilder::new("y", Type::F64);
        fb.ret(Some(Operand::const_float(Type::F64, 0.0)));
        let y = m.push_function(fb.finish());
        let cg = CallGraph::compute(&m);
        assert!(compatible_pair(&m, &cg, x, y));
    }
}
