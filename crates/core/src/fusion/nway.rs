//! N-way fusion — the generalization the paper reserves for future work.
//!
//! Paper §3.3: *"In theory, the fusion can aggregate any number of
//! functions. To balance the performance overhead and the obfuscation
//! effect, we choose to aggregate two functions to form a fusFunc."*
//! This module implements the general form for 2–4 constituents so that
//! the trade-off can actually be measured (`experiments ext-arity`).
//!
//! The arity ceiling of four comes straight from the paper's §A.1 bit
//! budget: 16-byte function alignment frees the low 4 pointer bits,
//! bit 0 is reserved (clang's pointer-to-virtual-function marker), which
//! leaves three. We spend bit 1 on the "points to a fusFunc" flag and
//! bits 2–3 on a two-bit `ctrl` — four selectable bodies.
//!
//! Everything else generalizes structurally:
//!
//! * the two-way `ctrl` branch becomes a `switch`;
//! * parameter-list compression merges each parameter position across
//!   *all* constituents (greedy grouping by type compatibility);
//! * return types fold pairwise under the same no-precision-loss rule;
//! * deep fusion runs on consecutive side pairs.

use super::deep;
use super::merge::{
    install_trampoline, narrow_cast, rewrite_calls_in, stub_function, widen_cast, CallSpec,
};
use super::prefix_compatible;
use crate::KhaosContext;
use khaos_ir::rewrite::{import_locals, remap_block};
use khaos_ir::{
    Block, BlockId, CallGraph, FuncId, Function, GInit, Inst, LocalId, Module, Operand, ProvKind,
    Provenance, Term, Type,
};
use rand::seq::SliceRandom;
use std::collections::HashMap;
use std::ops::Range;

/// "Points to a fused function" flag bit of the N-way tag layout.
pub const NWAY_FLAG: i64 = 0b0010;
/// Right-shift bringing the N-way `ctrl` field to bit 0.
pub const NWAY_CTRL_SHIFT: u32 = 2;
/// Mask of the shifted `ctrl` field (two bits: arities up to 4).
pub const NWAY_CTRL_MASK: i64 = 0b11;
/// Every pointer bit the N-way layout can set.
pub const NWAY_MASK: i64 = 0b1110;

/// Largest group the tag bit budget supports.
pub const MAX_ARITY: usize = 4;

/// The tag value selecting constituent `ctrl` of an N-way fused function.
pub fn nway_tag(ctrl: i64) -> i64 {
    debug_assert!((0..MAX_ARITY as i64).contains(&ctrl));
    NWAY_FLAG | (ctrl << NWAY_CTRL_SHIFT)
}

/// What an N-way group fusion produced.
#[derive(Clone, Debug)]
pub struct NwayInfo {
    /// The new function.
    pub fus: FuncId,
    /// Whether tagged pointers were emitted — if so, every indirect call
    /// site must be rewritten afterwards with the N-way decode
    /// ([`NWAY_SCHEME`](crate::fusion::NWAY_SCHEME)); the [`run_n`]
    /// driver does this automatically.
    pub used_tags: bool,
    /// Block index ranges of each constituent's body inside the fus, in
    /// `ctrl` order. These describe the layout as built by
    /// [`fuse_group`]; the deep-fusion step that [`run_n`] applies
    /// afterwards merges and removes blocks, so treat them as
    /// informational once the driver has run.
    pub sides: Vec<Range<usize>>,
    /// The `ctrl` parameter local (always `LocalId(0)`).
    pub ctrl: LocalId,
}

/// Where each constituent's parameters landed in the merged list.
struct GroupLayout {
    /// Merged slot types (excluding `ctrl`).
    slots: Vec<Type>,
    /// `maps[f][i]` = slot index of constituent `f`'s parameter `i`.
    maps: Vec<Vec<usize>>,
    /// Parameters saved by compression (the `#RP` statistic).
    compressed: usize,
}

/// Generalized parameter-list compression (paper §3.3.2): at each
/// parameter position, greedily group the constituents' types by
/// merge-compatibility; the first group takes the positional slot,
/// later groups are deferred to fresh trailing slots.
fn merge_params_n(funcs: &[&Function], compression: bool) -> GroupLayout {
    let mut slots: Vec<Type> = Vec::new();
    let mut maps: Vec<Vec<usize>> =
        funcs.iter().map(|f| vec![usize::MAX; f.param_count as usize]).collect();
    let mut compressed = 0usize;

    if !compression {
        for (fi, f) in funcs.iter().enumerate() {
            for (i, &t) in f.param_types().iter().enumerate() {
                maps[fi][i] = slots.len();
                slots.push(t);
            }
        }
        return GroupLayout { slots, maps, compressed };
    }

    let max_params = funcs.iter().map(|f| f.param_count as usize).max().unwrap_or(0);
    let mut deferred: Vec<(Type, Vec<(usize, usize)>)> = Vec::new();
    // `pos` walks parameter positions (it indexes into each constituent's
    // own map row, so enumerate() has nothing to offer here).
    #[allow(clippy::needless_range_loop)]
    for pos in 0..max_params {
        // Greedy grouping of this position's types.
        let mut groups: Vec<(Type, Vec<usize>)> = Vec::new();
        for (fi, f) in funcs.iter().enumerate() {
            let Some(&t) = f.param_types().get(pos) else { continue };
            match groups.iter_mut().find_map(|g| g.0.merged(t).map(|m| (g, m))) {
                Some((g, merged)) => {
                    g.0 = merged;
                    g.1.push(fi);
                }
                None => groups.push((t, vec![fi])),
            }
        }
        for (gi, (ty, members)) in groups.into_iter().enumerate() {
            compressed += members.len() - 1;
            if gi == 0 {
                // Positional slot — this is what keeps tagged indirect
                // calls' positional convention intact when every
                // constituent merges at every position.
                let s = slots.len();
                for fi in members {
                    maps[fi][pos] = s;
                }
                slots.push(ty);
            } else {
                deferred.push((ty, members.into_iter().map(|fi| (fi, pos)).collect()));
            }
        }
    }
    for (ty, members) in deferred {
        let s = slots.len();
        for (fi, pos) in members {
            maps[fi][pos] = s;
        }
        slots.push(ty);
    }
    GroupLayout { slots, maps, compressed }
}

/// Folds the constituents' return types under the paper's
/// no-precision-loss rule. `None` when the group cannot aggregate.
pub(super) fn group_ret(funcs: &[&Function]) -> Option<Type> {
    let mut cur = Type::Void;
    for f in funcs {
        cur = match (cur, f.ret_ty) {
            (Type::Void, t) | (t, Type::Void) => t,
            (a, b) => a.merged(b)?,
        };
    }
    Some(cur)
}

/// Fuses `ids` (2–4 functions) into one N-way `fusFunc`; rewrites every
/// reference in the module; stubs or trampolines the originals.
///
/// # Panics
/// Panics if `ids` has fewer than 2 or more than [`MAX_ARITY`] entries, or
/// if the group's return types do not fold (the caller's selection must
/// guarantee both).
pub fn fuse_group(
    m: &mut Module,
    ids: &[FuncId],
    cg: &CallGraph,
    has_indirect_invoke: bool,
    ctx: &mut KhaosContext,
) -> NwayInfo {
    let k = ids.len();
    assert!((2..=MAX_ARITY).contains(&k), "N-way fusion arity must be 2..=4, got {k}");
    let origs: Vec<Function> = ids.iter().map(|&id| m.function(id).clone()).collect();
    let orig_refs: Vec<&Function> = origs.iter().collect();
    let layout = merge_params_n(&orig_refs, ctx.options.parameter_compression);
    let fus_ret = group_ret(&orig_refs).expect("selection guarantees compatible returns");
    ctx.fusion_stats.params_removed += layout.compressed;

    // ---- Build the fusFunc skeleton. ----
    let mut name = String::new();
    for f in &origs {
        name.push_str(&f.name);
        name.push('_');
    }
    name.push_str("fusion");
    let mut fus = Function::new(name, fus_ret);
    fus.provenance = Provenance {
        kind: ProvKind::Fused,
        origins: origs.iter().flat_map(|f| f.provenance.origins.iter().cloned()).collect(),
    };
    fus.annotations = origs.iter().flat_map(|f| f.annotations.iter().cloned()).collect();
    if !fus.annotations.iter().any(|a| a == "noinline") {
        fus.annotations.push("noinline".to_string());
    }
    let ctrl = fus.new_local(Type::I32);
    for &t in &layout.slots {
        fus.new_local(t);
    }
    fus.param_count = 1 + layout.slots.len() as u32;

    let lmaps: Vec<HashMap<LocalId, LocalId>> =
        origs.iter().map(|f| import_locals(&mut fus, f)).collect();

    // Block layout: 0 dispatch, 1..=k adapters, then the k bodies.
    let adapters: Vec<BlockId> = (1..=k).map(BlockId::new).collect();
    let mut body_base = vec![0usize; k];
    let mut next = 1 + k;
    for (i, f) in origs.iter().enumerate() {
        body_base[i] = next;
        next += f.blocks.len();
    }

    // Dispatch on ctrl. Two constituents keep the paper's branch; more
    // use a switch (which is also what the fused binary shows a differ).
    fus.blocks[0] = if k == 2 {
        let is_a = fus.new_local(Type::I1);
        Block {
            insts: vec![Inst::Cmp {
                pred: khaos_ir::CmpPred::Eq,
                ty: Type::I32,
                dst: is_a,
                lhs: Operand::local(ctrl),
                rhs: Operand::const_int(Type::I32, 0),
            }],
            term: Term::Branch {
                cond: Operand::local(is_a),
                then_bb: adapters[0],
                else_bb: adapters[1],
            },
            pad: None,
        }
    } else {
        Block {
            insts: Vec::new(),
            term: Term::Switch {
                ty: Type::I32,
                value: Operand::local(ctrl),
                cases: (1..k).map(|i| (i as i64, adapters[i])).collect(),
                default: adapters[0],
            },
            pad: None,
        }
    };

    // Adapters: move (and narrow) the slot values into each body's
    // parameter locals.
    for (fi, f) in origs.iter().enumerate() {
        let mut insts = Vec::new();
        for (i, &ty) in f.param_types().iter().enumerate() {
            let slot = layout.maps[fi][i];
            let slot_local = LocalId::new(1 + slot);
            let slot_ty = layout.slots[slot];
            let dst = lmaps[fi][&LocalId::new(i)];
            match narrow_cast(slot_ty, ty) {
                Some(kind) => insts.push(Inst::Cast {
                    kind,
                    dst,
                    src: Operand::local(slot_local),
                    from: slot_ty,
                    to: ty,
                }),
                None => insts.push(Inst::Copy { ty, dst, src: Operand::local(slot_local) }),
            }
        }
        let adapter =
            Block { insts, term: Term::Jump(BlockId::new(body_base[fi])), pad: None };
        fus.push_block(adapter);
    }
    debug_assert_eq!(fus.blocks.len(), 1 + k);

    // Copy the bodies, rewriting returns to the merged type.
    for (fi, f) in origs.iter().enumerate() {
        let bmap: HashMap<BlockId, BlockId> = (0..f.blocks.len())
            .map(|i| (BlockId::new(i), BlockId::new(body_base[fi] + i)))
            .collect();
        for ob in &f.blocks {
            let mut nb = ob.clone();
            remap_block(&mut nb, &lmaps[fi], &bmap);
            if let Term::Ret(v) = nb.term.clone() {
                nb.term = match (v, fus_ret, f.ret_ty) {
                    (_, Type::Void, _) => Term::Ret(None),
                    (None, t, Type::Void) => Term::Ret(Some(Operand::zero(t))),
                    (Some(val), want, have) => match widen_cast(have, want) {
                        None => Term::Ret(Some(val)),
                        Some(kind) => {
                            let w = fus.new_local(want);
                            nb.insts.push(Inst::Cast {
                                kind,
                                dst: w,
                                src: val,
                                from: have,
                                to: want,
                            });
                            Term::Ret(Some(Operand::local(w)))
                        }
                    },
                    (None, _, _) => unreachable!("void return in non-void function"),
                };
            }
            fus.push_block(nb);
        }
    }

    let fus_id = m.push_function(fus);

    // ---- Rewrite every direct call/invoke to a constituent. ----
    let specs: Vec<CallSpec> = ids
        .iter()
        .enumerate()
        .map(|(fi, &id)| CallSpec {
            target: id,
            ctrl: fi as i64,
            map: layout.maps[fi].clone(),
            orig_ret: origs[fi].ret_ty,
        })
        .collect();
    let slots = layout.slots.clone();
    for fi in 0..m.functions.len() {
        let fid = FuncId::new(fi);
        if ids.contains(&fid) {
            continue; // bodies about to be replaced
        }
        rewrite_calls_in(m, fid, fus_id, fus_ret, &slots, &specs);
    }

    // ---- Pointer references: tags or trampolines. ----
    let can_tag = ctx.options.parameter_compression
        && !has_indirect_invoke
        && pairwise_prefix_compatible(&orig_refs);
    let mut used_tags = false;
    for spec in &specs {
        let x = spec.target;
        if !cg.is_address_taken(x) && !cg.escapes(x) {
            stub_function(m, x);
            continue;
        }
        if cg.escapes(x) || !can_tag {
            install_trampoline(m, x, fus_id, fus_ret, &slots, spec);
            ctx.fusion_stats.trampolines += 1;
        } else {
            let tag = nway_tag(spec.ctrl);
            super::merge::rewrite_funcaddrs(m, x, fus_id, tag);
            for g in &mut m.globals {
                for init in &mut g.init {
                    if let GInit::FuncPtr { func, addend } = init {
                        if *func == x {
                            *func = fus_id;
                            *addend += tag;
                        }
                    }
                }
            }
            used_tags = true;
            stub_function(m, x);
        }
    }

    NwayInfo {
        fus: fus_id,
        used_tags,
        sides: (0..k).map(|i| body_base[i]..body_base[i] + origs[i].blocks.len()).collect(),
        ctrl,
    }
}

fn pairwise_prefix_compatible(funcs: &[&Function]) -> bool {
    for (i, a) in funcs.iter().enumerate() {
        for b in &funcs[i + 1..] {
            if !prefix_compatible(a, b) {
                return false;
            }
        }
    }
    true
}

/// Whether `b` can join `group` (return fold succeeds, no direct call
/// relation with any member, optional register-budget preference).
fn joins_group(
    m: &Module,
    cg: &CallGraph,
    group: &[FuncId],
    b: FuncId,
    require_reg: bool,
) -> bool {
    let mut members: Vec<&Function> = group.iter().map(|&id| m.function(id)).collect();
    let fb = m.function(b);
    members.push(fb);
    if group_ret(&members).is_none() {
        return false;
    }
    if group.iter().any(|&a| cg.directly_related(a, b)) {
        return false;
    }
    if require_reg {
        // ctrl + merged params must stay within six register slots; the
        // positional merge needs at most the max param count.
        let max = members.iter().map(|f| f.param_count as usize).max().unwrap_or(0);
        if max >= 6 {
            return false;
        }
    }
    true
}

/// Runs N-way fusion over the functions of `m` selected by `filter`,
/// forming groups of up to `arity` constituents. Returns the infos of the
/// groups formed.
pub fn run_n(
    m: &mut Module,
    ctx: &mut KhaosContext,
    arity: usize,
    filter: impl Fn(&Function) -> bool,
) -> Vec<NwayInfo> {
    let arity = arity.clamp(2, MAX_ARITY);
    let cg = CallGraph::compute(m);
    let has_indirect_invoke = super::module_has_indirect_invoke(m);

    let mut eligible: Vec<FuncId> = m
        .iter_functions()
        .filter(|(_, f)| {
            filter(f)
                && !f.variadic
                && f.name != "main"
                && !matches!(f.provenance.kind, ProvKind::Trampoline | ProvKind::Fused)
        })
        .map(|(id, _)| id)
        .collect();
    ctx.fusion_stats.eligible_funcs += eligible.len();
    eligible.shuffle(&mut ctx.rng);

    // Greedy group building; two passes when register-args are preferred.
    let mut groups: Vec<Vec<FuncId>> = Vec::new();
    let mut remaining = eligible;
    let passes: &[bool] =
        if ctx.options.prefer_register_args { &[true, false] } else { &[false] };
    for &require_reg in passes {
        let mut next_remaining = Vec::new();
        while let Some(a) = remaining.first().copied() {
            remaining.remove(0);
            let mut group = vec![a];
            remaining.retain(|&b| {
                if group.len() < arity && joins_group(m, &cg, &group, b, require_reg) {
                    group.push(b);
                    false
                } else {
                    true
                }
            });
            if group.len() >= 2 {
                groups.push(group);
            } else {
                next_remaining.push(a);
            }
        }
        remaining = next_remaining;
    }

    let mut any_tags = false;
    let mut infos = Vec::with_capacity(groups.len());
    for group in groups {
        let info = fuse_group(m, &group, &cg, has_indirect_invoke, ctx);
        any_tags |= info.used_tags;
        if ctx.options.deep_fusion {
            let side_pairs: Vec<(Range<usize>, Range<usize>, i64)> = info
                .sides
                .chunks(2)
                .enumerate()
                .filter(|(_, c)| c.len() == 2)
                .map(|(j, c)| (c[0].clone(), c[1].clone(), 2 * j as i64))
                .collect();
            deep::merge_sides(m, info.fus, info.ctrl, &side_pairs, ctx);
        }
        ctx.fusion_stats.fused_funcs += group.len();
        ctx.fusion_stats.fus_funcs += 1;
        infos.push(info);
    }

    if any_tags {
        super::callsites::rewrite_indirect_sites_with(m, ctx, super::callsites::NWAY_SCHEME);
    }

    // Dead originals were stubbed by `fuse_group`; sweep them. Function
    // ids shift, so re-resolve each info's fus by name; a fused function
    // that itself became unreachable is dropped from the result.
    let fus_names: Vec<String> =
        infos.iter().map(|i| m.function(i.fus).name.clone()).collect();
    khaos_opt::dfe::run_module(m);
    let mut live = Vec::with_capacity(infos.len());
    for (mut info, name) in infos.into_iter().zip(fus_names) {
        if let Some((id, _)) = m.function_by_name(&name) {
            info.fus = id;
            live.push(info);
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use khaos_ir::builder::FunctionBuilder;
    use khaos_ir::BinOp;

    #[test]
    fn tag_values_fit_the_bit_budget() {
        for ctrl in 0..MAX_ARITY as i64 {
            let t = nway_tag(ctrl);
            assert_eq!(t & 1, 0, "bit 0 stays reserved");
            assert_eq!(t & !NWAY_MASK, 0, "tag inside the mask");
            assert_eq!((t >> NWAY_CTRL_SHIFT) & NWAY_CTRL_MASK, ctrl, "ctrl roundtrips");
            assert_ne!(t & NWAY_FLAG, 0, "flag set");
        }
    }

    #[test]
    fn merge_params_three_way_compresses_common_prefix() {
        let mk = |name: &str, params: &[Type]| {
            let mut fb = FunctionBuilder::new(name, Type::I64);
            for &p in params {
                fb.add_param(p);
            }
            fb.ret(Some(Operand::const_int(Type::I64, 0)));
            fb.finish()
        };
        let a = mk("a", &[Type::I32, Type::I64]);
        let b = mk("b", &[Type::I64]);
        let c = mk("c", &[Type::I16, Type::I64, Type::F64]);
        let layout = merge_params_n(&[&a, &b, &c], true);
        // Position 0: i32/i64/i16 merge to i64; position 1: i64/i64 merge;
        // position 2: only c's f64.
        assert_eq!(layout.slots, vec![Type::I64, Type::I64, Type::F64]);
        assert_eq!(layout.maps[0], vec![0, 1]);
        assert_eq!(layout.maps[1], vec![0]);
        assert_eq!(layout.maps[2], vec![0, 1, 2]);
        assert_eq!(layout.compressed, 3, "two merges at pos 0 + one at pos 1");
    }

    #[test]
    fn merge_params_incompatible_position_defers() {
        let mk = |name: &str, p: Type| {
            let mut fb = FunctionBuilder::new(name, Type::Void);
            fb.add_param(p);
            fb.ret(None);
            fb.finish()
        };
        let a = mk("a", Type::I64);
        let b = mk("b", Type::F64);
        let layout = merge_params_n(&[&a, &b], true);
        assert_eq!(layout.slots, vec![Type::I64, Type::F64]);
        assert_eq!(layout.maps[0], vec![0]);
        assert_eq!(layout.maps[1], vec![1], "f64 deferred to a trailing slot");
        assert_eq!(layout.compressed, 0);
    }

    #[test]
    fn merge_params_no_compression_concatenates() {
        let mk = |name: &str, params: &[Type]| {
            let mut fb = FunctionBuilder::new(name, Type::Void);
            for &p in params {
                fb.add_param(p);
            }
            fb.ret(None);
            fb.finish()
        };
        let a = mk("a", &[Type::I64, Type::I64]);
        let b = mk("b", &[Type::I64]);
        let layout = merge_params_n(&[&a, &b], false);
        assert_eq!(layout.slots.len(), 3);
        assert_eq!(layout.maps[0], vec![0, 1]);
        assert_eq!(layout.maps[1], vec![2]);
    }

    #[test]
    fn group_ret_folds_voids_and_widths() {
        let mk = |name: &str, ret: Type| {
            let mut fb = FunctionBuilder::new(name, ret);
            match ret {
                Type::Void => fb.ret(None),
                t => fb.ret(Some(Operand::zero(t))),
            }
            fb.finish()
        };
        let v = mk("v", Type::Void);
        let i32_ = mk("i", Type::I32);
        let i64_ = mk("j", Type::I64);
        let f64_ = mk("f", Type::F64);
        assert_eq!(group_ret(&[&v, &v, &v]), Some(Type::Void));
        assert_eq!(group_ret(&[&v, &i32_, &i64_]), Some(Type::I64));
        assert_eq!(group_ret(&[&i32_, &f64_]), None, "int/float loses precision");
        assert_eq!(group_ret(&[&v, &f64_]), Some(Type::F64));
    }

    #[test]
    fn three_way_fusion_preserves_behaviour() {
        let mut m = Module::new("t");
        let mut fns = Vec::new();
        for (name, mul) in [("f1", 3i64), ("f2", 5), ("f3", 7)] {
            let mut fb = FunctionBuilder::new(name, Type::I64);
            let p = fb.add_param(Type::I64);
            let r = fb.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::const_int(Type::I64, mul));
            fb.ret(Some(Operand::local(r)));
            fns.push(m.push_function(fb.finish()));
        }
        let mut main = FunctionBuilder::new("main", Type::I64);
        let mut acc = main.iconst(Type::I64, 0);
        for (i, &f) in fns.iter().enumerate() {
            let r = main
                .call(f, Type::I64, vec![Operand::const_int(Type::I64, i as i64 + 1)])
                .unwrap();
            let n = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
            acc = n;
        }
        main.ret(Some(Operand::local(acc)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        let want = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, 3 + 10 + 21);

        let mut ctx = KhaosContext::new(0xA1);
        let infos = run_n(&mut m, &mut ctx, 3, |_| true);
        assert_eq!(infos.len(), 1, "one group of three");
        assert_eq!(infos[0].sides.len(), 3);
        khaos_ir::verify::assert_valid(&m);
        let got = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, got);
        // The three originals are gone; one fusion function remains.
        let fused = m
            .functions
            .iter()
            .filter(|f| f.provenance.kind == ProvKind::Fused)
            .count();
        assert_eq!(fused, 1);
        assert!(m.functions.len() <= 2, "main + fusion");
    }

    #[test]
    fn four_way_fusion_via_switch_dispatch() {
        let mut m = Module::new("t");
        let mut fns = Vec::new();
        for (name, add) in [("g1", 10i64), ("g2", 20), ("g3", 30), ("g4", 40)] {
            let mut fb = FunctionBuilder::new(name, Type::I64);
            let p = fb.add_param(Type::I64);
            let r = fb.bin(BinOp::Add, Type::I64, Operand::local(p), Operand::const_int(Type::I64, add));
            fb.ret(Some(Operand::local(r)));
            fns.push(m.push_function(fb.finish()));
        }
        let mut main = FunctionBuilder::new("main", Type::I64);
        let mut acc = main.iconst(Type::I64, 0);
        for &f in &fns {
            let r = main.call(f, Type::I64, vec![Operand::local(acc)]).unwrap();
            acc = r;
        }
        main.ret(Some(Operand::local(acc)));
        m.push_function(main.finish());
        let want = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, 100);

        let mut ctx = KhaosContext::new(0xB2);
        let infos = run_n(&mut m, &mut ctx, 4, |_| true);
        assert_eq!(infos.len(), 1);
        let fus = m.function(infos[0].fus);
        assert!(
            matches!(fus.blocks[0].term, Term::Switch { ref cases, .. } if cases.len() == 3),
            "arity-4 dispatch is a 3-case switch with a default"
        );
        khaos_ir::verify::assert_valid(&m);
        let got = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, got);
    }

    #[test]
    fn tagged_indirect_calls_roundtrip_at_arity_three() {
        // Three functions of identical signature, all called indirectly
        // through a pointer chosen at runtime — the hard case the tag
        // mechanism exists for.
        let mut m = Module::new("t");
        let mut fns = Vec::new();
        for (name, mul) in [("h1", 2i64), ("h2", 3), ("h3", 4)] {
            let mut fb = FunctionBuilder::new(name, Type::I64);
            let p = fb.add_param(Type::I64);
            let r = fb.bin(BinOp::Mul, Type::I64, Operand::local(p), Operand::const_int(Type::I64, mul));
            fb.ret(Some(Operand::local(r)));
            fns.push(m.push_function(fb.finish()));
        }
        let mut main = FunctionBuilder::new("main", Type::I64);
        let mut acc = main.iconst(Type::I64, 0);
        for (i, &f) in fns.iter().enumerate() {
            let fp = main.funcaddr(f);
            let r = main
                .call_indirect(
                    Operand::local(fp),
                    Type::I64,
                    vec![Operand::const_int(Type::I64, i as i64 + 1)],
                )
                .unwrap();
            let n = main.bin(BinOp::Add, Type::I64, Operand::local(acc), Operand::local(r));
            acc = n;
        }
        main.ret(Some(Operand::local(acc)));
        m.push_function(main.finish());
        let want = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, 2 + 6 + 12);

        let mut ctx = KhaosContext::new(0xC3);
        let infos = run_n(&mut m, &mut ctx, 3, |_| true);
        assert_eq!(infos.len(), 1);
        assert!(infos[0].used_tags, "address-taken constituents must be tagged");
        khaos_ir::verify::assert_valid(&m);
        let got = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, got);
    }

    #[test]
    fn arity_two_matches_pair_semantics() {
        // run_n(.., 2, ..) must behave like the paper's pair fusion
        // (modulo tag layout): behaviour preserved, one fusFunc per pair.
        let mut m = Module::new("t");
        for (name, c) in [("p", 11i64), ("q", 13), ("r", 17), ("s", 19)] {
            let mut fb = FunctionBuilder::new(name, Type::I64);
            let x = fb.add_param(Type::I64);
            let v = fb.bin(BinOp::Add, Type::I64, Operand::local(x), Operand::const_int(Type::I64, c));
            fb.ret(Some(Operand::local(v)));
            m.push_function(fb.finish());
        }
        let ids: Vec<FuncId> = m.iter_functions().map(|(id, _)| id).collect();
        let mut main = FunctionBuilder::new("main", Type::I64);
        let mut acc = main.iconst(Type::I64, 0);
        for &f in &ids {
            let r = main.call(f, Type::I64, vec![Operand::local(acc)]).unwrap();
            acc = r;
        }
        main.ret(Some(Operand::local(acc)));
        m.push_function(main.finish());
        let want = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;

        let mut ctx = KhaosContext::new(0xD4);
        let infos = run_n(&mut m, &mut ctx, 2, |_| true);
        assert_eq!(infos.len(), 2, "four functions pair into two groups");
        khaos_ir::verify::assert_valid(&m);
        let got = khaos_vm::run_function(&m, "main", &[]).unwrap().exit_code;
        assert_eq!(want, got);
    }
}
