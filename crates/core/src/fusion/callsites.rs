//! Indirect-call rewriting: the tagged-pointer decode sequence
//! (paper §3.3.3, Figure 4(c)).
//!
//! Every indirect call site in the module is split into a tag check:
//! untagged pointers are called as before; tagged pointers are stripped,
//! the `ctrl` bits are extracted and passed as the first argument to the
//! fused function. The positional parameter-compression layout guarantees
//! the original arguments land in the right slots.
//!
//! Two tag layouts share this rewrite (both live in the low 4 bits that
//! 16-byte function alignment frees up, paper §A.1):
//!
//! * **pair scheme** — bit 2 marks "fused", bit 3 is the one-bit `ctrl`
//!   (the paper's layout);
//! * **N-way scheme** — bit 1 marks "fused", bits 2–3 carry a two-bit
//!   `ctrl`, supporting up to four constituents (the §A.1 bit budget:
//!   bit 0 stays reserved for the pointer-to-virtual-function marker).

use super::merge::TAG_MASK;
use super::nway::{NWAY_CTRL_MASK, NWAY_CTRL_SHIFT, NWAY_FLAG, NWAY_MASK};
use crate::KhaosContext;
use khaos_ir::{
    BinOp, Block, BlockId, Callee, CastKind, CmpPred, FuncId, Inst, Module, Operand, Term, Type,
};

/// How tag bits are packed into a function pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagScheme {
    /// All bits the scheme may set (stripped before the call).
    pub mask: i64,
    /// Bits whose presence means "points to a fused function".
    pub flag: i64,
    /// Right-shift that brings the `ctrl` field to bit 0.
    pub ctrl_shift: u32,
    /// Mask applied after the shift.
    pub ctrl_mask: i64,
}

/// The paper's pair layout: flag on bit 2, `ctrl` on bit 3.
pub const PAIR_SCHEME: TagScheme =
    TagScheme { mask: TAG_MASK, flag: TAG_MASK, ctrl_shift: 3, ctrl_mask: 1 };

/// The N-way layout: flag on bit 1, `ctrl` on bits 2–3.
pub const NWAY_SCHEME: TagScheme = TagScheme {
    mask: NWAY_MASK,
    flag: NWAY_FLAG,
    ctrl_shift: NWAY_CTRL_SHIFT,
    ctrl_mask: NWAY_CTRL_MASK,
};

/// Rewrites every indirect call site in the module with the pair-fusion
/// decode. Returns the number of sites rewritten.
pub fn rewrite_indirect_sites(m: &mut Module, ctx: &mut KhaosContext) -> usize {
    rewrite_indirect_sites_with(m, ctx, PAIR_SCHEME)
}

/// Rewrites every indirect call site with an explicit tag scheme.
pub fn rewrite_indirect_sites_with(
    m: &mut Module,
    ctx: &mut KhaosContext,
    scheme: TagScheme,
) -> usize {
    let mut total = 0;
    for fi in 0..m.functions.len() {
        total += rewrite_in_function(m, FuncId::new(fi), scheme);
    }
    ctx.fusion_stats.indirect_sites_rewritten += total;
    total
}

fn rewrite_in_function(m: &mut Module, fid: FuncId, scheme: TagScheme) -> usize {
    // Collect sites up front: (block, inst index). Only blocks that exist
    // now — the split blocks we append contain the already-rewritten
    // calls and must not be revisited.
    let f = m.function(fid);
    let mut sites: Vec<(BlockId, usize)> = Vec::new();
    for (b, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if matches!(inst, Inst::Call { callee: Callee::Indirect(_), .. }) {
                sites.push((b, i));
            }
        }
    }
    // Split from the highest instruction index first so earlier indices in
    // the same block stay valid.
    sites.sort_by_key(|&(b, i)| std::cmp::Reverse((b, i)));
    let n = sites.len();
    for (b, i) in sites {
        split_site(m, fid, b, i, scheme);
    }
    n
}

fn split_site(m: &mut Module, fid: FuncId, b: BlockId, i: usize, scheme: TagScheme) {
    let f = m.function_mut(fid);
    let Inst::Call { dst, callee: Callee::Indirect(ptr), args } = f.blocks[b.index()].insts[i].clone()
    else {
        panic!("split_site target is not an indirect call");
    };

    // Tail of the original block becomes the join block.
    let tail: Vec<Inst> = f.blocks[b.index()].insts[i + 1..].to_vec();
    let old_term = f.blocks[b.index()].term.clone();
    let join = f.push_block(Block { insts: tail, term: old_term, pad: None });

    // Plain path: the original call, unchanged.
    let plain = f.push_block(Block {
        insts: vec![Inst::Call { dst, callee: Callee::Indirect(ptr), args: args.clone() }],
        term: Term::Jump(join),
        pad: None,
    });

    // Tagged path: strip the tag, extract ctrl, call fus(ctrl, args...).
    let as_int = f.new_local(Type::I64);
    let shifted = f.new_local(Type::I64);
    let ctrl64 = f.new_local(Type::I64);
    let ctrl = f.new_local(Type::I32);
    let stripped = f.new_local(Type::I64);
    let base = f.new_local(Type::Ptr);
    let mut tagged_insts = vec![
        Inst::Bin {
            op: BinOp::LShr,
            ty: Type::I64,
            dst: shifted,
            lhs: Operand::local(as_int),
            rhs: Operand::const_int(Type::I64, scheme.ctrl_shift as i64),
        },
        Inst::Bin {
            op: BinOp::And,
            ty: Type::I64,
            dst: ctrl64,
            lhs: Operand::local(shifted),
            rhs: Operand::const_int(Type::I64, scheme.ctrl_mask),
        },
        Inst::Cast {
            kind: CastKind::Trunc,
            dst: ctrl,
            src: Operand::local(ctrl64),
            from: Type::I64,
            to: Type::I32,
        },
        Inst::Bin {
            op: BinOp::And,
            ty: Type::I64,
            dst: stripped,
            lhs: Operand::local(as_int),
            rhs: Operand::const_int(Type::I64, !scheme.mask),
        },
        Inst::Cast {
            kind: CastKind::IntToPtr,
            dst: base,
            src: Operand::local(stripped),
            from: Type::I64,
            to: Type::Ptr,
        },
    ];
    let mut fused_args = Vec::with_capacity(args.len() + 1);
    fused_args.push(Operand::local(ctrl));
    fused_args.extend(args.iter().copied());
    tagged_insts.push(Inst::Call {
        dst,
        callee: Callee::Indirect(Operand::local(base)),
        args: fused_args,
    });
    let tagged = f.push_block(Block { insts: tagged_insts, term: Term::Jump(join), pad: None });

    // Head: compute the tag test and branch.
    let tag_bits = f.new_local(Type::I64);
    let is_plain = f.new_local(Type::I1);
    let head = &mut f.blocks[b.index()];
    head.insts.truncate(i);
    head.insts.push(Inst::Cast {
        kind: CastKind::PtrToInt,
        dst: as_int,
        src: ptr,
        from: Type::Ptr,
        to: Type::I64,
    });
    head.insts.push(Inst::Bin {
        op: BinOp::And,
        ty: Type::I64,
        dst: tag_bits,
        lhs: Operand::local(as_int),
        rhs: Operand::const_int(Type::I64, scheme.flag),
    });
    head.insts.push(Inst::Cmp {
        pred: CmpPred::Eq,
        ty: Type::I64,
        dst: is_plain,
        lhs: Operand::local(tag_bits),
        rhs: Operand::const_int(Type::I64, 0),
    });
    head.term = Term::Branch { cond: Operand::local(is_plain), then_bb: plain, else_bb: tagged };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KhaosContext;
    use khaos_ir::builder::FunctionBuilder;

    fn module_with_indirect_calls() -> Module {
        let mut m = Module::new("t");
        let mut callee = FunctionBuilder::new("f", Type::I64);
        let p = callee.add_param(Type::I64);
        callee.ret(Some(Operand::local(p)));
        let cid = m.push_function(callee.finish());

        let mut main = FunctionBuilder::new("main", Type::I64);
        let fp = main.funcaddr(cid);
        let r1 = main
            .call_indirect(Operand::local(fp), Type::I64, vec![Operand::const_int(Type::I64, 1)])
            .unwrap();
        let r2 = main
            .call_indirect(Operand::local(fp), Type::I64, vec![Operand::local(r1)])
            .unwrap();
        main.ret(Some(Operand::local(r2)));
        m.push_function(main.finish());
        khaos_ir::verify::assert_valid(&m);
        m
    }

    #[test]
    fn rewrites_all_sites_once() {
        let mut m = module_with_indirect_calls();
        let before = khaos_vm::run_function(&m, "main", &[]).unwrap();

        let mut ctx = KhaosContext::new(1);
        let n = rewrite_indirect_sites(&mut m, &mut ctx);
        assert_eq!(n, 2);
        khaos_ir::verify::assert_valid(&m);
        let after = khaos_vm::run_function(&m, "main", &[]).unwrap();
        assert_eq!(before.exit_code, after.exit_code, "untagged pointers still work");

        // Idempotence is NOT expected (plain paths contain indirect calls);
        // the driver only calls this once per module.
    }

    #[test]
    fn nway_scheme_preserves_untagged_calls() {
        let mut m = module_with_indirect_calls();
        let before = khaos_vm::run_function(&m, "main", &[]).unwrap();

        let mut ctx = KhaosContext::new(1);
        let n = rewrite_indirect_sites_with(&mut m, &mut ctx, NWAY_SCHEME);
        assert_eq!(n, 2);
        khaos_ir::verify::assert_valid(&m);
        let after = khaos_vm::run_function(&m, "main", &[]).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
    }

    #[test]
    fn schemes_do_not_overlap_bit_zero() {
        // Bit 0 is reserved (clang's pointer-to-virtual-function marker,
        // paper §A.1) — neither scheme may touch it.
        assert_eq!(PAIR_SCHEME.mask & 1, 0);
        assert_eq!(NWAY_SCHEME.mask & 1, 0);
        // The flag bits must be inside the mask, and the ctrl field must
        // decode to within each scheme's arity budget.
        assert_eq!(PAIR_SCHEME.flag & !PAIR_SCHEME.mask, 0);
        assert_eq!(NWAY_SCHEME.flag & !NWAY_SCHEME.mask, 0);
        assert_eq!(PAIR_SCHEME.ctrl_mask, 1);
        assert_eq!(NWAY_SCHEME.ctrl_mask, 3);
    }
}
