//! # khaos-binary — synthetic x86-64-like codegen
//!
//! Lowers KIR modules to a machine-code-shaped representation: the
//! artifact binary diffing tools consume. The point is not code quality —
//! it is that the *features diffing tools extract* (instruction streams,
//! opcode mixes, basic-block structure, CFG edges, call graphs, symbol
//! names, relocations) respond to obfuscation the way real binaries do:
//!
//! * calls lower to argument-register moves + stack pushes beyond six
//!   arguments (so parameter-list compression is visible),
//! * function addresses lower to `lea` against a relocation whose addend
//!   carries the fusion tag (paper §A.1),
//! * block structure and terminators survive, so CFG features shift with
//!   fission/fusion exactly as the paper describes.
//!
//! ## The flat operand-pool layout
//!
//! Instruction operands live in **one flat per-function pool**
//! ([`BinFunction::operand_pool`]); an [`MInst`] is a 12-byte
//! `{opcode, operand_range}` record whose [`OperandRange`] indexes that
//! pool. Every hot consumer — [`Binary::fingerprint`], the `khaos-diff`
//! embedding walks — iterates operands as one contiguous slice per
//! instruction instead of chasing a heap `Vec` per instruction, which is
//! what makes cold fingerprint+embed scale with memory bandwidth rather
//! than allocator traffic. Construction goes through
//! [`MInst::alloc`] (or [`BinBlock::push_inst`]); reading goes through
//! [`MInst::operands`] with the owning function's pool; printing goes
//! through [`MInst::display`], whose output is byte-for-byte the format
//! of the original nested layout (pinned, together with the
//! [`Binary::fingerprint`] digests, by `tests/layout_equivalence.rs`).
//!
//! [`opcode_histogram`] and [`histogram_distance`] implement the Figure 11
//! metric.

mod lower;

pub use lower::lower_module;

use std::collections::BTreeMap;
use std::fmt;

/// Machine opcodes (a practical x86-64 subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Opcode {
    Mov,
    MovImm,
    Load,
    Store,
    Movsx,
    Movzx,
    Lea,
    Add,
    Sub,
    Imul,
    Idiv,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
    Neg,
    Not,
    Cmp,
    Test,
    Setcc,
    Jmp,
    Jcc,
    Call,
    CallInd,
    Ret,
    Push,
    Pop,
    Movsd,
    Addsd,
    Subsd,
    Mulsd,
    Divsd,
    Ucomisd,
    Cvtsi2sd,
    Cvttsd2si,
    Cvtss2sd,
    Cvtsd2ss,
    Xorps,
    Cmov,
    Nop,
}

impl Opcode {
    /// Every opcode, in a fixed order (histogram dimensions).
    pub const ALL: [Opcode; 43] = [
        Opcode::Mov,
        Opcode::MovImm,
        Opcode::Load,
        Opcode::Store,
        Opcode::Movsx,
        Opcode::Movzx,
        Opcode::Lea,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Imul,
        Opcode::Idiv,
        Opcode::Div,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::Neg,
        Opcode::Not,
        Opcode::Cmp,
        Opcode::Test,
        Opcode::Setcc,
        Opcode::Jmp,
        Opcode::Jcc,
        Opcode::Call,
        Opcode::CallInd,
        Opcode::Ret,
        Opcode::Push,
        Opcode::Pop,
        Opcode::Movsd,
        Opcode::Addsd,
        Opcode::Subsd,
        Opcode::Mulsd,
        Opcode::Divsd,
        Opcode::Ucomisd,
        Opcode::Cvtsi2sd,
        Opcode::Cvttsd2si,
        Opcode::Cvtss2sd,
        Opcode::Cvtsd2ss,
        Opcode::Xorps,
        Opcode::Cmov,
        Opcode::Nop,
    ];

    /// Lower-case mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Mov | Opcode::MovImm => "mov",
            Opcode::Load => "mov.ld",
            Opcode::Store => "mov.st",
            Opcode::Movsx => "movsx",
            Opcode::Movzx => "movzx",
            Opcode::Lea => "lea",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Imul => "imul",
            Opcode::Idiv => "idiv",
            Opcode::Div => "div",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Sar => "sar",
            Opcode::Neg => "neg",
            Opcode::Not => "not",
            Opcode::Cmp => "cmp",
            Opcode::Test => "test",
            Opcode::Setcc => "setcc",
            Opcode::Jmp => "jmp",
            Opcode::Jcc => "jcc",
            Opcode::Call => "call",
            Opcode::CallInd => "call*",
            Opcode::Ret => "ret",
            Opcode::Push => "push",
            Opcode::Pop => "pop",
            Opcode::Movsd => "movsd",
            Opcode::Addsd => "addsd",
            Opcode::Subsd => "subsd",
            Opcode::Mulsd => "mulsd",
            Opcode::Divsd => "divsd",
            Opcode::Ucomisd => "ucomisd",
            Opcode::Cvtsi2sd => "cvtsi2sd",
            Opcode::Cvttsd2si => "cvttsd2si",
            Opcode::Cvtss2sd => "cvtss2sd",
            Opcode::Cvtsd2ss => "cvtsd2ss",
            Opcode::Xorps => "xorps",
            Opcode::Cmov => "cmov",
            Opcode::Nop => "nop",
        }
    }
}

/// A symbolic reference in an operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymRef {
    /// Function by index in [`Binary::functions`].
    Func(u32),
    /// Global data symbol.
    Global(u32),
    /// External (dynamic) symbol.
    Ext(u32),
}

/// A machine operand (already normalized the way diffing tools like
/// Asm2Vec normalize: concrete addresses abstracted to classes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MOperand {
    /// Integer register.
    Reg(u8),
    /// Float (XMM) register.
    FReg(u8),
    /// Immediate value.
    Imm(i64),
    /// Memory via base register + displacement.
    Mem {
        /// Base register.
        base: u8,
        /// Byte displacement.
        offset: i32,
    },
    /// Symbol-relative reference (RIP-relative in real life).
    Sym(SymRef),
    /// Branch target: block index within the function.
    Label(u32),
}

/// Half-open index range into a function's operand pool
/// ([`BinFunction::operand_pool`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OperandRange {
    /// First operand index in the pool.
    pub start: u32,
    /// Number of operands.
    pub len: u32,
}

impl OperandRange {
    /// The empty range (an operand-less instruction).
    pub const EMPTY: OperandRange = OperandRange { start: 0, len: 0 };

    /// The pool indices covered.
    #[inline]
    pub fn as_range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// One machine instruction: an opcode plus a range into the owning
/// function's flat operand pool. 12 bytes, `Copy` — the instruction
/// stream of a function is one contiguous allocation regardless of how
/// many operands its instructions carry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MInst {
    /// Opcode.
    pub opcode: Opcode,
    /// Operand slice in the function's pool, destination first.
    pub operand_range: OperandRange,
}

impl MInst {
    /// Constructs an instruction, appending its operands to `pool`.
    pub fn alloc(pool: &mut Vec<MOperand>, opcode: Opcode, operands: &[MOperand]) -> Self {
        let start = pool.len() as u32;
        pool.extend_from_slice(operands);
        MInst {
            opcode,
            operand_range: OperandRange {
                start,
                len: operands.len() as u32,
            },
        }
    }

    /// The instruction's operands, destination first.
    #[inline]
    pub fn operands<'p>(&self, pool: &'p [MOperand]) -> &'p [MOperand] {
        &pool[self.operand_range.as_range()]
    }

    /// Renders the instruction against its pool; output is byte-for-byte
    /// the `Display` format of the original nested-operand layout.
    pub fn display<'a>(&'a self, pool: &'a [MOperand]) -> InstDisplay<'a> {
        InstDisplay { inst: self, pool }
    }
}

/// [`fmt::Display`] adapter returned by [`MInst::display`].
pub struct InstDisplay<'a> {
    inst: &'a MInst,
    pool: &'a [MOperand],
}

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inst.opcode.mnemonic())?;
        for (i, o) in self.inst.operands(self.pool).iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            match o {
                MOperand::Reg(r) => write!(f, "{sep}r{r}")?,
                MOperand::FReg(r) => write!(f, "{sep}xmm{r}")?,
                MOperand::Imm(v) => write!(f, "{sep}${v}")?,
                MOperand::Mem { base, offset } => write!(f, "{sep}[r{base}{offset:+}]")?,
                MOperand::Sym(SymRef::Func(i)) => write!(f, "{sep}@fn{i}")?,
                MOperand::Sym(SymRef::Global(i)) => write!(f, "{sep}@gl{i}")?,
                MOperand::Sym(SymRef::Ext(i)) => write!(f, "{sep}@ext{i}")?,
                MOperand::Label(l) => write!(f, "{sep}.L{l}")?,
            }
        }
        Ok(())
    }
}

/// A machine basic block.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BinBlock {
    /// Instructions in order.
    pub insts: Vec<MInst>,
    /// Successor block indices within the function.
    pub succs: Vec<u32>,
    /// Direct call targets made from this block.
    pub calls: Vec<SymRef>,
}

impl BinBlock {
    /// Appends an instruction, allocating its operands in `pool` (the
    /// owning function's [`BinFunction::operand_pool`]).
    pub fn push_inst(&mut self, pool: &mut Vec<MOperand>, opcode: Opcode, operands: &[MOperand]) {
        self.insts.push(MInst::alloc(pool, opcode, operands));
    }
}

/// Function lineage carried into the binary (the diffing ground truth;
/// never consulted by the diffing tools themselves, only by the metrics).
#[derive(Clone, Debug, PartialEq)]
pub struct BinProvenance {
    /// Original source functions whose code is inside.
    pub origins: Vec<String>,
    /// Free-form markers (e.g. `"vulnerable"`).
    pub annotations: Vec<String>,
}

/// A function in the binary.
#[derive(Clone, Debug, PartialEq)]
pub struct BinFunction {
    /// Symbol name (`None` when the binary is stripped).
    pub name: Option<String>,
    /// Ground-truth lineage.
    pub provenance: BinProvenance,
    /// Whether the symbol is exported.
    pub exported: bool,
    /// Machine blocks; index 0 is the entry.
    pub blocks: Vec<BinBlock>,
    /// The flat operand pool every [`MInst::operand_range`] of this
    /// function's blocks indexes into.
    pub operand_pool: Vec<MOperand>,
}

impl BinFunction {
    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of CFG edges.
    pub fn edge_count(&self) -> usize {
        self.blocks.iter().map(|b| b.succs.len()).sum()
    }

    /// Number of call sites (direct + indirect).
    pub fn call_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.opcode, Opcode::Call | Opcode::CallInd))
            .count()
    }
}

/// A relocation: a data slot holding a function address plus addend (the
/// addend carries fusion tag bits, as in paper §A.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reloc {
    /// Target function index.
    pub func: u32,
    /// Addend applied at load time.
    pub addend: i64,
}

/// External symbol table entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtSym {
    /// Dynamic symbol name.
    pub name: String,
}

/// A lowered binary.
#[derive(Clone, Debug, PartialEq)]
pub struct Binary {
    /// Binary (module) name.
    pub name: String,
    /// Functions in layout order.
    pub functions: Vec<BinFunction>,
    /// Data relocations against function symbols.
    pub relocations: Vec<Reloc>,
    /// Imported externals.
    pub externals: Vec<ExtSym>,
    /// True when symbol names have been removed.
    pub stripped: bool,
    /// Build provenance: the fingerprint of the pass pipeline that
    /// produced this binary (`khaos_pass::Pipeline::fingerprint`), or 0
    /// when unknown. Mixed into [`Binary::fingerprint`], so cache
    /// entries keyed on the fingerprint are partitioned by build
    /// configuration — a warm `khaos-diff` embedding cache can be
    /// shared across experiment drivers that rebuild the same
    /// (program, pipeline) pair without any risk of cross-build
    /// aliasing.
    pub build_provenance: u64,
}

impl Binary {
    /// Stamps the build provenance (builder style); see
    /// [`Binary::build_provenance`].
    pub fn with_build_provenance(mut self, fingerprint: u64) -> Self {
        self.build_provenance = fingerprint;
        self
    }
    /// Removes all symbol names (diffing must then work structurally).
    pub fn strip(&mut self) {
        self.stripped = true;
        for f in &mut self.functions {
            f.name = None;
        }
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(BinFunction::inst_count).sum()
    }

    /// A stable structural fingerprint of everything the diffing tools
    /// can observe: symbol names, block structure, instruction streams,
    /// CFG edges, call sites, relocations and externals.
    ///
    /// Two binaries with equal fingerprints produce identical
    /// embeddings under every deterministic differ, which is what the
    /// `khaos-diff` embedding cache keys on. Provenance is deliberately
    /// excluded — it is evaluation ground truth the tools never see, so
    /// binaries differing only in annotations still share cache
    /// entries.
    ///
    /// The digest is **layout-independent by construction**: it hashes
    /// the logical `(opcode, operands)` stream, so it is byte-for-byte
    /// the digest the nested-`Vec` seed layout produced (pinned by
    /// `tests/layout_equivalence.rs`) and every embedding-cache key
    /// minted before the operand-pool refactor stays valid.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Mix::new();
        h.bytes(self.name.as_bytes());
        h.u64(self.build_provenance);
        h.u64(self.stripped as u64);
        h.u64(self.functions.len() as u64);
        for f in &self.functions {
            match &f.name {
                Some(n) => {
                    h.u64(1);
                    h.bytes(n.as_bytes());
                }
                None => h.u64(0),
            }
            h.u64(f.exported as u64);
            h.u64(f.blocks.len() as u64);
            let pool = f.operand_pool.as_slice();
            for b in &f.blocks {
                // All three lengths in one fold: every warm metric
                // call pays this hash, so folds are budgeted tightly.
                h.u64(
                    (b.insts.len() as u64)
                        | ((b.succs.len() as u64) << 21)
                        | ((b.calls.len() as u64) << 42),
                );
                // The instruction stream hashes through a block-local
                // FNV-1a-style multiply chain (register-resident — the
                // four-lane Mix state is indexed dynamically and lives
                // in memory, too slow for the per-instruction loop),
                // folded into the mixer once per block. Operands come
                // straight off the contiguous pool slice: no per-
                // instruction pointer chase.
                let mut acc: u64 = 0xcbf29ce484222325;
                for i in &b.insts {
                    // One chain step per instruction: opcode plus every
                    // operand (tag byte + payload) rotated to its
                    // position, all cheap ALU ops. Instruction order is
                    // captured by the chain.
                    let mut w = i.opcode as u64;
                    for (k, o) in i.operands(pool).iter().enumerate() {
                        let enc = match o {
                            MOperand::Reg(r) => (1 << 56) | *r as u64,
                            MOperand::FReg(r) => (2 << 56) | *r as u64,
                            MOperand::Imm(v) => (3 << 56) ^ *v as u64,
                            MOperand::Mem { base, offset } => {
                                (4 << 56) | ((*base as u64) << 32) ^ (*offset as u32 as u64)
                            }
                            MOperand::Sym(SymRef::Func(i)) => (5 << 56) | *i as u64,
                            MOperand::Sym(SymRef::Global(i)) => (6 << 56) | *i as u64,
                            MOperand::Sym(SymRef::Ext(i)) => (7 << 56) | *i as u64,
                            MOperand::Label(l) => (8 << 56) | *l as u64,
                        };
                        w ^= enc.rotate_left(7 + 13 * k as u32);
                    }
                    acc = (acc ^ w).wrapping_mul(0x100000001b3);
                }
                h.u64(acc);
                // Successors two per fold (blocks rarely have more).
                for pair in b.succs.chunks(2) {
                    let hi = pair.get(1).map(|s| (*s as u64) << 32).unwrap_or(1 << 63);
                    h.u64(pair[0] as u64 | hi);
                }
                for c in &b.calls {
                    h.u64(match c {
                        SymRef::Func(i) => (1 << 32) | *i as u64,
                        SymRef::Global(i) => (2 << 32) | *i as u64,
                        SymRef::Ext(i) => (3 << 32) | *i as u64,
                    });
                }
            }
        }
        h.u64(self.relocations.len() as u64);
        for r in &self.relocations {
            h.u64(((r.func as u64) << 32) ^ r.addend as u64);
        }
        h.u64(self.externals.len() as u64);
        for e in &self.externals {
            h.bytes(e.name.as_bytes());
        }
        h.finish()
    }
}

/// Four-lane word-mixing accumulator used by [`Binary::fingerprint`].
///
/// Words round-robin across four independent multiply–xorshift chains,
/// so the CPU overlaps the multiplies instead of serializing on one
/// chain — an order of magnitude faster than byte-wise FNV on
/// instruction-stream-sized inputs. Speed matters here: the similarity
/// engine fingerprints binaries on every cached matrix lookup, so this
/// hash is the floor under every warm metric call.
struct Mix {
    lanes: [u64; 4],
    next: usize,
}

impl Mix {
    fn new() -> Self {
        Mix {
            lanes: [
                0x243f6a8885a308d3,
                0x13198a2e03707344,
                0xa4093822299f31d0,
                0x082efa98ec4e6c89,
            ],
            next: 0,
        }
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        let lane = &mut self.lanes[self.next & 3];
        let mut x = *lane ^ v;
        x = x.wrapping_mul(0x9e3779b97f4a7c15);
        x ^= x >> 29;
        *lane = x;
        self.next = self.next.wrapping_add(1);
    }

    fn bytes(&mut self, bs: &[u8]) {
        let mut chunks = bs.chunks_exact(8);
        for c in &mut chunks {
            self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = [0u8; 8];
        tail[..chunks.remainder().len()].copy_from_slice(chunks.remainder());
        self.u64(u64::from_le_bytes(tail));
        // Length separator so "ab"+"c" != "a"+"bc".
        self.u64(bs.len() as u64);
    }

    fn finish(&self) -> u64 {
        let mut x = 0u64;
        for (k, lane) in self.lanes.iter().enumerate() {
            x ^= lane.rotate_left(17 * k as u32);
            x = x.wrapping_mul(0xff51afd7ed558ccd);
            x ^= x >> 33;
        }
        x
    }
}

/// Opcode histogram of a binary (the `objdump | histogram` of §4.4).
pub fn opcode_histogram(b: &Binary) -> BTreeMap<Opcode, u64> {
    let mut h = BTreeMap::new();
    for f in &b.functions {
        for blk in &f.blocks {
            for i in &blk.insts {
                *h.entry(i.opcode).or_insert(0) += 1;
            }
        }
    }
    h
}

/// Euclidean distance between two opcode histograms, as used by the
/// paper's Figure 11 (normalization across a set happens in the harness).
pub fn histogram_distance(a: &BTreeMap<Opcode, u64>, b: &BTreeMap<Opcode, u64>) -> f64 {
    let mut sum = 0.0f64;
    for op in Opcode::ALL {
        let x = *a.get(&op).unwrap_or(&0) as f64;
        let y = *b.get(&op).unwrap_or(&0) as f64;
        sum += (x - y) * (x - y);
    }
    sum.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_binary(extra_adds: usize) -> Binary {
        let mut pool = Vec::new();
        let mut blk = BinBlock::default();
        blk.push_inst(
            &mut pool,
            Opcode::MovImm,
            &[MOperand::Reg(0), MOperand::Imm(1)],
        );
        for _ in 0..extra_adds {
            blk.push_inst(
                &mut pool,
                Opcode::Add,
                &[MOperand::Reg(0), MOperand::Imm(1)],
            );
        }
        blk.push_inst(&mut pool, Opcode::Ret, &[]);
        Binary {
            build_provenance: 0,
            name: "t".into(),
            functions: vec![BinFunction {
                name: Some("f".into()),
                provenance: BinProvenance {
                    origins: vec!["f".into()],
                    annotations: vec![],
                },
                exported: false,
                blocks: vec![blk],
                operand_pool: pool,
            }],
            relocations: vec![],
            externals: vec![],
            stripped: false,
        }
    }

    #[test]
    fn histogram_counts() {
        let b = tiny_binary(3);
        let h = opcode_histogram(&b);
        assert_eq!(h[&Opcode::Add], 3);
        assert_eq!(h[&Opcode::Ret], 1);
        assert_eq!(b.inst_count(), 5);
    }

    #[test]
    fn distance_is_metric_like() {
        let h1 = opcode_histogram(&tiny_binary(0));
        let h2 = opcode_histogram(&tiny_binary(4));
        assert_eq!(histogram_distance(&h1, &h1), 0.0);
        assert_eq!(histogram_distance(&h1, &h2), 4.0);
        assert_eq!(histogram_distance(&h2, &h1), 4.0);
    }

    #[test]
    fn strip_removes_names() {
        let mut b = tiny_binary(0);
        b.strip();
        assert!(b.stripped);
        assert!(b.functions[0].name.is_none());
        // Provenance stays: it is ground truth, not a symbol.
        assert_eq!(b.functions[0].provenance.origins, vec!["f".to_string()]);
    }

    #[test]
    fn inst_display() {
        let mut pool = Vec::new();
        let i = MInst::alloc(
            &mut pool,
            Opcode::Load,
            &[
                MOperand::Reg(1),
                MOperand::Mem {
                    base: 5,
                    offset: -8,
                },
            ],
        );
        assert_eq!(i.display(&pool).to_string(), "mov.ld r1, [r5-8]");
    }

    #[test]
    fn operand_pool_roundtrip() {
        let mut pool = Vec::new();
        let a = MInst::alloc(
            &mut pool,
            Opcode::Add,
            &[MOperand::Reg(1), MOperand::Imm(2)],
        );
        let r = MInst::alloc(&mut pool, Opcode::Ret, &[]);
        assert_eq!(a.operands(&pool), &[MOperand::Reg(1), MOperand::Imm(2)]);
        assert!(r.operands(&pool).is_empty());
        assert_eq!(pool.len(), 2);
        assert_eq!(a.operand_range.as_range(), 0..2);
    }

    #[test]
    fn fingerprint_ignores_pool_packing() {
        // The same logical instruction stream hashed from a pool with
        // dead padding between ranges must produce the same digest:
        // the fingerprint reads ranges, never the raw pool layout.
        let b = tiny_binary(1);
        let mut padded = b.clone();
        let f = &mut padded.functions[0];
        f.operand_pool.push(MOperand::Imm(999)); // dead tail entry
        assert_eq!(b.fingerprint(), padded.fingerprint());
    }
}
